"""Adversarial traces for the autoscaler's hysteresis and the
rebalancer's damping.

Control loops fail by oscillating, so the traces here are built to
provoke exactly that: alternating high/low pressure (flapping), breach
storms inside the cooldown window, pressure and burn disagreeing, and
hot tenants hammering the same shard tick after tick. Every test is a
plain deterministic sequence — no simulator, no randomness — so a
failure reads as a truth table violation.
"""

import pytest

from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig
from repro.cluster.rebalance import (
    Rebalancer,
    RebalancerConfig,
    TenantRouter,
)
from repro.cluster.ring import HashRing

HIGH = [0.9, 0.9, 0.9, 0.9]
LOW = [0.0, 0.0, 0.0, 0.0]


def _config(**overrides):
    base = dict(
        min_nodes=2,
        max_nodes=8,
        up_pressure=0.6,
        down_pressure=0.1,
        up_after=2,
        down_after=3,
        cooldown_seconds=1.0,
    )
    base.update(overrides)
    return AutoscalerConfig(**base)


# -- autoscaler ---------------------------------------------------------------


def test_flapping_pressure_never_scales():
    """An alternating high/low trace keeps resetting both streaks —
    the fleet must not move, no matter how long the flap lasts."""
    scaler = Autoscaler(_config())
    for tick in range(200):
        pressure = HIGH if tick % 2 == 0 else LOW
        decision = scaler.observe(tick * 0.25, 4, pressure, None)
        assert decision is None, f"flap produced {decision!r} at tick {tick}"
    assert scaler.decisions == []


def test_scale_up_needs_consecutive_breaches():
    scaler = Autoscaler(_config(up_after=3))
    assert scaler.observe(0.00, 4, HIGH, None) is None
    assert scaler.observe(0.25, 4, HIGH, None) is None
    assert scaler.observe(0.50, 4, HIGH, None) == Autoscaler.UP


def test_burn_alone_triggers_scale_up():
    """Latency burn above up_burn votes up even with empty queues —
    slow nodes page without deep queues, and the scaler must see it."""
    scaler = Autoscaler(_config(up_after=2, up_burn=1.2))
    assert scaler.observe(0.00, 4, LOW, 1.5) is None
    assert scaler.observe(0.25, 4, LOW, 1.5) == Autoscaler.UP


def test_cooldown_suppresses_but_streaks_survive():
    """Inside the cooldown nothing fires, but a persistent breach keeps
    its streak and acts on the first tick after the cooldown lifts."""
    scaler = Autoscaler(_config(up_after=2, cooldown_seconds=1.0))
    scaler.observe(0.00, 4, HIGH, None)
    assert scaler.observe(0.25, 4, HIGH, None) == Autoscaler.UP
    # 0.5 and 0.75 are within one second of the action at 0.25
    assert scaler.observe(0.50, 5, HIGH, None) is None
    assert scaler.observe(0.75, 5, HIGH, None) is None
    # cooldown over, streak already >= up_after: fires immediately
    assert scaler.observe(1.25, 5, HIGH, None) == Autoscaler.UP


def test_scale_down_requires_low_pressure_and_low_burn():
    """Idle queues with latency still burning must not scale down —
    the two signals have to agree before capacity is removed."""
    scaler = Autoscaler(_config(down_after=2, down_burn=0.6))
    for tick in range(10):
        assert scaler.observe(tick * 0.25, 4, LOW, 1.0) is None
    assert scaler.observe(2.50, 4, LOW, 0.2) is None
    assert scaler.observe(2.75, 4, LOW, 0.2) == Autoscaler.DOWN


def test_bounds_clamp_decisions():
    scaler = Autoscaler(_config(min_nodes=2, max_nodes=4, up_after=1, down_after=1))
    assert scaler.observe(0.0, 4, HIGH, None) is None  # at max: no up
    assert scaler.observe(5.0, 2, LOW, None) is None  # at min: no down


def test_opposing_signals_reset_each_other():
    scaler = Autoscaler(_config(up_after=3, down_after=3))
    scaler.observe(0.00, 4, HIGH, None)
    scaler.observe(0.25, 4, HIGH, None)
    scaler.observe(0.50, 4, LOW, None)  # resets the up streak
    assert scaler.observe(0.75, 4, HIGH, None) is None
    assert scaler.observe(1.00, 4, HIGH, None) is None
    assert scaler.observe(1.25, 4, HIGH, None) == Autoscaler.UP


def test_config_validation():
    with pytest.raises(ValueError):
        AutoscalerConfig(min_nodes=0)
    with pytest.raises(ValueError):
        AutoscalerConfig(min_nodes=5, max_nodes=2)
    with pytest.raises(ValueError):
        AutoscalerConfig(up_after=0)
    with pytest.raises(ValueError):
        AutoscalerConfig(up_pressure=0.3, down_pressure=0.3)
    with pytest.raises(ValueError):
        AutoscalerConfig(step_up=0)


# -- rebalancer ---------------------------------------------------------------


def _cluster(nodes=("n0", "n1", "n2", "n3")):
    ring = HashRing(nodes=list(nodes), vnodes=16, replicas=2)
    router = TenantRouter(ring)
    return ring, router


def test_hot_tenant_migrates_to_coldest_nodes():
    ring, router = _cluster()
    rebalancer = Rebalancer(router, RebalancerConfig(hot_share=0.5, pressure_floor=0.5))
    natural = {t: router.replica_set(t) for t in ("hot", "cold-a", "cold-b")}
    events = rebalancer.observe(
        1.0,
        {"n0": {"hot": 80, "cold-a": 10}},
        {"n0": 0.9, "n1": 0.1, "n2": 0.3, "n3": 0.2},
        ["n0", "n1", "n2", "n3"],
    )
    assert [e.tenant for e in events] == ["hot"]
    # override lands on the two least-pressured nodes, hot shard excluded
    assert router.replica_set("hot") == ("n1", "n3")
    # nobody else moved — the ring is untouched
    for tenant in ("cold-a", "cold-b"):
        assert router.replica_set(tenant) == natural[tenant]
    assert len(ring) == 4


def test_cold_shard_and_noise_floor_suppress_migration():
    _, router = _cluster()
    rebalancer = Rebalancer(
        router, RebalancerConfig(hot_share=0.5, pressure_floor=0.5, min_requests=20)
    )
    # pressured but too few requests to trust the mix
    assert not rebalancer.observe(
        1.0, {"n0": {"hot": 10}}, {"n0": 0.9}, ["n0", "n1"]
    )
    # busy but not pressured
    assert not rebalancer.observe(
        2.0, {"n0": {"hot": 100}}, {"n0": 0.2}, ["n0", "n1"]
    )
    assert router.overrides == {}


def test_tenant_cooldown_stops_ping_pong():
    _, router = _cluster()
    rebalancer = Rebalancer(
        router, RebalancerConfig(hot_share=0.5, pressure_floor=0.5, cooldown_seconds=1.0)
    )
    hot = {"n0": {"hot": 50}}
    pressures = {"n0": 0.9, "n1": 0.1, "n2": 0.2, "n3": 0.3}
    assert rebalancer.observe(1.0, hot, pressures, ["n0", "n1", "n2", "n3"])
    # same tenant hammering again inside the cooldown: no second move
    hot2 = {"n1": {"hot": 50}}
    pressures2 = {"n0": 0.1, "n1": 0.9, "n2": 0.2, "n3": 0.3}
    assert not rebalancer.observe(1.5, hot2, pressures2, ["n0", "n1", "n2", "n3"])
    # cooldown over: it may move again
    assert rebalancer.observe(2.5, hot2, pressures2, ["n0", "n1", "n2", "n3"])


def test_drop_node_rewrites_overrides_against_the_ring():
    ring, router = _cluster()
    router.overrides["pinned"] = ("n1", "n2")
    ring.remove_node("n1")
    moved = router.drop_node("n1", ["pinned", "other"])
    assert "pinned" in moved
    assert "n1" not in router.replica_set("pinned")
    assert router.replica_set("pinned") == tuple(ring.replica_set("pinned"))


def test_router_spreads_a_tenant_across_its_replicas():
    _, router = _cluster()
    targets = {router.route("tenant", rid) for rid in range(10)}
    assert targets == set(router.replica_set("tenant"))
    assert len(targets) == 2
