"""CompEngine: run candidate configurations on sample data.

"CompEngine runs candidate compression options with the sample data, which
are then coupled with the corresponding compression ratio, compression
speed, and decompression speed" (Section V-A).

Speeds come from the calibrated machine model by default
(``timing="modeled"``); ``timing="wallclock"`` measures the pure-Python
codecs directly for honesty checks.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.codecs import Compressor, get_codec
from repro.codecs.base import StageCounters
from repro.core.config import CompressionConfig
from repro.core.metrics import CompressionMetrics
from repro.perfmodel import DEFAULT_MACHINE, HardwareAccelerator, MachineModel


class CompEngine:
    """Measures compression configurations against a sample set.

    Results are cached per (config, dictionary) so that repeated optimizer
    passes over the same grid don't recompress.
    """

    def __init__(
        self,
        samples: Sequence[bytes],
        machine: MachineModel = DEFAULT_MACHINE,
        timing: str = "modeled",
        dictionary: Optional[bytes] = None,
    ) -> None:
        if timing not in ("modeled", "wallclock"):
            raise ValueError("timing must be 'modeled' or 'wallclock'")
        self.samples = [bytes(s) for s in samples]
        if not self.samples:
            raise ValueError("CompEngine needs at least one sample")
        self.machine = machine
        self.timing = timing
        self.dictionary = dictionary
        self._accelerators: Dict[str, HardwareAccelerator] = {}
        self._cache: Dict[Tuple[CompressionConfig, bool], CompressionMetrics] = {}

    # -- accelerator registration (used by CompSim) -------------------------

    def register_accelerator(self, accelerator: HardwareAccelerator) -> None:
        """Expose an accelerator as a pseudo-algorithm named after it."""
        self._accelerators[accelerator.name] = accelerator

    def _resolve(self, algorithm: str) -> Tuple[Compressor, Optional[HardwareAccelerator]]:
        if algorithm in self._accelerators:
            accelerator = self._accelerators[algorithm]
            return accelerator.codec, accelerator
        return get_codec(algorithm), None

    # -- measurement ---------------------------------------------------------

    def _blocks(self, block_size: Optional[int]) -> Iterable[bytes]:
        for sample in self.samples:
            if block_size is None or len(sample) <= block_size:
                yield sample
            else:
                for start in range(0, len(sample), block_size):
                    yield sample[start : start + block_size]

    def measure(
        self, config: CompressionConfig, use_dictionary: bool = False
    ) -> CompressionMetrics:
        """Compress and decompress every sample block under ``config``."""
        key = (config, use_dictionary)
        if key in self._cache:
            return self._cache[key]
        codec, accelerator = self._resolve(config.algorithm)
        dictionary = self.dictionary if use_dictionary else None

        comp_counters = StageCounters()
        decomp_counters = StageCounters()
        input_bytes = 0
        compressed_bytes = 0
        block_count = 0
        wall_compress = 0.0
        wall_decompress = 0.0
        mf_cycles = 0.0
        total_cycles = 0.0
        decode_seconds_total = 0.0

        for block in self._blocks(config.block_size):
            # repro: lint-ok[D001] -- wall_* are informational measurements;
            # every deterministic output (cost, speed) uses modeled cycles
            start = time.perf_counter()
            result = codec.compress(block, config.level, dictionary=dictionary)
            wall_compress += time.perf_counter() - start  # repro: lint-ok[D001] -- informational wall measurement
            # repro: lint-ok[D001] -- informational wall measurement
            start = time.perf_counter()
            restored = codec.decompress(result.data, dictionary=dictionary)
            wall_decompress += time.perf_counter() - start  # repro: lint-ok[D001] -- informational wall measurement
            if restored.data != block:
                raise AssertionError(
                    f"round-trip failure for {config.label()} -- codec bug"
                )
            comp_counters.merge(result.counters)
            decomp_counters.merge(restored.counters)
            input_bytes += len(block)
            compressed_bytes += len(result.data)
            block_count += 1
            breakdown = self.machine.compress_breakdown(codec.name, result.counters)
            mf_cycles += breakdown.match_finding
            total_cycles += breakdown.total
            if accelerator is not None:
                decode_seconds_total += accelerator.decompress_seconds(restored.counters)
            else:
                decode_seconds_total += self.machine.decompress_seconds(
                    codec.name, restored.counters
                )

        if self.timing == "wallclock":
            compress_seconds = wall_compress
            decompress_seconds = wall_decompress
        elif accelerator is not None:
            compress_seconds = accelerator.compress_seconds(comp_counters)
            decompress_seconds = accelerator.decompress_seconds(decomp_counters)
        else:
            compress_seconds = self.machine.compress_seconds(codec.name, comp_counters)
            decompress_seconds = self.machine.decompress_seconds(
                codec.name, decomp_counters
            )

        metrics = CompressionMetrics(
            ratio=input_bytes / compressed_bytes if compressed_bytes else 1.0,
            compression_speed=input_bytes / compress_seconds if compress_seconds else 0.0,
            decompression_speed=input_bytes / decompress_seconds
            if decompress_seconds
            else 0.0,
            input_bytes=input_bytes,
            compressed_bytes=compressed_bytes,
            block_count=block_count,
            decode_seconds_per_block=decode_seconds_total / block_count
            if block_count
            else 0.0,
            match_finding_share=mf_cycles / total_cycles if total_cycles else 0.0,
        )
        self._cache[key] = metrics
        return metrics

    def measure_grid(
        self, configs: Sequence[CompressionConfig], use_dictionary: bool = False
    ) -> List[Tuple[CompressionConfig, CompressionMetrics]]:
        """Measure every configuration; returns (config, metrics) pairs."""
        return [(config, self.measure(config, use_dictionary)) for config in configs]
