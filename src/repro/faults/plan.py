"""Fault plans and the deterministic, seed-driven injector.

A :class:`FaultPlan` is a declarative list of :class:`FaultSpec` entries:
*at this site, this kind of fault fires with this probability*. The
:class:`FaultInjector` executes a plan: every spec draws from its own
:class:`random.Random` seeded with a stable string (``seed`` + site +
kind), so the full fault sequence is a pure function of ``(plan, seed,
sequence of opportunities)`` -- the property the chaos scorecard's
byte-identical-across-runs guarantee rests on.

Sites are hierarchical dotted names (``"rpc.wire"``,
``"codec.zstd.decompress"``, ``"kvstore.storage"``); a spec matches a
site exactly or as a dotted prefix, so ``site="codec"`` targets every
codec call.

Fault kinds:

==============  ========================================================
``bit_flip``    flip ``magnitude`` random bits in the payload
``truncate``    cut the payload short
``garbage``     append random bytes past the frame end
``drop``        drop the message on the wire (channel faults only)
``latency``     add ``magnitude`` seconds of modeled latency
``fail``        the codec call raises (simulated codec failure)
``slow``        the codec call takes ``magnitude`` extra modeled seconds
``dict_loss``   a dictionary version disappears (managed compression)
``crash``       the process dies at a seeded crash point (kvstore
                durability; see :mod:`repro.faults.crash`)
==============  ========================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.obs.instrument import record_fault_injected
from repro.obs.state import OBS_STATE

PAYLOAD_KINDS = ("bit_flip", "truncate", "garbage")
KINDS = PAYLOAD_KINDS + (
    "drop",
    "latency",
    "fail",
    "slow",
    "dict_loss",
    "crash",
    "node_loss",
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault source: a kind firing at a site with a probability."""

    site: str
    kind: str
    rate: float
    #: kind-specific severity: bit count for ``bit_flip``, seconds for
    #: ``latency``/``slow``, garbage-size scale for ``garbage``
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {sorted(KINDS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be a probability, got {self.rate}")

    def matches(self, site: str) -> bool:
        return site == self.site or site.startswith(self.site + ".")


@dataclass(frozen=True)
class FaultPlan:
    """A named, ordered collection of fault specs."""

    name: str
    specs: Tuple[FaultSpec, ...]

    @staticmethod
    def named(name: str) -> "FaultPlan":
        """Look up one of the predefined plans (see :data:`NAMED_PLANS`)."""
        try:
            return NAMED_PLANS[name]
        except KeyError:
            raise ValueError(
                f"unknown fault plan {name!r}; available: {sorted(NAMED_PLANS)}"
            ) from None


#: the plan vocabulary ``repro chaos --plan`` accepts
NAMED_PLANS: Dict[str, FaultPlan] = {
    "none": FaultPlan("none", ()),
    "standard": FaultPlan(
        "standard",
        (
            FaultSpec("rpc.wire", "drop", 0.06),
            FaultSpec("rpc.wire", "latency", 0.05, magnitude=0.02),
            FaultSpec("rpc.wire", "bit_flip", 0.04),
            FaultSpec("codec", "fail", 0.03),
            FaultSpec("codec", "slow", 0.02, magnitude=0.005),
            FaultSpec("kvstore.storage", "bit_flip", 0.08, magnitude=3),
            FaultSpec("kvstore.durable", "crash", 0.10),
            FaultSpec("kvstore.sync", "drop", 0.05),
            FaultSpec("managed.dictionary", "dict_loss", 0.10),
            FaultSpec("cluster.node", "node_loss", 0.08),
        ),
    ),
    "network": FaultPlan(
        "network",
        (
            FaultSpec("rpc.wire", "drop", 0.20),
            FaultSpec("rpc.wire", "latency", 0.20, magnitude=0.05),
            FaultSpec("rpc.wire", "truncate", 0.05),
        ),
    ),
    "corruption": FaultPlan(
        "corruption",
        (
            FaultSpec("rpc.wire", "bit_flip", 0.15, magnitude=2),
            FaultSpec("kvstore.storage", "bit_flip", 0.20, magnitude=4),
            FaultSpec("kvstore.storage", "truncate", 0.05),
            FaultSpec("cache.payload", "bit_flip", 0.15),
        ),
    ),
    "codec": FaultPlan(
        "codec",
        (
            FaultSpec("codec", "fail", 0.15),
            FaultSpec("codec", "slow", 0.10, magnitude=0.01),
            FaultSpec("managed.dictionary", "dict_loss", 0.25),
        ),
    ),
}


@dataclass
class WireEffects:
    """What the injector did to one message on the wire."""

    payload: bytes
    dropped: bool
    extra_seconds: float
    kinds: Tuple[str, ...]


@dataclass
class CodecEffects:
    """What the injector did to one codec call."""

    payload: bytes
    fail: bool
    slow_seconds: float
    kinds: Tuple[str, ...]


class FaultInjector:
    """Executes a plan: decides, per opportunity, which faults fire.

    Each ``(site-pattern, kind)`` spec owns an independent RNG, so adding
    or removing one spec never perturbs another spec's sequence, and one
    seed reproduces the identical fault history.
    """

    def __init__(self, plan: FaultPlan, seed: int = 0) -> None:
        self.plan = plan
        self.seed = seed
        self._rngs: Dict[Tuple[str, str], random.Random] = {}
        #: (site, kind) of every fault fired, in order
        self.history: List[Tuple[str, str]] = []
        self.fired: Dict[Tuple[str, str], int] = {}
        self.opportunities: Dict[str, int] = {}

    def _rng(self, spec: FaultSpec) -> random.Random:
        key = (spec.site, spec.kind)
        rng = self._rngs.get(key)
        if rng is None:
            rng = self._rngs[key] = random.Random(
                f"fault:{self.seed}:{spec.site}:{spec.kind}"
            )
        return rng

    def decide(self, site: str) -> List[Tuple[FaultSpec, random.Random]]:
        """All specs firing at this opportunity, with their RNGs."""
        self.opportunities[site] = self.opportunities.get(site, 0) + 1
        fired: List[Tuple[FaultSpec, random.Random]] = []
        for spec in self.plan.specs:
            if not spec.matches(site):
                continue
            rng = self._rng(spec)
            if spec.rate and rng.random() < spec.rate:
                fired.append((spec, rng))
                self._record(site, spec.kind)
        return fired

    def _record(self, site: str, kind: str) -> None:
        self.history.append((site, kind))
        key = (site, kind)
        self.fired[key] = self.fired.get(key, 0) + 1
        if OBS_STATE.enabled:
            record_fault_injected(site, kind)

    # -- grouped effects, one decide() pass per call ------------------------

    def on_wire(self, site: str, payload: bytes) -> WireEffects:
        """Channel-transmit faults: drop, latency, payload corruption."""
        from repro.faults.corrupt import corrupt

        dropped = False
        extra_seconds = 0.0
        kinds: List[str] = []
        for spec, rng in self.decide(site):
            kinds.append(spec.kind)
            if spec.kind == "drop":
                dropped = True
            elif spec.kind == "latency":
                extra_seconds += spec.magnitude
            elif spec.kind in PAYLOAD_KINDS:
                payload = corrupt(payload, spec.kind, rng, spec.magnitude)
        return WireEffects(payload, dropped, extra_seconds, tuple(kinds))

    def on_codec_call(self, site: str, payload: bytes = b"") -> CodecEffects:
        """Codec-call faults: simulated failure, slowdown, corruption."""
        from repro.faults.corrupt import corrupt

        fail = False
        slow_seconds = 0.0
        kinds: List[str] = []
        for spec, rng in self.decide(site):
            kinds.append(spec.kind)
            if spec.kind == "fail":
                fail = True
            elif spec.kind == "slow":
                slow_seconds += spec.magnitude
            elif spec.kind in PAYLOAD_KINDS:
                payload = corrupt(payload, spec.kind, rng, spec.magnitude)
        return CodecEffects(payload, fail, slow_seconds, tuple(kinds))

    def corrupt_payload(self, site: str, payload: bytes) -> Tuple[bytes, Tuple[str, ...]]:
        """Payload-only faults (storage scrubs, cache items)."""
        from repro.faults.corrupt import corrupt

        kinds: List[str] = []
        for spec, rng in self.decide(site):
            if spec.kind in PAYLOAD_KINDS:
                kinds.append(spec.kind)
                payload = corrupt(payload, spec.kind, rng, spec.magnitude)
        return payload, tuple(kinds)

    def should(self, site: str, kind: str) -> bool:
        """Does a fault of ``kind`` fire at this single opportunity?"""
        return any(spec.kind == kind for spec, __ in self.decide(site))

    def fired_total(self) -> int:
        return len(self.history)
