"""Tagged markup with heavy structural repetition (the `xml` corpus member)."""

from __future__ import annotations

from repro.corpus.distributions import SeededSampler

_TAGS = ["entry", "item", "record", "node"]
_ATTRS = ["version", "category", "region", "priority"]
_VALUES = ["alpha", "beta", "gamma", "delta", "epsilon"]


def generate_xml(size: int, seed: int = 0) -> bytes:
    """Nested XML-like markup; compresses very well (roughly 8-15x)."""
    sampler = SeededSampler(seed)
    parts = ['<?xml version="1.0" encoding="UTF-8"?>\n<document>\n']
    total = len(parts[0])
    identifier = 0
    while total < size:
        tag = sampler.choice(_TAGS)[0]
        attr = sampler.choice(_ATTRS)[0]
        value = sampler.choice(_VALUES)[0]
        identifier += 1
        fragment = (
            f'  <{tag} id="{identifier}" {attr}="{value}">\n'
            f"    <name>{value}-{identifier % 97}</name>\n"
            f"    <weight>{sampler.uniform(0, 100):.2f}</weight>\n"
            f"  </{tag}>\n"
        )
        parts.append(fragment)
        total += len(fragment)
    parts.append("</document>\n")
    return "".join(parts).encode("ascii")[:size]
