"""Inline suppression comments: ``# repro: lint-ok[RULE] -- justification``.

A suppression is a *contract amendment*, not an escape hatch: every one
must name the rule(s) it waives and say why the site is legitimately
exempt. The canonical example is the obs plane's wall-clock read --
``time.monotonic()`` inside :class:`repro.obs.timeseries.WallClock` is
the one place wall time is supposed to enter, so it carries::

    return time.monotonic()  # repro: lint-ok[D001] -- WallClock IS the ...

Syntax rules, enforced here:

- the marker is ``repro: lint-ok[R1]`` or ``lint-ok[R1,R2]`` inside a
  comment; rule ids are upper-case letter + digits;
- a justification is **required**: everything after ``--`` must be
  non-empty. A marker without one produces an S001 finding and does not
  suppress anything;
- an inline comment covers its own line; a standalone comment line
  covers the next *code* line, skipping blank and further comment lines
  (so a justification may run over several comment lines);
- a suppression that matches no finding produces an S002 *warning*
  (stale suppressions hide future regressions), but only when the full
  rule set ran -- a filtered ``--rule`` run cannot judge staleness.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.lint.finding import ERROR, Finding

#: the marker grammar; group 1 = rule list, group 2 = justification
_MARKER = re.compile(
    r"repro:\s*lint-ok\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<why>.*\S))?"
)
_RULE_ID = re.compile(r"^[A-Z]\d{3}$")

S001 = "S001"
S002 = "S002"


@dataclass
class Suppression:
    """One parsed ``lint-ok`` marker."""

    rules: Tuple[str, ...]
    justification: str
    #: line the comment sits on
    line: int
    #: lines this suppression covers (own line; next line when standalone)
    covers: Tuple[int, ...]
    used: bool = False


def parse_suppressions(
    source: str, path: str
) -> Tuple[List[Suppression], List[Finding]]:
    """Extract suppressions from ``source``; malformed markers become
    S001 findings (and suppress nothing)."""
    suppressions: List[Suppression] = []
    findings: List[Finding] = []
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return [], []  # unparseable files are reported by the engine (F001)
    for tok in tokens:
        if tok.type != tokenize.COMMENT or "lint-ok" not in tok.string:
            continue
        line_no = tok.start[0]
        line_text = lines[line_no - 1] if line_no <= len(lines) else ""
        match = _MARKER.search(tok.string)
        if match is None:
            findings.append(
                Finding(
                    rule=S001,
                    severity=ERROR,
                    path=path,
                    line=line_no,
                    col=tok.start[1],
                    message=(
                        "malformed suppression: expected "
                        "'# repro: lint-ok[RULE] -- justification'"
                    ),
                    line_text=line_text,
                )
            )
            continue
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        why = (match.group("why") or "").strip()
        bad_ids = [r for r in rules if not _RULE_ID.match(r)]
        if not rules or bad_ids or not why:
            detail = (
                "missing justification (add ' -- why this site is exempt')"
                if rules and not bad_ids
                else "rule list must be ids like D001"
            )
            findings.append(
                Finding(
                    rule=S001,
                    severity=ERROR,
                    path=path,
                    line=line_no,
                    col=tok.start[1],
                    message=f"invalid suppression: {detail}",
                    line_text=line_text,
                )
            )
            continue
        # a comment that is the whole line covers the next *code* line
        # (justifications may continue over several comment lines)
        standalone = line_text.strip().startswith("#")
        covers = (line_no,)
        if standalone:
            for offset in range(line_no, len(lines)):
                text = lines[offset].strip()
                if text and not text.startswith("#"):
                    covers = (line_no, offset + 1)
                    break
        suppressions.append(
            Suppression(rules=rules, justification=why, line=line_no, covers=covers)
        )
    return suppressions, findings


def apply_suppressions(
    findings: List[Finding], suppressions: List[Suppression]
) -> Tuple[List[Finding], List[Finding]]:
    """Split ``findings`` into (kept, suppressed); marks matches used."""
    by_line: Dict[int, List[Suppression]] = {}
    for sup in suppressions:
        for line in sup.covers:
            by_line.setdefault(line, []).append(sup)
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for item in findings:
        matched = False
        for sup in by_line.get(item.line, []):
            if item.rule in sup.rules:
                sup.used = True
                matched = True
        (suppressed if matched else kept).append(item)
    return kept, suppressed


def stale_suppression_findings(
    suppressions: List[Suppression], path: str, lines: List[str]
) -> List[Finding]:
    """S002 warnings for suppressions that matched nothing."""
    out: List[Finding] = []
    for sup in suppressions:
        if sup.used:
            continue
        out.append(
            Finding(
                rule=S002,
                severity="warning",
                path=path,
                line=sup.line,
                col=0,
                message=(
                    f"suppression for {','.join(sup.rules)} matched no finding; "
                    "remove it or it will mask a future regression"
                ),
                line_text=lines[sup.line - 1] if sup.line <= len(lines) else "",
            )
        )
    return out
