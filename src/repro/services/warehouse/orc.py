"""ORC-like columnar file format.

Columns are type-encoded first (delta+zigzag varints for integers,
dictionary encoding for low-cardinality strings, bit-packing for booleans),
then chopped into blocks of up to 256 KB and handed to the codec -- the
exact pipeline the paper describes for Meta's warehouse.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.codecs import Compressor, get_codec
from repro.codecs.base import CorruptDataError, StageCounters
from repro.codecs.varint import read_uvarint, write_uvarint

_MAGIC = b"RORC"
MAX_ORC_BLOCK = 1 << 18  # 256 KB, as in Section IV-B

ColumnValues = Union[np.ndarray, List[str]]

_KIND_INT = 0
_KIND_FLOAT = 1
_KIND_STRING = 2
_KIND_BOOL = 3


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def classify_column(values: ColumnValues) -> int:
    """Infer the encoder kind for a column."""
    if isinstance(values, list):
        return _KIND_STRING
    if values.dtype == np.bool_:
        return _KIND_BOOL
    if np.issubdtype(values.dtype, np.integer):
        return _KIND_INT
    if np.issubdtype(values.dtype, np.floating):
        return _KIND_FLOAT
    raise ValueError(f"unsupported column dtype {values.dtype}")


def encode_column(values: ColumnValues) -> Tuple[int, bytes]:
    """Type-encode one column; returns (kind, encoded_bytes)."""
    kind = classify_column(values)
    out = bytearray()
    if kind == _KIND_INT:
        previous = 0
        for value in values:
            value = int(value)
            write_uvarint(out, _zigzag(value - previous))
            previous = value
    elif kind == _KIND_FLOAT:
        out.extend(np.asarray(values, dtype="<f8").tobytes())
    elif kind == _KIND_BOOL:
        bits = np.packbits(np.asarray(values, dtype=np.bool_))
        out.extend(bits.tobytes())
    else:  # strings: dictionary encoding
        pool: Dict[str, int] = {}
        for value in values:
            if value not in pool:
                pool[value] = len(pool)
        write_uvarint(out, len(pool))
        for value in sorted(pool, key=pool.get):
            encoded = value.encode("utf-8")
            write_uvarint(out, len(encoded))
            out.extend(encoded)
        for value in values:
            write_uvarint(out, pool[value])
    return kind, bytes(out)


def decode_column(kind: int, payload: bytes, row_count: int) -> ColumnValues:
    """Inverse of :func:`encode_column`."""
    if kind == _KIND_INT:
        values = np.empty(row_count, dtype=np.int64)
        pos = 0
        previous = 0
        for index in range(row_count):
            delta, pos = read_uvarint(payload, pos)
            previous += _unzigzag(delta)
            values[index] = previous
        return values
    if kind == _KIND_FLOAT:
        return np.frombuffer(payload[: 8 * row_count], dtype="<f8").copy()
    if kind == _KIND_BOOL:
        bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
        return bits[:row_count].astype(np.bool_)
    if kind == _KIND_STRING:
        pos = 0
        pool_size, pos = read_uvarint(payload, pos)
        pool: List[str] = []
        for __ in range(pool_size):
            length, pos = read_uvarint(payload, pos)
            pool.append(payload[pos : pos + length].decode("utf-8"))
            pos += length
        values = []
        for __ in range(row_count):
            index, pos = read_uvarint(payload, pos)
            values.append(pool[index])
        return values
    raise CorruptDataError(f"unknown column kind {kind}")


@dataclass
class OrcStats:
    """Compression work for one file write or read."""

    compress_counters: StageCounters = field(default_factory=StageCounters)
    decompress_counters: StageCounters = field(default_factory=StageCounters)
    encoded_bytes: int = 0
    compressed_bytes: int = 0
    blocks: int = 0


class OrcWriter:
    """Serializes a column table into the ORC-like byte format."""

    def __init__(
        self,
        codec: Optional[Compressor] = None,
        level: int = 7,
        block_size: int = MAX_ORC_BLOCK,
        chunk_jobs: int = 1,
    ) -> None:
        if block_size > MAX_ORC_BLOCK:
            raise ValueError("ORC blocks are capped at 256KB")
        self.codec = codec if codec is not None else get_codec("zstd")
        self.level = level
        self.block_size = block_size
        #: >1 fans block compression out over the parallel engine's pool;
        #: the file bytes are identical to the serial path (each block is
        #: one independent frame either way)
        self.chunk_jobs = chunk_jobs
        self.stats = OrcStats()

    def write(self, table: Dict[str, ColumnValues]) -> bytes:
        """Encode + compress every column; returns the file bytes."""
        if not table:
            raise ValueError("table has no columns")
        row_counts = {len(v) for v in table.values()}
        if len(row_counts) != 1:
            raise ValueError("columns must have equal row counts")
        row_count = row_counts.pop()
        out = bytearray(_MAGIC)
        write_uvarint(out, row_count)
        write_uvarint(out, len(table))
        for name, values in table.items():
            kind, encoded = encode_column(values)
            self.stats.encoded_bytes += len(encoded)
            name_bytes = name.encode("utf-8")
            write_uvarint(out, len(name_bytes))
            out.extend(name_bytes)
            out.append(kind)
            write_uvarint(out, max(1, -(-len(encoded) // self.block_size)))
            for frame in self._compress_blocks(encoded):
                self.stats.compressed_bytes += len(frame)
                self.stats.blocks += 1
                write_uvarint(out, len(frame))
                out.extend(frame)
        return bytes(out)

    def _compress_blocks(self, encoded: bytes) -> List[bytes]:
        """Compress one column's blocks, serially or across the pool.

        Both paths split ``encoded`` at ``block_size`` boundaries and emit
        one independent frame per block, so the resulting file bytes do not
        depend on ``chunk_jobs``.
        """
        if self.chunk_jobs != 1:
            from repro.parallel import compress_chunked

            result = compress_chunked(
                self.codec,
                encoded,
                self.level,
                chunk_size=self.block_size,
                jobs=self.chunk_jobs,
            )
            self.stats.compress_counters.merge(result.counters)
            frames: List[bytes] = []
            pos = 0
            for report in result.reports:
                frames.append(result.data[pos : pos + report.frame_bytes])
                pos += report.frame_bytes
            return frames
        blocks = [
            encoded[i : i + self.block_size]
            for i in range(0, len(encoded), self.block_size)
        ] or [b""]
        frames = []
        for block in blocks:
            result = self.codec.compress(block, self.level)
            self.stats.compress_counters.merge(result.counters)
            frames.append(result.data)
        return frames


class OrcReader:
    """Reads files produced by :class:`OrcWriter`."""

    def __init__(self, codec: Optional[Compressor] = None) -> None:
        self.codec = codec if codec is not None else get_codec("zstd")
        self.stats = OrcStats()

    def read(
        self, payload: bytes, columns: Optional[List[str]] = None
    ) -> Dict[str, ColumnValues]:
        """Decompress + decode columns back to a table.

        ``columns`` enables projection pushdown: only the named columns are
        decompressed, the rest are skipped block-by-block without touching
        the codec -- the columnar format's core read-path saving.
        """
        if payload[:4] != _MAGIC:
            raise CorruptDataError("bad ORC-like magic")
        wanted = set(columns) if columns is not None else None
        pos = 4
        row_count, pos = read_uvarint(payload, pos)
        column_count, pos = read_uvarint(payload, pos)
        table: Dict[str, ColumnValues] = {}
        for __ in range(column_count):
            name_len, pos = read_uvarint(payload, pos)
            name = payload[pos : pos + name_len].decode("utf-8")
            pos += name_len
            kind = payload[pos]
            pos += 1
            block_count, pos = read_uvarint(payload, pos)
            if wanted is not None and name not in wanted:
                for __ in range(block_count):
                    size, pos = read_uvarint(payload, pos)
                    pos += size  # skip without decompressing
                continue
            encoded = bytearray()
            for __ in range(block_count):
                size, pos = read_uvarint(payload, pos)
                result = self.codec.decompress(payload[pos : pos + size])
                self.stats.decompress_counters.merge(result.counters)
                self.stats.blocks += 1
                encoded.extend(result.data)
                pos += size
            table[name] = decode_column(kind, bytes(encoded), row_count)
        if wanted is not None:
            missing = wanted - set(table)
            if missing:
                raise KeyError(f"columns not in file: {sorted(missing)}")
        return table
