"""Far memory: proactive compression of cold pages (paper Section I).

A pool of 4 KB pages with a skewed (hot/cold) access pattern; cold pages
are compressed in place, hot accesses to compressed pages fault them back
in at a decompression latency cost.

Run:  python examples/far_memory.py
"""

import random

from repro.corpus import generate_records
from repro.services import FarMemoryPool
from repro.services.farmemory import PAGE_SIZE


def main() -> None:
    pool = FarMemoryPool(level=1, cold_age_ticks=3)
    page_count = 64
    for page_number in range(page_count):
        pool.write(page_number, generate_records(PAGE_SIZE, seed=page_number))
    print(f"installed {page_count} pages ({page_count * PAGE_SIZE // 1024} KB)")

    # Skewed accesses: ~90% of touches land on 8 hot pages.
    rng = random.Random(17)
    hot = list(range(8))
    for round_number in range(20):
        pool.tick()
        for __ in range(30):
            if rng.random() < 0.9:
                pool.read(rng.choice(hot))
            else:
                pool.read(rng.randrange(page_count))

    stats = pool.stats
    print(f"\nafter 20 reclaim rounds:")
    print(f"  resident plaintext: {pool.resident_bytes // 1024} KB")
    print(f"  compressed pool:    {pool.compressed_bytes // 1024} KB")
    print(f"  memory saving:      {pool.memory_saving * 100:.1f}%")
    print(f"  pages compressed:   {stats.pages_compressed}")
    print(f"  faults:             {stats.pages_faulted} "
          f"(mean {stats.mean_fault_seconds * 1e6:.1f} us each)")
    print(
        "\nthe compute-for-DRAM trade: each fault costs a block decompression,"
        "\nbut the cold majority of the pool shrinks several-fold."
    )


if __name__ == "__main__":
    main()
