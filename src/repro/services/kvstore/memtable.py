"""In-memory write buffer for the LSM store."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

#: sentinel value marking a deletion (tombstones survive until compaction
#: of the bottom level, like RocksDB's delete markers)
TOMBSTONE = None


class MemTable:
    """Sorted-on-demand write buffer with approximate memory accounting."""

    def __init__(self, capacity_bytes: int = 1 << 20) -> None:
        self.capacity_bytes = capacity_bytes
        self._entries: Dict[bytes, Optional[bytes]] = {}
        self._approximate_bytes = 0

    def put(self, key: bytes, value: Optional[bytes]) -> None:
        """Insert or overwrite; ``value=None`` writes a tombstone."""
        previous = self._entries.get(key)
        if key in self._entries:
            self._approximate_bytes -= len(key) + (len(previous) if previous else 0)
        self._entries[key] = value
        self._approximate_bytes += len(key) + (len(value) if value else 0)

    def get(self, key: bytes) -> Tuple[bool, Optional[bytes]]:
        """Returns (found, value); a found tombstone is (True, None)."""
        if key in self._entries:
            return True, self._entries[key]
        return False, None

    @property
    def size_bytes(self) -> int:
        return self._approximate_bytes

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    def is_full(self) -> bool:
        return self._approximate_bytes >= self.capacity_bytes

    def sorted_entries(self) -> List[Tuple[bytes, Optional[bytes]]]:
        """All entries in key order, ready for SST building."""
        return sorted(self._entries.items())

    def __iter__(self) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        return iter(self.sorted_entries())

    def __len__(self) -> int:
        return len(self._entries)
