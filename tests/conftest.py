"""Shared fixtures: representative payloads and codec instances."""

from __future__ import annotations

import random

import pytest

from repro.codecs import LZ4Compressor, ZlibCompressor, ZstdCompressor


def _random_bytes(size: int, seed: int) -> bytes:
    rng = random.Random(seed)
    return bytes(rng.getrandbits(8) for _ in range(size))


@pytest.fixture(scope="session")
def payloads():
    """Small representative inputs covering the interesting regimes."""
    return {
        "empty": b"",
        "one_byte": b"x",
        "short": b"hello world",
        "rle": b"a" * 4096,
        "periodic": b"abcd" * 1024,
        "text": (
            b"the quick brown fox jumps over the lazy dog while the cat naps. "
        ) * 64,
        "structured": b"".join(
            b"row=%d|status=ok|region=use1|score=0.%03d\n" % (i, i % 997)
            for i in range(120)
        ),
        "random": _random_bytes(4096, seed=99),
        "mostly_random": _random_bytes(2048, seed=7) + b"pattern" * 64,
        "binaryish": bytes(range(256)) * 8,
    }


@pytest.fixture(scope="session")
def zstd():
    return ZstdCompressor()


@pytest.fixture(scope="session")
def lz4():
    return LZ4Compressor()


@pytest.fixture(scope="session")
def zlib_codec():
    return ZlibCompressor()


@pytest.fixture(scope="session")
def all_codecs(zstd, lz4, zlib_codec):
    return [zstd, lz4, zlib_codec]
