"""A Silesia-like corpus bundle for Fig. 1.

The real Silesia corpus mixes text, databases, XML, and binaries; Fig. 1
uses "an excerpt" of it to show order-of-magnitude spread in ratio and speed
across file types. This bundle reproduces that spread with one synthetic
file per class.
"""

from __future__ import annotations

from typing import Dict

from repro.corpus.binary import generate_binary
from repro.corpus.logs import generate_logs
from repro.corpus.records import generate_records
from repro.corpus.telemetry import generate_telemetry
from repro.corpus.textgen import generate_text
from repro.corpus.xmlgen import generate_xml

#: file name -> (descriptive class, generator). The first four mirror the
#: real corpus's classes; the last two are datacenter-native additions
#: (JSON logs, float telemetry) widening Fig. 1's spread.
SILESIA_FILES = {
    "dickens-like": ("text", generate_text),
    "nci-like": ("database", generate_records),
    "xml-like": ("markup", generate_xml),
    "mozilla-like": ("binary", generate_binary),
    "log-like": ("json-logs", generate_logs),
    "telemetry-like": ("float-series", generate_telemetry),
}


def silesia_like_corpus(file_size: int = 1 << 16, seed: int = 2023) -> Dict[str, bytes]:
    """Generate the bundle; keys are file names, values are file bytes."""
    corpus = {}
    for index, (name, (__, generator)) in enumerate(SILESIA_FILES.items()):
        corpus[name] = generator(file_size, seed=seed + index)
    return corpus
