"""The manifest: serialization round-trips, atomic swap, fallback, GC."""

import pytest

from repro.faults import CrashInjector, CrashPlan, SimulatedCrash
from repro.services.kvstore.manifest import (
    CLEANUP_SITE,
    SWAP_SITE,
    Manifest,
    ManifestCorruptError,
    ManifestState,
)
from repro.services.kvstore.storage import SimStorage


def _state(**kwargs):
    state = ManifestState(**kwargs)
    state.add(0, "sst-000002.sst", front=True)
    state.add(0, "sst-000001.sst")
    state.add(1, "sst-000000.sst")
    return state


class TestSerialization:
    def test_round_trip(self):
        state = _state(version=7, wal_cutoff=42, next_file_id=3)
        decoded = ManifestState.from_bytes(state.to_bytes())
        assert decoded == state

    def test_empty_levels_round_trip(self):
        state = ManifestState(version=1, wal_cutoff=0, next_file_id=0)
        assert ManifestState.from_bytes(state.to_bytes()) == state

    def test_bit_flip_rejected(self):
        data = bytearray(_state().to_bytes())
        data[len(data) // 2] ^= 0x01
        with pytest.raises(ManifestCorruptError):
            ManifestState.from_bytes(bytes(data))

    def test_truncation_rejected(self):
        data = _state().to_bytes()
        with pytest.raises(ManifestCorruptError):
            ManifestState.from_bytes(data[:-3])

    def test_copy_is_deep(self):
        state = _state()
        clone = state.copy()
        clone.add(0, "sst-000009.sst")
        assert "sst-000009.sst" not in state.files()


class TestCommitLoad:
    def test_empty_storage_loads_empty_state(self):
        state = Manifest(SimStorage()).load()
        assert state.version == 0
        assert state.files() == []

    def test_commit_bumps_version_and_swaps_pointer(self):
        storage = SimStorage()
        manifest = Manifest(storage)
        committed = manifest.commit(_state())
        assert committed.version == 1
        assert manifest.current_name() == "manifest-000001.mf"
        assert manifest.load() == committed

    def test_commit_deletes_superseded_files(self):
        storage = SimStorage()
        manifest = Manifest(storage)
        state = manifest.commit(_state())
        manifest.commit(state)
        assert manifest.manifest_files() == ["manifest-000002.mf"]

    def test_crash_before_swap_keeps_old_state(self):
        injector = CrashInjector(CrashPlan.none())
        storage = SimStorage(seed=4, crash_injector=injector)
        manifest = Manifest(storage)
        old = manifest.commit(_state())
        injector.arm_point(SWAP_SITE)
        with pytest.raises(SimulatedCrash):
            manifest.commit(old)
        injector.disarm()
        storage.crash()
        # the new file may exist, but CURRENT still points at version 1
        assert manifest.load() == old

    def test_crash_before_cleanup_sees_new_state(self):
        injector = CrashInjector(CrashPlan.none())
        storage = SimStorage(seed=4, crash_injector=injector)
        manifest = Manifest(storage)
        old = manifest.commit(_state())
        injector.arm_point(CLEANUP_SITE)
        with pytest.raises(SimulatedCrash):
            manifest.commit(old)
        injector.disarm()
        storage.crash()
        loaded = manifest.load()
        assert loaded.version == 2
        # both files linger until GC; load still resolves via CURRENT
        assert len(manifest.manifest_files()) == 2

    def test_corrupt_current_falls_back_to_older(self):
        storage = SimStorage()
        manifest = Manifest(storage)
        old = manifest.commit(_state())
        # hand-plant a corrupt "newer" manifest and point CURRENT at it,
        # without deleting the good version-1 file
        storage.write_file("manifest-000002.mf", b"garbage bytes")
        storage.set_pointer(Manifest.POINTER, "manifest-000002.mf")
        assert manifest.load() == old

    def test_all_corrupt_raises(self):
        storage = SimStorage()
        storage.write_file("manifest-000001.mf", b"junk")
        storage.set_pointer(Manifest.POINTER, "manifest-000001.mf")
        with pytest.raises(ManifestCorruptError):
            Manifest(storage).load()


class TestGarbageCollection:
    def test_orphans_removed_live_kept(self):
        storage = SimStorage()
        manifest = Manifest(storage)
        state = _state()
        for name in state.files():
            storage.write_file(name, b"live table")
        storage.write_file("sst-000099.sst", b"orphan from a crashed flush")
        committed = manifest.commit(state)
        storage.write_file("manifest-000099.mf", b"orphan manifest")
        removed = manifest.collect_garbage(committed)
        assert "sst-000099.sst" in removed
        assert "manifest-000099.mf" in removed
        for name in state.files():
            assert storage.exists(name)
        assert manifest.load() == committed
