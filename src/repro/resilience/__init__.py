"""``repro.resilience`` — recovery primitives for the compression stack.

The services keep serving when compression misbehaves: a flipped bit, a
slow codec, or a retired dictionary becomes a counted, recoverable event
instead of an unhandled exception. The primitives:

- :class:`SimClock` — simulated monotonic time (determinism; no wall clock).
- :class:`RetryPolicy` — capped exponential backoff, deterministic jitter.
- :class:`CircuitBreaker` — trips a failing codec to raw passthrough,
  half-opens after a cooldown.
- :class:`QuarantinedBlock` / :class:`QuarantineLog` — structured records
  for data removed from service after failing verified-decompress.

Threaded through the services: the RPC :class:`~repro.services.rpc.Channel`
gains per-message timeout + retry; :class:`~repro.services.cache.CacheServer`
and :class:`~repro.services.farmemory.FarMemoryPool` take a breaker; the
kvstore SST read path and cache get path quarantine corrupt data; and
:class:`~repro.services.managed.ManagedCompression` raises a typed
:class:`~repro.services.managed.DictionaryRetiredError` with a recovery
hook. ``repro chaos`` (CLI) exercises all of it under a named fault plan.
"""

from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.resilience.clock import SimClock
from repro.resilience.quarantine import QuarantinedBlock, QuarantineLog
from repro.resilience.retry import RetryPolicy

__all__ = [
    "CLOSED",
    "CircuitBreaker",
    "HALF_OPEN",
    "OPEN",
    "QuarantineLog",
    "QuarantinedBlock",
    "RetryPolicy",
    "SimClock",
]
