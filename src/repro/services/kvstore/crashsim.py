"""The crash harness: seeded crash-point sweep + the recovery invariant.

:func:`run_crash_sweep` drives a durable :class:`KVStore` through a
seeded workload, killing it at every registered crash site in turn
(:data:`CRASH_SITES`), reopening from the surviving storage image, and
checking the **recovery invariant** after each reopen:

1. every *acked* write is readable with its latest value (a tombstone
   reads as absent);
2. the *in-flight* write — the batch the crash interrupted — must be
   absent if the crash hit before its WAL sync
   (:data:`~repro.services.kvstore.wal.APPEND_SITE`), and must read as
   either its old or its new state at any later site (the batch was
   already acked by the time flush/compaction/manifest work crashed);
3. no partially-compacted level state: a full ``scan_range`` equals the
   expected live set exactly (nothing resurrects, nothing vanishes), and
   every level past 0 holds at most one run.

Everything is a pure function of ``(seed, site, hit)``, so one failing
cell is one reproducible command.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faults.crash import CrashInjector, CrashPlan, SimulatedCrash
from repro.services.kvstore import manifest as manifest_mod
from repro.services.kvstore import wal as wal_mod
from repro.services.kvstore.db import (
    COMPACT_CLEANUP_SITE,
    COMPACT_SST_SITE,
    FLUSH_CLEANUP_SITE,
    FLUSH_SST_SITE,
    KVStore,
    RecoveryReport,
)
from repro.services.kvstore.storage import SimStorage

#: every crash site the durable write path crosses, in path order
CRASH_SITES: Tuple[str, ...] = (
    wal_mod.APPEND_SITE,
    FLUSH_SST_SITE,
    manifest_mod.SWAP_SITE,
    manifest_mod.CLEANUP_SITE,
    FLUSH_CLEANUP_SITE,
    COMPACT_SST_SITE,
    COMPACT_CLEANUP_SITE,
)


class RecoveryInvariantError(AssertionError):
    """The recovery invariant failed after a crash-reopen."""


@dataclass
class CrashCell:
    """One sweep cell: crash at (site, hit) under one seed."""

    site: str
    hit: int
    crashed: bool
    acked_writes: int
    recovery: Optional[RecoveryReport] = None


@dataclass
class CrashSweepResult:
    """Outcome of one full sweep."""

    seed: int
    cells: List[CrashCell] = field(default_factory=list)

    @property
    def crashes(self) -> int:
        return sum(1 for cell in self.cells if cell.crashed)

    @property
    def sites_hit(self) -> List[str]:
        return sorted({cell.site for cell in self.cells if cell.crashed})

    @property
    def total_recovered_records(self) -> int:
        return sum(
            cell.recovery.wal_records_replayed
            for cell in self.cells
            if cell.recovery is not None
        )


def _workload(seed: int, ops: int) -> List[Tuple[bytes, Optional[bytes]]]:
    """A seeded put/overwrite/delete mix over a small hot key space —
    small enough that overwrites and tombstones actually collide."""
    rng = random.Random(f"kvstore-crash-workload:{seed}")
    items: List[Tuple[bytes, Optional[bytes]]] = []
    for i in range(ops):
        key = f"key-{rng.randrange(ops // 3 + 1):05d}".encode()
        if rng.random() < 0.15:
            items.append((key, None))
        else:
            value = bytes(rng.getrandbits(8) for __ in range(rng.randrange(16, 160)))
            items.append((key, value))
    return items


def _store_kwargs(extra: Optional[dict]) -> dict:
    kwargs = {
        "memtable_bytes": 1 << 11,
        "level0_table_limit": 2,
        "wal_segment_bytes": 1 << 12,
        "block_cache_bytes": None,
    }
    if extra:
        kwargs.update(extra)
    return kwargs


def verify_recovery(
    store: KVStore,
    acked: Dict[bytes, Optional[bytes]],
    in_flight: Optional[Tuple[bytes, Optional[bytes]]],
    pre_crash: Optional[bytes],
    site: str,
) -> None:
    """Assert the recovery invariant; raises :class:`RecoveryInvariantError`.

    ``acked`` maps every acked key to its latest acked value (None =
    tombstone). ``in_flight`` is the interrupted (key, value) write, with
    ``pre_crash`` its last *acked* value, when the crash interrupted a
    write call.
    """
    in_flight_key = in_flight[0] if in_flight else None
    for key, expected in acked.items():
        if key == in_flight_key and site != wal_mod.APPEND_SITE:
            continue  # checked against {old, new} below
        got = store.get(key)
        if got != expected:
            raise RecoveryInvariantError(
                f"acked write lost at {site}: key={key!r} "
                f"expected={expected!r} got={got!r}"
            )
    if in_flight is not None:
        key, new_value = in_flight
        got = store.get(key)
        if site == wal_mod.APPEND_SITE:
            # crash before the sync: the batch was never acked and its WAL
            # record is torn — it must NOT resurrect
            if got != pre_crash:
                raise RecoveryInvariantError(
                    f"unacked write resurrected at {site}: key={key!r} "
                    f"got={got!r} expected pre-crash {pre_crash!r}"
                )
        else:
            # the batch was acked before flush/compaction/manifest work
            # crashed: it must read as exactly old or new, nothing else
            if got != new_value and got != pre_crash:
                raise RecoveryInvariantError(
                    f"in-flight write mangled at {site}: key={key!r} "
                    f"got={got!r} not in {{ {pre_crash!r}, {new_value!r} }}"
                )
    # no partial level state: the full live set matches expectations
    expected_live = {
        key: value
        for key, value in acked.items()
        if value is not None and key != in_flight_key
    }
    if in_flight is not None:
        key, new_value = in_flight
        got = store.get(key)
        if got is not None:
            expected_live[key] = got
    scanned = dict(store.scan_range(b"", b"\xff" * 8))
    if scanned != expected_live:
        ghosts = sorted(set(scanned) - set(expected_live))
        missing = sorted(set(expected_live) - set(scanned))
        raise RecoveryInvariantError(
            f"partial level state visible at {site}: "
            f"ghost keys {ghosts[:5]!r}, missing keys {missing[:5]!r}"
        )
    for level, tables in enumerate(store.levels[1:], start=1):
        if len(tables) > 1:
            raise RecoveryInvariantError(
                f"level {level} holds {len(tables)} runs after recovery"
            )


def run_crash_cell(
    seed: int,
    site: str,
    hit: int,
    ops: int = 220,
    store_kwargs: Optional[dict] = None,
) -> CrashCell:
    """Run the workload with one armed crash point, reopen, verify."""
    injector = CrashInjector(CrashPlan.single(site, hit))
    storage = SimStorage(seed=seed, crash_injector=injector)
    kwargs = _store_kwargs(store_kwargs)
    store = KVStore(storage=storage, **kwargs)
    acked: Dict[bytes, Optional[bytes]] = {}
    in_flight: Optional[Tuple[bytes, Optional[bytes]]] = None
    pre_crash: Optional[bytes] = None
    crashed = False
    for key, value in _workload(seed, ops):
        in_flight = (key, value)
        pre_crash_value = acked.get(key)
        try:
            if value is None:
                store.delete(key)
            else:
                store.put(key, value)
        except SimulatedCrash:
            crashed = True
            pre_crash = pre_crash_value
            break
        acked[key] = value
        in_flight = None
    cell = CrashCell(
        site=site, hit=hit, crashed=crashed, acked_writes=len(acked)
    )
    if not crashed:
        return cell
    injector.disarm()
    storage.crash()
    reopened = KVStore(storage=storage, **kwargs)
    cell.recovery = reopened.last_recovery
    verify_recovery(reopened, acked, in_flight, pre_crash, site)
    return cell


def run_crash_sweep(
    seed: int = 0,
    hits: int = 3,
    ops: int = 220,
    sites: Tuple[str, ...] = CRASH_SITES,
    store_kwargs: Optional[dict] = None,
) -> CrashSweepResult:
    """Sweep every (site, hit) cell; each crash must recover cleanly.

    Cells whose (site, hit) is never reached (e.g. the third compaction
    cleanup in a short workload) simply run to completion and count as
    non-crashing — the sweep asserts recovery wherever a crash fired.
    """
    result = CrashSweepResult(seed=seed)
    for site in sites:
        for hit in range(1, hits + 1):
            result.cells.append(
                run_crash_cell(seed, site, hit, ops=ops, store_kwargs=store_kwargs)
            )
    return result
