"""Seeded corruption round-trips: hardened decode boundaries, per codec.

Stronger contract than :mod:`tests.codecs.test_corruption_fuzz` (which
accepts any :class:`CodecError`): a damaged frame must surface as
:class:`CorruptDataError` (or :class:`OutputLimitExceeded` when the
damage inflates the claimed output) -- never IndexError, struct.error,
ValueError, KeyError, or MemoryError. Plus the fault-injection seed
determinism the chaos scorecard depends on.
"""

import random

import pytest

from repro.codecs import get_codec
from repro.codecs.base import (
    Compressor,
    CorruptDataError,
    DecompressResult,
    OutputLimitExceeded,
    StageCounters,
)
from repro.faults import FaultInjector, FaultPlan, FaultSpec

_CODEC_NAMES = ["zstd", "lz4", "zlib", "gzip"]
_SAMPLES = ["text", "structured", "rle", "mostly_random"]
_MAX_OUT = 1 << 22


def _attempt(codec, payload: bytes) -> None:
    """Decode damaged bytes; success or a *typed* corruption error only."""
    try:
        codec.decompress(payload, max_output_bytes=_MAX_OUT)
    except (CorruptDataError, OutputLimitExceeded):
        pass
    # anything else (IndexError, struct.error, ValueError, ...) escapes
    # and fails the test


@pytest.mark.parametrize("codec_name", _CODEC_NAMES)
@pytest.mark.parametrize("sample", _SAMPLES)
class TestSeededCorruptionRoundTrip:
    def test_every_byte_position_truncation(self, codec_name, sample, payloads):
        codec = get_codec(codec_name)
        blob = codec.compress(payloads[sample], codec.default_level).data
        for length in range(len(blob)):
            _attempt(codec, blob[:length])

    def test_seeded_random_bit_flips(self, codec_name, sample, payloads):
        codec = get_codec(codec_name)
        blob = codec.compress(payloads[sample], codec.default_level).data
        rng = random.Random(f"corruption:{codec_name}:{sample}")
        for __ in range(80):
            damaged = bytearray(blob)
            for __ in range(rng.randint(1, 8)):
                damaged[rng.randrange(len(damaged))] ^= 1 << rng.randrange(8)
            _attempt(codec, bytes(damaged))

    def test_garbage_tail_after_valid_frame(self, codec_name, sample, payloads):
        codec = get_codec(codec_name)
        blob = codec.compress(payloads[sample], codec.default_level).data
        rng = random.Random(f"garbage:{codec_name}:{sample}")
        tail = bytes(rng.getrandbits(8) for __ in range(64))
        _attempt(codec, blob + tail)


class TestBoundaryWrapping:
    """The base-class decode boundary translates raw exceptions."""

    class _BrokenCodec(Compressor):
        name = "broken"
        min_level = max_level = default_level = 1

        def __init__(self, exc):
            self._exc = exc

        def _compress(self, data, level, dictionary, counters):
            raise NotImplementedError

        def _decompress(self, payload, dictionary, counters):
            raise self._exc

    @pytest.mark.parametrize(
        "raw",
        [
            IndexError("index out of range"),
            KeyError("missing table entry"),
            ValueError("bad length"),
            OverflowError("shift too large"),
            MemoryError(),
        ],
    )
    def test_raw_exceptions_become_corrupt_data_error(self, raw):
        codec = self._BrokenCodec(raw)
        with pytest.raises(CorruptDataError, match="malformed payload"):
            codec.decompress(b"\x00\x01\x02")

    def test_struct_error_becomes_corrupt_data_error(self):
        import struct

        codec = self._BrokenCodec(struct.error("unpack requires 4 bytes"))
        with pytest.raises(CorruptDataError):
            codec.decompress(b"\x00\x01\x02")

    def test_corrupt_data_error_passes_through_unchanged(self):
        original = CorruptDataError("checksum mismatch")
        codec = self._BrokenCodec(original)
        with pytest.raises(CorruptDataError, match="checksum mismatch"):
            codec.decompress(b"\x00")


class TestFaultPlanSeedDeterminism:
    """Same (plan, seed, opportunities) -> identical fault decisions."""

    def _history(self, seed):
        plan = FaultPlan(
            "det",
            (
                FaultSpec("rpc.wire", "drop", 0.2),
                FaultSpec("rpc.wire", "bit_flip", 0.3, magnitude=2),
                FaultSpec("codec", "fail", 0.15),
                FaultSpec("kvstore.storage", "truncate", 0.25),
            ),
        )
        injector = FaultInjector(plan, seed=seed)
        outcomes = []
        for i in range(150):
            wire = injector.on_wire("rpc.wire", b"msg %d body " % i * 4)
            outcomes.append((wire.dropped, bytes(wire.payload), wire.kinds))
            codec = injector.on_codec_call("codec.zstd.decompress", b"z %d" % i)
            outcomes.append((codec.fail, bytes(codec.payload), codec.kinds))
            stored = injector.corrupt_payload("kvstore.storage", b"blk %d " % i * 8)
            outcomes.append(stored)
        return outcomes, list(injector.history)

    def test_identical_across_runs(self):
        assert self._history(42) == self._history(42)

    def test_seed_changes_decisions(self):
        assert self._history(42) != self._history(43)

    def test_corrupted_bytes_identical_across_runs(self):
        plan = FaultPlan("p", (FaultSpec("s", "bit_flip", 1.0, magnitude=5),))
        data = bytes(range(256)) * 4
        first = FaultInjector(plan, seed=9).corrupt_payload("s", data)
        second = FaultInjector(plan, seed=9).corrupt_payload("s", data)
        assert first == second
