"""Degradation ladder: thresholds, rung selection, CompOpt construction."""

import pytest

from repro.core.config import CompressionConfig
from repro.corpus import generate_logs
from repro.serving.degrade import (
    DegradationLadder,
    Rung,
    build_ladder,
    default_thresholds,
)


def _rung(algorithm="zstd", level=3, spb=1e-9, ratio=4.0, cost=1.0):
    return Rung(
        config=CompressionConfig(algorithm=algorithm, level=level),
        seconds_per_byte=spb,
        ratio=ratio,
        total_cost=cost,
    )


class TestThresholds:
    def test_default_thresholds_shape(self):
        assert default_thresholds(1) == []
        assert default_thresholds(2) == [0.3]
        four = default_thresholds(4)
        assert len(four) == 3
        assert four[0] == pytest.approx(0.3)
        assert all(b > a for a, b in zip(four, four[1:]))
        # the whole ladder engages strictly before the shed point at 1.0
        assert four[-1] < 1.0

    def test_ladder_validates_threshold_count(self):
        with pytest.raises(ValueError):
            DegradationLadder([_rung(), _rung(level=1)], thresholds=[0.3, 0.6])

    def test_ladder_validates_increasing(self):
        rungs = [_rung(), _rung(level=2), _rung(level=1)]
        with pytest.raises(ValueError):
            DegradationLadder(rungs, thresholds=[0.5, 0.5])

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError):
            DegradationLadder([])


class TestSelection:
    def test_select_steps_through_thresholds(self):
        ladder = DegradationLadder(
            [_rung(level=6), _rung(level=3), _rung(level=1)],
            thresholds=[0.4, 0.8],
        )
        assert ladder.select(0.0) == 0
        assert ladder.select(0.39) == 0
        assert ladder.select(0.4) == 1
        assert ladder.select(0.79) == 1
        assert ladder.select(0.8) == 2

    def test_select_pins_past_the_last_threshold(self):
        ladder = DegradationLadder(
            [_rung(level=6), _rung(level=1)], thresholds=[0.3]
        )
        assert ladder.select(5.0) == 1

    def test_single_rung_never_degrades(self):
        ladder = DegradationLadder([_rung()])
        assert len(ladder) == 1
        assert ladder.select(99.0) == 0


class TestBuildLadder:
    @pytest.fixture(scope="class")
    def ladder(self):
        samples = [generate_logs(4096, seed=s) for s in range(4)]
        return build_ladder(
            samples, algorithms=("zstd", "lz4"), levels=(1, 3, 6)
        )

    def test_rungs_strictly_faster_down_the_ladder(self, ladder):
        speeds = [rung.seconds_per_byte for rung in ladder.rungs]
        assert all(b < a for a, b in zip(speeds, speeds[1:]))

    def test_deeper_rungs_trade_ratio_for_speed(self, ladder):
        assert len(ladder) >= 2
        # frontier points faster than rung 0 cannot also beat its ratio
        # (rung 0 would not have been cost-optimal otherwise)
        assert ladder.rungs[-1].ratio <= ladder.rungs[0].ratio

    def test_rung0_is_cost_optimal(self, ladder):
        costs = [rung.total_cost for rung in ladder.rungs]
        assert costs[0] == min(costs)

    def test_max_rungs_respected(self):
        samples = [generate_logs(4096, seed=s) for s in range(4)]
        ladder = build_ladder(
            samples, algorithms=("zstd", "lz4"), levels=(1, 2, 3, 6), max_rungs=2
        )
        assert len(ladder) <= 2

    def test_labels_match_configs(self, ladder):
        assert ladder.labels() == [r.config.label() for r in ladder.rungs]

    def test_invalid_max_rungs(self):
        with pytest.raises(ValueError):
            build_ladder([b"x" * 100], max_rungs=0)
