"""Newest-wins ordering across the LSM: memtable vs levels vs recovery.

The invariant under test: wherever a key's versions live — memtable,
several level-0 tables, a deep merged run, or the WAL tail after a
crash — reads and scans must return the newest version, and a deleted
key must stay deleted (no tombstone resurrection), including after
``drop_tombstones`` compactions and crash-recovery reopens.
"""

from repro.services.kvstore import KVStore, SimStorage


def _fill(store, n, tag, start=0):
    for i in range(start, start + n):
        store.put(f"key:{i:04d}".encode(), f"{tag} value {i:04d} ".encode() * 4)


def _live(store):
    return dict(store.scan_range(b"", b"\xff"))


class TestNewestWins:
    def test_memtable_overrides_all_levels(self):
        store = KVStore(memtable_bytes=1 << 11, level0_table_limit=2)
        _fill(store, 60, "old")  # several flushes + a compaction
        store.put(b"key:0000", b"memtable wins")
        assert store.get(b"key:0000") == b"memtable wins"
        assert _live(store)[b"key:0000"] == b"memtable wins"

    def test_newer_l0_table_overrides_older(self):
        store = KVStore(memtable_bytes=1 << 11, level0_table_limit=4)
        _fill(store, 20, "v1")
        store.flush()
        store.put(b"key:0005", b"v2 flushed later")
        store.flush()
        assert len(store.levels[0]) >= 2
        assert store.get(b"key:0005") == b"v2 flushed later"
        assert _live(store)[b"key:0005"] == b"v2 flushed later"

    def test_l0_overrides_deep_levels_after_compaction(self):
        store = KVStore(memtable_bytes=1 << 11, level0_table_limit=2)
        _fill(store, 80, "deep")
        store.flush()  # push everything into level >= 1
        assert any(tables for tables in store.levels[1:])
        store.put(b"key:0010", b"shallow update")
        store.flush()
        assert store.get(b"key:0010") == b"shallow update"

    def test_every_version_history_converges(self):
        # rewrite the same hot keys across flush/compaction boundaries;
        # the final scan must agree with a plain dict replay
        store = KVStore(memtable_bytes=1 << 11, level0_table_limit=2)
        expected = {}
        for round_no in range(6):
            for i in range(24):
                key = f"hot:{i:03d}".encode()
                value = f"round {round_no} item {i:03d} ".encode() * 3
                store.put(key, value)
                expected[key] = value
            store.flush()
        assert _live(store) == expected
        for key, value in expected.items():
            assert store.get(key) == value


class TestTombstones:
    def test_delete_masks_flushed_value(self):
        store = KVStore(memtable_bytes=1 << 11, level0_table_limit=4)
        _fill(store, 20, "v1")
        store.flush()
        store.delete(b"key:0003")
        assert store.get(b"key:0003") is None
        assert b"key:0003" not in _live(store)
        store.flush()  # tombstone now in its own L0 table above the value
        assert store.get(b"key:0003") is None
        assert b"key:0003" not in _live(store)

    def test_no_resurrection_after_drop_tombstones(self):
        # drive the tombstone all the way into the deepest level, where
        # the merge drops it; the masked value below must not reappear
        store = KVStore(memtable_bytes=1 << 11, level0_table_limit=2)
        _fill(store, 60, "v1")
        store.delete(b"key:0007")
        _fill(store, 60, "filler", start=100)  # force compaction cascades
        store.flush()
        assert store.stats.compactions > 0
        assert store.get(b"key:0007") is None
        assert b"key:0007" not in _live(store)

    def test_no_resurrection_after_crash_recovery_reopen(self):
        storage = SimStorage(seed=13)
        kwargs = dict(memtable_bytes=1 << 11, level0_table_limit=2)
        store = KVStore.open(storage, **kwargs)
        _fill(store, 60, "v1")
        store.delete(b"key:0007")  # tombstone lives only in the WAL tail
        storage.crash()
        reopened = KVStore.open(storage, **kwargs)
        assert reopened.get(b"key:0007") is None
        assert b"key:0007" not in _live(reopened)
        # and after the recovered tombstone itself gets flushed + merged
        _fill(reopened, 60, "filler", start=100)
        reopened.flush()
        assert reopened.get(b"key:0007") is None
        assert b"key:0007" not in _live(reopened)

    def test_reput_after_delete_wins(self):
        store = KVStore(memtable_bytes=1 << 11, level0_table_limit=2)
        _fill(store, 40, "v1")
        store.delete(b"key:0001")
        store.flush()
        store.put(b"key:0001", b"back from the dead")
        assert store.get(b"key:0001") == b"back from the dead"
        assert _live(store)[b"key:0001"] == b"back from the dead"


class TestScanRange:
    def test_bounds_are_half_open(self):
        store = KVStore(memtable_bytes=1 << 14)
        for key in (b"a", b"b", b"c", b"d"):
            store.put(key, b"v-" + key)
        got = [key for key, __ in store.scan_range(b"b", b"d")]
        assert got == [b"b", b"c"]

    def test_scan_merges_memtable_and_tables_sorted(self):
        store = KVStore(memtable_bytes=1 << 11, level0_table_limit=4)
        _fill(store, 30, "flushed")
        store.flush()
        store.put(b"key:0015a", b"memtable insert between keys")
        keys = [key for key, __ in store.scan_range(b"key:0010", b"key:0020")]
        assert keys == sorted(keys)
        assert b"key:0015a" in keys
        assert len(keys) == 11  # 0010..0019 plus the memtable insert

    def test_deep_levels_hold_single_runs(self):
        store = KVStore(memtable_bytes=1 << 11, level0_table_limit=2)
        _fill(store, 120, "bulk")
        store.flush()
        for level, tables in enumerate(store.levels[1:], start=1):
            assert len(tables) <= 1, f"level {level} fragmented"
