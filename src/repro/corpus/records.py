"""Structured database-like records (the `nci`/`sao`-style corpus member)."""

from __future__ import annotations

from repro.corpus.distributions import SeededSampler

_COUNTRIES = ["US", "IN", "BR", "ID", "MX", "PH", "VN", "TH", "EG", "TR"]
_STATUSES = ["active", "inactive", "pending", "deleted"]
_DEVICES = ["ios", "android", "web", "mweb"]


def generate_records(size: int, seed: int = 0) -> bytes:
    """Row-oriented records with a fixed schema and skewed value pools.

    The repeated field names and low-cardinality values make this highly
    compressible (roughly 6-10x), like database exports in the classic
    corpora.
    """
    sampler = SeededSampler(seed)
    rows = []
    total = 0
    row_id = 100000
    while total < size:
        row_id += int(sampler.uniform(1, 50))
        country = sampler.choice(_COUNTRIES)[0]
        status = sampler.choice(_STATUSES)[0]
        device = sampler.choice(_DEVICES)[0]
        score = sampler.uniform(0, 1)
        timestamp = 1680000000 + int(sampler.uniform(0, 2_000_000))
        row = (
            f"id={row_id}|country={country}|status={status}|device={device}"
            f"|score={score:.4f}|ts={timestamp}|flags=0x{int(sampler.uniform(0, 255)):02x}\n"
        )
        rows.append(row)
        total += len(row)
    return "".join(rows).encode("ascii")[:size]
