"""The paper's analytical cost model, equations (1)-(4).

For a configuration x measured over samples S::

    c_compute(x) = sum_s  alpha_compute * B * Size(s) / (CompSpeed(x, s) * beta)   (1)
    c_storage(x) = sum_s  alpha_storage * B * R * Size(s) / (CompRatio(x, s) * beta)  (2)
    c_network(x) = sum_s  alpha_network * B * Size(s) / (CompRatio(x, s) * beta)   (3)
    x_opt = argmin_x (c_compute + c_storage + c_network)                           (4)

``beta`` is the sampling rate (samples observed / total compression calls in
the service), used to extrapolate from the sample set to the service's full
volume. ``R`` is retention in days. The alphas carry the dollar rates; with
:class:`~repro.core.pricing.PriceBook` defaults, costs come out in dollars.

As an extension (disabled by default to stay faithful to the paper's
equations), ``reads_per_write`` adds decompression compute for read-heavy
services.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import CompressionMetrics
from repro.core.pricing import DEFAULT_PRICES, PriceBook


@dataclass(frozen=True)
class CostParameters:
    """Service-specific cost coefficients and requirements context."""

    #: $ per second of compression compute (alpha_compute * B)
    alpha_compute: float
    #: $ per stored byte-day (alpha_storage * B)
    alpha_storage: float
    #: $ per transferred byte (alpha_network * B)
    alpha_network: float
    #: sampling rate beta: fraction of the service's calls in the sample set
    beta: float = 1.0
    #: average retention R, days
    retention_days: float = 30.0
    #: decompressions per compression counted into compute cost (extension;
    #: 0 keeps equation (1) exactly as published)
    reads_per_write: float = 0.0

    @classmethod
    def from_price_book(
        cls,
        prices: PriceBook = DEFAULT_PRICES,
        storage_kind: str = "warm",
        beta: float = 1.0,
        retention_days: float = 30.0,
        compute_weight: float = 1.0,
        storage_weight: float = 1.0,
        network_weight: float = 1.0,
        reads_per_write: float = 0.0,
    ) -> "CostParameters":
        """Derive alphas from a price book, with per-service weighting.

        Setting a weight to 0 removes that term, e.g. ADS1 sets
        ``storage_weight=0`` ("storage cost is not important because the
        intermediate data is not stored") and KVSTORE1 sets
        ``network_weight=0``.
        """
        storage_rate = (
            prices.flash_byte_day if storage_kind == "flash" else prices.storage_byte_day
        )
        return cls(
            alpha_compute=prices.compute_core_second * compute_weight,
            alpha_storage=storage_rate * storage_weight,
            alpha_network=prices.network_byte * network_weight,
            beta=beta,
            retention_days=retention_days,
            reads_per_write=reads_per_write,
        )


@dataclass(frozen=True)
class CostBreakdown:
    """Dollar costs of one configuration, by resource."""

    compute: float
    storage: float
    network: float

    @property
    def total(self) -> float:
        return self.compute + self.storage + self.network


class CostModel:
    """Evaluates equations (1)-(3) for measured metrics."""

    def __init__(self, parameters: CostParameters) -> None:
        if parameters.beta <= 0:
            raise ValueError("sampling rate beta must be positive")
        self.parameters = parameters

    def evaluate(self, metrics: CompressionMetrics) -> CostBreakdown:
        """Cost breakdown for one configuration's measured metrics."""
        p = self.parameters
        scale = 1.0 / p.beta
        compress_seconds = metrics.compress_seconds
        if p.reads_per_write > 0:
            compress_seconds += p.reads_per_write * metrics.decompress_seconds
        compute = p.alpha_compute * compress_seconds * scale
        compressed = metrics.input_bytes / metrics.ratio if metrics.ratio else 0.0
        storage = p.alpha_storage * p.retention_days * compressed * scale
        network = p.alpha_network * compressed * scale
        return CostBreakdown(compute=compute, storage=storage, network=network)

    def total(self, metrics: CompressionMetrics) -> float:
        return self.evaluate(metrics).total
