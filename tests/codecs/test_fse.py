"""Finite State Entropy (tANS) tests."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.codecs.entropy.bitio import BitReader, BitWriter
from repro.codecs.entropy.fse import (
    FSEDecoder,
    FSEEncoder,
    _spread_symbols,
    normalize_counts,
)


class TestNormalizeCounts:
    def test_sums_to_table_size(self):
        norm = normalize_counts([10, 20, 30, 40], table_log=6)
        assert sum(norm) == 64

    def test_present_symbols_get_at_least_one_state(self):
        norm = normalize_counts([1000, 1, 1, 1], table_log=5)
        assert all(n >= 1 for i, n in enumerate(norm) if [1000, 1, 1, 1][i])

    def test_absent_symbols_get_zero(self):
        norm = normalize_counts([5, 0, 5], table_log=4)
        assert norm[1] == 0

    def test_proportionality(self):
        norm = normalize_counts([75, 25], table_log=6)
        assert norm[0] > norm[1]
        assert norm[0] == pytest.approx(48, abs=4)

    def test_empty_histogram_rejected(self):
        with pytest.raises(ValueError):
            normalize_counts([0, 0], table_log=5)

    def test_too_many_symbols_rejected(self):
        with pytest.raises(ValueError):
            normalize_counts([1] * 40, table_log=5)

    def test_single_symbol_takes_whole_table(self):
        norm = normalize_counts([0, 9, 0], table_log=5)
        assert norm == [0, 32, 0]


class TestSpread:
    def test_spread_covers_all_states(self):
        norm = normalize_counts([5, 3, 2], table_log=5)
        spread = _spread_symbols(norm, 5)
        assert len(spread) == 32
        for symbol, count in enumerate(norm):
            assert spread.count(symbol) == count


class TestEncodeDecode:
    def _roundtrip(self, symbols, alphabet, table_log=9):
        counts = [0] * alphabet
        for s in symbols:
            counts[s] += 1
        norm = normalize_counts(counts, table_log)
        writer = BitWriter()
        FSEEncoder(norm, table_log).encode(symbols, writer)
        decoder = FSEDecoder(norm, table_log)
        return decoder.decode(len(symbols), BitReader(writer.getvalue()))

    def test_roundtrip_skewed(self):
        symbols = [0] * 500 + [1] * 100 + [2] * 20 + [3] * 4
        assert self._roundtrip(symbols, 4) == symbols

    def test_roundtrip_interleaved(self):
        symbols = [i % 7 for i in range(1000)]
        assert self._roundtrip(symbols, 7) == symbols

    def test_roundtrip_single_distinct_symbol(self):
        symbols = [3] * 200
        assert self._roundtrip(symbols, 4) == symbols

    def test_roundtrip_one_symbol_message(self):
        assert self._roundtrip([2], 4) == [2]

    def test_roundtrip_small_table(self):
        symbols = [0, 1] * 64
        assert self._roundtrip(symbols, 2, table_log=5) == symbols

    def test_compression_approaches_entropy(self):
        # 90/10 binary source: H = 0.469 bits/symbol
        symbols = ([0] * 9 + [1]) * 300
        counts = [symbols.count(0), symbols.count(1)]
        norm = normalize_counts(counts, 9)
        writer = BitWriter()
        bits = FSEEncoder(norm, 9).encode(symbols, writer)
        entropy = -sum(
            c / len(symbols) * math.log2(c / len(symbols)) for c in counts
        )
        assert bits / len(symbols) < entropy * 1.15 + 9 / len(symbols) + 0.05

    def test_fse_beats_whole_bit_coding_on_skew(self):
        # Huffman floors at 1 bit/symbol; tANS goes below it.
        symbols = ([0] * 15 + [1]) * 200
        counts = [symbols.count(0), symbols.count(1)]
        norm = normalize_counts(counts, 9)
        writer = BitWriter()
        bits = FSEEncoder(norm, 9).encode(symbols, writer)
        assert bits / len(symbols) < 0.75

    def test_cost_in_bits_matches_actual(self):
        symbols = [i % 5 for i in range(333)]
        counts = [symbols.count(s) for s in range(5)]
        norm = normalize_counts(counts, 8)
        encoder = FSEEncoder(norm, 8)
        writer = BitWriter()
        actual = encoder.encode(symbols, writer)
        assert encoder.cost_in_bits(symbols) == actual

    def test_zero_probability_symbol_rejected(self):
        norm = normalize_counts([5, 5, 0], table_log=5)
        with pytest.raises(ValueError):
            FSEEncoder(norm, 5).encode([2], BitWriter())

    def test_mismatched_norm_rejected(self):
        with pytest.raises(ValueError):
            FSEEncoder([3, 3], table_log=3)
        with pytest.raises(ValueError):
            FSEDecoder([3, 3], table_log=3)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 9), min_size=1, max_size=500))
def test_roundtrip_property(symbols):
    counts = [0] * 10
    for s in symbols:
        counts[s] += 1
    norm = normalize_counts(counts, 8)
    writer = BitWriter()
    FSEEncoder(norm, 8).encode(symbols, writer)
    decoded = FSEDecoder(norm, 8).decode(len(symbols), BitReader(writer.getvalue()))
    assert decoded == symbols
