"""Zipf-distributed English-like text (the `dickens`-style corpus member)."""

from __future__ import annotations

from typing import List

from repro.corpus.distributions import SeededSampler

_SYLLABLES = [
    "an", "ber", "ca", "den", "er", "fal", "gre", "hol", "in", "jor",
    "kel", "lam", "mor", "nes", "or", "pel", "qua", "ris", "sel", "tor",
    "un", "ver", "wil", "xen", "yor", "zan", "th", "st", "ing", "ed",
]


def _build_vocabulary(sampler: SeededSampler, size: int) -> List[str]:
    words = []
    for index in range(size):
        syllable_count = 1 + int(index % 4 == 0) + int(index % 9 == 0) + (index % 3 == 0)
        parts = sampler.choice(_SYLLABLES, count=max(1, syllable_count))
        words.append("".join(parts))
    return words


def generate_text(size: int, seed: int = 0) -> bytes:
    """English-like prose: Zipf word frequencies, sentences, paragraphs.

    Compresses at roughly the ratio of natural-language text (about 2.5-3.5x
    with mid-level LZ compressors), which is what matters for Fig. 1's
    text-file series.
    """
    sampler = SeededSampler(seed)
    vocabulary = _build_vocabulary(sampler, 2200)
    pieces: List[str] = []
    total = 0
    sentence_length = 0
    indices = sampler.zipf_indices(max(64, size // 4), len(vocabulary))
    position = 0
    while total < size:
        if position >= len(indices):
            indices = sampler.zipf_indices(max(64, size // 4), len(vocabulary))
            position = 0
        word = vocabulary[indices[position]]
        position += 1
        sentence_length += 1
        if sentence_length == 1:
            word = word.capitalize()
        if sentence_length >= 8 and sampler.uniform() < 0.25:
            word += "." if sampler.uniform() < 0.8 else "?"
            sentence_length = 0
            if sampler.uniform() < 0.12:
                word += "\n\n"
        pieces.append(word)
        total += len(word) + 1
    return " ".join(pieces).encode("ascii")[:size]
