"""Cross-module integration tests: compositions the unit suites don't hit."""

import pytest

from repro.codecs import get_codec, train_dictionary
from repro.core import (
    CompEngine,
    CompOpt,
    CompressionConfig,
    CostModel,
    CostParameters,
)
from repro.core.config import config_grid
from repro.corpus import (
    CACHE1_TYPES,
    generate_cache_items,
    generate_kv_records,
    generate_logs,
    generate_table,
    generate_telemetry,
)
from repro.perfmodel import DEFAULT_MACHINE
from repro.services import (
    CacheClient,
    CacheServer,
    KVStore,
    ManagedCompression,
    OrcReader,
    OrcWriter,
)


class TestGzipThroughCompOpt:
    def test_gzip_as_candidate(self):
        engine = CompEngine([generate_logs(8192, seed=1)])
        model = CostModel(CostParameters.from_price_book(beta=1e-6))
        result = CompOpt(engine, model).optimize(
            config_grid(["gzip", "zlib"], levels=[6])
        )
        by_algo = {r.config.algorithm: r for r in result.ranked}
        # Same DEFLATE engine: nearly identical ratio, container overhead
        # differs by a few bytes only.
        assert by_algo["gzip"].metrics.ratio == pytest.approx(
            by_algo["zlib"].metrics.ratio, rel=0.01
        )


class TestNewCorpusThroughServices:
    def test_logs_through_kvstore(self):
        store = KVStore(memtable_bytes=1 << 14, block_size=4096)
        log_lines = generate_logs(20000, seed=2).splitlines()
        for index, line in enumerate(log_lines):
            store.put(b"log/%08d" % index, line)
        store.flush()
        assert store.get(b"log/%08d" % 50) == log_lines[50]
        assert store.stats.storage_ratio > 2.0

    def test_telemetry_through_orc_float_column(self):
        import numpy as np

        values = np.frombuffer(generate_telemetry(8000, seed=3), dtype="<f8")
        table = {"metric": values}
        payload = OrcWriter(level=1).write(table)
        restored = OrcReader().read(payload)
        assert np.array_equal(restored["metric"], values)


class TestManagedBackedCache:
    def test_managed_dictionaries_in_cache_flow(self):
        """Managed Compression trains; cache serves with the same dicts."""
        items = generate_cache_items(CACHE1_TYPES, 200, seed=4)
        managed = ManagedCompression(sample_every=1)
        managed.register_use_case("cache_items", retrain_interval=32)
        for __, payload in items[:120]:
            managed.compress("cache_items", payload)
        assert managed.current_version("cache_items") >= 1

        # install the managed dictionary into a cache server by type
        server = CacheServer(level=3, use_dictionaries=True)
        state = managed._use_cases["cache_items"]
        from repro.codecs.zstd.dictionary import CompressionDictionary

        for spec in CACHE1_TYPES:
            server.dictionaries[spec.name] = CompressionDictionary(
                state.dictionaries[managed.current_version("cache_items")]
            )
        client = CacheClient(server)
        for index, (type_name, payload) in enumerate(items[120:]):
            server.set(b"k%d" % index, type_name, payload)
        for index, (__, payload) in enumerate(items[120:]):
            assert client.get(b"k%d" % index) == payload
        assert server.stats.memory_ratio > 1.5


class TestDictionaryPlusBlockSize:
    def test_dictionary_and_chunking_compose_in_engine(self):
        samples = [p for __, p in generate_cache_items(CACHE1_TYPES, 60, seed=5)]
        dictionary = train_dictionary(samples[:40], 4096)
        engine = CompEngine(samples[40:], dictionary=dictionary.content)
        plain = engine.measure(CompressionConfig("zstd", 3, 512))
        dicted = engine.measure(
            CompressionConfig("zstd", 3, 512), use_dictionary=True
        )
        assert dicted.ratio > plain.ratio


class TestWallclockVsModeled:
    def test_both_timings_agree_on_ratio(self):
        samples = [generate_logs(4096, seed=6)]
        modeled = CompEngine(samples, timing="modeled").measure(
            CompressionConfig("zstd", 1)
        )
        wallclock = CompEngine(samples, timing="wallclock").measure(
            CompressionConfig("zstd", 1)
        )
        assert modeled.ratio == wallclock.ratio
        # Modeled speed reflects a C-library-scale core; pure-Python
        # wall-clock is orders of magnitude slower.
        assert modeled.compression_speed > 20 * wallclock.compression_speed


class TestCountersConsistency:
    def test_compress_decompress_byte_conservation(self):
        codec = get_codec("zstd")
        table = generate_table(500, seed=7)
        payload = OrcWriter(codec=codec, level=1).write(table)
        reader = OrcReader(codec=codec)
        reader.read(payload)
        counters = reader.stats.decompress_counters
        # decoded bytes = literal copies + match copies
        assert counters.bytes_out == (
            counters.literal_bytes_copied + counters.match_bytes_copied
        )

    def test_stage_breakdown_nonnegative_everywhere(self):
        for name in ("zstd", "lz4", "zlib", "gzip"):
            codec = get_codec(name)
            result = codec.compress(generate_logs(4096, seed=8), codec.default_level)
            breakdown = DEFAULT_MACHINE.compress_breakdown(name, result.counters)
            assert breakdown.match_finding >= 0
            assert breakdown.entropy >= 0
            assert breakdown.overhead > 0
