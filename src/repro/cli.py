"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``compress`` / ``decompress`` -- file round-trips through any codec.
- ``bench`` -- quick ratio/speed table for a file across codecs and levels
  (an lzbench-style view using the calibrated machine model).
- ``train-dict`` -- train a dictionary from sample files.
- ``optimize`` -- run CompOpt over sample files and print the ranking.
- ``fleet-report`` -- run the fleet profiling simulation and print the
  Section-III characterization.
- ``obs`` -- run an instrumented workload with telemetry enabled and emit
  the metrics snapshot (table, Prometheus text, or JSON lines).
- ``chaos`` -- run the service stack under a named fault plan and print
  the deterministic survival scorecard.
- ``serve-sim`` -- run the admission-controlled serving gateway through
  the discrete-event simulator and print the latency/goodput scorecard.
- ``slo`` -- run the serving simulator with the rolling-window SLO plane
  attached and print the window-by-window burn-rate/alert timeline
  (table or replayable JSONL); ``--max-page-seconds`` turns it into a
  CI gate.
- ``cluster-sim`` -- run the sharded multi-node cluster simulator
  (consistent-hash routing, per-shard gateways, autoscaler, rebalancer)
  and print the per-shard + fleet scorecard; byte-identical per seed.
- ``bench-diff`` -- compare two benchmark-trajectory files and fail on
  regressions beyond tolerance.
- ``lint`` -- run the AST-based determinism/contract sanitizer
  (``repro.lint``) over the tree and gate on the baseline ratchet.
- ``graph`` -- OpenZL-style graph compression: train per-category
  transform DAGs, compress/decompress self-describing graph streams,
  and describe graph shapes (``repro.graphs``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.codecs import available_codecs, get_codec, train_dictionary
from repro.perfmodel import DEFAULT_MACHINE


def _read(path: str) -> bytes:
    if path == "-":
        return sys.stdin.buffer.read()
    with open(path, "rb") as handle:
        return handle.read()


def _write(path: str, data: bytes) -> None:
    if path == "-":
        sys.stdout.buffer.write(data)
        return
    with open(path, "wb") as handle:
        handle.write(data)


def _cmd_compress(args: argparse.Namespace) -> int:
    codec = get_codec(args.codec)
    dictionary = _read(args.dictionary) if args.dictionary else None
    data = _read(args.input)
    if args.jobs != 1 or args.chunk_size is not None:
        from repro.parallel import DEFAULT_CHUNK_SIZE, compress_chunked

        chunk_size = (
            args.chunk_size if args.chunk_size is not None else DEFAULT_CHUNK_SIZE
        )
        result = compress_chunked(
            codec,
            data,
            args.level,
            dictionary=dictionary,
            chunk_size=chunk_size,
            jobs=args.jobs,
        )
        detail = f", {result.chunk_count} chunks x {chunk_size} B"
    else:
        result = codec.compress(data, args.level, dictionary=dictionary)
        detail = ""
    _write(args.output, result.data)
    if args.output != "-":
        speed = DEFAULT_MACHINE.compress_speed(codec.name, result.counters)
        print(
            f"{len(data)} -> {len(result.data)} bytes "
            f"(ratio {result.ratio:.2f}, modeled {speed / 1e6:.0f} MB/s{detail})"
        )
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    codec = get_codec(args.codec)
    dictionary = _read(args.dictionary) if args.dictionary else None
    payload = _read(args.input)
    if args.jobs != 1:
        from repro.parallel import decompress_chunked

        result = decompress_chunked(
            codec, payload, dictionary=dictionary, jobs=args.jobs
        )
    else:
        result = codec.decompress(payload, dictionary=dictionary)
    _write(args.output, result.data)
    if args.output != "-":
        print(f"{len(payload)} -> {len(result.data)} bytes")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.codecs.zstd import inspect_frame

    payload = _read(args.input)
    info = inspect_frame(payload)
    print(f"content size:    {info.content_size}")
    print(f"compressed size: {info.compressed_size}")
    ratio = info.content_size / info.compressed_size if info.compressed_size else 0
    print(f"ratio:           {ratio:.3f}")
    print(f"window log:      {info.window_log}")
    print(f"checksum:        {'yes' if info.has_checksum else 'no'}")
    print(
        f"dictionary id:   "
        f"{'none' if info.dict_id is None else f'{info.dict_id:#010x}'}"
    )
    print(f"blocks:          {info.block_count} ({', '.join(info.block_types)})")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis import format_table

    data = _read(args.input)
    rows = []
    for codec_name in args.codecs:
        codec = get_codec(codec_name)
        levels = args.levels or [codec.min_level, codec.default_level, codec.max_level]
        for level in levels:
            if not codec.min_level <= level <= codec.max_level:
                continue
            result = codec.compress(data, level)
            decoded = codec.decompress(result.data)
            rows.append(
                [
                    codec_name,
                    level,
                    f"{result.ratio:.3f}",
                    f"{DEFAULT_MACHINE.compress_speed(codec_name, result.counters) / 1e6:.0f}",
                    f"{DEFAULT_MACHINE.decompress_speed(codec_name, decoded.counters) / 1e6:.0f}",
                ]
            )
    print(
        format_table(
            ["codec", "level", "ratio", "comp MB/s", "decomp MB/s"],
            rows,
            title=f"bench: {args.input} ({len(data)} bytes, modeled speeds)",
        )
    )
    return 0


def _cmd_train_dict(args: argparse.Namespace) -> int:
    samples = [_read(path) for path in args.samples]
    dictionary = train_dictionary(samples, max_size=args.max_size)
    _write(args.output, dictionary.content)
    print(
        f"trained {len(dictionary)} bytes from {len(samples)} samples "
        f"(dict id {dictionary.dict_id:#010x})"
    )
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro.core import (
        CompEngine,
        CompOpt,
        CostModel,
        CostParameters,
        MaxBlockDecodeLatency,
        MinCompressionSpeed,
    )
    from repro.core.config import config_grid

    samples = [_read(path) for path in args.samples]
    engine = CompEngine(samples)
    params = CostParameters.from_price_book(
        beta=args.beta,
        retention_days=args.retention_days,
        storage_weight=0.0 if args.no_storage else 1.0,
        network_weight=0.0 if args.no_network else 1.0,
    )
    requirements = []
    if args.min_speed:
        requirements.append(MinCompressionSpeed(args.min_speed * 1e6))
    if args.max_decode_ms:
        requirements.append(MaxBlockDecodeLatency(args.max_decode_ms / 1e3))
    block_sizes = [b * 1024 for b in args.block_sizes] if args.block_sizes else [None]
    grid = config_grid(args.codecs, levels=args.levels, block_sizes=block_sizes)
    optimizer = CompOpt(engine, CostModel(params), requirements)
    result = optimizer.optimize(grid)
    print(f"{'config':14s} {'ratio':>6s} {'MB/s':>6s} {'cost':>12s}  feasible")
    for ranked in result.ranked[: args.top]:
        print(
            f"{ranked.config.label():14s} "
            f"{ranked.metrics.ratio:6.2f} "
            f"{ranked.metrics.compression_speed / 1e6:6.0f} "
            f"${ranked.total_cost:11,.2f}  "
            f"{'yes' if ranked.feasible else 'no'}"
        )
    best = result.best
    if best is None:
        print("no configuration satisfies the requirements")
        return 1
    print(f"\nbest: {best.config.label()}")
    return 0


def _cmd_fleet_report(args: argparse.Namespace) -> int:
    from repro.fleet import SamplingProfiler, characterize

    profiler = SamplingProfiler(samples_per_day=args.samples_per_day, seed=args.seed)
    result = characterize(profiler.run(days=args.days))
    print(
        f"compression share of fleet cycles: "
        f"{result.compression_share * 100:.2f}%"
    )
    for algorithm, share in sorted(
        result.algorithm_shares.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {algorithm:5s}: {share * 100:.2f}%")
    print("by category:")
    for category, share in sorted(
        result.category_zstd_share.items(), key=lambda kv: -kv[1]
    ):
        if category == "Infra":
            continue
        print(f"  {category:17s} {share * 100:5.2f}%")
    print(f"levels 1-4 cycle share: {result.low_level_share(4) * 100:.1f}%")
    if args.measure:
        from repro.fleet import format_fleet_sweep, run_fleet_sweep

        sweep = run_fleet_sweep(jobs=args.jobs, payload_bytes=args.measure_bytes)
        print(f"\nmeasured sweep ({len(sweep)} cells, jobs={args.jobs}):")
        print(format_fleet_sweep(sweep))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.cli import run_obs_command

    return run_obs_command(args)


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import format_scorecard, run_chaos

    report = run_chaos(plan=args.plan, seed=args.seed, ops=args.ops)
    print(format_scorecard(report))
    if report.failed > args.max_failed:
        print(
            f"\nFAIL: {report.failed} operations failed "
            f"(--max-failed {args.max_failed})"
        )
        return 1
    if report.recovered < args.min_recovered:
        print(
            f"\nFAIL: only {report.recovered} operations recovered "
            f"(--min-recovered {args.min_recovered})"
        )
        return 1
    return 0


def _cmd_serve_sim(args: argparse.Namespace) -> int:
    from repro.serving import format_scorecard, run_simulation

    report = run_simulation(
        scenario=args.scenario,
        seed=args.seed,
        scale=args.scale,
        degradation=False if args.no_degradation else None,
        jobs=args.jobs,
        graphs=args.graphs.split(",") if args.graphs else None,
    )
    print(format_scorecard(report))
    if report.shed_rate() > args.max_shed_rate:
        print(
            f"\nFAIL: shed rate {report.shed_rate() * 100:.1f}% exceeds "
            f"--max-shed-rate {args.max_shed_rate * 100:.1f}%"
        )
        return 1
    if args.max_p99_ms is not None and report.latency.count(source="all"):
        p99_ms = report.latency.p99(source="all") * 1e3
        if p99_ms > args.max_p99_ms:
            print(
                f"\nFAIL: latency p99 {p99_ms:.1f} ms exceeds "
                f"--max-p99-ms {args.max_p99_ms:.1f}"
            )
            return 1
    if report.served < args.min_served:
        print(
            f"\nFAIL: only {report.served} requests served "
            f"(--min-served {args.min_served})"
        )
        return 1
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.serving import (
        ServingSLOConfig,
        format_timeline,
        run_simulation,
        timeline_jsonl,
    )

    config = ServingSLOConfig()
    if args.shed_budget is not None:
        config = replace(config, shed_budget=args.shed_budget)
    if args.max_p99_ms is not None:
        config = replace(config, latency_p99_seconds=args.max_p99_ms / 1e3)
    report = run_simulation(
        scenario=args.scenario,
        seed=args.seed,
        scale=args.scale,
        degradation=False if args.no_degradation else None,
        jobs=args.jobs,
        window_seconds=args.window_seconds,
        slo_config=config,
    )
    timeline = report.timeline
    assert timeline is not None
    if args.format == "jsonl":
        text = timeline_jsonl(timeline)
    else:
        text = format_timeline(timeline)
    if args.output and args.output != "-":
        with open(args.output, "w") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {args.format} timeline to {args.output}")
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    if args.max_page_seconds is not None:
        page_seconds = timeline.total_page_seconds()
        if page_seconds > args.max_page_seconds:
            # Gate verdict goes to stderr so stdout stays a pure,
            # diffable timeline for the determinism checks.
            print(
                f"FAIL: {page_seconds:.3f} page-seconds exceeds "
                f"--max-page-seconds {args.max_page_seconds:.3f}",
                file=sys.stderr,
            )
            return 1
    return 0


def _cmd_cluster_sim(args: argparse.Namespace) -> int:
    from repro.cluster import format_cluster_scorecard, run_cluster_simulation

    report = run_cluster_simulation(
        scenario=args.scenario,
        seed=args.seed,
        scale=args.scale,
        jobs=args.jobs,
        autoscale=False if args.no_autoscale else None,
        rebalance=False if args.no_rebalance else None,
    )
    print(format_cluster_scorecard(report))
    # Gate verdicts go to stderr so stdout stays a pure, diffable
    # scorecard for the determinism checks.
    if report.shed_rate() > args.max_shed_rate:
        print(
            f"\nFAIL: shed rate {report.shed_rate() * 100:.2f}% exceeds "
            f"--max-shed-rate {args.max_shed_rate * 100:.2f}%",
            file=sys.stderr,
        )
        return 1
    if report.served < args.min_served:
        print(
            f"\nFAIL: only {report.served} requests served "
            f"(--min-served {args.min_served})",
            file=sys.stderr,
        )
        return 1
    if args.max_page_seconds is not None:
        page_seconds = report.total_page_seconds()
        if page_seconds > args.max_page_seconds:
            print(
                f"\nFAIL: {page_seconds:.3f} page-seconds exceeds "
                f"--max-page-seconds {args.max_page_seconds:.3f}",
                file=sys.stderr,
            )
            return 1
    return 0


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    from repro.trajectory import (
        compare_trajectories,
        format_diff,
        has_regressions,
        load_trajectory,
    )

    try:
        baseline = load_trajectory(args.baseline)
        current = load_trajectory(args.current)
    except (OSError, ValueError, KeyError) as error:
        print(f"bench-diff: {error}", file=sys.stderr)
        return 2
    rows = compare_trajectories(
        baseline, current, max_regression=args.max_regression
    )
    print(format_diff(rows))
    return 1 if has_regressions(rows) else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_lint_command

    return run_lint_command(args)


def _cmd_graph(args: argparse.Namespace) -> int:
    from repro.graphs.cli import run_graph_command

    return run_graph_command(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Datacenter compression characterization toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compress = sub.add_parser("compress", help="compress a file")
    compress.add_argument("input")
    compress.add_argument("output")
    compress.add_argument("--codec", default="zstd", choices=available_codecs())
    compress.add_argument("--level", type=int, default=None)
    compress.add_argument("--dictionary", default=None)
    compress.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for chunked compression (0 = all cores)",
    )
    compress.add_argument(
        "--chunk-size", type=int, default=None,
        help="bytes per independent frame (implies chunked mode; default 128 KiB)",
    )
    compress.set_defaults(func=_cmd_compress)

    decompress = sub.add_parser("decompress", help="decompress a file")
    decompress.add_argument("input")
    decompress.add_argument("output")
    decompress.add_argument("--codec", default="zstd", choices=available_codecs())
    decompress.add_argument("--dictionary", default=None)
    decompress.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for multi-frame decode (0 = all cores)",
    )
    decompress.set_defaults(func=_cmd_decompress)

    inspect = sub.add_parser("inspect", help="show zstd frame metadata")
    inspect.add_argument("input")
    inspect.set_defaults(func=_cmd_inspect)

    bench = sub.add_parser("bench", help="ratio/speed table for a file")
    bench.add_argument("input")
    bench.add_argument("--codecs", nargs="+", default=["zstd", "lz4", "zlib"])
    bench.add_argument("--levels", nargs="+", type=int, default=None)
    bench.set_defaults(func=_cmd_bench)

    train = sub.add_parser("train-dict", help="train a dictionary from samples")
    train.add_argument("output")
    train.add_argument("samples", nargs="+")
    train.add_argument("--max-size", type=int, default=16384)
    train.set_defaults(func=_cmd_train_dict)

    optimize = sub.add_parser("optimize", help="run CompOpt over sample files")
    optimize.add_argument("samples", nargs="+")
    optimize.add_argument("--codecs", nargs="+", default=["zstd", "lz4", "zlib"])
    optimize.add_argument("--levels", nargs="+", type=int, default=None)
    optimize.add_argument("--block-sizes", nargs="+", type=int, default=None,
                          help="block sizes in KiB")
    optimize.add_argument("--beta", type=float, default=1e-6)
    optimize.add_argument("--retention-days", type=float, default=30.0)
    optimize.add_argument("--min-speed", type=float, default=None,
                          help="minimum compression speed, MB/s")
    optimize.add_argument("--max-decode-ms", type=float, default=None,
                          help="maximum per-block decode latency, ms")
    optimize.add_argument("--no-storage", action="store_true")
    optimize.add_argument("--no-network", action="store_true")
    optimize.add_argument("--top", type=int, default=10)
    optimize.set_defaults(func=_cmd_optimize)

    fleet = sub.add_parser("fleet-report", help="fleet characterization")
    fleet.add_argument("--days", type=int, default=30)
    fleet.add_argument("--samples-per-day", type=int, default=200_000)
    fleet.add_argument("--seed", type=int, default=30)
    fleet.add_argument(
        "--measure", action="store_true",
        help="also run the measured (service, codec, level) sweep",
    )
    fleet.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the measured sweep (0 = all cores)",
    )
    fleet.add_argument(
        "--measure-bytes", type=int, default=4096,
        help="payload bytes per measured sweep cell",
    )
    fleet.set_defaults(func=_cmd_fleet_report)

    obs = sub.add_parser(
        "obs", help="run a telemetry-instrumented workload, print snapshot"
    )
    obs.add_argument(
        "--workload", default="all",
        choices=["kvstore", "rpc", "cache", "all"],
    )
    obs.add_argument(
        "--format", default="table",
        choices=["table", "prometheus", "jsonl"],
    )
    obs.add_argument("--output", default=None,
                     help="write the snapshot to a file instead of stdout")
    obs.set_defaults(func=_cmd_obs)
    obs_sub = obs.add_subparsers(dest="obs_command", required=False)
    watch = obs_sub.add_parser(
        "watch",
        help="replay a recorded SLO timeline (JSONL) as an ANSI view",
    )
    watch.add_argument(
        "input",
        help="timeline JSONL from `repro slo --format jsonl` ('-' = stdin)",
    )
    watch.add_argument(
        "--no-color", action="store_true",
        help="plain text (no ANSI escapes)",
    )
    watch.set_defaults(func=_cmd_obs)

    chaos = sub.add_parser(
        "chaos", help="run the service stack under a fault plan"
    )
    from repro.faults.plan import NAMED_PLANS

    chaos.add_argument(
        "--plan", default="standard", choices=sorted(NAMED_PLANS)
    )
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument(
        "--ops", type=float, default=1.0,
        help="scale factor on each scenario's operation count",
    )
    chaos.add_argument(
        "--min-recovered", type=int, default=0,
        help="exit 1 unless at least this many operations recovered",
    )
    chaos.add_argument(
        "--max-failed", type=int, default=10 ** 9,
        help="exit 1 if more than this many operations failed",
    )
    chaos.set_defaults(func=_cmd_chaos)

    serve = sub.add_parser(
        "serve-sim", help="simulate the serving gateway under a load scenario"
    )
    from repro.serving.simulate import SCENARIOS

    serve.add_argument(
        "--scenario", default="overload", choices=sorted(SCENARIOS)
    )
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument(
        "--scale", type=float, default=1.0,
        help="scale factor on the scenario duration (0.5 = quick smoke)",
    )
    serve.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the gateway executor (0 = all cores)",
    )
    serve.add_argument(
        "--no-degradation", action="store_true",
        help="disable the degradation ladder (serve rung 0 or shed)",
    )
    serve.add_argument(
        "--max-shed-rate", type=float, default=1.0,
        help="exit 1 if the shed fraction exceeds this (0..1)",
    )
    serve.add_argument(
        "--max-p99-ms", type=float, default=None,
        help="exit 1 if latency p99 exceeds this many milliseconds",
    )
    serve.add_argument(
        "--min-served", type=int, default=0,
        help="exit 1 unless at least this many requests were served",
    )
    serve.add_argument(
        "--graphs", default="",
        help="comma-separated trained graph names to add as ladder "
        "candidates (e.g. record,float); empty keeps the flat ladder",
    )
    serve.set_defaults(func=_cmd_serve_sim)

    slo = sub.add_parser(
        "slo",
        help="serving simulation with the rolling-window SLO timeline",
    )
    from repro.serving.simulate import DEFAULT_WINDOW_SECONDS

    slo.add_argument(
        "--scenario", default="overload", choices=sorted(SCENARIOS)
    )
    slo.add_argument("--seed", type=int, default=42)
    slo.add_argument(
        "--scale", type=float, default=1.0,
        help="scale factor on the scenario duration (0.5 = quick smoke)",
    )
    slo.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the gateway executor (0 = all cores)",
    )
    slo.add_argument(
        "--no-degradation", action="store_true",
        help="disable the degradation ladder (serve rung 0 or shed)",
    )
    slo.add_argument(
        "--window-seconds", type=float, default=DEFAULT_WINDOW_SECONDS,
        help="rolling-window width in simulated seconds",
    )
    slo.add_argument(
        "--shed-budget", type=float, default=None,
        help="error budget for the shed-rate SLO (fraction of offered)",
    )
    slo.add_argument(
        "--max-p99-ms", type=float, default=None,
        help="latency-p99 SLO bound in milliseconds",
    )
    slo.add_argument(
        "--format", default="table", choices=["table", "jsonl"],
        help="jsonl is the replayable flight-recorder form",
    )
    slo.add_argument(
        "--output", default=None,
        help="write the timeline to a file instead of stdout",
    )
    slo.add_argument(
        "--max-page-seconds", type=float, default=None,
        help="exit 1 if total PAGE-state seconds exceed this (CI gate)",
    )
    slo.set_defaults(func=_cmd_slo)

    cluster = sub.add_parser(
        "cluster-sim",
        help="simulate the sharded multi-node cluster with autoscaling",
    )
    from repro.cluster.simulate import CLUSTER_SCENARIOS

    cluster.add_argument(
        "--scenario", default="fleet-surge", choices=sorted(CLUSTER_SCENARIOS)
    )
    cluster.add_argument("--seed", type=int, default=7)
    cluster.add_argument(
        "--scale", type=float, default=1.0,
        help="scale factor on the scenario duration (30 = ~1e5 requests)",
    )
    cluster.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes shared by all shards (1 = in-process "
        "with the fleet codec cache; outputs are identical either way)",
    )
    cluster.add_argument(
        "--no-autoscale", action="store_true",
        help="freeze the node count at the scenario's initial fleet",
    )
    cluster.add_argument(
        "--no-rebalance", action="store_true",
        help="disable hot-tenant migration",
    )
    cluster.add_argument(
        "--max-shed-rate", type=float, default=1.0,
        help="exit 1 if the fleet shed fraction exceeds this (0..1)",
    )
    cluster.add_argument(
        "--min-served", type=int, default=0,
        help="exit 1 unless at least this many requests were served",
    )
    cluster.add_argument(
        "--max-page-seconds", type=float, default=None,
        help="exit 1 if total PAGE-state seconds exceed this (CI gate)",
    )
    cluster.set_defaults(func=_cmd_cluster_sim)

    bench_diff = sub.add_parser(
        "bench-diff",
        help="compare two trajectory files, fail on perf regression",
    )
    from repro.trajectory import DEFAULT_MAX_REGRESSION

    bench_diff.add_argument("baseline", help="committed trajectory JSON")
    bench_diff.add_argument("current", help="freshly generated trajectory")
    bench_diff.add_argument(
        "--max-regression", type=float, default=DEFAULT_MAX_REGRESSION,
        help="default allowed relative regression (entries may override)",
    )
    bench_diff.set_defaults(func=_cmd_bench_diff)

    lint = sub.add_parser(
        "lint",
        help="AST-based determinism/contract sanitizer over the tree",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)

    graph = sub.add_parser(
        "graph",
        help="graph compression: train/compress/decompress/describe",
    )
    from repro.graphs.cli import add_graph_arguments

    add_graph_arguments(graph)
    graph.set_defaults(func=_cmd_graph)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that's a clean exit.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
