"""Extension: linked-window streaming vs independent chunk compression.

RPC and log streams are compressed in small chunks; window linking lets
each chunk reference the previous ones, recovering the ratio lost to
chunking (the mechanism behind LZ4 frame block linking and zstd streaming
contexts).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.codecs import get_codec
from repro.codecs.streaming import StreamCompressor, stream_roundtrip_ratio
from repro.corpus import generate_records


@pytest.fixture(scope="module")
def sweep():
    zstd = get_codec("zstd")
    stream_bytes = generate_records(65536, seed=250)
    out = {}
    for chunk_size in (512, 2048, 8192, 32768):
        chunks = [
            stream_bytes[i : i + chunk_size]
            for i in range(0, len(stream_bytes), chunk_size)
        ]
        independent_bytes = sum(len(zstd.compress(c, 1).data) for c in chunks)
        independent = len(stream_bytes) / independent_bytes
        linked = stream_roundtrip_ratio(zstd, chunks, level=1)
        out[chunk_size] = (independent, linked)
    return out


def test_ext_streaming(benchmark, sweep, figure_output):
    rows = [
        [
            f"{chunk_size}B",
            f"{independent:.2f}",
            f"{linked:.2f}",
            f"{linked / independent:.2f}x",
        ]
        for chunk_size, (independent, linked) in sorted(sweep.items())
    ]
    figure_output(
        "ext_streaming",
        format_table(
            ["chunk", "independent ratio", "linked ratio", "gain"],
            rows,
            title="Extension: window linking vs independent chunk compression",
        ),
    )
    # Linking matters most for the smallest chunks; for large chunks the
    # per-frame dictionary overhead makes it a wash (~2%), never a loss
    # beyond that.
    assert sweep[512][1] > 1.3 * sweep[512][0]
    for independent, linked in sweep.values():
        assert linked >= independent * 0.95
    gains = [linked / independent for __, (independent, linked) in sorted(sweep.items())]
    assert gains[0] > gains[-1]

    zstd = get_codec("zstd")
    chunks = [generate_records(1024, seed=251 + i) for i in range(8)]
    benchmark(
        lambda: StreamCompressor(zstd, level=1).compress_stream(chunks)
    )
