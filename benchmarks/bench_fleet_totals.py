"""Section III-B headline numbers: fleet-wide compression cycle shares.

Paper: 4.6% of all compute cycles in (de)compression -- 3.9% Zstd,
0.4% LZ4, 0.3% Zlib.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_series
from repro.fleet import SamplingProfiler, characterize


@pytest.fixture(scope="module")
def characterization():
    return characterize(
        SamplingProfiler(samples_per_day=400_000, seed=36).run(days=30)
    )


def test_fleet_totals(benchmark, characterization, figure_output):
    shares = characterization.algorithm_shares
    text = format_series(
        "fleet compression cycle shares",
        [
            ("total", characterization.compression_share * 100),
            ("zstd (paper 3.9%)", shares.get("zstd", 0) * 100),
            ("lz4 (paper 0.4%)", shares.get("lz4", 0) * 100),
            ("zlib (paper 0.3%)", shares.get("zlib", 0) * 100),
        ],
        value_format="{:.2f}%",
    )
    figure_output("fleet_totals", text + "\n(paper total: 4.6%)")

    assert characterization.compression_share == pytest.approx(0.046, abs=0.006)
    assert shares["zstd"] == pytest.approx(0.039, abs=0.004)
    assert shares["zstd"] > shares["lz4"] > 0
    assert shares["zstd"] > shares["zlib"] > 0

    profiler = SamplingProfiler(samples_per_day=100_000, seed=37)
    benchmark(lambda: characterize(profiler.run(days=2)).compression_share)
