"""Compression auto-tuner (paper Section VI-C).

"Service characteristics often change over time. Hence, the optimal
compression configuration is expected to change over time as it depends on
data characteristics. We expect that there is a room for compression
autotuners in this space."

:class:`AutoTuner` watches a stream of data samples, detects drift in their
byte-level characteristics, and re-runs CompOpt only when the data has
actually moved -- the cost/SLO-aware re-tuning loop the paper sketches.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence

from repro.core.config import CompressionConfig
from repro.core.constraints import Requirement
from repro.core.costmodel import CostModel
from repro.core.engine import CompEngine
from repro.core.optimizer import CompOpt, RankedConfig
from repro.perfmodel import DEFAULT_MACHINE, MachineModel


def byte_histogram(samples: Sequence[bytes]) -> List[float]:
    """Normalized byte-value histogram over a sample set."""
    counts = [0] * 256
    total = 0
    for sample in samples:
        for byte in sample:
            counts[byte] += 1
        total += len(sample)
    if total == 0:
        return [0.0] * 256
    return [c / total for c in counts]


def histogram_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Total-variation distance between two normalized histograms (0..1)."""
    return 0.5 * sum(abs(x - y) for x, y in zip(a, b))


@dataclass
class TuningEvent:
    """One re-tuning decision."""

    reason: str
    drift: float
    chosen: RankedConfig


class AutoTuner:
    """Drift-aware CompOpt wrapper.

    Call :meth:`observe` with fresh production samples; the tuner retunes
    when (a) it has never tuned, or (b) the byte-level distribution has
    drifted past ``drift_threshold`` total-variation distance from the
    distribution it last tuned on.
    """

    def __init__(
        self,
        cost_model: CostModel,
        candidates: Sequence[CompressionConfig],
        requirements: Sequence[Requirement] = (),
        drift_threshold: float = 0.08,
        window: int = 8,
        machine: MachineModel = DEFAULT_MACHINE,
    ) -> None:
        if not candidates:
            raise ValueError("autotuner needs a candidate grid")
        self.cost_model = cost_model
        self.candidates = list(candidates)
        self.requirements = list(requirements)
        self.drift_threshold = drift_threshold
        self.machine = machine
        self._recent: Deque[bytes] = deque(maxlen=window)
        self._tuned_histogram: Optional[List[float]] = None
        self._current: Optional[RankedConfig] = None
        self.history: List[TuningEvent] = []

    @property
    def current_config(self) -> Optional[CompressionConfig]:
        return self._current.config if self._current else None

    @property
    def current(self) -> Optional[RankedConfig]:
        return self._current

    def observe(self, samples: Sequence[bytes]) -> Optional[TuningEvent]:
        """Feed fresh samples; returns a TuningEvent if a retune happened."""
        for sample in samples:
            if sample:
                self._recent.append(bytes(sample))
        if not self._recent:
            return None
        histogram = byte_histogram(list(self._recent))
        if self._tuned_histogram is None:
            return self._retune("initial tuning", 1.0)
        drift = histogram_distance(histogram, self._tuned_histogram)
        if drift >= self.drift_threshold:
            return self._retune(f"drift {drift:.3f} >= {self.drift_threshold}", drift)
        return None

    def _retune(self, reason: str, drift: float) -> TuningEvent:
        engine = CompEngine(list(self._recent), machine=self.machine)
        optimizer = CompOpt(engine, self.cost_model, self.requirements)
        result = optimizer.optimize(self.candidates)
        chosen = result.best if result.best is not None else result.best_any
        self._current = chosen
        self._tuned_histogram = byte_histogram(list(self._recent))
        event = TuningEvent(reason=reason, drift=drift, chosen=chosen)
        self.history.append(event)
        return event
