"""The ``repro graph`` subcommand: train / compress / decompress / describe.

Kept in the graphs package (mirroring ``repro.lint.cli``) so the main CLI
only pays the import when the subcommand runs. All output is a pure
function of the arguments — training is seeded, compression is
deterministic, and nothing prints wall-clock times — so two identical
invocations are byte-identical, which CI checks.
"""

from __future__ import annotations

import argparse
import sys

from repro.graphs.model import (
    GraphSpecError,
    canonical_bytes,
    format_spec,
    parse_spec,
    spec_label,
)


def _load_spec_arg(args: argparse.Namespace):
    """Resolve --graph NAME / --spec FILE into (name, spec)."""
    from repro.graphs.registry import available_graphs, get_graph, register_graph

    if args.graph is not None:
        try:
            return args.graph, get_graph(args.graph)
        except KeyError:
            raise SystemExit(
                f"unknown graph {args.graph!r}; available: {available_graphs()}"
            )
    with open(args.spec, "rb") as handle:
        try:
            spec = parse_spec(handle.read())
        except GraphSpecError as exc:
            raise SystemExit(f"bad graph spec {args.spec}: {exc}")
    name = "adhoc"
    register_graph(name, spec)
    return name, spec


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.graphs.samples import category_samples
    from repro.graphs.search import train_graph

    samples = category_samples(
        args.category, count=args.count, size=args.size, seed=args.seed
    )
    result = train_graph(
        args.category,
        samples,
        generations=args.generations,
        population=args.population,
        seed=args.seed,
    )
    graph = result.ranked_graph.metrics
    flat = result.ranked_flat.metrics
    print(f"category:   {args.category}")
    print(f"samples:    {args.count} x {args.size} bytes (seed {args.seed})")
    print(f"winner:     {spec_label(result.spec)}")
    print(f"graph:      ratio={graph.ratio:.3f}")
    print(f"best flat:  {result.ranked_flat.config.label()} ratio={flat.ratio:.3f}")
    print(f"beats flat: {'yes' if result.beats_flat else 'no'}")
    print(canonical_bytes(result.spec).decode("ascii"))
    if args.out:
        with open(args.out, "wb") as handle:
            handle.write(canonical_bytes(result.spec) + b"\n")
        print(f"spec written to {args.out}")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    from repro.graphs.codec import GraphCompressor

    name, spec = _load_spec_arg(args)
    with open(args.input, "rb") as handle:
        data = handle.read()
    result = GraphCompressor(name, spec).compress(data, 1)
    with open(args.output, "wb") as handle:
        handle.write(result.data)
    print(
        f"{args.input}: {len(data)} -> {len(result.data)} bytes "
        f"(ratio {result.ratio:.3f}) via graph:{name}"
    )
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    from repro.codecs.base import CodecError
    from repro.graphs.codec import GraphCompressor, decode_graph_header

    with open(args.input, "rb") as handle:
        payload = handle.read()
    try:
        spec = decode_graph_header(payload)
        result = GraphCompressor("stream", spec).decompress(
            payload, max_output_bytes=args.max_output_bytes
        )
    except CodecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    with open(args.output, "wb") as handle:
        handle.write(result.data)
    print(
        f"{args.input}: {len(payload)} -> {len(result.data)} bytes "
        f"via {spec_label(spec)}"
    )
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.codecs.base import CodecError

    if args.stream:
        from repro.graphs.stream import decode_stream

        with open(args.stream, "rb") as handle:
            payload = handle.read()
        try:
            spec, frames = decode_stream(payload)
        except CodecError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"stream:  {args.stream} ({len(payload)} bytes)")
        print(f"graph:   {spec_label(spec)}")
        print(f"frames:  {len(frames)}")
        for index, (raw_len, payload_bytes) in enumerate(frames):
            print(
                f"  frame {index}: raw={raw_len} stored={len(payload_bytes)}"
            )
        print(format_spec(spec))
        return 0
    __, spec = _load_spec_arg(args)
    print(format_spec(spec))
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.graphs.registry import available_graphs, get_graph

    for name in available_graphs():
        print(f"graph:{name}  {spec_label(get_graph(name))}")
    return 0


def add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro graph`` sub-subcommands to ``parser``."""
    sub = parser.add_subparsers(dest="graph_command", required=True)

    train = sub.add_parser(
        "train", help="search for a category's best graph (seeded)"
    )
    train.add_argument(
        "--category", required=True, choices=("record", "text", "float")
    )
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--generations", type=int, default=3)
    train.add_argument("--population", type=int, default=4)
    train.add_argument(
        "--count", type=int, default=2, help="number of training samples"
    )
    train.add_argument(
        "--size", type=int, default=65536, help="bytes per training sample"
    )
    train.add_argument(
        "--out", default=None, help="write the winning spec JSON here"
    )
    train.set_defaults(graph_func=_cmd_train)

    compress = sub.add_parser("compress", help="compress a file with a graph")
    compress.add_argument("input")
    compress.add_argument("output")
    group = compress.add_mutually_exclusive_group(required=True)
    group.add_argument("--graph", help="a trained/registered graph name")
    group.add_argument("--spec", help="path to a graph spec JSON file")
    compress.set_defaults(graph_func=_cmd_compress)

    decompress = sub.add_parser(
        "decompress", help="decompress a self-describing graph stream"
    )
    decompress.add_argument("input")
    decompress.add_argument("output")
    decompress.add_argument(
        "--max-output-bytes", type=int, default=None,
        help="bomb guard for untrusted streams",
    )
    decompress.set_defaults(graph_func=_cmd_decompress)

    describe = sub.add_parser(
        "describe", help="render a graph (by name, spec file, or stream)"
    )
    group = describe.add_mutually_exclusive_group(required=True)
    group.add_argument("--graph", help="a trained/registered graph name")
    group.add_argument("--spec", help="path to a graph spec JSON file")
    group.add_argument(
        "--stream", help="path to a compressed stream (reads its header)"
    )
    describe.set_defaults(graph_func=_cmd_describe)

    listing = sub.add_parser("list", help="list resolvable graphs")
    listing.set_defaults(graph_func=_cmd_list)


def run_graph_command(args: argparse.Namespace) -> int:
    return args.graph_func(args)
