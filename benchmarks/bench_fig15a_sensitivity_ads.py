"""Fig. 15(a) / Sensitivity study 1: ADS1 total (compute + network) cost
across algorithms and levels, under a compression-speed floor.

Paper shape: storage is irrelevant (intermediate data not stored); with the
speed requirement, a mid-level Zstd configuration wins (the paper reports
zstd level 4, 73% below the worst configuration, LZ4 level 10).

The speed floor here is 350 MB/s rather than the paper's 200 MB/s: our
calibrated speed curve is flatter at high levels (scaled-down search
depths), so the floor is placed where the paper's was relative to the
curve -- binding between levels 4 and 5. See EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import (
    CompEngine,
    CompOpt,
    CostModel,
    CostParameters,
    MinCompressionSpeed,
)
from repro.core.config import config_grid
from repro.corpus import generate_ads_request


@pytest.fixture(scope="module")
def result():
    samples = [generate_ads_request("B", seed=s) for s in range(3)]
    engine = CompEngine(samples)
    params = CostParameters.from_price_book(
        storage_weight=0.0, network_weight=1.0, beta=1e-7,
    )
    opt = CompOpt(engine, CostModel(params), [MinCompressionSpeed(350e6)])
    grid = config_grid(["zstd", "lz4", "zlib"], levels=range(1, 10))
    return opt.optimize(grid)


def test_fig15a_sensitivity_ads(benchmark, result, figure_output):
    rows = [
        [
            ranked.config.label(),
            "yes" if ranked.feasible else "no",
            f"{ranked.metrics.ratio:.2f}",
            f"{ranked.metrics.compression_speed / 1e6:.0f}",
            f"{ranked.total_cost / result.worst.total_cost:.3f}",
        ]
        for ranked in result.ranked
    ]
    best = result.best
    summary = (
        f"best feasible: {best.config.label()} at "
        f"{best.total_cost / result.worst.total_cost:.3f} of worst "
        f"({(1 - best.total_cost / result.worst.total_cost) * 100:.0f}% below; "
        f"paper: zstd-4, 73% below worst)"
    )
    figure_output(
        "fig15a_sensitivity_ads",
        format_table(
            ["config", "feasible", "ratio", "comp MB/s", "norm cost"],
            rows,
            title="Fig. 15a: ADS1 normalized cost (>=350 MB/s constraint)",
        )
        + "\n" + summary,
    )

    assert best is not None
    assert best.config.algorithm == "zstd"
    assert 3 <= best.config.level <= 5  # paper found level 4
    # substantial gap to the worst configuration (paper: 73%; ours is
    # smaller because our LZ4-HC levels are not as slow as the real ones)
    assert best.total_cost < 0.8 * result.worst.total_cost
    # zlib never meets the speed floor
    assert all(
        not r.feasible for r in result.ranked if r.config.algorithm == "zlib"
    )

    benchmark(lambda: result.best)
