"""LZ4-style codec: byte-aligned LZ encoding with no entropy stage.

The paper singles out LZ4 as "a simple and fast encoder that emits
uncompressed literals" followed by "byte-aligned variable-length integers"
(Section II-B) -- maximizing decompression speed at the cost of ratio. The
block encoding here is the genuine LZ4 block format (nibble tokens, 255-run
length extensions, two-byte little-endian offsets); the frame wrapper is our
own minimal container with an XXH32 content checksum.
"""

from repro.codecs.lz4.codec import LZ4Compressor

__all__ = ["LZ4Compressor"]
