"""Cache LRU eviction + warehouse column pruning tests."""

import numpy as np
import pytest

from repro.corpus import CACHE1_TYPES, generate_cache_items, generate_table
from repro.services import CacheClient, CacheServer, OrcReader, OrcWriter


class TestCacheEviction:
    def test_capacity_respected(self):
        server = CacheServer(capacity_bytes=10_000)
        items = generate_cache_items(CACHE1_TYPES, 200, seed=41)
        for index, (type_name, payload) in enumerate(items):
            server.set(b"k%d" % index, type_name, payload)
        assert server.resident_bytes <= 10_000
        assert server.stats.evictions > 0

    def test_lru_order(self):
        server = CacheServer(capacity_bytes=2000, min_compress_size=10**9)
        server.set(b"a", "t", b"x" * 800)
        server.set(b"b", "t", b"y" * 800)
        client = CacheClient(server)
        client.get(b"a")  # touch a: b becomes LRU
        server.set(b"c", "t", b"z" * 800)  # evicts b
        assert b"a" in server
        assert b"b" not in server
        assert b"c" in server

    def test_unbounded_by_default(self):
        server = CacheServer()
        items = generate_cache_items(CACHE1_TYPES, 100, seed=42)
        for index, (type_name, payload) in enumerate(items):
            server.set(b"k%d" % index, type_name, payload)
        assert server.stats.evictions == 0
        assert len(server) == 100

    def test_compression_stretches_capacity(self):
        """The memory-TCO effect: at a fixed byte budget, a compressing
        cache holds more items, so its hit rate is higher."""
        items = generate_cache_items(CACHE1_TYPES, 250, seed=43)

        def resident_items(compressing: bool) -> int:
            server = CacheServer(
                capacity_bytes=30_000,
                min_compress_size=64 if compressing else 10**9,
            )
            for index, (type_name, payload) in enumerate(items):
                server.set(b"k%d" % index, type_name, payload)
            return len(server)

        assert resident_items(True) > 1.2 * resident_items(False)

    def test_overwrite_does_not_leak_bytes(self):
        server = CacheServer(capacity_bytes=100_000, min_compress_size=10**9)
        for __ in range(10):
            server.set(b"same", "t", b"v" * 500)
        assert server.resident_bytes == 500


class TestColumnPruning:
    @pytest.fixture(scope="class")
    def payload(self):
        table = generate_table(1500, seed=44)
        return OrcWriter(level=1).write(table), table

    def test_projection_returns_requested_columns(self, payload):
        blob, table = payload
        reader = OrcReader()
        result = reader.read(blob, columns=["event_id", "country"])
        assert set(result) == {"event_id", "country"}
        assert np.array_equal(result["event_id"], np.asarray(table["event_id"]))
        assert result["country"] == table["country"]

    def test_pruning_skips_decompression(self, payload):
        blob, __ = payload
        full_reader = OrcReader()
        full_reader.read(blob)
        pruned_reader = OrcReader()
        pruned_reader.read(blob, columns=["event_id"])
        assert pruned_reader.stats.blocks < full_reader.stats.blocks
        assert (
            pruned_reader.stats.decompress_counters.bytes_out
            < full_reader.stats.decompress_counters.bytes_out
        )

    def test_missing_column_raises(self, payload):
        blob, __ = payload
        with pytest.raises(KeyError):
            OrcReader().read(blob, columns=["no_such_column"])

    def test_none_means_all_columns(self, payload):
        blob, table = payload
        result = OrcReader().read(blob, columns=None)
        assert set(result) == set(table)
