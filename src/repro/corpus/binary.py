"""Executable-like binary data (the `mozilla`/`ooffice` corpus members)."""

from __future__ import annotations

from repro.corpus.distributions import SeededSampler

_OPCODE_PATTERNS = [
    b"\x55\x48\x89\xe5",          # push rbp; mov rbp, rsp
    b"\x48\x83\xec\x20",          # sub rsp, 0x20
    b"\x48\x8b\x45\xf8",          # mov rax, [rbp-8]
    b"\xe8\x00\x00\x00\x00",      # call rel32 (zeroed)
    b"\xc9\xc3",                  # leave; ret
    b"\x0f\x1f\x40\x00",          # nop padding
]

_STRINGS = [b"error: %s\x00", b"/usr/lib/libfoo.so\x00", b"GLIBC_2.17\x00", b"main\x00"]


def generate_binary(size: int, seed: int = 0) -> bytes:
    """Machine-code-like bytes: opcode idioms, literal pools, random islands.

    Lands in the 1.5-2.5x ratio band typical of executables -- the hardest
    file class in Fig. 1.
    """
    sampler = SeededSampler(seed)
    out = bytearray()
    while len(out) < size:
        roll = sampler.uniform()
        if roll < 0.55:
            out.extend(sampler.choice(_OPCODE_PATTERNS)[0])
            # immediate operand, low entropy in the high bytes
            out.extend(int(sampler.uniform(0, 4096)).to_bytes(4, "little"))
        elif roll < 0.7:
            out.extend(sampler.choice(_STRINGS)[0])
        elif roll < 0.85:
            out.extend(b"\x00" * int(sampler.uniform(4, 24)))
        else:
            out.extend(sampler.bytes(int(sampler.uniform(8, 40))))
    return bytes(out[:size])
