"""Parallel chunked compression: independent frames over a worker pool.

The engine splits an input into chunks (:mod:`repro.parallel.chunker`),
compresses each chunk as one complete frame on an executor
(:mod:`repro.parallel.executors`), and concatenates the frames. Because
every codec's decoder accepts concatenated frames (the multi-frame
contract in :mod:`repro.codecs`), the output is a *standard* stream: a
plain serial ``codec.decompress`` of the chunked stream yields exactly the
original bytes, with no side-channel chunk directory.

Determinism: the chunk plan depends only on (input size, chunk size) and
frames are reassembled in chunk order, so ``jobs=1`` and ``jobs=N``
produce byte-identical output and identical merged
:class:`~repro.codecs.base.StageCounters` -- the property the equivalence
tests pin and the perfmodel's cycle attribution requires.

Telemetry: workers cannot write to the parent's metrics registry (they
run in forked/spawned children), so each task ships its measured duration
back with its frame and the parent stitches per-chunk spans and counters
into its own registry (:func:`repro.obs.spans.record_external_span`).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional, Sequence, Tuple, Union

from repro.codecs.base import (
    CompressResult,
    CorruptDataError,
    Compressor,
    DecompressResult,
    StageCounters,
    get_codec,
)
from repro.obs.state import OBS_STATE
from repro.parallel.chunker import DEFAULT_CHUNK_SIZE, plan_chunks
from repro.parallel.executors import SerialExecutor, make_executor

CodecSpec = Union[str, Compressor]


@dataclass(frozen=True)
class ChunkReport:
    """What one worker shipped back besides its frame bytes."""

    index: int
    raw_bytes: int
    frame_bytes: int
    seconds: float


@dataclass
class ChunkedCompressResult(CompressResult):
    """A :class:`CompressResult` plus the chunk-level evidence."""

    chunk_size: int = DEFAULT_CHUNK_SIZE
    reports: Tuple[ChunkReport, ...] = ()

    @property
    def chunk_count(self) -> int:
        return len(self.reports)


def _resolve_codec(codec: CodecSpec) -> Compressor:
    return get_codec(codec) if isinstance(codec, str) else codec


# -- worker tasks (module level: must be picklable for spawn pools) --------


def _compress_chunk(task) -> Tuple[int, bytes, StageCounters, float]:
    """Compress one chunk into one frame; runs in a worker or in-process."""
    index, codec_name, level, dictionary, chunk = task
    codec = get_codec(codec_name)
    # repro: lint-ok[D001] -- per-chunk wall duration is shipped back as
    # telemetry for span stitching; frame bytes are seed-deterministic
    start = perf_counter()
    result = codec.compress(chunk, level, dictionary=dictionary)
    return index, result.data, result.counters, perf_counter() - start  # repro: lint-ok[D001] -- telemetry-only wall measurement


def _decompress_frame(task) -> Tuple[int, bytes, StageCounters, float]:
    """Decompress one frame back to its chunk."""
    index, codec_name, dictionary, frame = task
    codec = get_codec(codec_name)
    # repro: lint-ok[D001] -- per-chunk wall duration is shipped back as
    # telemetry for span stitching; chunk bytes are seed-deterministic
    start = perf_counter()
    result = codec.decompress(frame, dictionary=dictionary)
    return index, result.data, result.counters, perf_counter() - start  # repro: lint-ok[D001] -- telemetry-only wall measurement


def _stitch_chunk_telemetry(
    codec_name: str,
    direction: str,
    executor_kind: str,
    outputs: Sequence[Tuple[int, bytes, StageCounters, float]],
) -> None:
    from repro.obs.instrument import record_parallel_chunk
    from repro.obs.spans import record_external_span

    for index, payload, counters, seconds in outputs:
        # repro: lint-ok[O001] -- caller-guarded: both call sites sit
        # inside `if obs_on:` blocks (compress_chunked/decompress_chunked)
        record_external_span(
            f"parallel.chunk.{direction}",
            seconds,
            codec=codec_name,
            index=index,
            bytes_in=counters.bytes_in,
        )
        # repro: lint-ok[O001] -- caller-guarded (see record_external_span above)
        record_parallel_chunk(
            codec_name, direction, seconds, counters.bytes_in, executor_kind
        )


def compress_chunked(
    codec: CodecSpec,
    data: bytes,
    level: Optional[int] = None,
    dictionary: Optional[bytes] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    jobs: Optional[int] = 1,
    executor=None,
) -> ChunkedCompressResult:
    """Compress ``data`` as concatenated independent frames.

    ``jobs`` picks the executor (1 = in-process, N = pool, 0/None = all
    cores); pass ``executor`` to reuse a long-lived pool across calls.
    Every chunk sees the same ``dictionary`` (each frame is independent).
    """
    resolved = _resolve_codec(codec)
    if level is None:
        level = resolved.default_level
    data = bytes(data)
    spans = plan_chunks(len(data), chunk_size)
    tasks = [
        (index, resolved.name, level, dictionary, data[start:stop])
        for index, (start, stop) in enumerate(spans)
    ]

    own_executor = executor is None
    if own_executor:
        executor = make_executor(jobs) if len(tasks) > 1 else SerialExecutor()
    obs_on = OBS_STATE.enabled
    # repro: lint-ok[D001] -- assembly-span wall timing, telemetry only
    started = perf_counter() if obs_on else 0.0
    try:
        outputs = executor.map(_compress_chunk, tasks)
    finally:
        if own_executor:
            executor.close()
    outputs.sort(key=lambda item: item[0])

    merged = StageCounters()
    frames: List[bytes] = []
    reports: List[ChunkReport] = []
    for index, frame, counters, seconds in outputs:
        merged.merge(counters)
        frames.append(frame)
        reports.append(
            ChunkReport(
                index=index,
                raw_bytes=counters.bytes_in,
                frame_bytes=len(frame),
                seconds=seconds,
            )
        )
    payload = b"".join(frames)

    if obs_on:
        from repro.obs.spans import record_external_span, span

        with span(
            "parallel.compress",
            codec=resolved.name,
            level=level,
            jobs=getattr(executor, "jobs", 1),
            chunks=len(tasks),
            chunk_size=chunk_size,
        ):
            _stitch_chunk_telemetry(
                resolved.name, "compress", getattr(executor, "kind", "serial"), outputs
            )
            record_external_span(
                # repro: lint-ok[D001] -- assembly-span wall timing, telemetry only
                "parallel.assemble", perf_counter() - started, codec=resolved.name
            )

    return ChunkedCompressResult(
        data=payload,
        counters=merged,
        codec=resolved.name,
        level=level,
        chunk_size=chunk_size,
        reports=tuple(reports),
    )


# -- frame splitting for parallel decode -----------------------------------


def _zstd_frame_spans(payload: bytes) -> List[Tuple[int, int]]:
    from repro.codecs.zstd import inspect_frame

    spans: List[Tuple[int, int]] = []
    pos = 0
    while pos < len(payload):
        info = inspect_frame(payload[pos:])
        spans.append((pos, pos + info.compressed_size))
        pos += info.compressed_size
    return spans


def _lz4_frame_spans(payload: bytes) -> List[Tuple[int, int]]:
    magic = b"RLZ4"
    uncompressed_flag = 0x80000000
    spans: List[Tuple[int, int]] = []
    pos = 0
    while pos < len(payload):
        start = pos
        if payload[pos : pos + 4] != magic or len(payload) - pos < 12:
            raise CorruptDataError("bad LZ4 frame magic")
        pos += 12
        while True:
            if pos + 4 > len(payload):
                raise CorruptDataError("truncated LZ4 frame")
            block_size = int.from_bytes(payload[pos : pos + 4], "little")
            pos += 4
            if block_size == 0:
                break
            pos += block_size & ~uncompressed_flag
        pos += 4  # content checksum
        if pos > len(payload):
            raise CorruptDataError("truncated LZ4 frame")
        spans.append((start, pos))
    return spans


#: codecs whose frame boundaries can be found by a cheap header walk;
#: deflate-family members interleave data and trailer bitwise, so their
#: boundaries are only known after inflating -- those decode serially.
_FRAME_SPLITTERS = {
    "zstd": _zstd_frame_spans,
    "lz4": _lz4_frame_spans,
}


def decompress_chunked(
    codec: CodecSpec,
    payload: bytes,
    dictionary: Optional[bytes] = None,
    jobs: Optional[int] = 1,
    max_output_bytes: Optional[int] = None,
    executor=None,
) -> DecompressResult:
    """Decompress a (possibly multi-frame) stream, in parallel when possible.

    Output is always identical to ``codec.decompress(payload)``. Frames
    are split by a header walk where the format allows it (zstd, lz4);
    otherwise -- deflate-family streams, single-frame payloads, or when
    ``max_output_bytes`` needs sequential budget accounting -- the serial
    decoder runs directly.
    """
    resolved = _resolve_codec(codec)
    splitter = _FRAME_SPLITTERS.get(resolved.name)
    spans = None
    if splitter is not None and max_output_bytes is None:
        try:
            spans = splitter(bytes(payload))
        except CorruptDataError:
            spans = None  # malformed: let the serial decoder raise properly
    if spans is None or len(spans) <= 1:
        return resolved.decompress(
            payload, dictionary=dictionary, max_output_bytes=max_output_bytes
        )

    payload = bytes(payload)
    tasks = [
        (index, resolved.name, dictionary, payload[start:stop])
        for index, (start, stop) in enumerate(spans)
    ]
    own_executor = executor is None
    if own_executor:
        executor = make_executor(jobs)
    try:
        outputs = executor.map(_decompress_frame, tasks)
    finally:
        if own_executor:
            executor.close()
    outputs.sort(key=lambda item: item[0])

    merged = StageCounters()
    chunks: List[bytes] = []
    for __, chunk, counters, __seconds in outputs:
        merged.merge(counters)
        chunks.append(chunk)

    if OBS_STATE.enabled:
        from repro.obs.spans import span

        with span(
            "parallel.decompress",
            codec=resolved.name,
            jobs=getattr(executor, "jobs", 1),
            chunks=len(tasks),
        ):
            _stitch_chunk_telemetry(
                resolved.name,
                "decompress",
                getattr(executor, "kind", "serial"),
                outputs,
            )

    return DecompressResult(
        data=b"".join(chunks), counters=merged, codec=resolved.name
    )
