"""The persisted performance trajectory and its regression gate.

ROADMAP calls for speedups to be "a tracked curve, not a claim": every
benchmark entry point normalizes its headline numbers into one JSON
artifact (``BENCH_trajectory.json``), and ``repro bench-diff`` compares
two such artifacts — committed baseline vs freshly generated — failing
when any shared metric regressed beyond its tolerance. CI regenerates
the deterministic entries each run and gates on the committed baseline,
so the perf curve persists and regressions fail loudly.

Two kinds of entries coexist:

- **deterministic** metrics (modeled latency, goodput, compression
  ratios) are pure functions of seed and payload; they carry the default
  tolerance and any drift means the *code* changed behavior;
- **measured** metrics (wall-clock overhead ratios) are machine-noisy;
  benches append them with an explicit per-entry ``tolerance`` and they
  are only compared when both files carry them.

File shape (sorted keys, fixed-precision floats, diff-clean)::

    {"schema": 1, "entries": {"<name>": {"value": ..., "unit": ...,
        "higher_is_better": ..., "tolerance": ...?}, ...}}
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.export import round_floats

SCHEMA_VERSION = 1
#: default allowed relative regression before the gate fails
DEFAULT_MAX_REGRESSION = 0.10


@dataclass(frozen=True)
class TrajectoryEntry:
    """One normalized benchmark result."""

    name: str
    value: float
    unit: str
    higher_is_better: bool
    #: per-entry tolerance override (None = the gate's default)
    tolerance: Optional[float] = None


def _entry_to_dict(entry: TrajectoryEntry) -> dict:
    out = {
        "value": entry.value,
        "unit": entry.unit,
        "higher_is_better": entry.higher_is_better,
    }
    if entry.tolerance is not None:
        out["tolerance"] = entry.tolerance
    return out


def load_trajectory(path: str) -> Dict[str, TrajectoryEntry]:
    """Read a trajectory file into name-keyed entries."""
    with open(path) as handle:
        payload = json.load(handle)
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported trajectory schema {schema!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    entries: Dict[str, TrajectoryEntry] = {}
    for name, raw in payload.get("entries", {}).items():
        entries[name] = TrajectoryEntry(
            name=name,
            value=float(raw["value"]),
            unit=str(raw.get("unit", "")),
            higher_is_better=bool(raw.get("higher_is_better", True)),
            tolerance=(
                float(raw["tolerance"]) if "tolerance" in raw else None
            ),
        )
    return entries


def save_trajectory(path: str, entries: Dict[str, TrajectoryEntry]) -> None:
    """Write the trajectory file (sorted keys, fixed precision)."""
    payload = {
        "schema": SCHEMA_VERSION,
        "entries": {
            name: _entry_to_dict(entry)
            for name, entry in sorted(entries.items())
        },
    }
    with open(path, "w") as handle:
        json.dump(round_floats(payload), handle, sort_keys=True, indent=2)
        handle.write("\n")


def record_entry(path: str, entry: TrajectoryEntry) -> None:
    """Append/update one entry in a trajectory file (creating it if
    absent) — the helper every bench entry point calls."""
    entries: Dict[str, TrajectoryEntry] = {}
    if os.path.exists(path):
        entries = load_trajectory(path)
    entries[entry.name] = entry
    save_trajectory(path, entries)


@dataclass(frozen=True)
class DiffRow:
    """One metric's comparison between baseline and current."""

    name: str
    status: str  # "ok" | "regressed" | "improved" | "missing" | "new"
    baseline: Optional[float]
    current: Optional[float]
    #: signed relative change in the *good* direction (+ = better)
    change: Optional[float]
    tolerance: float
    unit: str


def _relative_gain(entry: TrajectoryEntry, current: float) -> Optional[float]:
    """Relative change where positive always means 'got better'."""
    if entry.value == 0:
        return None
    raw = (current - entry.value) / abs(entry.value)
    return raw if entry.higher_is_better else -raw


def compare_trajectories(
    baseline: Dict[str, TrajectoryEntry],
    current: Dict[str, TrajectoryEntry],
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> List[DiffRow]:
    """Compare entry sets; rows sorted by name, worst problems intact.

    A metric present in the baseline but absent from the current file is
    ``missing`` (and fails the gate — silently dropping a tracked metric
    is itself a regression). Current-only metrics are ``new`` and
    informational.
    """
    rows: List[DiffRow] = []
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        if base is None:
            rows.append(
                DiffRow(name, "new", None, cur.value, None,
                        max_regression, cur.unit)
            )
            continue
        tolerance = (
            base.tolerance if base.tolerance is not None else max_regression
        )
        if cur is None:
            rows.append(
                DiffRow(name, "missing", base.value, None, None,
                        tolerance, base.unit)
            )
            continue
        gain = _relative_gain(base, cur.value)
        if gain is None:
            status = "ok" if cur.value == base.value else "regressed"
        elif gain < -tolerance:
            status = "regressed"
        elif gain > tolerance:
            status = "improved"
        else:
            status = "ok"
        rows.append(
            DiffRow(name, status, base.value, cur.value, gain,
                    tolerance, base.unit)
        )
    return rows


def has_regressions(rows: List[DiffRow]) -> bool:
    return any(row.status in ("regressed", "missing") for row in rows)


def format_diff(rows: List[DiffRow]) -> str:
    """Render the comparison; byte-identical for identical inputs."""
    lines = [
        f"{'metric':42s} {'baseline':>12s} {'current':>12s} "
        f"{'change':>8s}  status"
    ]
    for row in rows:
        base = "-" if row.baseline is None else f"{row.baseline:.4g}"
        cur = "-" if row.current is None else f"{row.current:.4g}"
        change = "-" if row.change is None else f"{row.change * 100:+.1f}%"
        marker = "!" if row.status in ("regressed", "missing") else " "
        lines.append(
            f"{row.name:42s} {base:>12s} {cur:>12s} {change:>8s} "
            f"{marker} {row.status}"
        )
    bad = [r for r in rows if r.status in ("regressed", "missing")]
    lines.append("")
    if bad:
        lines.append(
            f"FAIL: {len(bad)} metric(s) regressed or went missing "
            f"(tolerance per entry, default "
            f"{DEFAULT_MAX_REGRESSION * 100:.0f}%)"
        )
    else:
        lines.append("all tracked metrics within tolerance")
    return "\n".join(lines)
