"""Section VI: workload categories A-D and the HW-offload guidance.

"datacenter applications can be categorized into A) Compression
speed-sensitive ... B) Decompression speed-sensitive ... C) Latency-
insensitive ... D) Small data-friendly" (VI-A), and "services that belong
to Category A and C ... might prefer compression HWs ... while it would be
better to run compression on CPU for Category B and D ... unless the
accelerator is located very closely (such as on-chip)" (VI-B).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core.categories import (
    WorkloadCategory,
    WorkloadTraits,
    classify_catalog,
    offload_recommendation,
)

_PLACEMENTS = {
    "on-chip (0.5us)": 0.5e-6,
    "pcie (20us)": 20e-6,
}

_TRAITS = {
    "DW1": WorkloadTraits(262144, 0.2, False),
    "DW2": WorkloadTraits(262144, 0.4, True),
    "KVSTORE1": WorkloadTraits(16384, 6.0, True),
    "CACHE1": WorkloadTraits(400, 20.0, True, typed_small_messages=True),
}


@pytest.fixture(scope="module")
def advice_grid():
    out = {}
    for service, traits in _TRAITS.items():
        for placement, overhead in _PLACEMENTS.items():
            out[(service, placement)] = offload_recommendation(traits, overhead)
    return out


def test_sec6_categories(benchmark, advice_grid, figure_output):
    catalog_rows = [
        [name, f"{category.value} ({category.name.replace('_', ' ').lower()})"]
        for name, category in classify_catalog()
    ]
    advice_rows = [
        [service, placement, advice.category.value,
         "offload" if advice.offload else "stay on CPU"]
        for (service, placement), advice in sorted(advice_grid.items())
    ]
    figure_output(
        "sec6_categories",
        format_table(["service", "category"], catalog_rows,
                     title="Section VI-A: Table-I services categorized")
        + "\n\n"
        + format_table(["service", "accelerator", "cat", "recommendation"],
                       advice_rows,
                       title="Section VI-B: offload guidance by placement"),
    )
    # The catalog spans all four categories.
    assert {c for __, c in classify_catalog()} == set(WorkloadCategory)
    # A/C offload everywhere; D offloads only on-chip (VI-B's claim).
    assert advice_grid[("DW1", "pcie (20us)")].offload
    assert advice_grid[("DW2", "pcie (20us)")].offload
    assert not advice_grid[("CACHE1", "pcie (20us)")].offload
    assert advice_grid[("CACHE1", "on-chip (0.5us)")].offload

    benchmark(lambda: classify_catalog())
