"""Seeded fuzz: decompress(compress(x)) == x for every codec, any seed.

The corpus generator is driven by ``REPRO_FUZZ_SEED`` (CI sets it from the
date so each nightly run walks a fresh corpus; locally it defaults to a
fixed value for reproducibility). Every assertion message carries the seed
so a red run can be replayed with::

    REPRO_FUZZ_SEED=<seed> pytest tests/codecs/test_fuzz_roundtrip.py

Sizes deliberately straddle the parallel engine's chunk boundary
(0, 1, chunk-1, chunk, chunk+1) plus repetitive and incompressible
payloads -- the regimes where off-by-one framing bugs live.
"""

import os
import random

import pytest

from repro.codecs import available_codecs, get_codec
from repro.parallel import compress_chunked

FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20230913"))
_CHUNK = 4096
_SIZES = [0, 1, 37, _CHUNK - 1, _CHUNK, _CHUNK + 1]
_STYLES = ["random", "repetitive", "mixed"]


def _corpus(seed: int, size: int, style: str) -> bytes:
    rng = random.Random(f"{seed}:{size}:{style}")
    if style == "random":
        return rng.randbytes(size)
    if style == "repetitive":
        motif = rng.randbytes(rng.randint(1, 32)) or b"\x00"
        return (motif * (size // len(motif) + 1))[:size]
    # mixed: repetitive runs interleaved with noise
    out = bytearray()
    while len(out) < size:
        if rng.random() < 0.5:
            out.extend(rng.randbytes(rng.randint(1, 64)))
        else:
            out.extend(bytes([rng.getrandbits(8)]) * rng.randint(4, 96))
    return bytes(out[:size])


@pytest.mark.parametrize("style", _STYLES)
@pytest.mark.parametrize("size", _SIZES)
@pytest.mark.parametrize("codec_name", available_codecs())
def test_fuzz_roundtrip(codec_name, size, style):
    codec = get_codec(codec_name)
    data = _corpus(FUZZ_SEED, size, style)
    result = codec.compress(data, codec.default_level)
    decoded = codec.decompress(result.data)
    assert decoded.data == data, (
        f"serial roundtrip mismatch: codec={codec_name} size={size} "
        f"style={style} REPRO_FUZZ_SEED={FUZZ_SEED}"
    )


@pytest.mark.parametrize("style", _STYLES)
@pytest.mark.parametrize("size", _SIZES)
@pytest.mark.parametrize("codec_name", available_codecs())
def test_fuzz_chunked_matches_serial_decode(codec_name, size, style):
    """Chunked frames must decode to the same bytes through the normal path."""
    codec = get_codec(codec_name)
    data = _corpus(FUZZ_SEED, size, style)
    chunked = compress_chunked(
        codec, data, codec.default_level, chunk_size=_CHUNK, jobs=1
    )
    assert codec.decompress(chunked.data).data == data, (
        f"chunked roundtrip mismatch: codec={codec_name} size={size} "
        f"style={style} REPRO_FUZZ_SEED={FUZZ_SEED}"
    )


@pytest.mark.parametrize("codec_name", available_codecs())
def test_fuzz_random_levels(codec_name):
    """A handful of (level, size) draws per run, seed-replayable."""
    codec = get_codec(codec_name)
    rng = random.Random(f"{FUZZ_SEED}:{codec_name}:levels")
    for _ in range(6):
        level = rng.choice(codec.levels())
        size = rng.randint(0, 3 * _CHUNK)
        data = _corpus(FUZZ_SEED, size, rng.choice(_STYLES))
        result = codec.compress(data, level)
        assert codec.decompress(result.data).data == data, (
            f"roundtrip mismatch: codec={codec_name} level={level} "
            f"size={size} REPRO_FUZZ_SEED={FUZZ_SEED}"
        )
