"""Dynamic-programming ("optimal") parser for high compression levels.

Finds a near-minimal-cost parse under an estimated bit-price model, the
btopt-style strategy the paper describes as "slow dynamic programming
algorithms which attempt to find the optimal encoding". Match candidates come
from full hash chains; transitions are evaluated at match-length price-bucket
boundaries, which preserves optimality within the piecewise-constant price
model while keeping the scan near-linear.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional

from repro.codecs.base import StageCounters
from repro.codecs.lz77 import Token, match_length
from repro.codecs.matchfinders.base import (
    MatchFinder,
    MatchFinderParams,
    hash_positions,
)

_INFINITY = float("inf")


def literal_price() -> int:
    """Estimated cost of one literal byte, in bits (entropy-coded)."""
    return 6


def match_price(length: int, offset: int) -> int:
    """Estimated cost of a match, in bits.

    Offset costs its log2 (FSE code + extra bits); length costs a small code
    plus log2-scaled extra bits; 4 bits of fixed sequence overhead.
    """
    return 4 + offset.bit_length() + 4 + max(0, (length - 3).bit_length() - 3)


@lru_cache(maxsize=4096)
def _length_breakpoints(min_len: int, max_len: int) -> List[int]:
    """Lengths worth evaluating: bucket boundaries of the length price."""
    lengths = {max_len, min_len}
    # Price changes when (length - 3).bit_length() crosses a power of two.
    boundary = 8
    while boundary <= max_len:
        if boundary >= min_len:
            lengths.add(boundary)
        if boundary + 3 <= max_len and boundary + 3 >= min_len:
            lengths.add(boundary + 3)
        boundary <<= 1
    return sorted(lengths)


class OptimalMatchFinder(MatchFinder):
    """Shortest-path parse over the block under the bit-price model."""

    def parse(
        self,
        data: bytes,
        start: int,
        params: MatchFinderParams,
        counters: Optional[StageCounters] = None,
    ) -> List[Token]:
        counters = counters if counters is not None else StageCounters()
        n = len(data)
        min_match = params.min_match
        hash_bytes = min(4, min_match)
        hashes = hash_positions(data, params.hash_log, hash_bytes)
        head = [-1] * (1 << params.hash_log)
        prev = [-1] * n
        counters.setup_entries += len(head) + 3 * n  # chains + DP arrays
        max_offset = params.effective_max_offset()
        max_match = params.max_match
        depth = params.search_depth
        last_hashable = len(hashes)

        # Index history so matches can reach a dictionary prefix.
        for pos in range(min(start, last_hashable)):
            h = hashes[pos]
            prev[pos] = head[h]
            head[h] = pos

        size = n - start
        cost = [_INFINITY] * (size + 1)
        cost[0] = 0.0
        # parent[j] = (previous_index, match_length, offset); match_length 0
        # encodes a literal step.
        parent: List[Optional[tuple]] = [None] * (size + 1)
        lit_price = literal_price()

        # Past a match this long we stop searching until the match ends --
        # the "sufficient length" shortcut of btopt-style parsers, without
        # which RLE-like data degenerates to quadratic scanning.
        sufficient = 512
        search_resume = start

        for i in range(start, n):
            j = i - start
            here = cost[j]
            if here == _INFINITY:
                continue
            # Literal transition.
            if here + lit_price < cost[j + 1]:
                cost[j + 1] = here + lit_price
                parent[j + 1] = (j, 0, 0)
            if i + min_match > n or i >= last_hashable:
                continue
            if i < search_resume:
                # Still inside a sufficiently long match: index, don't search.
                h = hashes[i]
                prev[i] = head[h]
                head[h] = i
                continue
            counters.positions_scanned += 1
            counters.hash_probes += 1
            candidate = head[hashes[i]]
            lowest = i - max_offset
            probes = depth
            best_seen = min_match - 1
            while candidate >= 0 and candidate >= lowest and probes > 0:
                probes -= 1
                counters.match_candidates += 1
                limit = min(n - i, max_match)
                if (
                    best_seen < limit
                    and data[candidate + best_seen] == data[i + best_seen]
                ):
                    length = match_length(data, candidate, i, limit)
                    counters.match_bytes_compared += length + 1
                    if length >= min_match:
                        if length > best_seen:
                            best_seen = length
                        offset = i - candidate
                        for ml in _length_breakpoints(min_match, length):
                            arrival = here + match_price(ml, offset)
                            if arrival < cost[j + ml]:
                                cost[j + ml] = arrival
                                parent[j + ml] = (j, ml, offset)
                        if best_seen >= min(limit, sufficient):
                            break
                candidate = prev[candidate]
            if best_seen >= sufficient:
                search_resume = i + best_seen
            # Insert current position into the chains.
            h = hashes[i]
            prev[i] = head[h]
            head[h] = i

        # Walk parents back from the end, then emit forward.
        steps: List[tuple] = []
        j = size
        while j > 0:
            entry = parent[j]
            if entry is None:
                raise AssertionError("optimal parse lost the path")
            steps.append(entry)
            j = entry[0]
        steps.reverse()

        tokens: List[Token] = []
        literal_run = 0
        for __, ml, offset in steps:
            if ml == 0:
                literal_run += 1
            else:
                tokens.append(Token(literal_run, ml, offset))
                counters.sequences_emitted += 1
                counters.literals_emitted += literal_run
                literal_run = 0
        if literal_run:
            tokens.append(Token(literal_run, 0, 0))
        return tokens
