"""CompSim: evaluating hardware-accelerator candidates inside CompOpt.

"CompOpt also provides CompSim, an interface for future compression
accelerator modeling ... HW developers can implement their simplified
version of the compression algorithm in CompSim ... the hardware designer
can set a multiplication factor gamma ... CompOpt treats CompSim as another
compressor when evaluating different compression configuration candidates"
(Section V-A).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.codecs import Compressor, ZstdCompressor
from repro.codecs.base import StageCounters
from repro.codecs.matchfinders import MatchFinderParams
from repro.core.engine import CompEngine
from repro.perfmodel import DEFAULT_MACHINE, HardwareAccelerator, MachineModel


class WindowLimitedZstd(ZstdCompressor):
    """A HW-implementation-friendly Zstd variant with a fixed match window.

    Accelerators cannot afford software's flexible windows; the match-window
    sweep of sensitivity study 3 (Fig. 16) searches for the smallest window
    whose cost reaches the software plateau. Instances are registered with
    the codec registry under ``zstd-w<log>``.
    """

    def __init__(self, window_log: int) -> None:
        if not 10 <= window_log <= 27:
            raise ValueError("window_log must be in 10..27")
        self.window_log = window_log
        self.name = f"zstd-w{window_log}"

    def params_for_level(self, level: int, input_size: int = 0) -> MatchFinderParams:
        params = super().params_for_level(level, input_size)
        return replace(
            params,
            window_log=min(params.window_log, self.window_log),
            # A smaller window needs a proportionally smaller hash table.
            hash_log=min(params.hash_log, max(6, self.window_log - 2)),
        )


class CompSim:
    """Builds accelerator candidates and registers them with a CompEngine."""

    def __init__(
        self,
        engine: CompEngine,
        machine: MachineModel = DEFAULT_MACHINE,
    ) -> None:
        self.engine = engine
        self.machine = machine

    def add_accelerator(
        self,
        name: str,
        codec: Optional[Compressor] = None,
        gamma: float = 10.0,
        decompress_gamma: Optional[float] = None,
        offload_overhead_seconds: float = 0.0,
        window_log: Optional[int] = None,
    ) -> HardwareAccelerator:
        """Register an accelerator model; returns the accelerator.

        Either pass an explicit simplified ``codec``, or a ``window_log`` to
        wrap the window-limited Zstd variant.
        """
        if codec is None:
            if window_log is None:
                raise ValueError("provide a codec or a window_log")
            codec = WindowLimitedZstd(window_log)
        accelerator = HardwareAccelerator(
            name=name,
            codec=codec,
            gamma=gamma,
            decompress_gamma=decompress_gamma,
            offload_overhead_seconds=offload_overhead_seconds,
            machine=self.machine,
        )
        self.engine.register_accelerator(accelerator)
        return accelerator
