"""Property tests for the consistent-hash ring.

Three invariants, each checked across hundreds of seeded-random
configurations (node counts, vnode counts, replica counts, key
populations):

- **balance** — with enough virtual nodes, no node's share of a large
  key population strays unboundedly from the mean;
- **minimal movement** — adding a node only moves keys *onto* it;
  removing a node only moves the keys it owned;
- **replica sets** — the right size, no duplicate nodes, primary first,
  stable under repeated calls.

Plain ``random.Random`` drives the sweep (the ring itself must be
process-independent — it hashes with blake2b, never ``hash()``), so a
failing configuration prints its seed and reproduces exactly.
"""

import random

import pytest

from repro.cluster.ring import DEFAULT_VNODES, HashRing, stable_hash


def _keys(rng: random.Random, count: int) -> list:
    return [f"tenant-{rng.randrange(10 ** 9)}-{i}" for i in range(count)]


def test_stable_hash_is_process_independent():
    # pinned values: these must never change across runs or machines,
    # or every persisted placement decision silently reshuffles
    assert stable_hash("tenant-a") == stable_hash("tenant-a")
    assert stable_hash("tenant-a") != stable_hash("tenant-b")
    assert stable_hash("") == 0xE4A6A0577479B2B4


def test_empty_ring_raises():
    ring = HashRing()
    with pytest.raises(ValueError):
        ring.primary("key")
    assert ring.replica_set("key") == []


def test_duplicate_node_rejected():
    ring = HashRing(nodes=["a"])
    with pytest.raises(ValueError):
        ring.add_node("a")


def test_balance_across_seeded_configs():
    """Max/mean load stays bounded over 100 random configurations."""
    for seed in range(100):
        rng = random.Random(f"balance:{seed}")
        node_count = rng.randrange(3, 25)
        ring = HashRing(
            nodes=[f"node-{i:02d}" for i in range(node_count)],
            vnodes=DEFAULT_VNODES,
        )
        keys = _keys(rng, 2000)
        counts = {node: 0 for node in ring.nodes()}
        for key in keys:
            counts[ring.primary(key)] += 1
        mean = len(keys) / node_count
        worst = max(counts.values()) / mean
        # 64 vnodes keeps the worst shard within ~2.4x of the mean for
        # every seed in this sweep; a hashing regression (e.g. points
        # clustering) blows straight past it
        assert worst <= 2.4, (
            f"seed {seed}: worst node carries {worst:.2f}x the mean "
            f"({node_count} nodes)"
        )


def test_add_node_moves_keys_only_onto_it():
    for seed in range(60):
        rng = random.Random(f"add:{seed}")
        node_count = rng.randrange(2, 16)
        ring = HashRing(
            nodes=[f"node-{i:02d}" for i in range(node_count)],
            vnodes=rng.choice([16, 32, 64]),
        )
        keys = _keys(rng, 400)
        before = ring.assignments(keys)
        ring.add_node("node-new")
        after = ring.assignments(keys)
        moved = [k for k in keys if before[k] != after[k]]
        assert all(after[k] == "node-new" for k in moved), (
            f"seed {seed}: a key moved between pre-existing nodes"
        )
        # and the newcomer takes roughly its fair share, not everything
        assert len(moved) <= len(keys) * 3.5 / (node_count + 1), (
            f"seed {seed}: {len(moved)} keys moved to the new node"
        )


def test_remove_node_moves_only_its_keys():
    for seed in range(60):
        rng = random.Random(f"remove:{seed}")
        node_count = rng.randrange(3, 16)
        ring = HashRing(
            nodes=[f"node-{i:02d}" for i in range(node_count)],
            vnodes=rng.choice([16, 32, 64]),
        )
        keys = _keys(rng, 400)
        before = ring.assignments(keys)
        victim = f"node-{rng.randrange(node_count):02d}"
        ring.remove_node(victim)
        after = ring.assignments(keys)
        for key in keys:
            if before[key] == victim:
                assert after[key] != victim
            else:
                assert after[key] == before[key], (
                    f"seed {seed}: {key!r} moved although {victim} "
                    f"never owned it"
                )


def test_replica_sets_disjoint_and_sized():
    for seed in range(60):
        rng = random.Random(f"replicas:{seed}")
        node_count = rng.randrange(1, 12)
        replicas = rng.randrange(1, 5)
        ring = HashRing(
            nodes=[f"node-{i:02d}" for i in range(node_count)],
            vnodes=rng.choice([8, 16, 32]),
            replicas=replicas,
        )
        for key in _keys(rng, 50):
            replica_set = ring.replica_set(key)
            assert len(replica_set) == min(replicas, node_count)
            assert len(set(replica_set)) == len(replica_set)
            assert replica_set[0] == ring.primary(key)
            # stable: same key, same answer
            assert ring.replica_set(key) == replica_set


def test_assignments_deterministic_across_instances():
    """Two independently built rings agree exactly — placement is a
    pure function of (nodes, vnodes), never construction order."""
    for seed in range(30):
        rng = random.Random(f"det:{seed}")
        names = [f"node-{i:02d}" for i in range(rng.randrange(2, 10))]
        keys = _keys(rng, 200)
        a = HashRing(nodes=names, vnodes=32)
        b = HashRing(vnodes=32)
        for name in reversed(names):
            b.add_node(name)
        assert a.assignments(keys) == b.assignments(keys)
