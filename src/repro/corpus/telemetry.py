"""Float64 telemetry time series (a numeric file class).

Metrics pipelines store wide arrays of slowly drifting doubles; raw IEEE
bytes compress poorly with general LZ (high-entropy mantissas) but the
repeated exponent/high-mantissa bytes of a drifting series still yield
some structure -- the regime between text and random binary in Fig. 1.
"""

from __future__ import annotations

import numpy as np

from repro.corpus.distributions import SeededSampler


def generate_telemetry(size: int, seed: int = 0, series: int = 4) -> bytes:
    """Interleaved drifting time series, ``size`` bytes of raw float64."""
    sampler = SeededSampler(seed)
    count = max(series, size // 8)
    per_series = count // series + 1
    columns = []
    for index in range(series):
        base = sampler.uniform(10.0, 1000.0)
        drift = sampler.rng.normal(0.0, 0.01, size=per_series).cumsum()
        noise = sampler.rng.normal(0.0, 0.002, size=per_series)
        # Quantize like metric pipelines do: fixed decimal precision.
        values = np.round(base * (1.0 + drift + noise), 3)
        columns.append(values)
    interleaved = np.stack(columns, axis=1).reshape(-1)
    return interleaved.astype("<f8").tobytes()[:size]
