"""JSON-lines service logs (a datacenter-native file class).

Log pipelines are among the heaviest compression users in any fleet (the
registry's ``web_logging`` service); their mix of repeated structure and
variable values sits between the database and text classes of Fig. 1.
"""

from __future__ import annotations

import json

from repro.corpus.distributions import SeededSampler

_LEVELS = ["INFO", "INFO", "INFO", "WARN", "DEBUG", "ERROR"]
_SERVICES = ["api.gateway", "feed.ranker", "ads.scorer", "media.resizer"]
_MESSAGES = [
    "request completed",
    "cache miss, falling back to origin",
    "retrying upstream call",
    "slow query detected",
    "connection pool exhausted",
    "token refreshed",
]


def generate_logs(size: int, seed: int = 0) -> bytes:
    """JSON-lines log records totalling ``size`` bytes."""
    sampler = SeededSampler(seed)
    lines = []
    total = 0
    timestamp = 1_680_000_000.0
    while total < size:
        timestamp += sampler.uniform(0.0005, 0.2)
        record = {
            "ts": round(timestamp, 4),
            "level": sampler.choice(_LEVELS)[0],
            "svc": sampler.choice(_SERVICES)[0],
            "msg": sampler.choice(_MESSAGES)[0],
            "req_id": f"{int(sampler.uniform(0, 2**48)):012x}",
            "latency_ms": round(sampler.uniform(0.2, 250.0), 2),
            "status": int(sampler.choice([200, 200, 200, 204, 404, 500])[0]),
        }
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        lines.append(line)
        total += len(line)
    return "".join(lines).encode("ascii")[:size]
