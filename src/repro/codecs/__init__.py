"""From-scratch lossless compression codecs.

This package implements the three compressor families the paper measures in
Meta's fleet -- an LZ4-style byte-aligned codec, a Zstandard-style codec
(Huffman-coded literals + FSE-coded sequences), and a DEFLATE/zlib codec --
on top of a shared LZ77 match-finding layer and shared entropy coders.

The codecs are structured exactly the way the paper describes production LZ
compressors (Section II-B): a *match-finding stage* that emits literals and
sequences, followed by an *entropy-encoding stage* that serializes them. Both
stages report instrumentation counters that the performance model
(:mod:`repro.perfmodel`) converts into modeled datacenter-core throughput.
"""

from repro.codecs.base import (
    Compressor,
    CodecError,
    CorruptDataError,
    OutputLimitExceeded,
    StageCounters,
    available_codecs,
    get_codec,
    register_codec,
)
from repro.codecs.lz4 import LZ4Compressor
from repro.codecs.zstd import ZstdCompressor
from repro.codecs.deflate import GzipCompressor, ZlibCompressor
from repro.codecs.zstd.dictionary import CompressionDictionary, train_dictionary

__all__ = [
    "Compressor",
    "CodecError",
    "CorruptDataError",
    "OutputLimitExceeded",
    "StageCounters",
    "available_codecs",
    "get_codec",
    "register_codec",
    "LZ4Compressor",
    "ZstdCompressor",
    "ZlibCompressor",
    "GzipCompressor",
    "CompressionDictionary",
    "train_dictionary",
]
