"""Chunked streaming compression with window linking.

Production compressors expose streaming modes where the match window spans
chunk boundaries (LZ4 frame "block linking", zstd streaming contexts), so a
long stream compressed in small chunks still exploits cross-chunk
redundancy. The wrapper here chains chunks by feeding the tail of the
previous plaintext as the dictionary for the next chunk -- decompression
must replay chunks in order, as with any linked stream.

Works with any dictionary-capable codec (the zstd-style one here).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.codecs.base import CodecError, Compressor, StageCounters
from repro.codecs.varint import read_uvarint, write_uvarint


class StreamCompressor:
    """Compresses a sequence of chunks with a linked window."""

    def __init__(
        self,
        codec: Compressor,
        level: Optional[int] = None,
        window_bytes: int = 1 << 16,
    ) -> None:
        if not codec.supports_dictionaries():
            raise CodecError(
                f"{codec.name} cannot link windows (no dictionary support)"
            )
        if window_bytes <= 0:
            raise ValueError("window_bytes must be positive")
        self.codec = codec
        self.level = level if level is not None else codec.default_level
        self.window_bytes = window_bytes
        self._history = b""
        self.counters = StageCounters()

    def compress_chunk(self, chunk: bytes) -> bytes:
        """Compress one chunk against the linked window; returns a record."""
        chunk = bytes(chunk)
        dictionary = self._history if self._history else None
        result = self.codec.compress(chunk, self.level, dictionary=dictionary)
        self.counters.merge(result.counters)
        self._history = (self._history + chunk)[-self.window_bytes :]
        record = bytearray()
        write_uvarint(record, len(result.data))
        record.extend(result.data)
        return bytes(record)

    def compress_stream(self, chunks: Iterable[bytes]) -> bytes:
        """Compress all chunks into one concatenated record stream."""
        out = bytearray()
        for chunk in chunks:
            out.extend(self.compress_chunk(chunk))
        return bytes(out)


class StreamDecompressor:
    """Replays a linked-chunk stream in order."""

    def __init__(self, codec: Compressor, window_bytes: int = 1 << 16) -> None:
        if not codec.supports_dictionaries():
            raise CodecError(
                f"{codec.name} cannot link windows (no dictionary support)"
            )
        self.codec = codec
        self.window_bytes = window_bytes
        self._history = b""
        self.counters = StageCounters()

    def decompress_chunk(self, record: bytes, pos: int = 0) -> tuple:
        """Decode one record at ``pos``; returns (chunk, next_pos)."""
        size, pos = read_uvarint(record, pos)
        if pos + size > len(record):
            raise CodecError("truncated stream record")
        dictionary = self._history if self._history else None
        result = self.codec.decompress(
            record[pos : pos + size], dictionary=dictionary
        )
        self.counters.merge(result.counters)
        self._history = (self._history + result.data)[-self.window_bytes :]
        return result.data, pos + size

    def decompress_stream(self, stream: bytes) -> Iterator[bytes]:
        """Yield every chunk of a concatenated record stream, in order."""
        pos = 0
        while pos < len(stream):
            chunk, pos = self.decompress_chunk(stream, pos)
            yield chunk


def stream_roundtrip_ratio(
    codec: Compressor,
    chunks: List[bytes],
    level: Optional[int] = None,
    window_bytes: int = 1 << 16,
) -> float:
    """Convenience: linked-stream compression ratio over ``chunks``."""
    compressor = StreamCompressor(codec, level=level, window_bytes=window_bytes)
    stream = compressor.compress_stream(chunks)
    total = sum(len(c) for c in chunks)
    return total / len(stream) if stream else 1.0
