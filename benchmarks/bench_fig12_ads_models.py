"""Fig. 12: ADS1 compression ratio and speed across Zstd levels -5..9 for
three ranking models.

Paper shape: each model traces its own ratio/speed curve; the sparser
model A achieves the highest ratios; model C (same data as B, different
serialization) sits on a distinct curve.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.codecs import get_codec
from repro.corpus import generate_ads_request
from repro.perfmodel import DEFAULT_MACHINE

_LEVELS = [-5, -3, -1, 1, 3, 5, 7, 9]
_MODELS = ["A", "B", "C"]


@pytest.fixture(scope="module")
def curves():
    zstd = get_codec("zstd")
    out = {}
    for model in _MODELS:
        payload = generate_ads_request(model, seed=120)
        for level in _LEVELS:
            result = zstd.compress(payload, level)
            out[(model, level)] = (
                result.ratio,
                DEFAULT_MACHINE.compress_speed("zstd", result.counters) / 1e6,
            )
    return out


def test_fig12_ads_models(benchmark, curves, figure_output):
    rows = [
        [model, level, f"{ratio:.2f}", f"{speed:.0f}"]
        for (model, level), (ratio, speed) in sorted(curves.items())
    ]
    figure_output(
        "fig12_ads_models",
        format_table(
            ["model", "level", "ratio", "comp MB/s"],
            rows,
            title="Fig. 12: ADS1 ratio/speed by model and level",
        ),
    )
    # Model A (sparsest) compresses best at every level.
    for level in _LEVELS:
        assert curves[("A", level)][0] > curves[("B", level)][0], level
    # Model C's serialization puts it on a different curve from B.
    diffs = [
        abs(curves[("C", level)][0] - curves[("B", level)][0])
        / curves[("B", level)][0]
        for level in _LEVELS
    ]
    assert max(diffs) > 0.10
    # Level ladder: endpoints trade speed for ratio on every model.
    for model in _MODELS:
        assert curves[(model, 9)][0] >= curves[(model, -5)][0]
        assert curves[(model, 9)][1] < curves[(model, -5)][1]

    zstd = get_codec("zstd")
    payload = generate_ads_request("B", seed=121)
    benchmark(lambda: zstd.compress(payload, 1))
