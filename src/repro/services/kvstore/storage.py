"""Pluggable storage for the durable LSM: append, sync, atomic install.

The store never touches bytes directly — it talks to a
:class:`StorageBackend`, whose contract encodes exactly the durability
semantics real filesystems give an LSM engine:

- ``append`` buffers bytes; they are **not durable** until ``sync``.
- ``sync`` makes a file's buffered tail durable — unless the backend's
  fault injector fires a ``drop`` at the sync site (a lying-fsync disk:
  the call returns success, the bytes die with the power).
- ``write_file`` is write-temp + rename + fsync collapsed into one
  atomic, immediately-durable install (SST files, manifest files).
- ``set_pointer`` atomically repoints a name (the ``CURRENT`` manifest
  pointer); a pointer never refers to a half-written file.
- ``crash_point`` visits a named site on the attached
  :class:`~repro.faults.crash.CrashInjector`, which may raise
  :class:`~repro.faults.crash.SimulatedCrash`.

:class:`SimStorage` implements this in memory with a durable/pending
split per file. :meth:`SimStorage.crash` models the power cut: pending
bytes are *torn* — each file keeps a strictly-partial, seeded prefix of
its unsynced tail — so a record that was appended but never synced
always fails its checksum on replay. Everything is a pure function of
``(seed, crash index, file name)``, so one seed reproduces one crash.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.faults.crash import CrashInjector

#: fault-plan site consulted on every WAL sync (kind ``drop`` = lost
#: fsync). Deliberately outside both the ``kvstore.storage`` prefix (whose
#: bit-flip specs target at-rest blocks) and the ``kvstore.durable`` prefix
#: (whose ``crash`` spec is consulted once per chaos op), so each spec's
#: RNG stream sees only its own opportunities.
SYNC_SITE = "kvstore.sync"


@dataclass
class StorageStats:
    """Byte and call accounting for one backend."""

    appends: int = 0
    appended_bytes: int = 0
    syncs: int = 0
    dropped_syncs: int = 0
    atomic_writes: int = 0
    pointer_swaps: int = 0
    torn_files: int = 0
    crashes: int = 0


class StorageBackend:
    """Interface the durable store programs against."""

    def append(self, name: str, data: bytes) -> None:
        raise NotImplementedError

    def sync(self, name: str) -> bool:
        """Make buffered appends durable. Returns False on a dropped sync."""
        raise NotImplementedError

    def read(self, name: str) -> bytes:
        raise NotImplementedError

    def size(self, name: str) -> int:
        raise NotImplementedError

    def exists(self, name: str) -> bool:
        raise NotImplementedError

    def truncate(self, name: str, length: int) -> None:
        raise NotImplementedError

    def delete(self, name: str) -> None:
        raise NotImplementedError

    def list(self, prefix: str = "") -> List[str]:
        raise NotImplementedError

    def write_file(self, name: str, data: bytes) -> None:
        """Atomic durable install (tmp + rename + fsync)."""
        raise NotImplementedError

    def set_pointer(self, name: str, target: str) -> None:
        raise NotImplementedError

    def get_pointer(self, name: str) -> Optional[str]:
        raise NotImplementedError

    def crash_point(self, site: str) -> None:
        """Visit a named crash site (no-op unless an injector is armed)."""


class SimStorage(StorageBackend):
    """In-memory backend with seeded torn-write/drop-sync/crash faults.

    ``fault_injector`` (a :class:`repro.faults.FaultInjector`) drives
    dropped syncs at :data:`SYNC_SITE`; ``crash_injector`` (a
    :class:`repro.faults.CrashInjector`) drives crash points. Both are
    optional — without them SimStorage is a well-behaved disk.
    """

    def __init__(
        self,
        seed: int = 0,
        fault_injector=None,
        crash_injector: Optional[CrashInjector] = None,
    ) -> None:
        self.seed = seed
        self.fault_injector = fault_injector
        self.crash_injector = crash_injector
        #: synced (power-safe) bytes per file
        self._durable: Dict[str, bytearray] = {}
        #: appended-but-unsynced tail per file
        self._pending: Dict[str, bytearray] = {}
        self._pointers: Dict[str, str] = {}
        self.stats = StorageStats()

    # -- the durability contract ------------------------------------------

    def append(self, name: str, data: bytes) -> None:
        self._pending.setdefault(name, bytearray()).extend(data)
        self._durable.setdefault(name, bytearray())
        self.stats.appends += 1
        self.stats.appended_bytes += len(data)

    def sync(self, name: str) -> bool:
        self.stats.syncs += 1
        if self.fault_injector is not None and self.fault_injector.should(
            SYNC_SITE, "drop"
        ):
            # lying fsync: report success, leave the tail volatile
            self.stats.dropped_syncs += 1
            return False
        pending = self._pending.get(name)
        if pending:
            self._durable.setdefault(name, bytearray()).extend(pending)
            pending.clear()
        return True

    def read(self, name: str) -> bytes:
        if name not in self._durable and name not in self._pending:
            raise FileNotFoundError(name)
        # live readers see durable + pending, like a page cache
        return bytes(self._durable.get(name, b"")) + bytes(
            self._pending.get(name, b"")
        )

    def size(self, name: str) -> int:
        if name not in self._durable and name not in self._pending:
            raise FileNotFoundError(name)
        return len(self._durable.get(name, b"")) + len(
            self._pending.get(name, b"")
        )

    def exists(self, name: str) -> bool:
        return name in self._durable or name in self._pending

    def truncate(self, name: str, length: int) -> None:
        if not self.exists(name):
            raise FileNotFoundError(name)
        data = bytearray(self.read(name)[:length])
        self._durable[name] = data
        self._pending.pop(name, None)

    def delete(self, name: str) -> None:
        self._durable.pop(name, None)
        self._pending.pop(name, None)

    def list(self, prefix: str = "") -> List[str]:
        names = set(self._durable) | set(self._pending)
        return sorted(n for n in names if n.startswith(prefix))

    def write_file(self, name: str, data: bytes) -> None:
        self._durable[name] = bytearray(data)
        self._pending.pop(name, None)
        self.stats.atomic_writes += 1

    def set_pointer(self, name: str, target: str) -> None:
        self._pointers[name] = target
        self.stats.pointer_swaps += 1

    def get_pointer(self, name: str) -> Optional[str]:
        return self._pointers.get(name)

    # -- fault machinery ----------------------------------------------------

    def crash_point(self, site: str) -> None:
        if self.crash_injector is not None:
            self.crash_injector.reach(site)

    def crash(self) -> None:
        """The power cut: tear every unsynced tail at a seeded byte.

        Each file with pending bytes keeps a strictly-partial prefix of
        that tail (``0 <= k < len(pending)``), so an in-flight record can
        never survive intact — its checksum must fail on replay. Durable
        bytes and pointers are untouched. The tear offset is a pure
        function of ``(seed, crash index, file name)``.
        """
        self.stats.crashes += 1
        for name in sorted(self._pending):
            pending = self._pending[name]
            if not pending:
                continue
            rng = random.Random(
                f"storage-tear:{self.seed}:{self.stats.crashes}:{name}"
            )
            k = rng.randint(0, len(pending) - 1)
            self._durable.setdefault(name, bytearray()).extend(pending[:k])
            self.stats.torn_files += 1
        self._pending = {}
