"""Cache client: decompresses served items on the client side."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.codecs.base import CodecError, CorruptDataError, StageCounters
from repro.obs.instrument import record_cache_request
from repro.obs.state import OBS_STATE
from repro.perfmodel import DEFAULT_MACHINE, MachineModel
from repro.services.cache.server import CacheServer


@dataclass
class ClientStats:
    """Client-side decompression work (decentralized, as the paper notes)."""

    gets: int = 0
    decompress_counters: StageCounters = field(default_factory=StageCounters)
    decompress_seconds: float = 0.0
    bytes_received: int = 0
    bytes_decoded: int = 0
    #: served items that failed decompression (now quarantined server-side)
    decode_failures: int = 0


class CacheClient:
    """Client that receives compressed items and decompresses locally.

    "The client has to decompress the data, but the load is less centralized
    as each cache machine serves hundreds to thousands of clients"
    (Section IV-C).
    """

    def __init__(
        self, server: CacheServer, machine: MachineModel = DEFAULT_MACHINE
    ) -> None:
        self.server = server
        self.machine = machine
        self.stats = ClientStats()

    def get(self, key: bytes) -> Optional[bytes]:
        """Fetch and (if needed) decompress one item.

        Verified-decompress: a served item that fails validation is a
        *recoverable* event, not a crash -- the poisoned entry is
        quarantined server-side and the get reports a miss, so the caller
        re-fetches from the backing store exactly as for a cold key.
        """
        self.stats.gets += 1
        entry = self.server.get_compressed(key)
        if entry is None:
            if OBS_STATE.enabled:
                record_cache_request("client_get", "miss")
            return None
        type_name, compressed, payload = entry
        self.stats.bytes_received += len(payload)
        if OBS_STATE.enabled:
            record_cache_request("client_get", "hit", len(payload))
        if not compressed:
            self.stats.bytes_decoded += len(payload)
            return payload
        dictionary = self.server.dictionary_for(type_name)
        try:
            result = self._decompress_verified(payload, dictionary)
        except CorruptDataError as exc:
            # the bytes themselves are poisoned: quarantine server-side so
            # the next get is an honest miss instead of a repeat crash
            self.stats.decode_failures += 1
            self.server.quarantine(key, reason=str(exc))
            if OBS_STATE.enabled:
                record_cache_request("client_get", "corrupt")
            return None
        except CodecError:
            # transient decoder failure (not provably bad data): the entry
            # stays cached, this get degrades to a miss
            self.stats.decode_failures += 1
            if OBS_STATE.enabled:
                record_cache_request("client_get", "decode_error")
            return None
        self.stats.decompress_counters.merge(result.counters)
        self.stats.decompress_seconds += self.machine.decompress_seconds(
            self.server.codec.name, result.counters
        )
        self.stats.bytes_decoded += len(result.data)
        return result.data

    def _decompress_verified(self, payload: bytes, dictionary):
        """Decompress with one retry for transient (non-corrupt) failures."""
        try:
            return self.server.codec.decompress(payload, dictionary=dictionary)
        except CorruptDataError:
            raise
        except CodecError:
            return self.server.codec.decompress(payload, dictionary=dictionary)
