"""Machine model tests: calibration anchors and stage attribution."""

import pytest

from repro.codecs import get_codec
from repro.codecs.base import StageCounters
from repro.corpus import generate_text
from repro.perfmodel import DEFAULT_MACHINE, CostCoefficients, MachineModel


@pytest.fixture(scope="module")
def text_results():
    """(codec_name -> (compress result, decompress result)) on one text."""
    data = generate_text(32768, seed=11)
    results = {}
    for name in ("zstd", "lz4", "zlib"):
        codec = get_codec(name)
        comp = codec.compress(data, codec.default_level)
        decomp = codec.decompress(comp.data)
        results[name] = (comp, decomp)
    return results


class TestCycleAccounting:
    def test_zero_counters_cost_only_overhead(self):
        counters = StageCounters()
        cycles = DEFAULT_MACHINE.compress_cycles("zstd", counters)
        assert cycles == pytest.approx(
            DEFAULT_MACHINE.coefficients["zstd"].call_overhead
        )

    def test_more_work_costs_more(self):
        light = StageCounters(bytes_in=100, hash_probes=100)
        heavy = StageCounters(bytes_in=100, hash_probes=10000)
        assert DEFAULT_MACHINE.compress_cycles("zstd", heavy) > (
            DEFAULT_MACHINE.compress_cycles("zstd", light)
        )

    def test_unknown_codec_uses_default_coefficients(self):
        counters = StageCounters(bytes_in=1000)
        assert DEFAULT_MACHINE.compress_cycles("mystery", counters) > 0

    def test_breakdown_sums_to_total(self, text_results):
        comp, __ = text_results["zstd"]
        breakdown = DEFAULT_MACHINE.compress_breakdown("zstd", comp.counters)
        assert breakdown.total == pytest.approx(
            DEFAULT_MACHINE.compress_cycles("zstd", comp.counters)
        )
        assert breakdown.match_finding > 0
        assert breakdown.entropy > 0

    def test_speed_inverse_of_cycles(self, text_results):
        comp, __ = text_results["zstd"]
        speed = DEFAULT_MACHINE.compress_speed("zstd", comp.counters)
        seconds = DEFAULT_MACHINE.compress_seconds("zstd", comp.counters)
        assert speed == pytest.approx(comp.counters.bytes_in / seconds)


class TestCalibrationAnchors:
    """Modeled speeds must land in published-ballpark bands on typical text."""

    def test_zstd_default_compress_band(self, text_results):
        comp, __ = text_results["zstd"]
        speed = DEFAULT_MACHINE.compress_speed("zstd", comp.counters) / 1e6
        assert 150 < speed < 900

    def test_zstd_decompress_band(self, text_results):
        __, decomp = text_results["zstd"]
        speed = DEFAULT_MACHINE.decompress_speed("zstd", decomp.counters) / 1e6
        assert 700 < speed < 3000

    def test_lz4_compress_band(self, text_results):
        comp, __ = text_results["lz4"]
        speed = DEFAULT_MACHINE.compress_speed("lz4", comp.counters) / 1e6
        assert 400 < speed < 1600

    def test_lz4_decompress_band(self, text_results):
        __, decomp = text_results["lz4"]
        speed = DEFAULT_MACHINE.decompress_speed("lz4", decomp.counters) / 1e6
        assert 1500 < speed < 8000

    def test_zlib_compress_band(self, text_results):
        comp, __ = text_results["zlib"]
        speed = DEFAULT_MACHINE.compress_speed("zlib", comp.counters) / 1e6
        assert 15 < speed < 200

    def test_zlib_decompress_band(self, text_results):
        __, decomp = text_results["zlib"]
        speed = DEFAULT_MACHINE.decompress_speed("zlib", decomp.counters) / 1e6
        assert 150 < speed < 800

    def test_decompress_speed_ordering(self, text_results):
        """Fig. 1's universal ordering: lz4 > zstd > zlib on decode."""
        speeds = {
            name: DEFAULT_MACHINE.decompress_speed(name, decomp.counters)
            for name, (comp, decomp) in text_results.items()
        }
        assert speeds["lz4"] > speeds["zstd"] > speeds["zlib"]

    def test_compress_speed_ordering(self, text_results):
        speeds = {
            name: DEFAULT_MACHINE.compress_speed(name, comp.counters)
            for name, (comp, decomp) in text_results.items()
        }
        assert speeds["lz4"] > speeds["zstd"] > speeds["zlib"]

    def test_decompression_faster_than_compression(self, text_results):
        """Section III-D: decompression is 3x-100x faster than compression."""
        for name, (comp, decomp) in text_results.items():
            comp_speed = DEFAULT_MACHINE.compress_speed(name, comp.counters)
            decomp_speed = DEFAULT_MACHINE.decompress_speed(name, decomp.counters)
            assert decomp_speed > 2.5 * comp_speed, name


class TestLevelSpeedMonotonicity:
    def test_zstd_levels_get_slower(self):
        data = generate_text(16384, seed=3)
        codec = get_codec("zstd")
        speeds = []
        for level in (1, 3, 6, 9, 15, 19):
            result = codec.compress(data, level)
            speeds.append(DEFAULT_MACHINE.compress_speed("zstd", result.counters))
        # strictly ordered from fast to slow across the strategy ladder
        for faster, slower in zip(speeds, speeds[1:]):
            assert faster > slower

    def test_match_finding_share_grows_with_level(self):
        """Fig. 7: match finding dominates at high levels (~80% at L7),
        entropy at low levels (~30% at L1)."""
        data = generate_text(16384, seed=3)
        codec = get_codec("zstd")
        low = codec.compress(data, 1)
        high = codec.compress(data, 7)
        share_low = DEFAULT_MACHINE.compress_breakdown(
            "zstd", low.counters
        ).match_finding_share
        share_high = DEFAULT_MACHINE.compress_breakdown(
            "zstd", high.counters
        ).match_finding_share
        assert share_high > share_low


class TestCustomMachine:
    def test_frequency_scales_seconds_not_cycles(self):
        counters = StageCounters(bytes_in=10000, positions_scanned=10000)
        slow = MachineModel(frequency_hz=1e9)
        fast = MachineModel(frequency_hz=4e9)
        assert slow.compress_cycles("zstd", counters) == pytest.approx(
            fast.compress_cycles("zstd", counters)
        )
        assert slow.compress_seconds("zstd", counters) == pytest.approx(
            4 * fast.compress_seconds("zstd", counters)
        )

    def test_override_coefficients(self):
        machine = MachineModel(coefficients={"zstd": CostCoefficients(byte_in=100.0)})
        counters = StageCounters(bytes_in=1000)
        default_cost = DEFAULT_MACHINE.compress_cycles("zstd", counters)
        assert machine.compress_cycles("zstd", counters) > default_cost
