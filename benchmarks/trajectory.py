"""The bench-side half of the performance trajectory.

Every ``bench_*`` entry point funnels its headline numbers through
:func:`record` here, which normalizes them into the repo-root
``BENCH_trajectory.json`` (or ``$BENCH_TRAJECTORY`` when set, which is
how CI redirects fresh results away from the committed baseline).

Run directly, this module **regenerates the deterministic subset** of
the trajectory — every metric that is a pure function of seed and
payload (modeled serving latency and goodput, chunked-compression
ratios, modeled codec speed). That is what CI diffs against the
committed baseline via ``repro bench-diff``: any drift in these numbers
means the code's behavior changed, not the machine. Wall-clock metrics
(the obs overhead ratio) are appended only by their bench with an
explicit per-entry tolerance and are never part of the committed
baseline, so the gate cannot flake on machine noise.

    python benchmarks/trajectory.py [--output PATH]
"""

from __future__ import annotations

import argparse
import os
from typing import Optional

from repro.trajectory import TrajectoryEntry, record_entry

#: the committed baseline at the repo root
DEFAULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_trajectory.json",
)


def trajectory_path() -> str:
    return os.environ.get("BENCH_TRAJECTORY", DEFAULT_PATH)


def record(
    name: str,
    value: float,
    unit: str,
    higher_is_better: bool = True,
    tolerance: Optional[float] = None,
    path: Optional[str] = None,
) -> None:
    """Append/update one normalized result in the trajectory file."""
    record_entry(
        path or trajectory_path(),
        TrajectoryEntry(
            name=name,
            value=float(value),
            unit=unit,
            higher_is_better=higher_is_better,
            tolerance=tolerance,
        ),
    )


# -- the deterministic subset -------------------------------------------------


def record_serving_metrics(path: Optional[str] = None) -> None:
    """Modeled serving-plane numbers at the bench seed/scale."""
    from repro.serving import run_simulation

    report = run_simulation("overload", seed=7, scale=0.5)
    record(
        "serving.overload.p99_ms",
        report.latency.p99(source="all") * 1e3,
        "ms",
        higher_is_better=False,
        path=path,
    )
    record(
        "serving.overload.goodput_mbps",
        report.goodput_bytes_per_second / 1e6,
        "MB/s",
        higher_is_better=True,
        path=path,
    )
    record(
        "serving.overload.ratio_lost_pct",
        report.ratio_lost_to_degradation() * 100,
        "%",
        higher_is_better=False,
        path=path,
    )
    record(
        "serving.overload.served",
        float(report.served),
        "requests",
        higher_is_better=True,
        path=path,
    )


def record_parallel_metrics(path: Optional[str] = None) -> None:
    """Chunked-engine ratio at the bench corpus and chunk size."""
    from repro.corpus import silesia_like_corpus
    from repro.parallel import compress_chunked

    data = b"".join(silesia_like_corpus(1 << 14, seed=2023).values())
    for chunk_size, label in ((16 << 10, "16k"), (64 << 10, "64k")):
        result = compress_chunked(
            "zstd", data, 1, chunk_size=chunk_size, jobs=1
        )
        record(
            f"parallel.zstd1.ratio_{label}",
            result.ratio,
            "x",
            higher_is_better=True,
            path=path,
        )


def record_codec_metrics(path: Optional[str] = None) -> None:
    """Modeled codec speed/ratio on a fixed corpus sample."""
    from repro.codecs import get_codec
    from repro.corpus import silesia_like_corpus
    from repro.perfmodel import DEFAULT_MACHINE

    data = b"".join(silesia_like_corpus(1 << 14, seed=2023).values())
    result = get_codec("zstd").compress(data, 3)
    record(
        "codec.zstd3.modeled_mbs",
        DEFAULT_MACHINE.compress_speed("zstd", result.counters) / 1e6,
        "MB/s",
        higher_is_better=True,
        path=path,
    )
    record(
        "codec.zstd3.ratio",
        result.ratio,
        "x",
        higher_is_better=True,
        path=path,
    )


def record_kvstore_metrics(path: Optional[str] = None) -> None:
    """Modeled crash-recovery numbers for the durable LSM.

    A seeded workload is written durably (WAL + manifest + SST files),
    the store is dropped mid-stream (its unflushed tail still in the
    WAL), and a fresh open recovers. The recovery bill is fully modeled
    (sequential re-read + block decode via the machine model), so the
    throughput is a pure function of seed and payload.
    """
    from repro.corpus import generate_kv_records
    from repro.services.kvstore import KVStore, SimStorage

    storage = SimStorage(seed=2023)
    kwargs = dict(memtable_bytes=1 << 13, level0_table_limit=2)
    store = KVStore(storage=storage, **kwargs)
    for key, value in generate_kv_records(600, seed=2023):
        store.put(key, value)
    del store  # crash: no flush, the tail lives only in the WAL
    reopened = KVStore(storage=storage, **kwargs)
    report = reopened.last_recovery
    recovered_bytes = report.sst_bytes + report.wal_bytes_replayed
    record(
        "kvstore.recovery.modeled_ms",
        report.modeled_seconds * 1e3,
        "ms",
        higher_is_better=False,
        path=path,
    )
    record(
        "kvstore.recovery.throughput_mbs",
        recovered_bytes / report.modeled_seconds / 1e6,
        "MB/s",
        higher_is_better=True,
        path=path,
    )
    record(
        "kvstore.recovery.wal_records",
        float(report.wal_records_replayed),
        "records",
        higher_is_better=True,
        path=path,
    )


def record_cluster_metrics(path: Optional[str] = None) -> None:
    """Modeled fleet numbers for the sharded cluster simulator.

    One seeded ``fleet-surge`` run at smoke scale: the diurnal peak
    overloads the initial fleet, the autoscaler and rebalancer respond,
    and the headline numbers (served volume, fleet p99, on-time goodput,
    peak node count) are a pure function of (scenario, seed, scale).
    """
    from repro.cluster import run_cluster_simulation

    report = run_cluster_simulation("fleet-surge", seed=7, scale=0.25)
    record(
        "cluster.sim.served",
        float(report.served),
        "requests",
        higher_is_better=True,
        path=path,
    )
    record(
        "cluster.sim.fleet_p99_ms",
        report.latency.p99(source="all") * 1e3,
        "ms",
        higher_is_better=False,
        path=path,
    )
    record(
        "cluster.sim.goodput_mbps",
        report.goodput_bytes_per_second / 1e6,
        "MB/s",
        higher_is_better=True,
        path=path,
    )
    record(
        "cluster.sim.peak_nodes",
        float(report.nodes_peak),
        "nodes",
        higher_is_better=False,
        path=path,
    )


def record_graph_metrics(path: Optional[str] = None) -> None:
    """Graph-compression numbers: trained-graph ratios and search output.

    The per-category ratios compress one fixed 64 KiB corpus sample with
    the pinned trained graphs; the ``graph.search.*`` entries run one
    small seeded training round so the trajectory catches regressions in
    the search itself (a worse winner shows up as a ratio drop). Both
    are pure functions of seed and payload.
    """
    from repro.codecs import get_codec
    from repro.graphs.samples import category_sample, category_samples
    from repro.graphs.search import train_graph
    from repro.graphs.trained import TRAINED_CATEGORIES

    for category in TRAINED_CATEGORIES:
        data = category_sample(category, size=65536, seed=3)
        result = get_codec(f"graph:{category}").compress(data, 1)
        record(
            f"graph.{category}.ratio",
            result.ratio,
            "x",
            higher_is_better=True,
            path=path,
        )
    samples = category_samples("record", count=1, size=16384, seed=3)
    trained = train_graph(
        "record", samples, generations=2, population=3, seed=0
    )
    record(
        "graph.search.record_ratio",
        trained.ranked_graph.metrics.ratio,
        "x",
        higher_is_better=True,
        path=path,
    )
    record(
        "graph.search.evaluated",
        float(len(trained.result.ranked)),
        "candidates",
        higher_is_better=True,
        path=path,
    )


def regenerate(path: Optional[str] = None) -> str:
    """Recompute every deterministic entry; returns the path written."""
    target = path or trajectory_path()
    record_serving_metrics(target)
    record_parallel_metrics(target)
    record_codec_metrics(target)
    record_kvstore_metrics(target)
    record_cluster_metrics(target)
    record_graph_metrics(target)
    return target


def main() -> int:
    parser = argparse.ArgumentParser(
        description="regenerate the deterministic benchmark trajectory"
    )
    parser.add_argument(
        "--output", default=None,
        help="trajectory file to write (default: $BENCH_TRAJECTORY or "
        "the committed BENCH_trajectory.json)",
    )
    args = parser.parse_args()
    target = regenerate(args.output)
    from repro.trajectory import load_trajectory

    entries = load_trajectory(target)
    print(f"wrote {len(entries)} entries to {target}")
    for name in sorted(entries):
        entry = entries[name]
        print(f"  {name:40s} {entry.value:12.6g} {entry.unit}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
