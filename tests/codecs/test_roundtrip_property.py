"""Cross-codec property tests: decompress(compress(x)) == x, always."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.codecs import LZ4Compressor, ZlibCompressor, ZstdCompressor

_CODECS = [ZstdCompressor(), LZ4Compressor(), ZlibCompressor()]

# Structured generators produce LZ-friendly inputs; raw binary covers the
# incompressible path.
_payload = st.one_of(
    st.binary(max_size=2000),
    st.builds(
        lambda piece, reps: piece * reps,
        st.binary(min_size=1, max_size=50),
        st.integers(1, 60),
    ),
    st.builds(
        lambda pieces: b"|".join(pieces),
        st.lists(st.sampled_from([b"alpha", b"beta", b"gamma", b"x" * 20]), max_size=80),
    ),
)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=_payload)
@pytest.mark.parametrize("codec", _CODECS, ids=lambda c: c.name)
def test_roundtrip_default_level(codec, data):
    result = codec.compress(data)
    assert codec.decompress(result.data).data == data


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=_payload, level_pick=st.integers(0, 100))
@pytest.mark.parametrize("codec", _CODECS, ids=lambda c: c.name)
def test_roundtrip_random_level(codec, data, level_pick):
    levels = codec.levels()
    level = levels[level_pick % len(levels)]
    result = codec.compress(data, level)
    assert codec.decompress(result.data).data == data


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    samples=st.lists(
        st.binary(min_size=10, max_size=200), min_size=2, max_size=10
    ),
    data=st.binary(min_size=0, max_size=500),
)
def test_zstd_dictionary_roundtrip_property(samples, data):
    from repro.codecs import train_dictionary

    zstd = ZstdCompressor()
    dictionary = train_dictionary(samples, max_size=2048)
    blob = zstd.compress(data, 3, dictionary=dictionary.content)
    assert zstd.decompress(blob.data, dictionary=dictionary.content).data == data


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=_payload)
def test_ratio_never_catastrophic(data):
    """Framed output must never blow up beyond input + bounded overhead."""
    for codec in _CODECS:
        result = codec.compress(data, codec.default_level)
        assert len(result.data) <= len(data) + 64
