"""Canonical length-limited Huffman coding tests."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.codecs.entropy.bitio import BitReader, BitWriter
from repro.codecs.entropy.huffman import (
    HuffmanDecoder,
    HuffmanEncoder,
    build_code_lengths,
    canonical_codes,
)


class TestBuildCodeLengths:
    def test_empty_histogram(self):
        assert build_code_lengths([0, 0, 0], max_bits=4) == [0, 0, 0]

    def test_single_symbol_gets_one_bit(self):
        assert build_code_lengths([0, 5, 0], max_bits=4) == [0, 1, 0]

    def test_two_equal_symbols(self):
        assert build_code_lengths([3, 3], max_bits=4) == [1, 1]

    def test_kraft_equality_for_multi_symbol(self):
        lengths = build_code_lengths([50, 30, 10, 5, 3, 2], max_bits=15)
        assert sum(2 ** -l for l in lengths if l) == pytest.approx(1.0)

    def test_respects_max_bits_under_pressure(self):
        # Fibonacci-like weights force deep unlimited trees.
        freqs = [1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144]
        for max_bits in (4, 5, 7):
            lengths = build_code_lengths(freqs, max_bits=max_bits)
            assert max(lengths) <= max_bits
            assert sum(2 ** -l for l in lengths if l) <= 1.0 + 1e-12

    def test_max_bits_binding_still_complete(self):
        # Regression for the off-by-one package-merge bug: constrained codes
        # must stay within max_bits AND remain decodable (Kraft <= 1).
        freqs = [2, 0, 0, 1, 8, 6, 8, 9, 109, 107, 1, 1, 1, 1, 2, 0, 12, 0, 0]
        lengths = build_code_lengths(freqs, max_bits=7)
        assert max(lengths) <= 7
        assert sum(2 ** -l for l in lengths if l) == pytest.approx(1.0)

    def test_too_many_symbols_for_width_rejected(self):
        with pytest.raises(ValueError):
            build_code_lengths([1] * 5, max_bits=2)

    def test_more_frequent_symbols_get_shorter_codes(self):
        lengths = build_code_lengths([100, 1, 1, 1], max_bits=15)
        assert lengths[0] <= min(lengths[1:])

    def test_optimality_matches_entropy_within_one_bit(self):
        freqs = [60, 25, 10, 5]
        total = sum(freqs)
        lengths = build_code_lengths(freqs, max_bits=15)
        avg = sum(f * l for f, l in zip(freqs, lengths)) / total
        entropy = -sum(f / total * math.log2(f / total) for f in freqs)
        assert entropy <= avg < entropy + 1.0


class TestCanonicalCodes:
    def test_codes_are_prefix_free(self):
        lengths = build_code_lengths([10, 7, 5, 3, 2, 1], max_bits=8)
        codes = canonical_codes(lengths)
        seen = set()
        for symbol, length in enumerate(lengths):
            if not length:
                continue
            # reconstruct the un-reversed canonical code as a bit string
            bits = format(codes[symbol], f"0{length}b")[::-1]
            for other in seen:
                assert not bits.startswith(other) and not other.startswith(bits)
            seen.add(bits)

    def test_all_zero_lengths(self):
        assert canonical_codes([0, 0]) == [0, 0]


class TestEncodeDecode:
    def _roundtrip(self, message, alphabet, max_bits=11):
        freqs = [0] * alphabet
        for symbol in message:
            freqs[symbol] += 1
        encoder = HuffmanEncoder.from_frequencies(freqs, max_bits=max_bits)
        writer = BitWriter()
        for symbol in message:
            encoder.encode_symbol(writer, symbol)
        decoder = HuffmanDecoder(encoder.lengths)
        reader = BitReader(writer.getvalue())
        return [decoder.decode_symbol(reader) for _ in message]

    def test_roundtrip_small_alphabet(self):
        message = [0, 1, 1, 2, 2, 2, 3] * 50
        assert self._roundtrip(message, alphabet=4) == message

    def test_roundtrip_full_byte_alphabet(self):
        message = list(range(256)) * 3
        assert self._roundtrip(message, alphabet=256) == message

    def test_roundtrip_single_symbol_stream(self):
        message = [7] * 100
        assert self._roundtrip(message, alphabet=8) == message

    def test_encode_symbol_without_code_raises(self):
        encoder = HuffmanEncoder.from_frequencies([5, 0], max_bits=4)
        with pytest.raises(ValueError):
            encoder.encode_symbol(BitWriter(), 1)

    def test_encoded_bit_length_is_exact(self):
        freqs = [40, 30, 20, 10]
        encoder = HuffmanEncoder.from_frequencies(freqs, max_bits=8)
        writer = BitWriter()
        message = [0] * 40 + [1] * 30 + [2] * 20 + [3] * 10
        for symbol in message:
            encoder.encode_symbol(writer, symbol)
        assert encoder.encoded_bit_length(freqs) == writer.bit_length

    def test_decoder_rejects_garbage_code(self):
        # lengths with an incomplete code leave table holes -> decode error
        decoder = HuffmanDecoder([2, 0, 0, 0])  # only one 2-bit code
        reader = BitReader(b"\xff")
        with pytest.raises(ValueError):
            # 0b11 slot is unassigned
            decoder.decode_symbol(reader)

    def test_decoder_empty_alphabet_raises(self):
        with pytest.raises(ValueError):
            HuffmanDecoder([0, 0]).decode_symbol(BitReader(b"\x00"))


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(0, 15), min_size=1, max_size=400),
)
def test_roundtrip_property(symbols):
    freqs = [0] * 16
    for s in symbols:
        freqs[s] += 1
    encoder = HuffmanEncoder.from_frequencies(freqs, max_bits=11)
    writer = BitWriter()
    for s in symbols:
        encoder.encode_symbol(writer, s)
    decoder = HuffmanDecoder(encoder.lengths)
    reader = BitReader(writer.getvalue())
    assert [decoder.decode_symbol(reader) for _ in symbols] == symbols
