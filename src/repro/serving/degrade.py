"""The degradation ladder: trade ratio for latency before shedding load.

This is the serving-plane application of bicriteria compression
(Farruggia et al., PAPERS.md): under a latency budget, the right response
to pressure is not to drop requests but to *step down* to a cheaper
configuration on the speed/ratio frontier — give up compression ratio,
win back cycles, keep serving. The ladder is built with the same
machinery CompOpt uses to pick configurations (Section V-A): a
:class:`~repro.core.engine.CompEngine` measures the candidate grid on
representative samples, a :class:`~repro.core.costmodel.CostModel` ranks
it, and the rungs are the Pareto-frontier configurations faster than the
cost-optimal choice, ordered by increasing compression speed.

Rung 0 is the CompOpt winner (what the service runs unpressured). Each
deeper rung is strictly faster and (being frontier points) pays the least
ratio possible for that speed. The last resort — past every rung — is
shedding, which the gateway only reaches when the queue itself is full.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.config import CompressionConfig, config_grid
from repro.core.costmodel import CostModel, CostParameters
from repro.core.engine import CompEngine
from repro.core.optimizer import CompOpt, RankedConfig
from repro.perfmodel import DEFAULT_MACHINE, MachineModel


@dataclass(frozen=True)
class Rung:
    """One step of the ladder: a config and its measured shape."""

    config: CompressionConfig
    #: modeled compress seconds per input byte on the reference samples
    seconds_per_byte: float
    #: measured compression ratio on the reference samples
    ratio: float
    #: CompOpt total dollar cost (the ranking key rung 0 won on)
    total_cost: float

    def label(self) -> str:
        return self.config.label()


class DegradationLadder:
    """Pressure-indexed list of configurations, best-ratio first."""

    def __init__(
        self,
        rungs: Sequence[Rung],
        thresholds: Optional[Sequence[float]] = None,
    ) -> None:
        if not rungs:
            raise ValueError("a ladder needs at least one rung")
        self.rungs = list(rungs)
        if thresholds is None:
            thresholds = default_thresholds(len(self.rungs))
        thresholds = list(thresholds)
        if len(thresholds) != len(self.rungs) - 1:
            raise ValueError(
                f"{len(self.rungs)} rungs need {len(self.rungs) - 1} "
                f"thresholds, got {len(thresholds)}"
            )
        if any(b <= a for a, b in zip(thresholds, thresholds[1:])):
            raise ValueError("thresholds must be strictly increasing")
        self.thresholds = thresholds

    def __len__(self) -> int:
        return len(self.rungs)

    def select(self, pressure: float) -> int:
        """Rung index for a pressure reading (queue depth / capacity).

        Pressure below the first threshold serves at rung 0; each crossed
        threshold steps one rung down the ladder. Pressure past the last
        threshold pins to the fastest rung — there is nothing cheaper to
        give, and the next escalation (shedding) belongs to admission, not
        to this policy.
        """
        index = 0
        for threshold in self.thresholds:
            if pressure >= threshold:
                index += 1
            else:
                break
        return min(index, len(self.rungs) - 1)

    def rung(self, index: int) -> Rung:
        return self.rungs[index]

    def labels(self) -> List[str]:
        return [rung.label() for rung in self.rungs]


def default_thresholds(rung_count: int, start: float = 0.3, stop: float = 0.9) -> List[float]:
    """Evenly spread pressure thresholds in ``[start, stop)``.

    With the default admission shed point at pressure 1.0 this leaves the
    whole ladder engaged strictly before any shedding can begin.
    """
    steps = rung_count - 1
    if steps <= 0:
        return []
    if steps == 1:
        return [start]
    return [start + i * (stop - start) / steps for i in range(steps)]


def _rung_from_ranked(ranked: RankedConfig) -> Rung:
    metrics = ranked.metrics
    seconds = metrics.compress_seconds
    per_byte = seconds / metrics.input_bytes if metrics.input_bytes else 0.0
    return Rung(
        config=ranked.config,
        seconds_per_byte=per_byte,
        ratio=metrics.ratio,
        total_cost=ranked.total_cost,
    )


def build_ladder(
    samples: Sequence[bytes],
    algorithms: Sequence[str] = ("zstd", "lz4"),
    levels: Optional[Sequence[int]] = None,
    cost_model: Optional[CostModel] = None,
    machine: MachineModel = DEFAULT_MACHINE,
    max_rungs: int = 4,
    thresholds: Optional[Sequence[float]] = None,
    graphs: Sequence[str] = (),
) -> DegradationLadder:
    """Measure a candidate grid and assemble the ladder.

    Rung 0 is CompOpt's cheapest configuration; the remaining rungs are
    the speed/ratio Pareto frontier restricted to configurations strictly
    faster than rung 0, ascending in speed, downsampled to ``max_rungs``
    total (keeping the fastest so the ladder always ends at its floor).

    ``graphs`` adds trained graph codecs (:mod:`repro.graphs`) to the
    grid by name — ``("record",)`` enters ``graph:record`` as a
    candidate. Graph rungs compete on exactly the same cost model as the
    flat configs; an empty tuple (the default) keeps ladders
    byte-identical to the pre-graph behavior.
    """
    if max_rungs < 1:
        raise ValueError("max_rungs must be at least 1")
    if cost_model is None:
        cost_model = CostModel(CostParameters.from_price_book(beta=1e-6))
    engine = CompEngine(samples, machine=machine)
    grid = config_grid(algorithms, levels=levels)
    grid.extend(
        CompressionConfig(f"graph:{name}", 1) for name in graphs
    )
    result = CompOpt(engine, cost_model).optimize(grid)
    preferred = result.best if result.best is not None else result.best_any
    if preferred is None:
        raise ValueError("empty candidate grid")
    frontier = result.pareto_frontier()
    faster = [
        r
        for r in frontier
        if r.metrics.compression_speed > preferred.metrics.compression_speed
        and r.config != preferred.config
    ]
    faster.sort(key=lambda r: r.metrics.compression_speed)
    if len(faster) > max_rungs - 1:
        faster = _downsample_keep_last(faster, max_rungs - 1)
    rungs = [_rung_from_ranked(preferred)] + [_rung_from_ranked(r) for r in faster]
    return DegradationLadder(rungs, thresholds=thresholds)


def _downsample_keep_last(
    ranked: List[RankedConfig], count: int
) -> List[RankedConfig]:
    """Pick ``count`` entries evenly, always keeping the last (fastest)."""
    if count <= 0:
        return []
    if count == 1:
        return [ranked[-1]]
    step = (len(ranked) - 1) / (count - 1)
    indices = sorted({round(i * step) for i in range(count)})
    return [ranked[i] for i in indices]
