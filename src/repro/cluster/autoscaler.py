"""Queue-pressure / p99-burn autoscaling with explicit hysteresis.

The autoscaler is a control loop, and control loops on noisy signals
oscillate unless damped. Three dampers, all deterministic and all unit
tested against adversarial traces:

- **consecutive-breach counts** — a scale decision needs the signal to
  breach for ``up_after`` (or ``down_after``) *consecutive* observation
  ticks; an alternating high/low trace therefore never moves the node
  count (the flapping test).
- **asymmetric thresholds** — scale-up triggers at high pressure or a
  latency burn above 1, scale-down only well below both, so the
  thresholds themselves form a dead band.
- **cooldown** — after any action the loop ignores further signals for
  ``cooldown_seconds``, giving the fleet time to absorb the change
  (new nodes start cold; drains take time to empty).

Signals come from the cluster simulator each control tick: mean queue
pressure over active nodes (the same reading that drives the
degradation ladder, one level up) and the fleet latency-p99 **burn**
(windowed p99 / SLO bound, from the same rolling windows the alert
plane evaluates — "scale before you page" made literal).

The autoscaler only *decides*; the simulator owns executing the
decision (creating the node, draining the victim) and reports it back
as a :class:`ScaleEvent` so scorecards can show cause alongside effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class AutoscalerConfig:
    """The control-loop surface; defaults tuned for the built-in
    scenarios (pressure in [0, 1], burn normalized to 1.0 = at bound)."""

    min_nodes: int = 1
    max_nodes: int = 64
    #: mean active-node pressure at/above which a tick votes scale-up
    up_pressure: float = 0.55
    #: fleet p99 burn at/above which a tick votes scale-up
    up_burn: float = 1.2
    #: mean pressure at/below which a tick votes scale-down ...
    down_pressure: float = 0.15
    #: ... provided burn is also at/below this (or unknown)
    down_burn: float = 0.6
    #: consecutive breaching ticks required to act
    up_after: int = 2
    down_after: int = 6
    #: quiet period after any action, seconds of simulated time
    cooldown_seconds: float = 0.5
    #: nodes added per scale-up step
    step_up: int = 1

    def __post_init__(self) -> None:
        if not 1 <= self.min_nodes <= self.max_nodes:
            raise ValueError("need 1 <= min_nodes <= max_nodes")
        if self.up_after < 1 or self.down_after < 1:
            raise ValueError("breach counts must be at least 1")
        if self.step_up < 1:
            raise ValueError("step_up must be at least 1")
        if self.down_pressure >= self.up_pressure:
            raise ValueError("down_pressure must sit below up_pressure")


@dataclass(frozen=True)
class ScaleEvent:
    """One executed scaling action, for the scorecard."""

    at: float
    action: str  # "up" | "down"
    node: str
    #: active node count after the action
    nodes_after: int
    reason: str
    #: tenants whose primary shard changed because of this action
    moved_tenants: int = 0


class Autoscaler:
    """Decides scale-up/scale-down from (pressure, burn) observations."""

    UP = "up"
    DOWN = "down"

    def __init__(self, config: Optional[AutoscalerConfig] = None) -> None:
        self.config = config if config is not None else AutoscalerConfig()
        self._up_streak = 0
        self._down_streak = 0
        self._last_action_at: Optional[float] = None
        #: every decision returned, for tests and scorecards
        self.decisions: List[str] = []

    def _in_cooldown(self, now: float) -> bool:
        return (
            self._last_action_at is not None
            and now - self._last_action_at < self.config.cooldown_seconds
        )

    def observe(
        self,
        now: float,
        active_nodes: int,
        pressures: Sequence[float],
        p99_burn: Optional[float],
    ) -> Optional[str]:
        """Feed one control tick; returns ``"up"``, ``"down"``, or None.

        ``pressures`` are the active nodes' queue pressures this tick;
        ``p99_burn`` is the fleet windowed p99 over its SLO bound (None
        before any completion lands). Streaks update even inside the
        cooldown window so a persistent condition acts the moment the
        cooldown lifts, but opposing signals always reset each other.
        """
        cfg = self.config
        mean_pressure = (
            sum(pressures) / len(pressures) if pressures else 0.0
        )
        up_vote = mean_pressure >= cfg.up_pressure or (
            p99_burn is not None and p99_burn >= cfg.up_burn
        )
        down_vote = (
            not up_vote
            and mean_pressure <= cfg.down_pressure
            and (p99_burn is None or p99_burn <= cfg.down_burn)
        )
        self._up_streak = self._up_streak + 1 if up_vote else 0
        self._down_streak = self._down_streak + 1 if down_vote else 0
        if self._in_cooldown(now):
            return None
        if (
            self._up_streak >= cfg.up_after
            and active_nodes < cfg.max_nodes
        ):
            self._note_action(now)
            self.decisions.append(self.UP)
            return self.UP
        if (
            self._down_streak >= cfg.down_after
            and active_nodes > cfg.min_nodes
        ):
            self._note_action(now)
            self.decisions.append(self.DOWN)
            return self.DOWN
        return None

    def _note_action(self, now: float) -> None:
        self._last_action_at = now
        self._up_streak = 0
        self._down_streak = 0
