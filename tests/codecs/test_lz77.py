"""LZ77 token model tests."""

import pytest

from repro.codecs.lz77 import (
    Token,
    copy_match,
    match_length,
    reconstruct,
    tokens_cover,
    validate_parse,
)


class TestToken:
    def test_valid_match_token(self):
        token = Token(3, 10, 7)
        assert token.literal_length == 3

    def test_literal_only_token(self):
        assert Token(5, 0, 0).match_length == 0

    def test_negative_literal_rejected(self):
        with pytest.raises(ValueError):
            Token(-1, 0, 0)

    def test_match_with_zero_offset_rejected(self):
        with pytest.raises(ValueError):
            Token(0, 4, 0)

    def test_tokens_cover(self):
        tokens = [Token(2, 5, 1), Token(0, 4, 3), Token(3, 0, 0)]
        assert tokens_cover(tokens) == 2 + 5 + 4 + 3


class TestMatchLength:
    def test_no_match(self):
        assert match_length(b"ab", 0, 1, 1) == 0

    def test_exact_run(self):
        data = b"abcabc"
        assert match_length(data, 0, 3, 3) == 3

    def test_limit_caps_result(self):
        data = b"aaaaaaaaaa"
        assert match_length(data, 0, 1, 4) == 4

    def test_overlapping_periodic_run(self):
        # offset-1 self-referential run: every byte matches
        data = b"a" * 1000
        assert match_length(data, 0, 1, 999) == 999

    def test_long_match_chunked_path(self):
        data = (b"0123456789abcdef" * 40) * 2
        half = len(data) // 2
        assert match_length(data, 0, half, half) == half

    def test_mismatch_in_chunk_interior(self):
        block = b"x" * 100
        data = block + block[:50] + b"Y" + block[51:]
        assert match_length(data, 0, 100, 100) == 50


class TestCopyMatch:
    def test_non_overlapping_copy(self):
        out = bytearray(b"hello world")
        copy_match(out, offset=5, length=5)
        assert out == b"hello worldworld"

    def test_overlapping_rle_copy(self):
        out = bytearray(b"ab")
        copy_match(out, offset=1, length=6)
        assert out == b"abbbbbbb"

    def test_overlapping_periodic_copy(self):
        out = bytearray(b"xyz")
        copy_match(out, offset=3, length=7)
        assert out == b"xyzxyzxyzx"

    def test_offset_past_start_rejected(self):
        with pytest.raises(ValueError):
            copy_match(bytearray(b"ab"), offset=3, length=1)


class TestReconstructAndValidate:
    def test_reconstruct_literals_only(self):
        assert reconstruct([Token(3, 0, 0)], b"abc") == b"abc"

    def test_reconstruct_with_match(self):
        tokens = [Token(3, 3, 3), Token(0, 0, 0)]
        assert reconstruct(tokens, b"abc") == b"abcabc"

    def test_validate_accepts_correct_parse(self):
        data = b"abcabcabc"
        tokens = [Token(3, 6, 3)]
        validate_parse(tokens, data)

    def test_validate_rejects_wrong_offset(self):
        data = b"abcdefabc"
        tokens = [Token(6, 3, 5)]  # wrong offset (should be 6)
        with pytest.raises(ValueError):
            validate_parse(tokens, data)

    def test_validate_rejects_short_coverage(self):
        with pytest.raises(ValueError):
            validate_parse([Token(3, 0, 0)], b"abcdef")

    def test_validate_with_history_prefix(self):
        history = b"shared-dictionary-"
        data = history + b"shared"
        tokens = [Token(0, 6, len(history))]
        validate_parse(tokens, data, history_length=len(history))
