"""Admission control: token bucket, adaptive concurrency, explicit verdicts.

Load shedding at the front door is what keeps an overloaded compression
service from melting down: the paper's cost framing (cycles are dollars)
means every cycle spent on a request that will miss its deadline is a
cycle stolen from one that would not. The controller issues an explicit
:class:`AdmissionVerdict` for every offered request so callers — and the
scorecard — can distinguish *throttled* (rate limit), *shed* (queue
pressure), and *admitted* traffic.

Two mechanisms compose:

- :class:`TokenBucket` — a classic rate limiter over the simulated clock:
  ``rate`` tokens/second refill up to ``burst``; a request costs one
  token. Deterministic because refill is computed from clock readings,
  never from wall time.
- :class:`AdaptiveConcurrencyLimit` — an AIMD limit on in-service
  requests, the Netflix-style gradient limiter reduced to its
  deterministic core: completions under the latency target grow the limit
  additively (+1/limit per completion), completions over it shrink the
  limit multiplicatively (x ``backoff``). The gateway dispatches at most
  ``floor(limit)`` requests concurrently, so a latency regression
  squeezes concurrency before queues grow unboundedly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.resilience.clock import SimClock

#: verdict decisions
ADMIT = "admit"
THROTTLE = "throttle"
SHED = "shed"


@dataclass(frozen=True)
class AdmissionVerdict:
    """The controller's decision for one request, with its reason."""

    decision: str
    reason: str = ""

    @property
    def admitted(self) -> bool:
        return self.decision == ADMIT


class TokenBucket:
    """Deterministic token bucket over a :class:`SimClock`."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Optional[SimClock] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate = rate
        self.burst = float(burst)
        self.clock = clock if clock is not None else SimClock()
        self._tokens = float(burst)
        self._refilled_at = self.clock.now()

    def _refill(self) -> None:
        now = self.clock.now()
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._refilled_at = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_take(self, count: float = 1.0) -> bool:
        """Spend ``count`` tokens if available; never blocks."""
        self._refill()
        if self._tokens >= count:
            self._tokens -= count
            return True
        return False


class AdaptiveConcurrencyLimit:
    """AIMD concurrency limit driven by observed latency vs. a target."""

    def __init__(
        self,
        target_latency: float,
        initial: float = 4.0,
        minimum: float = 1.0,
        maximum: float = 64.0,
        backoff: float = 0.8,
    ) -> None:
        if target_latency <= 0:
            raise ValueError("target_latency must be positive")
        if not minimum <= initial <= maximum:
            raise ValueError("need minimum <= initial <= maximum")
        if not 0 < backoff < 1:
            raise ValueError("backoff must be in (0, 1)")
        self.target_latency = target_latency
        self.minimum = minimum
        self.maximum = maximum
        self.backoff = backoff
        self._limit = float(initial)
        self.increases = 0
        self.decreases = 0

    @property
    def limit(self) -> int:
        """Concurrent requests the gateway may have in service."""
        return max(1, int(self._limit))

    def on_complete(self, latency: float) -> None:
        """Feed one completed request's end-to-end latency."""
        if latency <= self.target_latency:
            self._limit = min(self.maximum, self._limit + 1.0 / self._limit)
            self.increases += 1
        else:
            self._limit = max(self.minimum, self._limit * self.backoff)
            self.decreases += 1


@dataclass
class AdmissionStats:
    """How the front door ruled, cumulatively."""

    offered: int = 0
    admitted: int = 0
    throttled: int = 0
    shed_queue_full: int = 0


class AdmissionController:
    """Front-door policy: rate limit first, then queue-pressure shed."""

    def __init__(
        self,
        bucket: Optional[TokenBucket] = None,
        limiter: Optional[AdaptiveConcurrencyLimit] = None,
        queue_shed_threshold: float = 1.0,
    ) -> None:
        if not 0 < queue_shed_threshold <= 1.0:
            raise ValueError("queue_shed_threshold must be in (0, 1]")
        self.bucket = bucket
        self.limiter = limiter
        #: shed when queue depth reaches this fraction of total capacity
        self.queue_shed_threshold = queue_shed_threshold
        self.stats = AdmissionStats()

    def admit(self, queue_depth: int, queue_capacity: int) -> AdmissionVerdict:
        """Rule on one offered request given current queue pressure."""
        self.stats.offered += 1
        if self.bucket is not None and not self.bucket.try_take():
            self.stats.throttled += 1
            return AdmissionVerdict(THROTTLE, "token bucket empty")
        if queue_capacity > 0 and (
            queue_depth >= queue_capacity * self.queue_shed_threshold
        ):
            self.stats.shed_queue_full += 1
            return AdmissionVerdict(
                SHED, f"queue depth {queue_depth}/{queue_capacity}"
            )
        self.stats.admitted += 1
        return AdmissionVerdict(ADMIT)

    def concurrency(self, workers: int) -> int:
        """Effective dispatch width: worker count clipped by the limiter."""
        if self.limiter is None:
            return workers
        return max(1, min(workers, self.limiter.limit))
