"""``repro chaos``: the service stack under a named fault plan.

Runs seven end-to-end scenarios -- RPC, cache, kvstore, far memory,
managed compression, the serving gateway, and durable-kvstore crash
recovery -- with a
:class:`~repro.faults.FaultInjector` perturbing each one, and reports a
survival scorecard: per scenario, how many operations succeeded untouched
(``ok``), how many were disturbed by a fault but saved by the resilience
layer (``recovered``), and how many were abandoned (``failed``). No
operation may escape as an unhandled exception; that is the contract the
scorecard certifies.

Everything is deterministic: payloads are fixed functions of the loop
index, fault decisions come from the injector's string-seeded RNGs, and
every latency is *modeled* time (the machine model, retry backoff math,
and :class:`~repro.resilience.clock.SimClock`), never wall-clock. The same
``(plan, seed, ops)`` therefore renders a byte-identical scorecard, which
is what lets CI diff two runs.

Recovery latency, observed into one log-bucketed histogram
(:class:`~repro.obs.metrics.Histogram`, the PR-1 machinery), is the
modeled time the recovery itself cost:

- ``rpc``      -- end-to-end seconds of the delivered message, including
                  every failed attempt and its backoff;
- ``cache``    -- modeled re-compress time of the re-installed item plus
                  a modeled re-fetch from the backing store over the wire;
- ``kvstore``  -- block decode seconds of the re-read plus the modeled
                  re-fetch;
- ``farmem``   -- modeled decompress-fault seconds spent on the page,
                  plus the re-fetch of its source data;
- ``managed``  -- the modeled re-fetch of the blob's source data.
- ``serving``  -- the modeled service seconds of a request the gateway
                  saved by degrading it down the ladder or by falling
                  back to raw passthrough when its codec faulted.
- ``kvstore-crash`` -- the modeled recovery open (manifest + SST reload
                  + WAL replay) plus the re-fetch of any acked write a
                  lying fsync lost to the crash.

The modeled re-fetch uses the default RPC link shape (10 Gb/s, 50 us
propagation): recovery means going back to the source of truth, and that
trip is the dominant, honest cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.node import ClusterNode, NodeConfig
from repro.cluster.ring import HashRing
from repro.codecs import get_codec
from repro.faults import (
    CrashInjector,
    CrashPlan,
    FaultInjector,
    FaultPlan,
    FaultyChannel,
    FaultyCodec,
    SimulatedCrash,
    scrub_cache,
    scrub_sstable,
)
from repro.obs.metrics import Histogram
from repro.obs.slo import (
    OK as SLO_OK,
    PAGE,
    WARN,
    AlertTransition,
    BurnRule,
    EventRateSLO,
    SLOEvaluator,
    metric_total,
)
from repro.obs.timeseries import TimeSeriesRecorder, WindowSnapshot
from repro.resilience import CircuitBreaker, RetryPolicy, SimClock
from repro.services.cache.client import CacheClient
from repro.services.cache.server import CacheServer
from repro.services.farmemory import PAGE_SIZE, FarMemoryPool, PageLostError
from repro.services.kvstore.crashsim import CRASH_SITES
from repro.services.kvstore.db import KVStore
from repro.services.kvstore.storage import SimStorage
from repro.services.managed import DictionaryRetiredError, ManagedCompression
from repro.services.rpc import Channel, RpcExhaustedError
from repro.serving.degrade import build_ladder
from repro.serving.gateway import CompressionGateway
from repro.serving.queue import ServingRequest

#: modeled cost of one re-fetch from the source of truth (default link)
_REFETCH_BANDWIDTH = 1.25e9  # bytes/second (10 Gb/s)
_REFETCH_PROPAGATION = 50e-6


def _refetch_seconds(size: int) -> float:
    return _REFETCH_PROPAGATION + size / _REFETCH_BANDWIDTH


@dataclass
class ScenarioResult:
    """One scenario's survival line."""

    name: str
    operations: int
    ok: int
    recovered: int
    failed: int
    #: deterministic scenario-specific extras, insertion-ordered
    notes: Dict[str, int] = field(default_factory=dict)
    #: per-operation outcome sequence ("ok"/"recovered"/"failed"), in the
    #: order operations resolved — the stream the alert timeline windows
    outcomes: List[str] = field(default_factory=list)

    @property
    def survived(self) -> int:
        return self.ok + self.recovered


@dataclass(frozen=True)
class ChaosWindow:
    """One op-index window of the chaos run's outcome stream."""

    index: int
    start_op: int
    end_op: int
    ok: int
    recovered: int
    failed: int
    #: alert state per SLO after this window's evaluation
    states: Dict[str, str]
    transitions: Tuple[AlertTransition, ...]


@dataclass
class ChaosTimeline:
    """The chaos run's alert timeline, windowed over operation index.

    The recorder never interprets its time unit, so the chaos plane
    drives it with the global operation counter: window N covers ops
    ``[N * window_ops, (N + 1) * window_ops)`` across the scenario
    sequence. Deterministic per ``(plan, seed, ops)`` like everything
    else in the scorecard.
    """

    window_ops: int
    windows: List[ChaosWindow] = field(default_factory=list)
    final_states: Dict[str, str] = field(default_factory=dict)

    @property
    def transitions(self) -> List[AlertTransition]:
        return [t for w in self.windows for t in w.transitions]

    def worst_state(self) -> str:
        rank = {SLO_OK: 0, WARN: 1, PAGE: 2}
        worst = SLO_OK
        for window in self.windows:
            for state in window.states.values():
                if rank[state] > rank[worst]:
                    worst = state
        return worst


@dataclass
class ChaosReport:
    """The full run: per-scenario lines plus fleet-wide fault accounting."""

    plan: str
    seed: int
    scenarios: List[ScenarioResult]
    #: modeled recovery latency, labeled by scenario (label ``source``)
    recovery: Histogram
    #: every (site, kind) fired, with counts, sorted
    fault_breakdown: List[Tuple[str, str, int]]
    #: windowed alert timeline over the outcome stream
    timeline: Optional[ChaosTimeline] = None

    @property
    def operations(self) -> int:
        return sum(s.operations for s in self.scenarios)

    @property
    def ok(self) -> int:
        return sum(s.ok for s in self.scenarios)

    @property
    def recovered(self) -> int:
        return sum(s.recovered for s in self.scenarios)

    @property
    def failed(self) -> int:
        return sum(s.failed for s in self.scenarios)

    @property
    def faults_injected(self) -> int:
        return sum(count for __, __, count in self.fault_breakdown)


# -- scenarios ----------------------------------------------------------------


def _observe_recovery(report_histogram: Histogram, source: str, seconds: float) -> None:
    report_histogram.observe(seconds, source=source)
    report_histogram.observe(seconds, source="all")


def _run_rpc(
    injector: FaultInjector, seed: int, count: int, recovery: Histogram
) -> ScenarioResult:
    """Messages over a faulty wire; retry + backoff is the recovery."""
    channel = Channel(
        codec=get_codec("zstd"),
        level=1,
        timeout_seconds=0.05,
        retry=RetryPolicy(
            max_attempts=4, base_seconds=1e-3, cap_seconds=0.02, seed=seed
        ),
    )
    faulty = FaultyChannel(channel, injector)
    ok = recovered = failed = 0
    outcomes: List[str] = []
    for i in range(count):
        payload = f"rpc message {i:05d} compressible body ".encode() * 48
        before = channel.stats.recovered_messages
        try:
            received, elapsed = faulty.send(payload)
        except RpcExhaustedError:
            failed += 1
            outcomes.append("failed")
            continue
        if received != payload:
            failed += 1  # silent corruption slipped the validator
            outcomes.append("failed")
        elif channel.stats.recovered_messages > before:
            recovered += 1
            outcomes.append("recovered")
            _observe_recovery(recovery, "rpc", elapsed)
        else:
            ok += 1
            outcomes.append("ok")
    return ScenarioResult(
        "rpc",
        count,
        ok,
        recovered,
        failed,
        outcomes=outcomes,
        notes={
            "retries": channel.stats.retries,
            "drops": channel.stats.drops,
            "timeouts": channel.stats.timeouts,
            "corrupt_payloads": channel.stats.corrupt_payloads,
        },
    )


def _run_cache(
    injector: FaultInjector, seed: int, count: int, recovery: Histogram
) -> ScenarioResult:
    """Set/scrub/get; quarantine-and-refill from source is the recovery."""
    clock = SimClock()
    breaker = CircuitBreaker(
        "chaos-cache-codec",
        failure_threshold=3,
        cooldown_seconds=1e-4,
        clock=clock,
    )
    codec = FaultyCodec(get_codec("zstd"), injector, clock=clock)
    server = CacheServer(
        codec=codec, level=3, min_compress_size=32, breaker=breaker
    )
    client = CacheClient(server)
    source: Dict[bytes, bytes] = {}
    for i in range(count):
        key = f"key-{i:05d}".encode()
        value = f"cache item {i:05d} with shared structure ".encode() * 32
        source[key] = value
        server.set(key, "chaos-type", value)
    scrub_cache(server, injector)
    ok = recovered = failed = 0
    outcomes: List[str] = []
    for key, value in source.items():
        got = client.get(key)
        if got == value:
            ok += 1
            outcomes.append("ok")
            continue
        # a miss or a wrong value: re-fetch from the source of truth,
        # re-install, and serve again -- the cold-key path, by design
        compress_before = server.stats.compress_seconds
        server.set(key, "chaos-type", value)
        got = client.get(key)
        if got == value:
            recovered += 1
            outcomes.append("recovered")
            _observe_recovery(
                recovery,
                "cache",
                server.stats.compress_seconds
                - compress_before
                + _refetch_seconds(len(value)),
            )
        else:
            failed += 1
            outcomes.append("failed")
    return ScenarioResult(
        "cache",
        count,
        ok,
        recovered,
        failed,
        outcomes=outcomes,
        notes={
            "corrupt_evictions": server.stats.corrupt_evictions,
            "compress_failures": server.stats.compress_failures,
            "raw_fallbacks": server.stats.raw_fallbacks,
            "decode_failures": client.stats.decode_failures,
        },
    )


def _run_kvstore(
    injector: FaultInjector, seed: int, count: int, recovery: Histogram
) -> ScenarioResult:
    """Put/scrub/get; LSM redundancy and re-put are the recovery."""
    store = KVStore(
        codec=get_codec("zstd"),
        compression_level=1,
        block_size=2048,
        memtable_bytes=4096,
    )
    source: Dict[bytes, bytes] = {}
    for i in range(count):
        key = f"user:{i:06d}".encode()
        value = f"profile row {i:06d} with shared shape ".encode() * 8
        source[key] = value
        store.put(key, value)
    store.flush()
    damaged_blocks = 0
    for level_tables in store.levels:
        for table in level_tables:
            damaged_blocks += len(scrub_sstable(table, injector))
    ok = recovered = failed = 0
    outcomes: List[str] = []
    for key, value in source.items():
        got = store.get(key)
        if got == value:
            ok += 1
            outcomes.append("ok")
            continue
        # the key's block rotted in every level that held it: re-fetch
        # from the source of truth and write it back
        store.put(key, value)
        store.flush()
        got = store.get(key)
        if got == value:
            recovered += 1
            outcomes.append("recovered")
            _observe_recovery(
                recovery,
                "kvstore",
                store.stats.last_read_decode_seconds
                + _refetch_seconds(len(value)),
            )
        else:
            failed += 1
            outcomes.append("failed")
    return ScenarioResult(
        "kvstore",
        count,
        ok,
        recovered,
        failed,
        outcomes=outcomes,
        notes={
            "damaged_blocks": damaged_blocks,
            "quarantined_blocks": store.quarantined_blocks,
            "sst_count": store.sst_count,
        },
    )


def _run_farmemory(
    injector: FaultInjector, seed: int, count: int, recovery: Histogram
) -> ScenarioResult:
    """Cold pages through a faulty codec; retry/rebuild is the recovery."""
    clock = SimClock()
    breaker = CircuitBreaker(
        "chaos-farmem-codec",
        failure_threshold=3,
        cooldown_seconds=2.0,
        clock=clock,
    )
    codec = FaultyCodec(get_codec("zstd"), injector, clock=clock)
    pool = FarMemoryPool(
        codec=codec, cold_age_ticks=1, breaker=breaker, tick_seconds=1.0
    )
    source: Dict[int, bytes] = {}
    for i in range(count):
        data = f"far memory page {i:04d} cold contents ".encode() * 128
        pool.write(i, data)
        source[i] = data[:PAGE_SIZE].ljust(PAGE_SIZE, b"\x00")
    for __ in range(4):
        pool.tick()
    ok = recovered = failed = 0
    outcomes: List[str] = []
    for i in range(count):
        retries_before = pool.stats.decode_retries
        fault_before = pool.stats.fault_seconds_total
        try:
            got = pool.read(i)
        except PageLostError:
            # the compressed image is gone: rebuild from the source of truth
            pool.write(i, source[i])
            if pool.read(i) == source[i]:
                recovered += 1
                outcomes.append("recovered")
                _observe_recovery(
                    recovery, "farmem", _refetch_seconds(PAGE_SIZE)
                )
            else:
                failed += 1
                outcomes.append("failed")
            continue
        if got != source[i]:
            failed += 1
            outcomes.append("failed")
        elif pool.stats.decode_retries > retries_before:
            # the transient-retry inside read() saved the fault
            recovered += 1
            outcomes.append("recovered")
            _observe_recovery(
                recovery,
                "farmem",
                pool.stats.fault_seconds_total - fault_before,
            )
        else:
            ok += 1
            outcomes.append("ok")
    return ScenarioResult(
        "farmem",
        count,
        ok,
        recovered,
        failed,
        outcomes=outcomes,
        notes={
            "pages_compressed": pool.stats.pages_compressed,
            "pages_lost": pool.stats.pages_lost,
            "compression_skips": pool.stats.compression_skips,
            "compress_failures": pool.stats.compress_failures,
        },
    )


def _run_managed(
    injector: FaultInjector, seed: int, count: int, recovery: Histogram
) -> ScenarioResult:
    """Dictionary churn and loss; the retired_handler is the recovery."""
    source: Dict[int, bytes] = {}
    current: Dict[str, int] = {"blob": -1}

    def rebuild(error: DictionaryRetiredError) -> bytes:
        # the stateless caller re-fetches the blob's plaintext from its
        # own source of truth; the service only routes the request
        return source[current["blob"]]

    service = ManagedCompression(
        codec=get_codec("zstd"), sample_every=1, retired_handler=rebuild
    )
    service.register_use_case(
        "chaos-logs",
        level=3,
        dictionary_size=4096,
        retrain_interval=8,
        max_versions=1,
    )
    blobs = []
    for i in range(count):
        data = f"log line {i:04d}: request served from cache ".encode() * 8
        source[i] = data
        blobs.append(service.compress("chaos-logs", data))
        if injector.should("managed.dictionary", "dict_loss"):
            versions = service.available_versions("chaos-logs")
            if versions:
                service.drop_dictionary("chaos-logs", versions[0])
    stats = service.stats("chaos-logs")
    ok = recovered = failed = 0
    outcomes: List[str] = []
    for i, blob in enumerate(blobs):
        current["blob"] = i
        recoveries_before = stats.recoveries
        try:
            data = service.decompress(blob)
        except DictionaryRetiredError:
            failed += 1
            outcomes.append("failed")
            continue
        if data != source[i]:
            failed += 1
            outcomes.append("failed")
        elif stats.recoveries > recoveries_before:
            recovered += 1
            outcomes.append("recovered")
            _observe_recovery(
                recovery, "managed", _refetch_seconds(len(source[i]))
            )
        else:
            ok += 1
            outcomes.append("ok")
    return ScenarioResult(
        "managed",
        count,
        ok,
        recovered,
        failed,
        outcomes=outcomes,
        notes={
            "retrains": stats.retrains,
            "retired_blobs": stats.retired_blobs,
            "dictionary_versions": len(service.available_versions("chaos-logs")),
        },
    )


def _run_serving(
    injector: FaultInjector, seed: int, count: int, recovery: Histogram
) -> ScenarioResult:
    """Overloaded gateway with faulty codecs; the ladder and the raw
    passthrough are the recovery.

    Requests arrive in bursts so queue pressure crosses the degradation
    thresholds; deadlines are infinite and lanes are sized so nothing is
    shed -- every request ends as ``ok`` (rung 0, clean codec),
    ``recovered`` (degraded to a cheaper rung, or saved by the raw
    fallback after an injected codec fault), or ``failed`` (lost).
    """
    clock = SimClock()
    tenants = ("interactive", "batch", "analytics")
    payloads = [
        f"serving request {i:05d} tenant {tenants[i % 3]} "
        f"compressible envelope body ".encode() * 24
        for i in range(count)
    ]
    ladder = build_ladder(
        payloads[: min(4, count)], algorithms=("zstd", "lz4"), levels=(1, 3)
    )
    gateway = CompressionGateway(
        ladder,
        capacity=16,
        clock=clock,
        codec_factory=lambda name: FaultyCodec(
            get_codec(name), injector, clock=clock
        ),
        tenant_weights={"interactive": 3.0, "batch": 1.0, "analytics": 1.0},
        breaker_cooldown_seconds=1e-4,
    )
    ok = recovered = failed = 0
    outcomes: List[str] = []
    burst = 10
    submitted = 0
    while submitted < count:
        chunk = min(burst, count - submitted)
        for i in range(submitted, submitted + chunk):
            gateway.submit(
                ServingRequest(
                    request_id=i,
                    tenant=tenants[i % 3],
                    payload=payloads[i],
                    arrival=clock.now(),
                )
            )
        submitted += chunk
        while gateway.queue.depth():
            batch = gateway.serve_batch(clock.now(), 3)
            if not batch:
                break
            for served in batch:
                clock.advance(served.service_seconds)
                if served.degraded or served.raw_fallback:
                    recovered += 1
                    outcomes.append("recovered")
                    _observe_recovery(
                        recovery, "serving", served.service_seconds
                    )
                else:
                    ok += 1
                    outcomes.append("ok")
    failed = count - ok - recovered
    outcomes.extend(["failed"] * failed)
    stats = gateway.stats
    return ScenarioResult(
        "serving",
        count,
        ok,
        recovered,
        failed,
        outcomes=outcomes,
        notes={
            "degraded": stats.degraded,
            "raw_fallbacks": stats.raw_fallbacks,
            "shed": stats.shed,
            "expired": stats.expired,
        },
    )


def _run_cluster(
    injector: FaultInjector, seed: int, count: int, recovery: Histogram
) -> ScenarioResult:
    """A small hash-ring cluster losing whole nodes mid-burst.

    Each op routes one request over the ring to a shard. The plan's
    ``node_loss`` spec decides, per op, whether a node dies with work
    still queued; the dead node's queue is drained, every stranded
    request is re-homed to its new ring owner (paying a modeled
    re-fetch), the node leaves the ring, and a replacement joins. A
    re-homed, degraded, or raw-fallback serve counts ``recovered``; a
    request lost outright would be ``failed`` — the recovery invariant
    says node loss must never lose an admitted request.
    """
    clock = SimClock()
    tenants = ("interactive", "batch", "analytics")
    payloads = [
        f"cluster request {i:05d} tenant {tenants[i % 3]} "
        f"compressible envelope body ".encode() * 24
        for i in range(count)
    ]
    ladder = build_ladder(
        payloads[: min(4, count)], algorithms=("zstd", "lz4"), levels=(1, 3)
    )
    # sized so nothing throttles or sheds: losses are the only fault here
    config = NodeConfig(
        workers=2,
        capacity=256,
        token_rate=1e9,
        token_burst=1e9,
        target_latency=10.0,
    )
    weights = {name: 1.0 for name in tenants}
    ring = HashRing(vnodes=32, replicas=2)
    nodes: Dict[str, ClusterNode] = {}
    next_id = 0

    def spawn() -> None:
        nonlocal next_id
        name = f"cnode-{next_id:02d}"
        next_id += 1
        ring.add_node(name)
        nodes[name] = ClusterNode(
            name, ladder, config, clock, tenant_weights=weights
        )

    for __ in range(4):
        spawn()

    ok = recovered = 0
    outcomes: List[str] = []
    rehomed: set = set()
    losses = 0

    def serve_all() -> None:
        nonlocal ok, recovered
        while True:
            progressed = False
            for name in sorted(nodes):
                node = nodes[name]
                for served in node.serve_batch(clock.now(), 2):
                    progressed = True
                    clock.advance(served.service_seconds)
                    request = served.request
                    if (
                        request.request_id in rehomed
                        or served.degraded
                        or served.raw_fallback
                    ):
                        recovered += 1
                        outcomes.append("recovered")
                        _observe_recovery(
                            recovery, "cluster", served.service_seconds
                        )
                    else:
                        ok += 1
                        outcomes.append("ok")
            if not progressed:
                break

    burst = 8
    for i in range(count):
        for spec, rng in injector.decide("cluster.node"):
            if spec.kind == "node_loss" and len(nodes) > 2:
                victim = nodes.pop(rng.choice(sorted(nodes)))
                ring.remove_node(victim.name)
                losses += 1
                spawn()
                # drain the dead queue; every stranded request re-homes
                # to its key's new ring owner at a modeled re-fetch cost
                while True:
                    stranded, expired = victim.gateway.queue.poll(clock.now())
                    assert not expired  # no deadlines in this scenario
                    if stranded is None:
                        break
                    rehomed.add(stranded.request_id)
                    clock.advance(_refetch_seconds(stranded.size))
                    owner = ring.primary(f"req:{stranded.request_id}")
                    nodes[owner].submit(stranded)
        request = ServingRequest(
            request_id=i,
            tenant=tenants[i % 3],
            payload=payloads[i],
            arrival=clock.now(),
        )
        nodes[ring.primary(f"req:{i}")].submit(request)
        if (i + 1) % burst == 0:
            serve_all()
    serve_all()
    failed = count - ok - recovered
    outcomes.extend(["failed"] * failed)
    return ScenarioResult(
        "cluster-node-loss",
        count,
        ok,
        recovered,
        failed,
        outcomes=outcomes,
        notes={
            "node_losses": losses,
            "rehomed": len(rehomed),
            "ring_nodes": len(ring),
        },
    )


def _run_kvstore_crash(
    injector: FaultInjector, seed: int, count: int, recovery: Histogram
) -> ScenarioResult:
    """Durable LSM writes under seeded crashes and lying fsyncs.

    Each op is one acked write. The plan's ``crash`` spec decides, per
    op, whether to arm a crash at a randomly chosen durable-path site
    (:data:`~repro.services.kvstore.crashsim.CRASH_SITES`); the armed
    point fires whenever that site is next crossed — possibly ops later,
    mid-flush or mid-compaction. On a crash the storage tears its
    unsynced tails, the store reopens (manifest + SST reload + WAL
    replay), the interrupted write is retried, and any *acked* write a
    dropped sync lost is re-fetched from the source of truth — each such
    op flips to ``recovered``. A write that can't be read back correctly
    after the final audit is a ``failed`` op; the recovery invariant says
    there must be none.
    """
    crash_injector = CrashInjector(CrashPlan.none())
    crash_injector.disarm()
    storage = SimStorage(
        seed=seed, fault_injector=injector, crash_injector=crash_injector
    )
    kwargs = dict(
        block_size=2048, memtable_bytes=4096, wal_segment_bytes=1 << 12
    )
    store = KVStore(storage=storage, **kwargs)
    source: Dict[bytes, bytes] = {}
    op_index: Dict[bytes, int] = {}
    outcomes: List[str] = []
    crashes = 0
    torn_tails = 0
    records_replayed = 0
    for i in range(count):
        # a hot keyspace, so crashes interrupt overwrites as well as inserts
        key = f"durable:{i % max(1, count // 2):05d}".encode()
        value = f"wal record {i:05d} crash-recoverable payload ".encode() * 4
        for spec, rng in injector.decide("kvstore.durable"):
            if spec.kind == "crash":
                crash_injector.arm_point(rng.choice(CRASH_SITES))
        outcome = "ok"
        try:
            store.put(key, value)
        except SimulatedCrash:
            crashes += 1
            crash_injector.disarm()
            storage.crash()
            store = KVStore(storage=storage, **kwargs)
            report = store.last_recovery
            torn_tails += report.torn_tail_truncations
            records_replayed += report.wal_records_replayed
            seconds = report.modeled_seconds
            # acked writes a lying fsync lost die with the torn tail:
            # re-fetch each from the source of truth and write it back
            for lost_key, lost_value in source.items():
                if store.get(lost_key) != lost_value:
                    store.put(lost_key, lost_value)
                    seconds += _refetch_seconds(len(lost_value))
                    j = op_index[lost_key]
                    if outcomes[j] == "ok":
                        outcomes[j] = "recovered"
            # retry the interrupted write
            store.put(key, value)
            seconds += _refetch_seconds(len(value))
            outcome = "recovered"
            _observe_recovery(recovery, "kvstore-crash", seconds)
        source[key] = value
        op_index[key] = i
        outcomes.append(outcome)
    # final audit: every write must read back with its latest value
    for key, value in source.items():
        if store.get(key) != value:
            outcomes[op_index[key]] = "failed"
    return ScenarioResult(
        "kvstore-crash",
        count,
        outcomes.count("ok"),
        outcomes.count("recovered"),
        outcomes.count("failed"),
        outcomes=outcomes,
        notes={
            "crashes": crashes,
            "torn_tails": torn_tails,
            "wal_records_replayed": records_replayed,
            "dropped_syncs": storage.stats.dropped_syncs,
            "sst_count": store.sst_count,
        },
    )


# -- the alert timeline -------------------------------------------------------

#: operations per timeline window
CHAOS_WINDOW_OPS = 25
#: per-window outcome counter: labels scenario, outcome
CHAOS_OPS_METRIC = "chaos_ops_total"
#: burn rules scaled to op-index windows (a chaos run is ~400 ops, so
#: the long views stay meaningfully shorter than the run)
CHAOS_RULES = (
    BurnRule(PAGE, long_windows=4, short_windows=2, threshold=5.0),
    BurnRule(WARN, long_windows=8, short_windows=2, threshold=1.5),
)


def chaos_slos() -> List[EventRateSLO]:
    """The chaos plane's objectives over the outcome stream.

    ``failure_rate`` is the hard objective (operations abandoned);
    ``recovery_rate`` alerts when the resilience layer is doing heavy
    lifting — the fleet survived, but only because retries, rebuilds,
    and ladders kept saving it.
    """
    total = lambda reg: metric_total(reg, CHAOS_OPS_METRIC)  # noqa: E731
    return [
        EventRateSLO(
            "failure_rate",
            bad=lambda reg: metric_total(reg, CHAOS_OPS_METRIC, outcome="failed"),
            total=total,
            budget=0.02,
            description="operations abandoned outright",
        ),
        EventRateSLO(
            "recovery_rate",
            bad=lambda reg: metric_total(
                reg, CHAOS_OPS_METRIC, outcome="recovered"
            ),
            total=total,
            budget=0.05,
            description="operations saved only by the resilience layer",
        ),
    ]


def build_chaos_timeline(
    scenarios: List[ScenarioResult], window_ops: int = CHAOS_WINDOW_OPS
) -> ChaosTimeline:
    """Window the concatenated outcome streams and evaluate the SLOs."""
    recorder = TimeSeriesRecorder(float(window_ops))
    evaluator = SLOEvaluator(chaos_slos(), rules=CHAOS_RULES)
    timeline = ChaosTimeline(window_ops=window_ops)
    seen: List[WindowSnapshot] = []

    def close(snapshots: List[WindowSnapshot]) -> None:
        for snapshot in snapshots:
            seen.append(snapshot)
            edges = evaluator.on_window(seen, snapshot.end)
            reg = snapshot.registry
            timeline.windows.append(
                ChaosWindow(
                    index=snapshot.index,
                    start_op=int(snapshot.start),
                    end_op=int(snapshot.end),
                    ok=int(metric_total(reg, CHAOS_OPS_METRIC, outcome="ok")),
                    recovered=int(
                        metric_total(reg, CHAOS_OPS_METRIC, outcome="recovered")
                    ),
                    failed=int(
                        metric_total(reg, CHAOS_OPS_METRIC, outcome="failed")
                    ),
                    states=dict(evaluator.states()),
                    transitions=tuple(edges),
                )
            )

    op = 0
    for scenario in scenarios:
        for outcome in scenario.outcomes:
            close(recorder.advance(float(op)))
            recorder.registry().counter(CHAOS_OPS_METRIC).inc(
                1, scenario=scenario.name, outcome=outcome
            )
            op += 1
    close(recorder.advance(float(op)))
    tail = recorder.flush()
    if tail is not None:
        close([tail])
    evaluator.finish(seen[-1].end if seen else float(op))
    timeline.final_states = evaluator.states()
    return timeline


# -- the runner ---------------------------------------------------------------

_SCENARIOS = (
    (_run_rpc, 60),
    (_run_cache, 80),
    (_run_kvstore, 120),
    (_run_farmemory, 40),
    (_run_managed, 60),
    (_run_serving, 50),
    (_run_kvstore_crash, 40),
    (_run_cluster, 48),
)


def run_chaos(plan: str = "standard", seed: int = 7, ops: float = 1.0) -> ChaosReport:
    """Run every scenario under ``plan``; returns the full report.

    ``ops`` scales each scenario's operation count (0.25 = quick smoke).
    One injector spans the run, so its per-spec RNG streams -- and with
    them the whole scorecard -- are a pure function of ``(plan, seed,
    ops)``.
    """
    fault_plan = FaultPlan.named(plan)
    injector = FaultInjector(fault_plan, seed=seed)
    recovery = Histogram(
        "chaos_recovery_seconds", "modeled latency of each recovery"
    )
    scenarios = [
        runner(injector, seed, max(1, round(base * ops)), recovery)
        for runner, base in _SCENARIOS
    ]
    breakdown = sorted(
        (site, kind, count) for (site, kind), count in injector.fired.items()
    )
    timeline = build_chaos_timeline(scenarios)
    return ChaosReport(
        fault_plan.name, seed, scenarios, recovery, breakdown, timeline
    )


def format_scorecard(report: ChaosReport) -> str:
    """Render the report; byte-identical for identical reports."""
    lines = [
        f"chaos scorecard -- plan '{report.plan}', seed {report.seed}",
        "",
        f"{'scenario':10s} {'ops':>5s} {'ok':>5s} {'recovered':>9s} {'failed':>6s}",
    ]
    for scenario in report.scenarios:
        lines.append(
            f"{scenario.name:10s} {scenario.operations:5d} {scenario.ok:5d} "
            f"{scenario.recovered:9d} {scenario.failed:6d}"
        )
    lines.append(
        f"{'total':10s} {report.operations:5d} {report.ok:5d} "
        f"{report.recovered:9d} {report.failed:6d}"
    )
    survived = report.ok + report.recovered
    rate = survived / report.operations if report.operations else 1.0
    lines.append("")
    lines.append(
        f"survived {survived}/{report.operations} operations ({rate * 100:.1f}%), "
        f"{report.faults_injected} faults injected"
    )
    if report.fault_breakdown:
        lines.append("faults by site:")
        for site, kind, count in report.fault_breakdown:
            lines.append(f"  {site} {kind}: {count}")
    if report.recovery.count(source="all"):
        lines.append("recovery latency (modeled):")
        for source in ["all"] + sorted(
            {s.name for s in report.scenarios if report.recovery.count(source=s.name)}
        ):
            count = report.recovery.count(source=source)
            if not count:
                continue
            lines.append(
                f"  {source:8s} n={count:<4d} "
                f"p50={report.recovery.p50(source=source) * 1e3:8.3f} ms  "
                f"p90={report.recovery.p90(source=source) * 1e3:8.3f} ms  "
                f"p99={report.recovery.p99(source=source) * 1e3:8.3f} ms"
            )
    notes = []
    for scenario in report.scenarios:
        interesting = {k: v for k, v in scenario.notes.items() if v}
        if interesting:
            rendered = ", ".join(f"{k}={v}" for k, v in interesting.items())
            notes.append(f"  {scenario.name}: {rendered}")
    if notes:
        lines.append("detail:")
        lines.extend(notes)
    if report.timeline is not None and report.timeline.windows:
        timeline = report.timeline
        lines.append(
            f"alert timeline ({timeline.window_ops}-op windows, "
            f"{len(timeline.windows)} windows):"
        )
        if timeline.transitions:
            for t in timeline.transitions:
                lines.append(
                    f"  ! op {t.at:g}  {t.slo}: {t.from_state} -> "
                    f"{t.to_state} ({t.reason})"
                )
        else:
            lines.append("  (no alerts fired)")
        final = " ".join(
            f"{name}={state}"
            for name, state in sorted(timeline.final_states.items())
        )
        lines.append(
            f"  final states: {final}; worst {timeline.worst_state()}"
        )
    return "\n".join(lines)
