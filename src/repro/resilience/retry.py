"""Capped exponential backoff with deterministic jitter.

The retry discipline the RPC channel applies per message: attempt, and on
a retryable failure wait ``base * multiplier^(attempt-1)`` (capped), with
an "equal jitter" randomized fraction so synchronized clients do not
retry in lockstep. Jitter is derived from ``(seed, key, attempt)`` via a
string-seeded :class:`random.Random` -- stable across processes and runs
(string seeding does not go through the salted ``hash()``), which is what
makes a chaos run reproducible down to the byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and backoff shape for one call site.

    ``max_attempts`` counts the first try: 3 means one call plus at most
    two retries. ``jitter`` is the fraction of each backoff that is
    randomized; 0 gives a fully deterministic ladder.
    """

    max_attempts: int = 3
    base_seconds: float = 1e-3
    multiplier: float = 2.0
    cap_seconds: float = 0.5
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_seconds < 0 or self.cap_seconds < 0:
            raise ValueError("backoff times must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_seconds(self, attempt: int, key: object = "") -> float:
        """Wait before retry ``attempt`` (1 = after the first failure).

        ``key`` names the logical operation (message id, page number) so
        distinct operations jitter independently but reproducibly.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(
            self.cap_seconds,
            self.base_seconds * self.multiplier ** (attempt - 1),
        )
        if not self.jitter or not raw:
            return raw
        rng = random.Random(f"retry:{self.seed}:{key}:{attempt}")
        return raw * (1.0 - self.jitter) + raw * self.jitter * rng.random()

    def schedule(self, key: object = "") -> Tuple[float, ...]:
        """Every backoff this policy would apply, in order."""
        return tuple(
            self.backoff_seconds(attempt, key)
            for attempt in range(1, self.max_attempts)
        )
