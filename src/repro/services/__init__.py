"""Service substrates: the systems behind Table I.

Each substrate is a minimal but faithful implementation of the service
architecture the paper characterizes, exercising the same compression call
sites: block-granular SST compression in the LSM key-value store, per-item
dictionary compression in the caches, ORC-style columnar blocks in the data
warehouse, and request payload compression in the ads inference tier.
"""

from repro.services.catalog import SERVICE_CATALOG, ServiceInfo
from repro.services.cache import CacheClient, CacheServer, CacheStats
from repro.services.kvstore import KVStore, KVStoreStats
from repro.services.warehouse import (
    IngestionJob,
    MLDataJob,
    OrcReader,
    OrcWriter,
    ShuffleJob,
    SparkJob,
    WorkflowReport,
)
from repro.services.ads import AdsInferenceService, AdsRequestStats
from repro.services.rpc import Channel, RpcStats
from repro.services.managed import ManagedBlob, ManagedCompression
from repro.services.farmemory import FarMemoryPool, FarMemoryStats

__all__ = [
    "SERVICE_CATALOG",
    "ServiceInfo",
    "CacheClient",
    "CacheServer",
    "CacheStats",
    "KVStore",
    "KVStoreStats",
    "OrcWriter",
    "OrcReader",
    "IngestionJob",
    "ShuffleJob",
    "SparkJob",
    "MLDataJob",
    "WorkflowReport",
    "AdsInferenceService",
    "AdsRequestStats",
    "Channel",
    "RpcStats",
    "ManagedCompression",
    "ManagedBlob",
    "FarMemoryPool",
    "FarMemoryStats",
]
