"""RetryPolicy: backoff shape, cap, and deterministic jitter."""

import pytest

from repro.resilience import RetryPolicy


class TestValidation:
    def test_max_attempts_at_least_one(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_multiplier_at_least_one(self):
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_jitter_is_fraction(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_seconds(0)


class TestBackoffShape:
    def test_jitterless_exponential_ladder(self):
        policy = RetryPolicy(
            max_attempts=5, base_seconds=0.001, multiplier=2.0,
            cap_seconds=10.0, jitter=0.0,
        )
        assert policy.schedule() == (0.001, 0.002, 0.004, 0.008)

    def test_cap_bounds_every_backoff(self):
        policy = RetryPolicy(
            max_attempts=20, base_seconds=0.001, multiplier=3.0,
            cap_seconds=0.05, jitter=0.5,
        )
        assert all(b <= 0.05 for b in policy.schedule())
        # deep attempts sit at the cap (modulo jitter shrink)
        assert policy.backoff_seconds(15) >= 0.05 * 0.5

    def test_jitter_stays_within_equal_jitter_band(self):
        policy = RetryPolicy(base_seconds=0.01, multiplier=1.0, jitter=0.4)
        for attempt in range(1, 10):
            backoff = policy.backoff_seconds(attempt, key="op")
            assert 0.01 * 0.6 <= backoff <= 0.01


class TestDeterminism:
    def test_same_inputs_same_backoff(self):
        a = RetryPolicy(seed=3).backoff_seconds(2, key="message-9")
        b = RetryPolicy(seed=3).backoff_seconds(2, key="message-9")
        assert a == b

    def test_distinct_keys_jitter_independently(self):
        policy = RetryPolicy(seed=3)
        values = {policy.backoff_seconds(2, key=k) for k in range(20)}
        assert len(values) > 1  # not lockstep

    def test_seed_changes_jitter(self):
        assert RetryPolicy(seed=1).backoff_seconds(2, key="k") != RetryPolicy(
            seed=2
        ).backoff_seconds(2, key="k")

    def test_policy_is_frozen(self):
        policy = RetryPolicy()
        with pytest.raises(Exception):
            policy.max_attempts = 99
