"""Striped ORC-like files: row-group selection (predicate pushdown by rows).

Real ORC splits a file into stripes of N rows so a reader touching a row
range only decompresses the overlapping stripes. A striped file here is a
stripe directory wrapping whole ORC-like stripe payloads::

    "RORS" | varint stripe_count | { varint row_count | varint byte_len | stripe } *
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.codecs import Compressor
from repro.codecs.base import CorruptDataError
from repro.codecs.varint import read_uvarint, write_uvarint
from repro.services.warehouse.orc import (
    ColumnValues,
    OrcReader,
    OrcWriter,
)

_MAGIC = b"RORS"


def _slice_table(
    table: Dict[str, ColumnValues], start: int, stop: int
) -> Dict[str, ColumnValues]:
    return {
        name: values[start:stop] if isinstance(values, list) else values[start:stop]
        for name, values in table.items()
    }


def _concat_columns(parts: List[ColumnValues]) -> ColumnValues:
    if isinstance(parts[0], list):
        out: List[str] = []
        for part in parts:
            out.extend(part)
        return out
    return np.concatenate(parts)


class StripedOrcWriter:
    """Writes a table as fixed-row-count stripes."""

    def __init__(
        self,
        codec: Optional[Compressor] = None,
        level: int = 7,
        stripe_rows: int = 10_000,
    ) -> None:
        if stripe_rows <= 0:
            raise ValueError("stripe_rows must be positive")
        self.codec = codec
        self.level = level
        self.stripe_rows = stripe_rows
        self.stripe_writers: List[OrcWriter] = []

    def write(self, table: Dict[str, ColumnValues]) -> bytes:
        if not table:
            raise ValueError("table has no columns")
        row_count = len(next(iter(table.values())))
        out = bytearray(_MAGIC)
        stripes: List[Tuple[int, bytes]] = []
        for start in range(0, row_count, self.stripe_rows) or [0]:
            stop = min(start + self.stripe_rows, row_count)
            writer = OrcWriter(codec=self.codec, level=self.level)
            payload = writer.write(_slice_table(table, start, stop))
            self.stripe_writers.append(writer)
            stripes.append((stop - start, payload))
        write_uvarint(out, len(stripes))
        for rows, payload in stripes:
            write_uvarint(out, rows)
            write_uvarint(out, len(payload))
            out.extend(payload)
        return bytes(out)


class StripedOrcReader:
    """Reads striped files with stripe-level and column-level pushdown."""

    def __init__(self, codec: Optional[Compressor] = None) -> None:
        self.codec = codec
        self.stripe_readers: List[OrcReader] = []

    def _directory(self, payload: bytes) -> List[Tuple[int, int, int]]:
        """(row_count, offset, byte_len) per stripe."""
        if payload[:4] != _MAGIC:
            raise CorruptDataError("bad striped-ORC magic")
        pos = 4
        count, pos = read_uvarint(payload, pos)
        directory = []
        for __ in range(count):
            rows, pos = read_uvarint(payload, pos)
            size, pos = read_uvarint(payload, pos)
            directory.append((rows, pos, size))
            pos += size
        if pos > len(payload):
            raise CorruptDataError("striped file shorter than directory claims")
        return directory

    def row_count(self, payload: bytes) -> int:
        return sum(rows for rows, __, __ in self._directory(payload))

    def read(
        self,
        payload: bytes,
        columns: Optional[List[str]] = None,
        row_range: Optional[Tuple[int, int]] = None,
    ) -> Dict[str, ColumnValues]:
        """Read columns, touching only stripes overlapping ``row_range``.

        ``row_range`` is [start, stop) in file row numbers; the result
        contains exactly those rows.
        """
        directory = self._directory(payload)
        total_rows = sum(rows for rows, __, __ in directory)
        start, stop = row_range if row_range is not None else (0, total_rows)
        if start < 0 or stop > total_rows or start > stop:
            raise ValueError(f"row range [{start}, {stop}) outside 0..{total_rows}")
        if start == stop:
            return {}

        collected: Dict[str, List[ColumnValues]] = {}
        row_base = 0
        for rows, offset, size in directory:
            stripe_start, stripe_stop = row_base, row_base + rows
            row_base = stripe_stop
            if stripe_stop <= start or stripe_start >= stop:
                continue  # stripe skipped entirely: nothing decompressed
            reader = OrcReader(codec=self.codec)
            self.stripe_readers.append(reader)
            stripe = reader.read(payload[offset : offset + size], columns=columns)
            trim_lo = max(0, start - stripe_start)
            trim_hi = min(rows, stop - stripe_start)
            for name, values in stripe.items():
                collected.setdefault(name, []).append(values[trim_lo:trim_hi])
        return {name: _concat_columns(parts) for name, parts in collected.items()}

    @property
    def blocks_decompressed(self) -> int:
        return sum(reader.stats.blocks for reader in self.stripe_readers)
