"""The grandfather baseline and its ratchet.

``lint_baseline.json`` (committed at the repo root) lists findings that
predate a rule and are tolerated *for now*. The ratchet is one-way:

- a current finding whose fingerprint is in the baseline is
  **grandfathered** -- reported, but it does not fail ``--fail-on new``;
- a finding not in the baseline is **new** and fails the gate;
- a baseline entry that no longer matches anything is **stale** and is
  dropped on the next ``--write-baseline`` (the file only ever shrinks
  unless a rule is added).

The shipped baseline is empty: every hazard the initial rules found was
either fixed or carries a justified inline suppression. Keep it that
way -- a PR that must add a baseline entry should say why in review.

Fingerprints hash (rule, path, offending line text, occurrence index),
not line numbers, so unrelated edits above a grandfathered site do not
resurrect it as "new" (see :mod:`repro.lint.finding`).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.lint.finding import Finding

#: default location, resolved against the current directory (CI runs at
#: the repo root, exactly like the chaos and trajectory gates)
DEFAULT_BASELINE = "lint_baseline.json"

_SCHEMA = 1


@dataclass
class Baseline:
    """The committed set of grandfathered finding fingerprints."""

    entries: List[dict] = field(default_factory=list)

    def fingerprints(self) -> Set[str]:
        return {entry["fingerprint"] for entry in self.entries}


def load_baseline(path: str = DEFAULT_BASELINE) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    if not os.path.exists(path):
        return Baseline()
    with open(path, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    if not isinstance(raw, dict) or "findings" not in raw:
        raise ValueError(f"{path}: not a lint baseline (missing 'findings')")
    if raw.get("schema") != _SCHEMA:
        raise ValueError(
            f"{path}: unsupported baseline schema {raw.get('schema')!r}"
        )
    return Baseline(entries=list(raw["findings"]))


def save_baseline(findings: List[Finding], path: str = DEFAULT_BASELINE) -> None:
    """Write the current error findings as the new baseline, sorted."""
    entries = sorted(
        (
            {
                "rule": item.rule,
                "path": item.path,
                "line_text": item.line_text.strip(),
                "fingerprint": item.fingerprint,
            }
            for item in findings
        ),
        key=lambda e: (e["path"], e["rule"], e["fingerprint"]),
    )
    payload = {"schema": _SCHEMA, "findings": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def split_by_baseline(
    findings: List[Finding], baseline: Baseline
) -> Tuple[List[Finding], List[Finding]]:
    """Partition findings into (new, grandfathered) via the ratchet."""
    known = baseline.fingerprints()
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    for item in findings:
        (grandfathered if item.fingerprint in known else new).append(item)
    return new, grandfathered


def stale_entries(findings: List[Finding], baseline: Baseline) -> List[dict]:
    """Baseline entries no longer matched by any current finding."""
    current = {item.fingerprint for item in findings}
    return [e for e in baseline.entries if e["fingerprint"] not in current]
