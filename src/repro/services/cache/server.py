"""Cache server: typed item store with per-type dictionary compression."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.codecs import (
    CompressionDictionary,
    Compressor,
    get_codec,
    train_dictionary,
)
from repro.codecs.base import StageCounters
from repro.obs.instrument import record_cache_request
from repro.obs.state import OBS_STATE
from repro.perfmodel import DEFAULT_MACHINE, MachineModel


@dataclass
class CacheStats:
    """Server-side accounting: hit rate, bytes, compression work."""

    sets: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    raw_bytes: int = 0
    stored_bytes: int = 0
    network_bytes_served: int = 0
    compress_counters: StageCounters = field(default_factory=StageCounters)
    compress_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def memory_ratio(self) -> float:
        """Effective compression ratio of resident items."""
        return self.raw_bytes / self.stored_bytes if self.stored_bytes else 1.0


class CacheServer:
    """Memcached-style server that compresses each item individually.

    Items below ``min_compress_size`` are stored raw (compression overhead
    exceeds the saving). With ``use_dictionaries=True`` a per-type
    dictionary, trained on sample items, is used for both compression and
    the client's decompression.
    """

    def __init__(
        self,
        codec: Optional[Compressor] = None,
        level: int = 3,
        use_dictionaries: bool = False,
        dictionary_size: int = 8192,
        min_compress_size: int = 64,
        capacity_bytes: Optional[int] = None,
        machine: MachineModel = DEFAULT_MACHINE,
    ) -> None:
        self.codec = codec if codec is not None else get_codec("zstd")
        self.level = level
        self.use_dictionaries = use_dictionaries
        self.dictionary_size = dictionary_size
        self.min_compress_size = min_compress_size
        #: resident-memory budget; None = unbounded. Compression stretches
        #: this budget, which is the memory-TCO argument of the paper's
        #: introduction.
        self.capacity_bytes = capacity_bytes
        self.machine = machine
        self.dictionaries: Dict[str, CompressionDictionary] = {}
        #: key -> (type_name, compressed flag, stored bytes); LRU order
        self._store: "OrderedDict[bytes, Tuple[str, bool, bytes]]" = OrderedDict()
        self._resident_bytes = 0
        self.stats = CacheStats()

    # -- dictionary management -------------------------------------------------

    def train_type_dictionary(
        self, type_name: str, samples: Iterable[bytes]
    ) -> CompressionDictionary:
        """Train and install the dictionary for one item type."""
        dictionary = train_dictionary(samples, max_size=self.dictionary_size)
        self.dictionaries[type_name] = dictionary
        return dictionary

    def dictionary_for(self, type_name: str) -> Optional[bytes]:
        if not self.use_dictionaries:
            return None
        dictionary = self.dictionaries.get(type_name)
        return dictionary.content if dictionary else None

    # -- item operations ----------------------------------------------------------

    def set(self, key: bytes, type_name: str, value: bytes) -> None:
        """Store an item, compressing it individually if worthwhile."""
        self.stats.sets += 1
        self.stats.raw_bytes += len(value)
        if len(value) < self.min_compress_size:
            self._insert(bytes(key), type_name, False, bytes(value))
            return
        dictionary = self.dictionary_for(type_name)
        result = self.codec.compress(value, self.level, dictionary=dictionary)
        self.stats.compress_counters.merge(result.counters)
        self.stats.compress_seconds += self.machine.compress_seconds(
            self.codec.name, result.counters
        )
        if len(result.data) < len(value):
            self._insert(bytes(key), type_name, True, result.data)
        else:
            self._insert(bytes(key), type_name, False, bytes(value))
        if OBS_STATE.enabled:
            record_cache_request("set", "stored", len(value))

    def _insert(self, key: bytes, type_name: str, compressed: bool, payload: bytes) -> None:
        """Store one entry, evicting LRU items past the capacity budget."""
        if key in self._store:
            self._resident_bytes -= len(self._store.pop(key)[2])
        self._store[key] = (type_name, compressed, payload)
        self._resident_bytes += len(payload)
        self.stats.stored_bytes += len(payload)
        if self.capacity_bytes is not None:
            while self._resident_bytes > self.capacity_bytes and len(self._store) > 1:
                __, (__, __, evicted) = self._store.popitem(last=False)
                self._resident_bytes -= len(evicted)
                self.stats.evictions += 1

    def get_compressed(self, key: bytes) -> Optional[Tuple[str, bool, bytes]]:
        """Serve the stored (possibly compressed) bytes -- no server decompress.

        This is the property the paper highlights: the server ships the
        compressed item straight to the client, saving server CPU and
        network bytes.
        """
        key = bytes(key)
        entry = self._store.get(key)
        if entry is None:
            self.stats.misses += 1
            if OBS_STATE.enabled:
                record_cache_request("get", "miss")
            return None
        self._store.move_to_end(key)  # LRU touch
        self.stats.hits += 1
        self.stats.network_bytes_served += len(entry[2])
        if OBS_STATE.enabled:
            record_cache_request("get", "hit", len(entry[2]))
        return entry

    @property
    def resident_bytes(self) -> int:
        """Bytes currently held in memory (post-compression)."""
        return self._resident_bytes

    def __contains__(self, key: bytes) -> bool:
        return bytes(key) in self._store

    def __len__(self) -> int:
        return len(self._store)
