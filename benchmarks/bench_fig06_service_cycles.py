"""Fig. 6: Zstd compute-cycle share for the eight Table-I services.

Paper shape: shares span 1.7%..30.5%; DW1/DW2 at the top (28.5% / 30%),
DW3 at 13.5%, DW4 at 8%, caches and ads in the low single digits.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_series
from repro.corpus import (
    CACHE1_TYPES,
    CACHE2_TYPES,
    generate_cache_items,
    generate_kv_records,
    generate_table,
)
from repro.perfmodel import DEFAULT_MACHINE
from repro.services import (
    AdsInferenceService,
    CacheClient,
    CacheServer,
    IngestionJob,
    KVStore,
    MLDataJob,
    ShuffleJob,
    SparkJob,
)

#: modeled non-compression work for the request-serving substrates
_CACHE_CYCLES_PER_OP = 90_000.0
_KV_CYCLES_PER_OP = 41_000.0


def _cache_share(type_specs, item_count, seed):
    server = CacheServer(level=3, use_dictionaries=True)
    items = generate_cache_items(type_specs, item_count, seed=seed)
    by_type = {}
    for type_name, payload in items:
        by_type.setdefault(type_name, []).append(payload)
    for type_name, payloads in by_type.items():
        server.train_type_dictionary(type_name, payloads[: len(payloads) // 3])
    client = CacheClient(server)
    for index, (type_name, payload) in enumerate(items):
        server.set(b"k%d" % index, type_name, payload)
    for index in range(len(items)):
        client.get(b"k%d" % index)
    compression_cycles = (
        DEFAULT_MACHINE.compress_cycles("zstd", server.stats.compress_counters)
        + DEFAULT_MACHINE.decompress_cycles("zstd", client.stats.decompress_counters)
    )
    other_cycles = 2 * len(items) * _CACHE_CYCLES_PER_OP
    return compression_cycles / (compression_cycles + other_cycles)


def _kvstore_share():
    store = KVStore(compression_level=1, block_size=16384, memtable_bytes=1 << 15)
    records = generate_kv_records(1200, seed=60)
    for key, value in records:
        store.put(key, value)
    store.flush()
    for key, __ in records[::3]:
        store.get(key)
    compression_cycles = DEFAULT_MACHINE.compress_cycles(
        "zstd", store.stats.compress_counters
    ) + DEFAULT_MACHINE.decompress_cycles(
        "zstd", store.total_decompress_counters()
    )
    operations = len(records) + len(records) // 3
    other_cycles = operations * _KV_CYCLES_PER_OP
    return compression_cycles / (compression_cycles + other_cycles)


@pytest.fixture(scope="module")
def service_shares():
    table = generate_table(2500, seed=40)
    ingest = IngestionJob().run(table)
    shares = {
        "DW2": ShuffleJob().run(ingest.payload).report.zstd_share,
        "DW1": ingest.report.zstd_share,
        "DW3": SparkJob().run(ingest.payload).report.zstd_share,
        "DW4": MLDataJob().run(ingest.payload).report.zstd_share,
        "ADS1": AdsInferenceService(level=1).serve_batch("B", 3, seed=41).zstd_cycle_share,
        "CACHE1": _cache_share(CACHE1_TYPES, 250, seed=42),
        "CACHE2": _cache_share(CACHE2_TYPES, 250, seed=43),
        "KVSTORE1": _kvstore_share(),
    }
    return shares


def test_fig06_service_cycles(benchmark, service_shares, figure_output):
    points = sorted(service_shares.items(), key=lambda kv: -kv[1])
    figure_output(
        "fig06_service_cycles",
        format_series(
            "Zstd cycles share by service (paper: 1.7%..30.5%)",
            [(name, share * 100) for name, share in points],
            value_format="{:.1f}%",
        ),
    )
    # Shape assertions from the paper's text.
    assert 0.15 < service_shares["DW1"] < 0.40  # 28.5% published
    assert 0.20 < service_shares["DW2"] < 0.45  # 30% published
    assert 0.08 < service_shares["DW3"] < 0.20  # 13.5% published
    assert 0.04 < service_shares["DW4"] < 0.15  # 8% published
    assert min(service_shares.values()) > 0.005
    assert max(service_shares.values()) == max(
        service_shares["DW1"], service_shares["DW2"]
    )

    table = generate_table(400, seed=44)
    benchmark(lambda: IngestionJob().run(table).report.zstd_share)
