"""CompEngine tests: measurement, blocks, caching, dictionaries."""

import pytest

from repro.core import CompEngine, CompressionConfig
from repro.corpus import generate_records


@pytest.fixture(scope="module")
def samples():
    return [generate_records(8192, seed=s) for s in range(3)]


class TestMeasure:
    def test_metrics_shape(self, samples):
        engine = CompEngine(samples)
        metrics = engine.measure(CompressionConfig("zstd", 3))
        assert metrics.ratio > 1
        assert metrics.compression_speed > 0
        assert metrics.decompression_speed > 0
        assert metrics.input_bytes == sum(len(s) for s in samples)
        assert metrics.block_count == len(samples)

    def test_block_size_splits_samples(self, samples):
        engine = CompEngine(samples)
        whole = engine.measure(CompressionConfig("zstd", 1))
        split = engine.measure(CompressionConfig("zstd", 1, 1024))
        assert split.block_count > whole.block_count

    def test_smaller_blocks_worse_ratio(self, samples):
        """The core Fig. 13 trade-off, measured through the engine."""
        engine = CompEngine(samples)
        small = engine.measure(CompressionConfig("zstd", 1, 1024))
        large = engine.measure(CompressionConfig("zstd", 1, 16384))
        assert large.ratio > small.ratio

    def test_smaller_blocks_faster_decode_per_block(self, samples):
        engine = CompEngine(samples)
        small = engine.measure(CompressionConfig("zstd", 1, 1024))
        large = engine.measure(CompressionConfig("zstd", 1, 16384))
        assert small.decode_seconds_per_block < large.decode_seconds_per_block

    def test_results_cached(self, samples):
        engine = CompEngine(samples)
        config = CompressionConfig("zstd", 3)
        first = engine.measure(config)
        assert engine.measure(config) is first

    def test_wallclock_timing_mode(self, samples):
        engine = CompEngine(samples[:1], timing="wallclock")
        metrics = engine.measure(CompressionConfig("zstd", 1))
        assert metrics.compression_speed > 0

    def test_invalid_timing_mode(self, samples):
        with pytest.raises(ValueError):
            CompEngine(samples, timing="guess")

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            CompEngine([])

    def test_dictionary_mode(self):
        items = [
            b'{"k": %d, "country": "US", "status": "on"}' % i for i in range(40)
        ]
        from repro.codecs import train_dictionary

        dictionary = train_dictionary(items[:30], 2048)
        engine = CompEngine(items[30:], dictionary=dictionary.content)
        plain = engine.measure(CompressionConfig("zstd", 3))
        dicted = engine.measure(CompressionConfig("zstd", 3), use_dictionary=True)
        assert dicted.ratio > plain.ratio

    def test_match_finding_share_reported(self, samples):
        engine = CompEngine(samples)
        low = engine.measure(CompressionConfig("zstd", 1))
        high = engine.measure(CompressionConfig("zstd", 9))
        assert 0 < low.match_finding_share < 1
        assert high.match_finding_share > low.match_finding_share

    def test_measure_grid(self, samples):
        engine = CompEngine(samples)
        configs = [CompressionConfig("zstd", 1), CompressionConfig("lz4", 1)]
        results = engine.measure_grid(configs)
        assert [c for c, __ in results] == configs

    def test_metrics_derived_properties(self, samples):
        engine = CompEngine(samples)
        metrics = engine.measure(CompressionConfig("zstd", 3))
        assert metrics.compress_seconds == pytest.approx(
            metrics.input_bytes / metrics.compression_speed
        )
        assert 0 < metrics.space_saving < 1
