"""Key-value records for the KVSTORE1 (RocksDB-style) substrate."""

from __future__ import annotations

from typing import List, Tuple

from repro.corpus.distributions import SeededSampler

_COLUMN_FAMILIES = ["default", "meta", "index"]


def generate_kv_records(
    count: int, seed: int = 0, key_space: int = 10_000_000
) -> List[Tuple[bytes, bytes]]:
    """``count`` sorted key-value pairs with ZippyDB-like shapes.

    Keys share long common prefixes (service/shard/entity), values mix a
    small binary header with semi-structured payload -- the mix that makes
    SST block compression worthwhile but block-size-sensitive (Fig. 13).
    """
    sampler = SeededSampler(seed)
    keys = sorted(
        int(v) for v in sampler.integers(0, key_space, count)
    )
    records: List[Tuple[bytes, bytes]] = []
    for sequence, key_id in enumerate(keys):
        family = _COLUMN_FAMILIES[key_id % len(_COLUMN_FAMILIES)]
        key = f"svc7/shard{key_id % 64:03d}/{family}/{key_id:012d}".encode()
        header = (key_id & 0xFFFFFFFF).to_bytes(4, "little") + (
            sequence & 0xFFFF
        ).to_bytes(2, "little")
        value_len = int(sampler.uniform(40, 400))
        fields = (
            b"state=active;owner=%d;region=%s;"
            % (key_id % 1000, [b"use", b"usw", b"eu", b"apac"][key_id % 4])
        )
        filler = fields * (value_len // max(1, len(fields)) + 1)
        records.append((key, header + filler[:value_len]))
    # Byte-order of the rendered keys differs from numeric order (shard and
    # column family interleave); SSTs need byte-sorted keys.
    records.sort(key=lambda kv: kv[0])
    return records
