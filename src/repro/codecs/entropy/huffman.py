"""Canonical, length-limited Huffman coding.

Code lengths are computed with the package-merge algorithm, which yields
optimal codes under a maximum-length constraint (DEFLATE caps lengths at 15
bits; the Zstandard-style literal coder caps them at 11). Codes are canonical
-- fully determined by their lengths -- so only the length table needs to be
serialized. Codewords are stored bit-reversed so that both encoder and
decoder operate on the shared LSB-first bit stream.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.codecs.entropy.bitio import BitReader, BitWriter


def _reverse_bits(value: int, width: int) -> int:
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def build_code_lengths(frequencies: Sequence[int], max_bits: int) -> List[int]:
    """Return optimal length-limited code lengths via package-merge.

    ``frequencies[i]`` is the occurrence count of symbol ``i``; symbols with
    zero frequency get length 0 (no code). Raises ``ValueError`` when the
    alphabet cannot fit in ``max_bits`` bits.
    """
    symbols = [i for i, f in enumerate(frequencies) if f > 0]
    lengths = [0] * len(frequencies)
    if not symbols:
        return lengths
    if len(symbols) == 1:
        lengths[symbols[0]] = 1
        return lengths
    if len(symbols) > (1 << max_bits):
        raise ValueError(
            f"{len(symbols)} symbols cannot be coded in {max_bits} bits"
        )

    # Package-merge: list L_max holds the original items; each of the
    # max_bits-1 packaging rounds pairs up adjacent items and merges the
    # originals back in. The first 2*(n-1) items of the final list L_1
    # determine code lengths (each appearance of a symbol adds one bit).
    originals = sorted((frequencies[s], (s,)) for s in symbols)
    packages: List[Tuple[int, Tuple[int, ...]]] = []
    for _ in range(max_bits - 1):
        merged = sorted(packages + originals)
        packages = [
            (
                merged[i][0] + merged[i + 1][0],
                merged[i][1] + merged[i + 1][1],
            )
            for i in range(0, len(merged) - 1, 2)
        ]
    counts: Dict[int, int] = {}
    needed = 2 * (len(symbols) - 1)
    merged = sorted(packages + originals)
    for weight, syms in merged[:needed]:
        for sym in syms:
            counts[sym] = counts.get(sym, 0) + 1
    for sym, length in counts.items():
        lengths[sym] = length
    return lengths


def canonical_codes(lengths: Sequence[int]) -> List[int]:
    """Assign canonical codewords (bit-reversed for LSB-first streams)."""
    max_len = max(lengths) if lengths else 0
    length_counts = [0] * (max_len + 1)
    for length in lengths:
        if length:
            length_counts[length] += 1
    next_code = [0] * (max_len + 2)
    code = 0
    for bits in range(1, max_len + 1):
        code = (code + length_counts[bits - 1]) << 1
        next_code[bits] = code
    codes = [0] * len(lengths)
    for symbol, length in enumerate(lengths):
        if length:
            codes[symbol] = _reverse_bits(next_code[length], length)
            next_code[length] += 1
    return codes


class HuffmanEncoder:
    """Encodes symbols with a canonical Huffman code."""

    def __init__(self, lengths: Sequence[int]) -> None:
        self.lengths = list(lengths)
        self.codes = canonical_codes(lengths)

    @classmethod
    def from_frequencies(
        cls, frequencies: Sequence[int], max_bits: int = 15
    ) -> "HuffmanEncoder":
        return cls(build_code_lengths(frequencies, max_bits))

    def encode_symbol(self, writer: BitWriter, symbol: int) -> None:
        length = self.lengths[symbol]
        if not length:
            raise ValueError(f"symbol {symbol} has no code")
        writer.write(self.codes[symbol], length)

    def encoded_bit_length(self, frequencies: Sequence[int]) -> int:
        """Total bits needed to code a message with the given histogram."""
        return sum(
            freq * self.lengths[sym]
            for sym, freq in enumerate(frequencies)
            if freq
        )


class HuffmanDecoder:
    """Table-driven decoder for a canonical Huffman code."""

    def __init__(self, lengths: Sequence[int]) -> None:
        self.lengths = list(lengths)
        self.max_length = max(lengths) if any(lengths) else 0
        if self.max_length == 0:
            self._table: List[Tuple[int, int]] = []
            return
        codes = canonical_codes(lengths)
        table_size = 1 << self.max_length
        table: List[Tuple[int, int]] = [(-1, 0)] * table_size
        for symbol, length in enumerate(lengths):
            if not length:
                continue
            code = codes[symbol]
            # Fill every table slot whose low `length` bits match the code.
            step = 1 << length
            for slot in range(code, table_size, step):
                table[slot] = (symbol, length)
        self._table = table

    def decode_symbol(self, reader: BitReader) -> int:
        if self.max_length == 0:
            raise ValueError("decoder has an empty alphabet")
        window = reader.peek(self.max_length)
        symbol, length = self._table[window]
        if symbol < 0:
            raise ValueError("invalid Huffman code in stream")
        reader.skip(length)
        return symbol
