"""Circuit breaker: trip a failing codec to a raw-passthrough fallback.

The bicriteria view of compression (Farruggia et al.) only holds when a
failed or slow compressor can be traded for the raw path; this is the
mechanism that performs the trade. Consumers (cache server, far-memory
pool) call :meth:`allow` before compressing and :meth:`record_success` /
:meth:`record_failure` after; while the breaker is open they store raw.

State machine::

    CLOSED --[failure_threshold consecutive failures]--> OPEN
    OPEN   --[cooldown_seconds elapsed on the clock]---> HALF_OPEN
    HALF_OPEN --[half_open_successes successes]--------> CLOSED
    HALF_OPEN --[any failure]--------------------------> OPEN (cooldown restarts)

Time comes from a :class:`~repro.resilience.clock.SimClock` so cooldown
behaviour is deterministic and testable.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.obs.instrument import record_breaker_transition
from repro.obs.state import OBS_STATE
from repro.resilience.clock import SimClock

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Trip-out protection for a repeatedly failing dependency."""

    def __init__(
        self,
        name: str = "breaker",
        failure_threshold: int = 5,
        cooldown_seconds: float = 1.0,
        half_open_successes: int = 1,
        clock: Optional[SimClock] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be non-negative")
        if half_open_successes < 1:
            raise ValueError("half_open_successes must be at least 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.half_open_successes = half_open_successes
        self.clock = clock if clock is not None else SimClock()
        self.state = CLOSED
        self.trips = 0
        self.rejected = 0
        #: (clock reading, from-state, to-state) for every transition
        self.transitions: List[Tuple[float, str, str]] = []
        self._consecutive_failures = 0
        self._trial_successes = 0
        self._opened_at = 0.0

    # -- the consumer-facing triple ---------------------------------------

    def allow(self) -> bool:
        """May the protected operation be attempted right now?"""
        if self.state == OPEN:
            if self.clock.now() - self._opened_at >= self.cooldown_seconds:
                self._transition(HALF_OPEN)
                return True
            self.rejected += 1
            return False
        return True

    def record_success(self) -> None:
        if self.state == HALF_OPEN:
            self._trial_successes += 1
            if self._trial_successes >= self.half_open_successes:
                self._transition(CLOSED)
        else:
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        if self.state == HALF_OPEN:
            self._trip()
            return
        self._consecutive_failures += 1
        if self.state == CLOSED and (
            self._consecutive_failures >= self.failure_threshold
        ):
            self._trip()

    # -- internals ---------------------------------------------------------

    def _trip(self) -> None:
        self.trips += 1
        self._opened_at = self.clock.now()
        self._transition(OPEN)

    def _transition(self, to_state: str) -> None:
        from_state = self.state
        self.state = to_state
        self._consecutive_failures = 0
        self._trial_successes = 0
        self.transitions.append((self.clock.now(), from_state, to_state))
        if OBS_STATE.enabled:
            record_breaker_transition(self.name, to_state)

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, state={self.state}, "
            f"trips={self.trips})"
        )
