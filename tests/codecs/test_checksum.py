"""Checksum tests against known vectors and the stdlib oracle."""

import zlib as stdlib_zlib

import pytest
from hypothesis import given, strategies as st

from repro.codecs.checksum import adler32, crc32, xxh32


class TestXXH32:
    # Known-answer vectors from the reference xxHash implementation.
    def test_empty(self):
        assert xxh32(b"") == 0x02CC5D05

    def test_empty_with_seed(self):
        assert xxh32(b"", seed=1) == 0x0B2CB792

    def test_hello_world(self):
        assert xxh32(b"Hello World") == 0xB1FD16EE

    def test_single_byte(self):
        assert xxh32(b"a") == 0x550D7456

    def test_exactly_16_bytes_uses_lane_path(self):
        digest = xxh32(b"0123456789abcdef")
        assert 0 <= digest <= 0xFFFFFFFF
        assert digest != xxh32(b"0123456789abcdeF")

    def test_long_input_differs_from_prefix(self):
        data = b"x" * 1000
        assert xxh32(data) != xxh32(data[:-1])

    def test_seed_changes_digest(self):
        assert xxh32(b"payload", seed=0) != xxh32(b"payload", seed=42)

    def test_deterministic(self):
        assert xxh32(b"same input") == xxh32(b"same input")


class TestAdler32:
    def test_empty_is_one(self):
        assert adler32(b"") == 1

    @pytest.mark.parametrize(
        "data",
        [b"a", b"hello world", b"x" * 6000, bytes(range(256)) * 40],
    )
    def test_matches_stdlib(self, data):
        assert adler32(data) == stdlib_zlib.adler32(data)

    def test_incremental_matches_oneshot(self):
        data = b"abcdefgh" * 100
        running = adler32(data[:300])
        assert adler32(data[300:], running) == adler32(data)


class TestCRC32:
    def test_empty_is_zero(self):
        assert crc32(b"") == 0

    def test_known_vector(self):
        # "123456789" -> 0xCBF43926 (the classic CRC-32 check value)
        assert crc32(b"123456789") == 0xCBF43926

    @pytest.mark.parametrize(
        "data", [b"a", b"hello world", b"\x00" * 1000, bytes(range(256))]
    )
    def test_matches_stdlib(self, data):
        assert crc32(data) == stdlib_zlib.crc32(data)

    def test_incremental_matches_oneshot(self):
        data = b"streaming data" * 64
        running = crc32(data[:100])
        assert crc32(data[100:], running) == crc32(data)


@given(st.binary(max_size=2048))
def test_adler_and_crc_match_stdlib_property(data):
    assert adler32(data) == stdlib_zlib.adler32(data)
    assert crc32(data) == stdlib_zlib.crc32(data)
