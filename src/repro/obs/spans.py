"""Lightweight trace spans: nested wall-time attribution.

``span("zstd.compress", level=3)`` wraps a region; nested spans form a
tree, and each completed span records its wall time into the global
registry under its flame-style *path* (``"rpc.send;zstd.compress"``) —
the semicolon convention of collapsed flame graphs, mirroring how the
paper's fleet profiler attributes cycles to call-stack leaves
(Section III-A). Spans are exception-safe: the stack is restored and the
duration recorded even when the body raises, with ``error="true"`` on the
series so failed requests stay attributable.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, get_registry

#: metric family every completed span records into
SPAN_METRIC = "repro_span_seconds"

#: retained completed root spans (newest last), bounded
_MAX_ROOTS = 256


class _SpanStack(threading.local):
    """Per-thread stack of open spans."""

    def __init__(self) -> None:
        self.open: List["SpanRecord"] = []


_STACK = _SpanStack()
_ROOTS: List["SpanRecord"] = []
_ROOTS_LOCK = threading.Lock()


@dataclass
class SpanRecord:
    """One completed (or in-flight) span."""

    name: str
    attributes: Dict[str, object] = field(default_factory=dict)
    #: flame path: ancestor names joined with ';'
    path: str = ""
    duration_seconds: float = 0.0
    error: bool = False
    children: List["SpanRecord"] = field(default_factory=list)

    def set(self, **attributes: object) -> None:
        """Attach attributes mid-span."""
        self.attributes.update(attributes)

    def walk(self):
        """Yield this record and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()


class span:
    """Context manager timing one region; nests via a thread-local stack."""

    def __init__(
        self,
        name: str,
        registry: Optional[MetricsRegistry] = None,
        **attributes: object,
    ) -> None:
        self._name = name
        self._registry = registry
        self._attributes = attributes
        self.record: Optional[SpanRecord] = None
        self._start = 0.0

    def __enter__(self) -> SpanRecord:
        parent = _STACK.open[-1] if _STACK.open else None
        path = f"{parent.path};{self._name}" if parent else self._name
        self.record = SpanRecord(
            name=self._name, attributes=dict(self._attributes), path=path
        )
        _STACK.open.append(self.record)
        # repro: lint-ok[D001] -- span durations are wall telemetry by design;
        # they feed histograms with tolerance, never deterministic scorecards
        self._start = time.perf_counter()
        return self.record

    def __exit__(self, exc_type, exc, tb) -> bool:
        record = self.record
        assert record is not None
        # repro: lint-ok[D001] -- closes the telemetry-only measurement above
        record.duration_seconds = time.perf_counter() - self._start
        record.error = exc_type is not None
        # always restore the stack, even on error or foreign interleaving
        if _STACK.open and _STACK.open[-1] is record:
            _STACK.open.pop()
        elif record in _STACK.open:
            _STACK.open.remove(record)
        if _STACK.open:
            _STACK.open[-1].children.append(record)
        else:
            with _ROOTS_LOCK:
                _ROOTS.append(record)
                del _ROOTS[:-_MAX_ROOTS]
        registry = self._registry if self._registry is not None else get_registry()
        registry.histogram(
            SPAN_METRIC, help="wall seconds per span flame path"
        ).observe(
            record.duration_seconds,
            path=record.path,
            error="true" if record.error else "false",
        )
        return False  # never swallow the exception


def record_external_span(
    name: str,
    duration_seconds: float,
    registry: Optional[MetricsRegistry] = None,
    error: bool = False,
    **attributes: object,
) -> SpanRecord:
    """Stitch a span whose wall time was measured elsewhere into the tree.

    Worker processes cannot contribute to the parent's span stack, so the
    parallel engine ships each chunk's measured duration back with the
    result and the parent re-materializes it here: the span is attached as
    a child of the currently open span (or as a root) and recorded into
    the histogram under its flame path, exactly as if it had run inline.
    """
    parent = _STACK.open[-1] if _STACK.open else None
    path = f"{parent.path};{name}" if parent else name
    record = SpanRecord(
        name=name,
        attributes=dict(attributes),
        path=path,
        duration_seconds=duration_seconds,
        error=error,
    )
    if parent is not None:
        parent.children.append(record)
    else:
        with _ROOTS_LOCK:
            _ROOTS.append(record)
            del _ROOTS[:-_MAX_ROOTS]
    reg = registry if registry is not None else get_registry()
    reg.histogram(SPAN_METRIC, help="wall seconds per span flame path").observe(
        record.duration_seconds,
        path=record.path,
        error="true" if record.error else "false",
    )
    return record


def current_span() -> Optional[SpanRecord]:
    """The innermost open span on this thread, if any."""
    return _STACK.open[-1] if _STACK.open else None


def recent_roots() -> List[SpanRecord]:
    """Completed root spans retained in memory (newest last)."""
    with _ROOTS_LOCK:
        return list(_ROOTS)


def flame_counts(
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, Tuple[int, float]]:
    """Aggregate span telemetry: path -> (call count, total wall seconds).

    The collapsed-stack view; feed it to any flame-graph renderer or read
    it directly as the per-request analogue of the paper's Fig. 6 cycle
    attribution.
    """
    registry = registry if registry is not None else get_registry()
    metric = registry.get(SPAN_METRIC)
    out: Dict[str, Tuple[int, float]] = {}
    if metric is None:
        return out
    for key in metric.label_keys():
        labels = dict(key)
        path = labels.get("path", "")
        count = metric.count(**labels)
        total = metric.sum(**labels)
        prev = out.get(path, (0, 0.0))
        out[path] = (prev[0] + count, prev[1] + total)
    return out


def reset_spans() -> None:
    """Drop retained roots and any stray open spans (test isolation)."""
    with _ROOTS_LOCK:
        del _ROOTS[:]
    del _STACK.open[:]
