"""Bit-level reader/writer tests."""

import pytest
from hypothesis import given, strategies as st

from repro.codecs.entropy.bitio import BitReader, BitWriter


class TestBitWriter:
    def test_empty_writer_produces_no_bytes(self):
        assert BitWriter().getvalue() == b""

    def test_single_bit(self):
        writer = BitWriter()
        writer.write(1, 1)
        assert writer.getvalue() == b"\x01"

    def test_lsb_first_packing(self):
        writer = BitWriter()
        writer.write(0b1, 1)
        writer.write(0b11, 2)
        # bits: 1, then 11 -> byte 0b00000111
        assert writer.getvalue() == b"\x07"

    def test_cross_byte_value(self):
        writer = BitWriter()
        writer.write(0xABC, 12)
        value = int.from_bytes(writer.getvalue(), "little")
        assert value & 0xFFF == 0xABC

    def test_masks_high_bits(self):
        writer = BitWriter()
        writer.write(0xFF, 4)  # only low 4 bits taken
        assert writer.getvalue() == b"\x0f"

    def test_zero_width_write_is_noop(self):
        writer = BitWriter()
        writer.write(123, 0)
        assert writer.bit_length == 0

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(1, -1)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(-1, 4)

    def test_align_pads_with_zeros(self):
        writer = BitWriter()
        writer.write(1, 1)
        writer.align_to_byte()
        writer.write(0xFF, 8)
        assert writer.getvalue() == b"\x01\xff"

    def test_write_bytes_requires_alignment(self):
        writer = BitWriter()
        writer.write(1, 3)
        with pytest.raises(ValueError):
            writer.write_bytes(b"ab")

    def test_bit_length_tracks_partial_bytes(self):
        writer = BitWriter()
        writer.write(0, 13)
        assert writer.bit_length == 13
        assert len(writer.getvalue()) == 2


class TestBitReader:
    def test_reads_back_written_fields(self):
        writer = BitWriter()
        fields = [(5, 3), (0, 1), (1023, 10), (77, 7)]
        for value, bits in fields:
            writer.write(value, bits)
        reader = BitReader(writer.getvalue())
        for value, bits in fields:
            assert reader.read(bits) == value

    def test_read_past_end_raises(self):
        reader = BitReader(b"\x01")
        reader.read(8)
        with pytest.raises(EOFError):
            reader.read(1)

    def test_peek_does_not_consume(self):
        reader = BitReader(b"\xa5")
        assert reader.peek(4) == reader.peek(4)
        assert reader.read(4) == 0x5

    def test_peek_past_end_returns_zero_bits(self):
        reader = BitReader(b"\x01")
        assert reader.peek(16) == 1

    def test_skip_after_peek(self):
        reader = BitReader(b"\xff\x00")
        reader.peek(8)
        reader.skip(3)
        assert reader.read(5) == 0b11111

    def test_skip_more_than_buffered_raises(self):
        reader = BitReader(b"\xff")
        with pytest.raises(EOFError):
            reader.skip(4)  # nothing peeked yet

    def test_align_then_read_bytes(self):
        writer = BitWriter()
        writer.write(1, 3)
        writer.align_to_byte()
        writer.write_bytes(b"xyz")
        reader = BitReader(writer.getvalue())
        reader.read(3)
        reader.align_to_byte()
        assert reader.read_bytes(3) == b"xyz"

    def test_read_bytes_unaligned_raises(self):
        reader = BitReader(b"\xff\xff")
        reader.read(3)
        with pytest.raises(ValueError):
            reader.read_bytes(1)

    def test_bits_remaining(self):
        reader = BitReader(b"\x00\x00")
        assert reader.bits_remaining == 16
        reader.read(5)
        assert reader.bits_remaining == 11


@given(st.lists(st.tuples(st.integers(0, 2**20 - 1), st.integers(1, 20))))
def test_roundtrip_random_fields(fields):
    writer = BitWriter()
    for value, bits in fields:
        writer.write(value & ((1 << bits) - 1), bits)
    reader = BitReader(writer.getvalue())
    for value, bits in fields:
        assert reader.read(bits) == value & ((1 << bits) - 1)
