"""CompSim tests: accelerators as candidates inside CompOpt."""

import pytest

from repro.core import (
    CompEngine,
    CompOpt,
    CompressionConfig,
    CompSim,
    CostModel,
    CostParameters,
)
from repro.core.compsim import WindowLimitedZstd
from repro.corpus import generate_records


@pytest.fixture(scope="module")
def engine():
    return CompEngine([generate_records(16384, seed=1)])


class TestWindowLimitedZstd:
    def test_window_log_bounds(self):
        with pytest.raises(ValueError):
            WindowLimitedZstd(8)
        with pytest.raises(ValueError):
            WindowLimitedZstd(30)

    def test_params_clamped(self):
        limited = WindowLimitedZstd(12)
        params = limited.params_for_level(9)
        assert params.window_log <= 12

    def test_roundtrip(self):
        limited = WindowLimitedZstd(12)
        data = generate_records(8192, seed=2)
        result = limited.compress(data, 3)
        assert limited.decompress(result.data).data == data

    def test_large_window_wins_on_long_range_redundancy(self):
        # A 16KB segment repeating at distance ~32KB: only windows larger
        # than the repeat distance can exploit it.
        from repro.corpus import generate_text

        segment = generate_text(16384, seed=3)
        filler = generate_records(32768, seed=4)
        data = segment + filler + segment
        tiny = WindowLimitedZstd(10).compress(data, 3)
        full = WindowLimitedZstd(17).compress(data, 3)
        assert len(full.data) < len(tiny.data) * 0.92

    def test_short_range_data_insensitive_to_window(self):
        # Records have line-scale redundancy only; window size barely
        # matters (the paper's Fig. 16 plateau effect).
        data = generate_records(32768, seed=3)
        small = WindowLimitedZstd(12).compress(data, 3)
        full = WindowLimitedZstd(18).compress(data, 3)
        assert abs(len(full.data) - len(small.data)) / len(small.data) < 0.08


class TestCompSim:
    def test_accelerator_evaluated_as_candidate(self, engine):
        sim = CompSim(engine)
        sim.add_accelerator("accel-x", window_log=16, gamma=10.0)
        metrics = engine.measure(CompressionConfig("accel-x", 1))
        assert metrics.ratio > 1

    def test_gamma_makes_accelerator_faster_than_software(self, engine):
        sim = CompSim(engine)
        sim.add_accelerator("accel-fast", window_log=18, gamma=10.0)
        software = engine.measure(CompressionConfig("zstd", 1))
        accelerated = engine.measure(CompressionConfig("accel-fast", 1))
        assert accelerated.compression_speed > 3 * software.compression_speed

    def test_requires_codec_or_window(self, engine):
        with pytest.raises(ValueError):
            CompSim(engine).add_accelerator("broken")

    def test_window_sweep_ratio_plateaus(self):
        """Fig. 16's mechanism: ratio stops improving past the data's
        correlation window, so cost reaches a plateau."""
        from repro.corpus import generate_text

        segment = generate_text(12000, seed=7)
        filler = generate_records(20000, seed=8)
        sweep_engine = CompEngine([segment + filler + segment])
        sim = CompSim(sweep_engine)
        ratios = {}
        for window_log in (10, 13, 16, 18, 20):
            name = f"sweep-{window_log}"
            sim.add_accelerator(name, window_log=window_log, gamma=10.0)
            ratios[window_log] = sweep_engine.measure(
                CompressionConfig(name, 1)
            ).ratio
        assert ratios[20] == pytest.approx(ratios[18], rel=0.02)
        assert ratios[10] < ratios[16]

    def test_accelerator_inside_compopt(self, engine):
        sim = CompSim(engine)
        sim.add_accelerator("qat-like", window_log=17, gamma=10.0)
        model = CostModel(CostParameters.from_price_book(beta=1e-6))
        opt = CompOpt(engine, model)
        result = opt.optimize(
            [CompressionConfig("zstd", 1), CompressionConfig("qat-like", 1)]
        )
        by_algo = {r.config.algorithm: r for r in result.ranked}
        assert by_algo["qat-like"].cost.compute < by_algo["zstd"].cost.compute
