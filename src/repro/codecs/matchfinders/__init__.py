"""LZ77 match finders.

The paper (Section II-B) attributes the compression-speed / ratio trade-off
to the match-finding algorithm selected by the compression level, "ranging
from fast greedy algorithms to slow dynamic programming algorithms". The
same progression is implemented here:

- :class:`SingleHashMatchFinder` -- one-slot hash table, greedy, optional
  acceleration (skip step growth); the LZ4 / zstd-fast strategy.
- :class:`HashChainMatchFinder` -- hash chains with bounded search depth and
  0/1/2-step lazy evaluation; the greedy/lazy/lazy2 strategies.
- :class:`OptimalMatchFinder` -- dynamic-programming parse minimizing an
  estimated coded size; the btopt-style strategy used by high levels.
"""

from repro.codecs.matchfinders.base import MatchFinder, MatchFinderParams, hash_positions
from repro.codecs.matchfinders.single_hash import SingleHashMatchFinder
from repro.codecs.matchfinders.hash_chain import HashChainMatchFinder
from repro.codecs.matchfinders.optimal import OptimalMatchFinder

_FINDERS = {
    "fast": SingleHashMatchFinder,
    "greedy": HashChainMatchFinder,
    "lazy": HashChainMatchFinder,
    "lazy2": HashChainMatchFinder,
    "optimal": OptimalMatchFinder,
}


def finder_for_strategy(strategy: str) -> MatchFinder:
    """Instantiate the match finder implementing ``strategy``."""
    try:
        return _FINDERS[strategy]()
    except KeyError:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {sorted(_FINDERS)}"
        ) from None


__all__ = [
    "MatchFinder",
    "MatchFinderParams",
    "SingleHashMatchFinder",
    "HashChainMatchFinder",
    "OptimalMatchFinder",
    "finder_for_strategy",
    "hash_positions",
]
