"""The CompOpt facade: candidate search, constraint filtering, cost ranking."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.config import CompressionConfig
from repro.core.constraints import Requirement
from repro.core.costmodel import CostBreakdown, CostModel
from repro.core.engine import CompEngine
from repro.core.metrics import CompressionMetrics
from repro.core.search import SearchStrategy, ExhaustiveSearch


@dataclass(frozen=True)
class RankedConfig:
    """One evaluated candidate: config, metrics, cost, feasibility."""

    config: CompressionConfig
    metrics: CompressionMetrics
    cost: CostBreakdown
    feasible: bool

    @property
    def total_cost(self) -> float:
        return self.cost.total


@dataclass
class OptimizationResult:
    """Everything CompOpt learned about the candidate grid."""

    ranked: List[RankedConfig] = field(default_factory=list)

    @property
    def best(self) -> Optional[RankedConfig]:
        """Cheapest feasible configuration (None if nothing is feasible)."""
        feasible = [r for r in self.ranked if r.feasible]
        return min(feasible, key=lambda r: r.total_cost) if feasible else None

    @property
    def best_any(self) -> Optional[RankedConfig]:
        """Cheapest configuration ignoring requirements."""
        return min(self.ranked, key=lambda r: r.total_cost) if self.ranked else None

    @property
    def worst(self) -> Optional[RankedConfig]:
        """Most expensive configuration (the paper's comparison baseline)."""
        return max(self.ranked, key=lambda r: r.total_cost) if self.ranked else None

    def normalized_costs(self) -> List[tuple]:
        """(label, total / worst_total) pairs, the y-axis of Figs 15-16."""
        worst = self.worst
        if worst is None or worst.total_cost <= 0:
            return [(r.config.label(), 0.0) for r in self.ranked]
        return [
            (r.config.label(), r.total_cost / worst.total_cost) for r in self.ranked
        ]

    def pareto_frontier(
        self,
        x_metric: str = "compression_speed",
        y_metric: str = "ratio",
        feasible_only: bool = False,
    ) -> List[RankedConfig]:
        """Non-dominated candidates, maximizing both metrics.

        The speed/ratio frontier is the curve the paper's Figs 1, 10-12
        plot; any configuration below it is strictly worse on both axes.
        Returned in ascending ``x_metric`` order (the paper's right-to-left
        level traversal).
        """
        pool = [r for r in self.ranked if r.feasible] if feasible_only else list(
            self.ranked
        )
        frontier: List[RankedConfig] = []
        for candidate in pool:
            cx = getattr(candidate.metrics, x_metric)
            cy = getattr(candidate.metrics, y_metric)
            dominated = any(
                (getattr(other.metrics, x_metric) >= cx
                 and getattr(other.metrics, y_metric) >= cy
                 and (getattr(other.metrics, x_metric) > cx
                      or getattr(other.metrics, y_metric) > cy))
                for other in pool
                if other is not candidate
            )
            if not dominated:
                frontier.append(candidate)
        frontier.sort(key=lambda r: getattr(r.metrics, x_metric))
        return frontier


class CompOpt:
    """Searches for the cheapest configuration meeting the requirements.

    "CompOpt is a simple first-order optimizer that searches for the best
    compression option for a given service based on cost estimation and
    service requirements" (Section V-A). Exhaustive search is the default,
    as in the paper; random and evolutionary strategies are available for
    larger spaces (:mod:`repro.core.search`).
    """

    def __init__(
        self,
        engine: CompEngine,
        cost_model: CostModel,
        requirements: Sequence[Requirement] = (),
        strategy: Optional[SearchStrategy] = None,
    ) -> None:
        self.engine = engine
        self.cost_model = cost_model
        self.requirements = list(requirements)
        self.strategy = strategy if strategy is not None else ExhaustiveSearch()

    def evaluate(
        self, config: CompressionConfig, use_dictionary: bool = False
    ) -> RankedConfig:
        """Measure and cost one candidate."""
        metrics = self.engine.measure(config, use_dictionary=use_dictionary)
        cost = self.cost_model.evaluate(metrics)
        feasible = all(req.satisfied(metrics) for req in self.requirements)
        return RankedConfig(config, metrics, cost, feasible)

    def optimize(
        self,
        candidates: Sequence[CompressionConfig],
        use_dictionary: bool = False,
    ) -> OptimizationResult:
        """Run the search strategy over ``candidates`` and rank everything."""
        evaluated = self.strategy.run(
            candidates, lambda cfg: self.evaluate(cfg, use_dictionary)
        )
        result = OptimizationResult(
            ranked=sorted(evaluated, key=lambda r: r.total_cost)
        )
        return result
