"""Hardware accelerator (CompSim gamma) model tests."""

import pytest

from repro.codecs import get_codec
from repro.corpus import generate_text
from repro.perfmodel import DEFAULT_MACHINE, HardwareAccelerator


@pytest.fixture(scope="module")
def zstd_result():
    codec = get_codec("zstd")
    data = generate_text(16384, seed=5)
    comp = codec.compress(data, 1)
    decomp = codec.decompress(comp.data)
    return comp, decomp


class TestHardwareAccelerator:
    def test_gamma_speeds_up_compression(self, zstd_result):
        comp, __ = zstd_result
        accel = HardwareAccelerator("qat-like", get_codec("zstd"), gamma=10.0)
        software = DEFAULT_MACHINE.compress_seconds("zstd", comp.counters)
        assert accel.compress_seconds(comp.counters) == pytest.approx(software / 10)

    def test_separate_decompress_gamma(self, zstd_result):
        __, decomp = zstd_result
        accel = HardwareAccelerator(
            "asym", get_codec("zstd"), gamma=10.0, decompress_gamma=4.0
        )
        software = DEFAULT_MACHINE.decompress_seconds("zstd", decomp.counters)
        assert accel.decompress_seconds(decomp.counters) == pytest.approx(software / 4)

    def test_offload_overhead_added_per_call(self, zstd_result):
        comp, __ = zstd_result
        base = HardwareAccelerator("near", get_codec("zstd"), gamma=10.0)
        far = HardwareAccelerator(
            "far", get_codec("zstd"), gamma=10.0, offload_overhead_seconds=1e-3
        )
        assert far.compress_seconds(comp.counters) == pytest.approx(
            base.compress_seconds(comp.counters) + 1e-3
        )

    def test_offload_overhead_can_nullify_benefit_for_small_blocks(self):
        """Section VI-B: offloading small blocks can lose to the CPU."""
        codec = get_codec("zstd")
        small = codec.compress(generate_text(512, seed=9), 1)
        accel = HardwareAccelerator(
            "pcie-far", codec, gamma=10.0, offload_overhead_seconds=50e-6
        )
        cpu_seconds = DEFAULT_MACHINE.compress_seconds("zstd", small.counters)
        assert accel.compress_seconds(small.counters) > cpu_seconds

    def test_speed_helpers(self, zstd_result):
        comp, decomp = zstd_result
        accel = HardwareAccelerator("fast", get_codec("zstd"), gamma=10.0)
        assert accel.compress_speed(comp.counters) == pytest.approx(
            10 * DEFAULT_MACHINE.compress_speed("zstd", comp.counters)
        )
        assert accel.decompress_speed(decomp.counters) > 0
