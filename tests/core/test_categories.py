"""Workload category and offload-guidance tests (paper Section VI)."""

import pytest

from repro.core.categories import (
    OffloadAdvice,
    WorkloadCategory,
    WorkloadTraits,
    classify_catalog,
    classify_workload,
    offload_recommendation,
)


class TestClassification:
    def test_shuffle_is_compression_speed_sensitive(self):
        traits = WorkloadTraits(262144, reads_per_write=0.4, latency_critical=True)
        assert classify_workload(traits) == WorkloadCategory.COMPRESSION_SPEED_SENSITIVE

    def test_kvstore_is_decompression_speed_sensitive(self):
        traits = WorkloadTraits(16384, reads_per_write=6.0, latency_critical=True)
        assert classify_workload(traits) == WorkloadCategory.DECOMPRESSION_SPEED_SENSITIVE

    def test_ingestion_is_latency_insensitive(self):
        traits = WorkloadTraits(262144, reads_per_write=0.2, latency_critical=False)
        assert classify_workload(traits) == WorkloadCategory.LATENCY_INSENSITIVE

    def test_cache_is_small_data_friendly(self):
        traits = WorkloadTraits(
            400, reads_per_write=20.0, latency_critical=True,
            typed_small_messages=True,
        )
        assert classify_workload(traits) == WorkloadCategory.SMALL_DATA_FRIENDLY

    def test_large_typed_messages_are_not_category_d(self):
        traits = WorkloadTraits(
            65536, reads_per_write=1.0, latency_critical=True,
            typed_small_messages=True,
        )
        assert classify_workload(traits) != WorkloadCategory.SMALL_DATA_FRIENDLY

    def test_catalog_covers_all_four_categories(self):
        categories = {category for __, category in classify_catalog()}
        assert categories == set(WorkloadCategory)

    def test_catalog_specifics(self):
        mapping = dict(classify_catalog())
        assert mapping["DW1"] == WorkloadCategory.LATENCY_INSENSITIVE
        assert mapping["DW2"] == WorkloadCategory.COMPRESSION_SPEED_SENSITIVE
        assert mapping["KVSTORE1"] == WorkloadCategory.DECOMPRESSION_SPEED_SENSITIVE
        assert mapping["CACHE1"] == WorkloadCategory.SMALL_DATA_FRIENDLY


class TestOffloadGuidance:
    _bulk = WorkloadTraits(262144, 0.2, False)  # category C
    _small = WorkloadTraits(
        400, 20.0, True, typed_small_messages=True
    )  # category D

    def test_bulk_workload_offloads(self):
        advice = offload_recommendation(self._bulk, offload_overhead_seconds=20e-6)
        assert advice.offload

    def test_small_data_stays_on_cpu_with_far_accelerator(self):
        advice = offload_recommendation(self._small, offload_overhead_seconds=20e-6)
        assert not advice.offload
        assert "overhead" in advice.reason

    def test_small_data_offloads_to_on_chip_accelerator(self):
        """Section VI-B: 'unless the accelerator is located very closely
        (such as on-chip)'."""
        advice = offload_recommendation(self._small, offload_overhead_seconds=0.5e-6)
        assert advice.offload

    def test_quantified_breakeven_blocks_bad_offload(self):
        # 2 us of CPU work cannot win against 20 us of crossing overhead,
        # whatever the category.
        advice = offload_recommendation(
            self._bulk, offload_overhead_seconds=20e-6,
            gamma=10.0, cpu_seconds_per_call=2e-6,
        )
        assert not advice.offload

    def test_quantified_breakeven_allows_good_offload(self):
        # 1 ms of CPU work vs 20 us crossing: offload wins 10x.
        advice = offload_recommendation(
            self._bulk, offload_overhead_seconds=20e-6,
            gamma=10.0, cpu_seconds_per_call=1e-3,
        )
        assert advice.offload

    def test_advice_carries_category(self):
        advice = offload_recommendation(self._small, 20e-6)
        assert isinstance(advice, OffloadAdvice)
        assert advice.category == WorkloadCategory.SMALL_DATA_FRIENDLY
