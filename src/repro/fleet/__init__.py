"""Fleet-level profiling simulation (Section III).

Meta's fleet characterization comes from a continuous profiler sampling
application call stacks across hundreds of thousands of servers for 30 days,
then filtering the stacks for compression APIs. That infrastructure and its
data are closed, so this package substitutes a synthetic fleet: a registry
of service profiles whose compression behaviour (algorithm mix, level mix,
compression/decompression split, block sizes) is drawn around the paper's
published aggregates, plus a sampling profiler and the aggregation pipeline
that turns raw call-stack samples back into the fleet-level views of
Figs 2-5.

Figures regenerated from this package are *calibrated* (the published
aggregates are encoded in the registry) rather than *emergent*; the
service-level figures (6-13) are emergent from the real substrates. See
DESIGN.md section 1.5.
"""

from repro.fleet.profiles import (
    DEFAULT_FLEET,
    ServiceProfile,
    fleet_by_category,
)
from repro.fleet.callstack import CallStackSample, is_compression_frame, parse_frame
from repro.fleet.profiler import SamplingProfiler
from repro.fleet.characterization import FleetCharacterization, characterize
from repro.fleet.sweep import (
    CellMeasurement,
    MeasurementCell,
    fleet_measurement_cells,
    format_fleet_sweep,
    measure_cell,
    run_fleet_sweep,
)

__all__ = [
    "CellMeasurement",
    "MeasurementCell",
    "fleet_measurement_cells",
    "format_fleet_sweep",
    "measure_cell",
    "run_fleet_sweep",
    "ServiceProfile",
    "DEFAULT_FLEET",
    "fleet_by_category",
    "CallStackSample",
    "is_compression_frame",
    "parse_frame",
    "SamplingProfiler",
    "FleetCharacterization",
    "characterize",
]
