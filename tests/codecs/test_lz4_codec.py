"""LZ4 codec and block-format tests."""

import pytest

from repro.codecs import CodecError, CorruptDataError, LZ4Compressor
from repro.codecs.base import StageCounters
from repro.codecs.lz4 import block as lz4block
from repro.codecs.lz77 import Token


class TestBlockFormat:
    def _roundtrip_tokens(self, data, tokens):
        counters = StageCounters()
        payload = lz4block.encode_block(data, 0, tokens, counters)
        return lz4block.decode_block(payload, StageCounters())

    def test_literals_only_block(self):
        assert self._roundtrip_tokens(b"abc", [Token(3, 0, 0)]) == b"abc"

    def test_long_literal_run_extension(self):
        data = bytes(range(256)) * 2  # 512 literals -> 15 + extensions
        assert self._roundtrip_tokens(data, [Token(len(data), 0, 0)]) == data

    def test_match_token(self):
        data = b"abcdabcd"
        tokens = [Token(4, 4, 4)]
        assert self._roundtrip_tokens(data, tokens) == data

    def test_long_match_extension(self):
        data = b"ab" + b"ab" * 300
        tokens = [Token(2, 600, 2)]
        assert self._roundtrip_tokens(data, tokens) == data

    def test_match_below_minimum_rejected(self):
        with pytest.raises(ValueError):
            lz4block.encode_block(b"abcab", 0, [Token(3, 2, 3)], StageCounters())

    def test_offset_above_format_limit_rejected(self):
        tokens = [Token(0, 8, 70000)]
        with pytest.raises(ValueError):
            lz4block.encode_block(b"x" * 8, 0, tokens, StageCounters())

    def test_decode_zero_offset_rejected(self):
        # token: 0 literals, match; offset bytes 00 00
        payload = bytes([0x00, 0x00, 0x00])
        with pytest.raises(CorruptDataError):
            lz4block.decode_block(payload, StageCounters())

    def test_decode_truncated_literals_rejected(self):
        payload = bytes([0x50]) + b"ab"  # claims 5 literals, has 2
        with pytest.raises(CorruptDataError):
            lz4block.decode_block(payload, StageCounters())

    def test_decode_offset_past_start_rejected(self):
        # 1 literal 'a', then match with offset 5
        payload = bytes([0x10]) + b"a" + (5).to_bytes(2, "little")
        with pytest.raises(CorruptDataError):
            lz4block.decode_block(payload, StageCounters())


class TestLZ4Compressor:
    def test_roundtrip_all_levels(self, lz4, payloads):
        for name, data in payloads.items():
            for level in (1, 2, 3, 6, 9, 12):
                result = lz4.compress(data, level)
                assert lz4.decompress(result.data).data == data, (name, level)

    def test_level_range_enforced(self, lz4):
        with pytest.raises(CodecError):
            lz4.compress(b"x", 0)
        with pytest.raises(CodecError):
            lz4.compress(b"x", 13)

    def test_no_dictionary_support(self, lz4):
        with pytest.raises(CodecError):
            lz4.compress(b"x" * 100, 1, dictionary=b"history")

    def test_incompressible_data_stored_near_raw(self, lz4, payloads):
        result = lz4.compress(payloads["random"], 1)
        # raw block + frame overhead only
        assert len(result.data) <= len(payloads["random"]) + 32

    def test_compressible_data_shrinks(self, lz4, payloads):
        result = lz4.compress(payloads["periodic"], 1)
        assert result.ratio > 10

    def test_hc_levels_compress_better(self, lz4, payloads):
        data = payloads["structured"]
        fast = lz4.compress(data, 1)
        hc = lz4.compress(data, 9)
        assert len(hc.data) <= len(fast.data)

    def test_checksum_detects_corruption(self, lz4, payloads):
        result = lz4.compress(payloads["text"], 1)
        corrupted = bytearray(result.data)
        corrupted[len(corrupted) // 2] ^= 0xFF
        with pytest.raises(CorruptDataError):
            lz4.decompress(bytes(corrupted))

    def test_bad_magic_rejected(self, lz4):
        with pytest.raises(CorruptDataError):
            lz4.decompress(b"XXXX" + b"\x00" * 20)

    def test_truncated_frame_rejected(self, lz4, payloads):
        result = lz4.compress(payloads["text"], 1)
        with pytest.raises(CorruptDataError):
            lz4.decompress(result.data[:10])

    def test_counters_track_io_sizes(self, lz4, payloads):
        data = payloads["structured"]
        result = lz4.compress(data, 1)
        assert result.counters.bytes_in == len(data)
        assert result.counters.bytes_out == len(result.data)

    def test_no_entropy_table_builds(self, lz4, payloads):
        # LZ4 has no entropy stage: the paper's "emits uncompressed literals"
        result = lz4.compress(payloads["text"], 6)
        assert result.counters.table_builds == 0
