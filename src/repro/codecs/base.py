"""Codec interface, results, instrumentation counters, and the registry.

Every codec reports *stage counters* alongside its output: how much work the
LZ match-finding stage and the entropy stage performed. The performance model
(:mod:`repro.perfmodel`) converts counters into modeled datacenter-core cycles
and throughput, which is how this reproduction substitutes for wall-clock
measurements on production hardware (see DESIGN.md section 1.2).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, fields
from time import perf_counter
from typing import Callable, Dict, List, Optional, Type

from repro.obs.instrument import record_codec_call
from repro.obs.state import OBS_STATE


class CodecError(Exception):
    """Base class for codec failures."""


class CorruptDataError(CodecError):
    """Raised when a compressed payload fails structural or checksum validation."""


class OutputLimitExceeded(CodecError):
    """Raised when decompression would exceed the caller's output budget.

    The guard against decompression bombs: callers handling untrusted
    payloads set ``max_output_bytes`` and decoding stops as soon as the
    limit would be crossed, before the memory is committed.
    """


@dataclass
class StageCounters:
    """Operation counts for one compression or decompression call.

    The counters are split by pipeline stage so the paper's match-finding
    versus entropy-encoding attribution (Fig. 7) can be reproduced directly.
    """

    bytes_in: int = 0
    bytes_out: int = 0
    # -- LZ match-finding stage (compression only) --
    positions_scanned: int = 0
    hash_probes: int = 0
    match_candidates: int = 0
    match_bytes_compared: int = 0
    sequences_emitted: int = 0
    literals_emitted: int = 0
    # -- entropy stage --
    entropy_symbols: int = 0
    entropy_bits: int = 0
    table_builds: int = 0
    #: work-table slots allocated (hash/chain/DP arrays) -- fixed per-call
    #: setup cost that makes very small compressions slower (paper IV-E)
    setup_entries: int = 0
    # -- decode side --
    sequences_decoded: int = 0
    literal_bytes_copied: int = 0
    match_bytes_copied: int = 0
    entropy_symbols_decoded: int = 0
    # -- structural transform stage (graph codecs) --
    #: bytes moved through invertible restructuring transforms (transpose,
    #: delta, tokenize, ...) before/after the entropy leaves; zero for the
    #: flat codecs, so their modeled costs are unchanged
    transform_bytes: int = 0

    def merge(self, other: "StageCounters") -> None:
        """Accumulate another counter set into this one (in place)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def copy(self) -> "StageCounters":
        return StageCounters(**{f.name: getattr(self, f.name) for f in fields(self)})


@dataclass
class CompressResult:
    """Output of one compression call."""

    data: bytes
    counters: StageCounters
    codec: str
    level: int

    @property
    def ratio(self) -> float:
        """Compression ratio: original size / compressed size (higher is better)."""
        if not self.data:
            return 1.0
        return self.counters.bytes_in / len(self.data)


@dataclass
class DecompressResult:
    """Output of one decompression call."""

    data: bytes
    counters: StageCounters
    codec: str


class Compressor:
    """Abstract lossless compressor.

    Subclasses implement :meth:`_compress` and :meth:`_decompress`; this base
    class handles argument validation and counter bookkeeping shared by all
    codecs.
    """

    #: registry key, e.g. ``"zstd"``
    name: str = "abstract"
    #: inclusive level range supported by the codec
    min_level: int = 1
    max_level: int = 1
    default_level: int = 1

    def compress(
        self,
        data: bytes,
        level: Optional[int] = None,
        dictionary: Optional[bytes] = None,
    ) -> CompressResult:
        """Compress ``data`` at ``level`` (codec default when omitted).

        ``dictionary`` is raw shared history prepended out-of-band; the codecs
        that support dictionaries (zstd-style) use it to seed the match
        window, the others raise :class:`CodecError`.
        """
        if level is None:
            level = self.default_level
        if not self.min_level <= level <= self.max_level:
            raise CodecError(
                f"{self.name} supports levels {self.min_level}..{self.max_level}, "
                f"got {level}"
            )
        if dictionary is not None and not self.supports_dictionaries():
            raise CodecError(f"{self.name} does not support dictionaries")
        counters = StageCounters(bytes_in=len(data))
        # telemetry: one flag read per call; everything else only when on
        obs_on = OBS_STATE.enabled
        # repro: lint-ok[D001] -- wall duration feeds the CODEC_SECONDS
        # histogram only; modeled speeds come from perfmodel counters
        start = perf_counter() if obs_on else 0.0
        payload = self._compress(bytes(data), level, dictionary, counters)
        counters.bytes_out = len(payload)
        if obs_on:
            record_codec_call(
                # repro: lint-ok[D001] -- telemetry-only wall measurement
                self.name, "compress", level, counters, perf_counter() - start
            )
        return CompressResult(payload, counters, self.name, level)

    def decompress(
        self,
        payload: bytes,
        dictionary: Optional[bytes] = None,
        max_output_bytes: Optional[int] = None,
    ) -> DecompressResult:
        """Decompress ``payload`` produced by :meth:`compress`.

        ``max_output_bytes`` bounds the decoded size for untrusted inputs;
        exceeding it raises :class:`OutputLimitExceeded` during decoding.
        """
        if max_output_bytes is not None and max_output_bytes < 0:
            raise ValueError("max_output_bytes must be non-negative")
        counters = StageCounters(bytes_in=len(payload))
        obs_on = OBS_STATE.enabled
        # repro: lint-ok[D001] -- wall duration feeds the CODEC_SECONDS
        # histogram only; modeled speeds come from perfmodel counters
        start = perf_counter() if obs_on else 0.0
        self._output_limit = max_output_bytes
        try:
            data = self._decompress(bytes(payload), dictionary, counters)
        except CodecError:
            raise
        except (
            IndexError,
            KeyError,
            ValueError,
            OverflowError,
            struct.error,
            MemoryError,
        ) as exc:
            # The decode boundary: no malformed payload may escape as a
            # low-level exception. Anything the format checks above missed
            # (bad varint, short slice, out-of-range table index) is, by
            # definition, corrupt input.
            raise CorruptDataError(
                f"{self.name}: malformed payload "
                f"({type(exc).__name__}: {exc})"
            ) from exc
        finally:
            self._output_limit = None
        if max_output_bytes is not None and len(data) > max_output_bytes:
            raise OutputLimitExceeded(
                f"decoded {len(data)} bytes exceeds limit {max_output_bytes}"
            )
        counters.bytes_out = len(data)
        if obs_on:
            record_codec_call(
                # repro: lint-ok[D001] -- telemetry-only wall measurement
                self.name, "decompress", None, counters, perf_counter() - start
            )
        return DecompressResult(data, counters, self.name)

    #: per-call output budget, set by :meth:`decompress` (None = unbounded)
    _output_limit: Optional[int] = None

    def _check_output_budget(self, produced: int) -> None:
        """Codecs call this as output grows to fail early on bombs."""
        if self._output_limit is not None and produced > self._output_limit:
            raise OutputLimitExceeded(
                f"decoded output exceeds limit {self._output_limit}"
            )

    def supports_dictionaries(self) -> bool:
        return False

    def levels(self) -> List[int]:
        """All supported compression levels, ascending."""
        return list(range(self.min_level, self.max_level + 1))

    # -- subclass hooks ----------------------------------------------------
    def _compress(
        self,
        data: bytes,
        level: int,
        dictionary: Optional[bytes],
        counters: StageCounters,
    ) -> bytes:
        raise NotImplementedError

    def _decompress(
        self,
        payload: bytes,
        dictionary: Optional[bytes],
        counters: StageCounters,
    ) -> bytes:
        raise NotImplementedError


_REGISTRY: Dict[str, Callable[[], Compressor]] = {}


def register_codec(name: str, factory: Callable[[], Compressor]) -> None:
    """Register a codec factory under ``name`` (overwrites silently)."""
    _REGISTRY[name] = factory


#: prefix that routes codec lookups to the graph registry
GRAPH_CODEC_PREFIX = "graph:"


def get_codec(name: str) -> Compressor:
    """Instantiate the codec registered under ``name``.

    Names of the form ``graph:<graph-name>`` resolve through the graph
    registry (:mod:`repro.graphs`) instead of the flat-codec table. The
    import is deferred to the call so that pool workers — which only ever
    see this function — reconstruct trained graph codecs without any
    registration side channel.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        if name.startswith(GRAPH_CODEC_PREFIX):
            from repro.graphs.registry import resolve_graph_codec

            codec = resolve_graph_codec(name[len(GRAPH_CODEC_PREFIX):])
            if codec is not None:
                return codec
        raise CodecError(
            f"unknown codec {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory()


def available_codecs() -> List[str]:
    """Names of all registered codecs, sorted."""
    return sorted(_REGISTRY)
