"""Deterministic payload-corruption primitives.

Each function takes the caller's :class:`random.Random` so the same seed
reproduces the same damage byte-for-byte. The three kinds model the
storage/transport failures the decode hardening must survive: flipped
bits (media/DMA errors), truncation (torn writes, cut connections), and
garbage appended past the frame end (buffer reuse, bad length fields).
"""

from __future__ import annotations

import random


def flip_bits(data: bytes, rng: random.Random, flips: int = 1) -> bytes:
    """Flip ``flips`` random bits; empty input is returned unchanged."""
    if not data or flips < 1:
        return data
    out = bytearray(data)
    for __ in range(flips):
        position = rng.randrange(len(out))
        out[position] ^= 1 << rng.randrange(8)
    return bytes(out)


def truncate(data: bytes, rng: random.Random) -> bytes:
    """Cut the payload short by at least one byte (possibly to nothing)."""
    if not data:
        return data
    return data[: rng.randrange(len(data))]


def append_garbage(
    data: bytes, rng: random.Random, max_bytes: int = 64
) -> bytes:
    """Append 1..max_bytes of random bytes past the frame end."""
    count = rng.randint(1, max(1, max_bytes))
    return data + bytes(rng.getrandbits(8) for __ in range(count))


def corrupt(
    data: bytes, kind: str, rng: random.Random, magnitude: float = 1.0
) -> bytes:
    """Apply one named payload fault; ``magnitude`` scales its severity."""
    if kind == "bit_flip":
        return flip_bits(data, rng, flips=max(1, round(magnitude)))
    if kind == "truncate":
        return truncate(data, rng)
    if kind == "garbage":
        return append_garbage(data, rng, max_bytes=max(1, round(magnitude * 64)))
    raise ValueError(f"unknown payload fault kind {kind!r}")
