"""GraphCompressor: executes a graph spec behind the Compressor interface.

A graph codec is a normal :class:`~repro.codecs.base.Compressor` whose
registry name is ``graph:<graph-name>``, so everything built on the codec
registry — CompEngine, the serving gateway, process-pool workers, the
chunked parallel path — drives graphs without modification.

Compression walks the spec: transform nodes split/recode the bytes into
child streams, terminal nodes produce one frame each (``leaf`` runs a flat
codec from the registry, ``store`` keeps the bytes raw). Frames travel in
DFS pre-order inside the self-describing container from
:mod:`repro.graphs.stream`; decompression re-reads the spec from the
header, so a receiver needs no out-of-band graph registry.

Cost accounting: leaf codec stage counters merge into the call's counters
(minus their inner ``bytes_in``/``bytes_out``, which the base class owns),
and every transform adds the bytes it moved to ``transform_bytes`` — the
counter :mod:`repro.perfmodel` prices with the ``graph`` coefficient
family. Flat codecs never touch ``transform_bytes``, so their modeled
costs are untouched.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Iterator, List, Optional, Tuple

from repro.codecs.base import (
    CodecError,
    Compressor,
    CorruptDataError,
    StageCounters,
    get_codec,
)
from repro.graphs.model import Spec, children_of, validate_spec
from repro.graphs.nodes import decode_transform, encode_transform
from repro.graphs.stream import decode_stream, decode_stream_at, encode_stream

_PASSTHROUGH = ("bytes_in", "bytes_out")


def _merge_leaf_counters(target: StageCounters, leaf: StageCounters) -> None:
    """Accumulate a leaf call's stage work, excluding the byte totals.

    The graph call's own ``bytes_in``/``bytes_out`` are the whole-payload
    sizes, maintained by the Compressor base class; summing the leaves'
    would double-count them.
    """
    for f in fields(StageCounters):
        if f.name in _PASSTHROUGH:
            continue
        setattr(target, f.name, getattr(target, f.name) + getattr(leaf, f.name))


class GraphCompressor(Compressor):
    """One named graph, executable as a codec.

    Graphs have a single level (the shape *is* the tuning knob); level 1
    is accepted so ``CompressionConfig(name, 1)`` round-trips.
    """

    min_level = 1
    max_level = 1
    default_level = 1

    def __init__(self, graph_name: str, spec: Spec):
        validate_spec(spec)
        self.name = f"graph:{graph_name}"
        self.graph_name = graph_name
        self.spec = spec

    # -- compression --------------------------------------------------------

    def _compress(
        self,
        data: bytes,
        level: int,
        dictionary: Optional[bytes],
        counters: StageCounters,
    ) -> bytes:
        frames: List[Tuple[int, bytes]] = []
        self._encode_node(self.spec, data, counters, frames)
        return encode_stream(self.spec, frames)

    def _encode_node(
        self,
        node: Spec,
        data: bytes,
        counters: StageCounters,
        frames: List[Tuple[int, bytes]],
    ) -> None:
        kind = node["kind"]
        if kind == "leaf":
            result = get_codec(str(node["codec"])).compress(
                data, int(node["level"])
            )
            _merge_leaf_counters(counters, result.counters)
            frames.append((len(data), result.data))
            return
        if kind == "store":
            frames.append((len(data), data))
            return
        streams = encode_transform(node, data)
        counters.transform_bytes += len(data)
        for child, stream in zip(children_of(node), streams):
            self._encode_node(child, stream, counters, frames)

    # -- decompression ------------------------------------------------------

    def _decompress(
        self,
        payload: bytes,
        dictionary: Optional[bytes],
        counters: StageCounters,
    ) -> bytes:
        # concatenated containers decode to concatenated outputs -- the
        # multi-frame convention every codec in the repo honors, which is
        # what lets the chunked parallel engine emit standard streams
        if not payload:
            raise CorruptDataError("empty graph stream")
        parts = []
        pos = 0
        while pos < len(payload):
            spec, frames, pos = decode_stream_at(payload, pos)
            data, leftover = _decode_spec(
                spec, frames, counters, self._output_limit
            )
            if leftover:
                raise CorruptDataError(
                    f"graph stream carries {leftover} frames beyond the "
                    "graph's leaves"
                )
            parts.append(data)
        return b"".join(parts)


def _decode_spec(
    spec: Spec,
    frames: List[Tuple[int, bytes]],
    counters: StageCounters,
    output_limit: Optional[int],
) -> Tuple[bytes, int]:
    """Decode a parsed stream; returns ``(data, unconsumed_frame_count)``."""
    it = iter(frames)
    data = _decode_node(spec, it, counters, output_limit)
    return data, sum(1 for __ in it)


def _decode_node(
    node: Spec,
    frames: Iterator[Tuple[int, bytes]],
    counters: StageCounters,
    output_limit: Optional[int],
) -> bytes:
    kind = node["kind"]
    if kind in ("leaf", "store"):
        try:
            raw_len, payload = next(frames)
        except StopIteration:
            raise CorruptDataError(
                "graph stream ended before all leaves were fed"
            ) from None
        if output_limit is not None and raw_len > output_limit:
            # fail before the leaf commits the memory (bomb guard); the
            # graph's own output can only shrink from here (joins drop
            # delimiters at most)
            raise CorruptDataError(
                f"graph frame claims {raw_len} raw bytes, "
                f"caller limit is {output_limit}"
            )
        if kind == "store":
            if len(payload) != raw_len:
                raise CorruptDataError(
                    f"store frame length {len(payload)} != declared {raw_len}"
                )
            return payload
        try:
            leaf = get_codec(str(node["codec"]))
            result = leaf.decompress(payload, max_output_bytes=raw_len)
        except CorruptDataError:
            raise
        except CodecError as exc:
            # an unknown leaf name or a frame that outgrows its declared
            # size comes from the (attacker-controlled) header, so at this
            # boundary it is corruption, not an API misuse
            raise CorruptDataError(f"graph leaf failed to decode: {exc}") from exc
        _merge_leaf_counters(counters, result.counters)
        if len(result.data) != raw_len:
            raise CorruptDataError(
                f"leaf frame decoded to {len(result.data)} bytes, "
                f"declared {raw_len}"
            )
        return result.data
    streams = [
        _decode_node(child, frames, counters, output_limit)
        for child in children_of(node)
    ]
    data = decode_transform(node, streams)
    counters.transform_bytes += len(data)
    return data


def decode_graph_header(payload: bytes) -> Spec:
    """The graph spec embedded in a compressed stream (for ``describe``)."""
    spec, __ = decode_stream(payload)
    return spec
