"""ADS1 request generator tests: model variance drives compressibility."""

import json

import pytest

from repro.codecs import get_codec
from repro.corpus import ADS_MODELS, generate_ads_request


class TestModelSpecs:
    def test_three_models_defined(self):
        assert set(ADS_MODELS) == {"A", "B", "C"}

    def test_model_a_is_largest(self):
        assert ADS_MODELS["A"].request_size > ADS_MODELS["B"].request_size

    def test_model_c_is_b_with_text_serialization(self):
        b, c = ADS_MODELS["B"], ADS_MODELS["C"]
        assert b.request_size == c.request_size
        assert b.sparse_fraction == c.sparse_fraction
        assert b.serialization == "binary" and c.serialization == "text"


class TestRequests:
    def test_deterministic(self):
        assert generate_ads_request("A", seed=3) == generate_ads_request("A", seed=3)

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            generate_ads_request("Z")

    def test_binary_request_roughly_target_size(self):
        payload = generate_ads_request("B", seed=0)
        assert 0.7 * ADS_MODELS["B"].request_size < len(payload) < 1.5 * ADS_MODELS["B"].request_size

    def test_text_request_is_json(self):
        payload = generate_ads_request("C", seed=0)
        decoded = json.loads(payload)
        assert decoded["header"]["model"] == "C"
        assert len(decoded["dense"]) > 0

    def test_sparser_model_compresses_better(self):
        """Section IV-D: more sparse embeddings -> higher ratio."""
        zstd = get_codec("zstd")
        ratio_a = zstd.compress(generate_ads_request("A", seed=1), 3).ratio
        ratio_b = zstd.compress(generate_ads_request("B", seed=1), 3).ratio
        assert ratio_a > ratio_b

    def test_serialization_changes_compressibility(self):
        """Model C (text) compresses differently from model B (binary)."""
        zstd = get_codec("zstd")
        ratio_b = zstd.compress(generate_ads_request("B", seed=1), 3).ratio
        ratio_c = zstd.compress(generate_ads_request("C", seed=1), 3).ratio
        assert abs(ratio_b - ratio_c) / ratio_b > 0.10
