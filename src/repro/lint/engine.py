"""The lint engine: file walking, parsing, rule dispatch, suppression.

One parse per file, shared by every rule through a :class:`FileContext`
that pre-computes what rules keep needing:

- a **parent map** (``parent_of``): AST nodes back-linked to their
  parent and the field they occupy, so rules can ask "is this call the
  direct argument of ``sorted()``?" or "does an enclosing ``if`` guard
  this statement?" without re-walking;
- **from-imports** (``from_imports``): local name -> source module, so
  the obs rule knows that ``record_codec_call`` came from
  ``repro.obs.instrument`` even when imported inside a function.

Output is deterministic by construction: files are discovered in sorted
order, findings are sorted by (path, line, col, rule), and duplicate
lines get stable occurrence indices before fingerprinting. Two runs over
the same tree emit byte-identical reports -- the lint CI job diffs them,
exactly like the chaos and cluster-sim smokes.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.finding import ERROR, Finding, assign_occurrences
from repro.lint.rules import Rule, all_rules
from repro.lint.suppress import (
    Suppression,
    apply_suppressions,
    parse_suppressions,
    stale_suppression_findings,
)

#: rule id for files the engine cannot parse
F001 = "F001"


@dataclass
class FileContext:
    """Everything a rule needs to check one file."""

    path: str
    source: str
    tree: ast.AST
    lines: List[str]
    #: node -> (parent node, field name on the parent holding it)
    parent_of: Dict[ast.AST, Tuple[ast.AST, str]] = field(default_factory=dict)
    #: local name -> dotted module it was from-imported from
    from_imports: Dict[str, str] = field(default_factory=dict)
    #: local name -> (module, original name); catches aliased imports like
    #: ``from time import monotonic as now``
    from_import_origins: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, source: str) -> "FileContext":
        tree = ast.parse(source)
        ctx = cls(path=path, source=source, tree=tree, lines=source.splitlines())
        for parent in ast.walk(tree):
            for field_name, value in ast.iter_fields(parent):
                if isinstance(value, ast.AST):
                    ctx.parent_of[value] = (parent, field_name)
                elif isinstance(value, list):
                    for item in value:
                        if isinstance(item, ast.AST):
                            ctx.parent_of[item] = (parent, field_name)
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    ctx.from_imports[local] = node.module
                    ctx.from_import_origins[local] = (node.module, alias.name)
        return ctx

    def parent(self, node: ast.AST) -> Optional[Tuple[ast.AST, str]]:
        return self.parent_of.get(node)

    def ancestors(self, node: ast.AST):
        """Yield (ancestor, field-on-ancestor) pairs, innermost first."""
        current = node
        while True:
            link = self.parent_of.get(current)
            if link is None:
                return
            yield link
            current = link[0]

    def enclosing_function(self, node: ast.AST) -> Optional[str]:
        """Name of the innermost enclosing def, or None at module level."""
        for ancestor, __ in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor.name
        return None


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity != ERROR]


def _normalize(path: str) -> str:
    """Repo-relative forward-slash paths so reports and baselines are
    machine-independent."""
    rel = os.path.relpath(path)
    return rel.replace(os.sep, "/")


def discover_files(paths: Sequence[str]) -> List[str]:
    """All ``.py`` files under ``paths`` (files pass through), sorted."""
    out = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs.sort()  # deterministic walk order on every platform
            dirs[:] = [d for d in dirs if d not in ("__pycache__", ".git")]
            for name in sorted(files):
                if name.endswith(".py"):
                    out.append(os.path.join(root, name))
    return sorted(dict.fromkeys(_normalize(p) for p in out))


def lint_source(
    source: str,
    path: str = "<fixture>.py",
    rules: Optional[Sequence[Rule]] = None,
    check_stale: Optional[bool] = None,
) -> LintReport:
    """Lint one in-memory source blob (the test-fixture entry point).

    ``check_stale`` controls S002 stale-suppression warnings; by default
    they run only when the *full* rule set does, because a filtered run
    cannot tell a stale suppression from one whose rule was skipped.
    """
    active = list(rules) if rules is not None else all_rules()
    if check_stale is None:
        check_stale = rules is None
    report = LintReport(files_checked=1)
    suppressions, marker_findings = parse_suppressions(source, path)
    try:
        ctx = FileContext.parse(path, source)
    except SyntaxError as exc:
        report.findings = assign_occurrences(
            [
                Finding(
                    rule=F001,
                    severity=ERROR,
                    path=path,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"cannot parse: {exc.msg}",
                    line_text=(exc.text or "").rstrip("\n"),
                )
            ]
        )
        return report
    raw: List[Finding] = list(marker_findings)
    for rule in active:
        if rule.is_exempt(ctx):
            continue
        raw.extend(rule.check(ctx))
    kept, suppressed = apply_suppressions(raw, suppressions)
    if check_stale:
        kept.extend(stale_suppression_findings(suppressions, path, ctx.lines))
    report.findings = assign_occurrences(kept)
    report.suppressed = assign_occurrences(suppressed)
    return report


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint every Python file under ``paths``; deterministic output."""
    active = list(rules) if rules is not None else all_rules()
    check_stale = rules is None
    report = LintReport()
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for path in discover_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        sub = lint_source(source, path=path, rules=active, check_stale=check_stale)
        findings.extend(sub.findings)
        suppressed.extend(sub.suppressed)
        report.files_checked += 1
    report.findings = assign_occurrences(findings)
    report.suppressed = assign_occurrences(suppressed)
    return report
