"""A simulated monotonic clock.

Every resilience primitive that needs the passage of time (retry backoff,
circuit-breaker cooldowns, recovery-latency accounting) reads a
:class:`SimClock` instead of the wall clock, for the same reason the
perfmodel substitutes modeled cycles for wall time (DESIGN.md §1.2):
pure-Python wall-clock would make every timeout nondeterministic, and the
chaos scorecard must be byte-identical for a given seed.
"""

from __future__ import annotations


class SimClock:
    """Monotonic simulated time in seconds; advanced explicitly."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new reading."""
        if seconds < 0:
            raise ValueError(f"cannot move time backwards ({seconds})")
        self._now += seconds
        return self._now

    # duck-compatibility with time.sleep-shaped callers
    sleep = advance

    def __repr__(self) -> str:
        return f"SimClock({self._now:.6f})"
