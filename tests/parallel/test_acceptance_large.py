"""ISSUE acceptance run: 4 MiB corpus, --jobs 4, byte-identical to serial.

The pure-Python codecs run at roughly a megabyte per second at low levels,
so this takes minutes rather than seconds; it is gated behind
``REPRO_ACCEPTANCE=1`` and excluded from the tier-1 suite. The same
property is exercised continuously on small corpora by
test_engine_equivalence.py.

Run with::

    REPRO_ACCEPTANCE=1 PYTHONPATH=src pytest tests/parallel/test_acceptance_large.py -v
"""

import os
import random

import pytest

from repro.parallel import compress_chunked

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_ACCEPTANCE") != "1",
    reason="large acceptance run; set REPRO_ACCEPTANCE=1 to enable",
)

_SIZE = 4 << 20


def _large_corpus() -> bytes:
    rng = random.Random(777)
    out = bytearray()
    while len(out) < _SIZE:
        out.extend(
            b"ts=%010d svc=%s op=%s bytes=%d\n"
            % (
                rng.randint(0, 2**31),
                rng.choice([b"cache1", b"feed2", b"ads_ranking", b"warehouse"]),
                rng.choice([b"get", b"set", b"scan"]),
                rng.randint(0, 1 << 20),
            )
        )
        if rng.random() < 0.05:
            out.extend(rng.randbytes(512))
    return bytes(out[:_SIZE])


@pytest.mark.parametrize("codec_name", ["zstd", "lz4", "gzip"])
def test_four_mib_jobs4_matches_serial(codec_name):
    from repro.codecs import get_codec

    codec = get_codec(codec_name)
    data = _large_corpus()
    serial = compress_chunked(codec, data, 1, jobs=1)  # default 128 KiB chunks
    pooled = compress_chunked(codec, data, 1, jobs=4)
    assert serial.data == pooled.data
    assert serial.counters == pooled.counters
    assert pooled.chunk_count == 32
    assert codec.decompress(pooled.data).data == data
