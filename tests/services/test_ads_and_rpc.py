"""Ads inference service and RPC channel tests."""

import pytest

from repro.services import AdsInferenceService
from repro.services.rpc import Channel


class TestChannel:
    def test_payload_delivered_intact(self):
        channel = Channel(level=1)
        payload = b"request body " * 100
        received, elapsed = channel.send(payload)
        assert received == payload
        assert elapsed > 0

    def test_compression_reduces_wire_bytes(self):
        compressed = Channel(level=3)
        raw = Channel(compress=False)
        payload = b'{"field": "value", "n": 1}' * 200
        compressed.send(payload)
        raw.send(payload)
        assert compressed.stats.wire_bytes < raw.stats.wire_bytes
        assert raw.stats.wire_bytes == len(payload)

    def test_uncompressed_channel_has_no_codec_time(self):
        channel = Channel(compress=False)
        channel.send(b"x" * 1000)
        assert channel.stats.compress_seconds == 0.0
        assert channel.stats.decompress_seconds == 0.0

    def test_latency_includes_all_components(self):
        channel = Channel(level=1, propagation_seconds=1e-3)
        __, elapsed = channel.send(b"payload " * 500)
        expected = (
            channel.propagation_seconds
            + channel.stats.compress_seconds
            + channel.stats.transfer_seconds
            + channel.stats.decompress_seconds
        )
        assert elapsed == pytest.approx(expected)

    def test_slow_link_favors_compression(self):
        """On a slow link, compressed transfer beats raw end-to-end."""
        payload = b'{"metric": 1, "labels": ["a", "b"]}' * 400
        slow_raw = Channel(bandwidth_bytes_per_second=5e6, compress=False)
        slow_comp = Channel(bandwidth_bytes_per_second=5e6, level=1)
        __, raw_time = slow_raw.send(payload)
        __, comp_time = slow_comp.send(payload)
        assert comp_time < raw_time

    def test_wire_ratio(self):
        channel = Channel(level=3)
        channel.send(b"abcd" * 1000)
        assert channel.stats.wire_ratio > 5


class TestAdsInferenceService:
    def test_serving_batch_counts(self):
        service = AdsInferenceService(level=1)
        stats = service.serve_batch("B", 3, seed=1)
        assert stats.requests == 3
        assert len(stats.latencies_seconds) == 3

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            AdsInferenceService().serve_batch("X", 1)

    def test_wire_ratio_above_one(self):
        stats = AdsInferenceService(level=1).serve_batch("B", 2, seed=2)
        assert stats.wire_ratio > 1.0

    def test_sparser_model_higher_wire_ratio(self):
        """Fig. 12: model A (sparser) compresses better than model B."""
        service_a = AdsInferenceService(level=3)
        service_b = AdsInferenceService(level=3)
        ratio_a = service_a.serve_batch("A", 2, seed=3).wire_ratio
        ratio_b = service_b.serve_batch("B", 2, seed=3).wire_ratio
        assert ratio_a > ratio_b

    def test_higher_level_adds_latency(self):
        """Section IV-D: compression compute adds to request latency."""
        fast = AdsInferenceService(level=-5).serve_batch("B", 2, seed=4)
        slow = AdsInferenceService(level=9).serve_batch("B", 2, seed=4)
        assert slow.mean_latency_seconds > fast.mean_latency_seconds

    def test_compression_cycle_share_band(self):
        """ADS1's Zstd share calibrates to the low single digits (Fig. 6)."""
        stats = AdsInferenceService(level=1).serve_batch("B", 3, seed=5)
        assert 0.02 < stats.zstd_cycle_share < 0.12

    def test_uncompressed_service_has_zero_compression_cycles(self):
        service = AdsInferenceService(compress_requests=False)
        stats = service.serve_batch("B", 2, seed=6)
        assert stats.compression_cycles == 0.0

    def test_p99_at_least_mean(self):
        stats = AdsInferenceService(level=1).serve_batch("B", 5, seed=7)
        assert stats.p99_latency_seconds >= stats.mean_latency_seconds * 0.99


class TestWireRatioEdgeCases:
    """Regression: wire_ratio semantics when wire_bytes == 0."""

    def test_idle_channel_is_neutral(self):
        assert Channel(level=1).stats.wire_ratio == 1.0

    def test_raw_bytes_without_wire_bytes_is_infinite(self):
        """Raw traffic that produced zero wire bytes must not report the
        neutral 1.0 — the saving is unbounded, not absent."""
        from repro.services.rpc import RpcStats

        stats = RpcStats(messages=1, raw_bytes=4096, wire_bytes=0)
        assert stats.wire_ratio == float("inf")

    def test_normal_traffic_unchanged(self):
        channel = Channel(level=3)
        channel.send(b"abcd" * 1000)
        raw, wire = channel.stats.raw_bytes, channel.stats.wire_bytes
        assert channel.stats.wire_ratio == pytest.approx(raw / wire)
