"""Fig. 14: the CompOpt pipeline itself.

Fig. 14 is the paper's architecture diagram -- sample data and service
requirements flow into CompEngine, candidate options are measured, the cost
model prices them, and the optimal configuration comes out. This bench runs
that exact flow end-to-end and prints each stage, so the figure is
"reproduced" as an executable pipeline rather than a drawing.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import (
    CompEngine,
    CompOpt,
    CompSim,
    CostModel,
    CostParameters,
    MinCompressionSpeed,
)
from repro.core.config import config_grid
from repro.corpus import generate_records


@pytest.fixture(scope="module")
def pipeline_run():
    # (1) user inputs: sample data + costs + requirements
    samples = [generate_records(8192, seed=s) for s in range(3)]
    params = CostParameters.from_price_book(beta=1e-6, retention_days=30.0)
    requirements = [MinCompressionSpeed(100e6)]
    # (2) CompEngine over the candidate grid (incl. a CompSim accelerator)
    engine = CompEngine(samples)
    CompSim(engine).add_accelerator("hw-accel", window_log=17, gamma=10.0)
    grid = config_grid(["zstd", "lz4", "zlib"], levels=[1, 3, 6])
    grid.append(grid[0].__class__("hw-accel", 1))
    # (3) cost model + (4) optimizer
    optimizer = CompOpt(engine, CostModel(params), requirements)
    result = optimizer.optimize(grid)
    return samples, grid, result


def test_fig14_compopt_pipeline(benchmark, pipeline_run, figure_output):
    samples, grid, result = pipeline_run
    stage_rows = [
        ["1. sample data", f"{len(samples)} samples, {sum(len(s) for s in samples)} bytes"],
        ["2. CompEngine", f"{len(grid)} candidates measured (incl. 1 CompSim accelerator)"],
        ["3. cost model", "equations (1)-(4), AWS-style price book"],
        ["4. requirements", "compression speed >= 100 MB/s"],
        ["5. output", f"optimal = {result.best.config.label()}"],
    ]
    top = [
        [r.config.label(), f"{r.metrics.ratio:.2f}", f"${r.total_cost:,.2f}",
         "yes" if r.feasible else "no"]
        for r in result.ranked[:5]
    ]
    figure_output(
        "fig14_compopt_pipeline",
        format_table(["stage", "what happened"], stage_rows,
                     title="Fig. 14: the CompOpt pipeline, executed")
        + "\n\n"
        + format_table(["config", "ratio", "est. cost", "feasible"], top,
                       title="top-5 ranked candidates"),
    )
    assert result.best is not None
    assert len(result.ranked) == len(grid)
    # The accelerator candidate flowed through like any other compressor.
    assert any(r.config.algorithm == "hw-accel" for r in result.ranked)

    benchmark(lambda: result.best)
