"""Telemetry overhead guard: instrumented-but-disabled codec calls must be
within 5% of the pre-instrumentation baseline.

The zero-cost-when-disabled contract: with ``OBS_STATE.enabled`` false, a
codec call pays exactly one attribute read and branch. The guard times
``Compressor.compress``/``decompress`` (instrumented path, telemetry off)
against a baseline that performs the identical pre-change work — argument
validation plus ``_compress``/``_decompress`` and counter bookkeeping with
no telemetry branch — and fails if the instrumented path is more than 5%
slower (plus a small absolute epsilon so sub-millisecond noise cannot trip
the gate).

The same contract extends to the serving plane's time-series hooks: a
gateway constructed without a recorder must never reach the window
recording functions — the audit here stubs them to raise and drives a
full burst through the hot path to prove the ``recorder is None`` guard
covers every call site.

Runs standalone (``python benchmarks/bench_obs_overhead.py``, exit code 1
on regression) and under ``pytest benchmarks/``. Standalone runs append
the measured overhead ratios to the benchmark trajectory with a wide
per-entry tolerance (wall-clock numbers never enter the committed
deterministic baseline).
"""

from __future__ import annotations

import sys
import time

from repro.codecs import get_codec
from repro.codecs.base import CompressResult, DecompressResult, StageCounters
from repro.obs.state import OBS_STATE

#: tolerated slowdown of the disabled-telemetry path vs the baseline
THRESHOLD = 1.05
#: absolute slack per batch (seconds) so scheduler jitter cannot trip 5%
EPSILON = 2e-3

_DATA = (
    b"ts=1690000000|service=kvstore|status=ok|bytes=004096|region=use1\n"
) * 32  # ~2 KiB of structured, compressible text
_LEVEL = 3
_CALLS_PER_BATCH = 20
_TRIALS = 7


def _baseline_compress(codec, data: bytes, level: int) -> CompressResult:
    """The pre-instrumentation compress body: validation + work, no hooks."""
    if not codec.min_level <= level <= codec.max_level:
        raise AssertionError("level out of range")
    counters = StageCounters(bytes_in=len(data))
    payload = codec._compress(bytes(data), level, None, counters)
    counters.bytes_out = len(payload)
    return CompressResult(payload, counters, codec.name, level)


def _baseline_decompress(codec, payload: bytes) -> DecompressResult:
    counters = StageCounters(bytes_in=len(payload))
    codec._output_limit = None
    data = codec._decompress(bytes(payload), None, counters)
    counters.bytes_out = len(data)
    return DecompressResult(data, counters, codec.name)


def _best_batch_seconds(fn, trials: int = _TRIALS) -> float:
    """Minimum wall time over ``trials`` batches — the noise-robust read."""
    best = float("inf")
    for _ in range(trials):
        start = time.perf_counter()
        for _ in range(_CALLS_PER_BATCH):
            fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure() -> dict:
    """Time instrumented-disabled vs baseline compress and decompress."""
    codec = get_codec("zstd")
    assert not OBS_STATE.enabled, "guard must run with telemetry disabled"
    compressed = codec.compress(_DATA, _LEVEL).data

    # warm up caches/allocators before timing either variant
    for _ in range(3):
        _baseline_compress(codec, _DATA, _LEVEL)
        codec.compress(_DATA, _LEVEL)

    return {
        "compress": (
            _best_batch_seconds(lambda: _baseline_compress(codec, _DATA, _LEVEL)),
            _best_batch_seconds(lambda: codec.compress(_DATA, _LEVEL)),
        ),
        "decompress": (
            _best_batch_seconds(lambda: _baseline_decompress(codec, compressed)),
            _best_batch_seconds(lambda: codec.decompress(compressed)),
        ),
    }


def check(results: dict) -> list:
    """Return a list of failure strings (empty = within budget)."""
    failures = []
    for direction, (baseline, instrumented) in results.items():
        budget = baseline * THRESHOLD + EPSILON
        if instrumented > budget:
            failures.append(
                f"{direction}: instrumented {instrumented * 1e3:.3f} ms/batch "
                f"exceeds budget {budget * 1e3:.3f} ms/batch "
                f"(baseline {baseline * 1e3:.3f} ms)"
            )
    return failures


def _report(results: dict) -> str:
    lines = [
        f"telemetry-disabled overhead guard "
        f"(threshold {THRESHOLD:.2f}x + {EPSILON * 1e3:.0f} ms, "
        f"{_CALLS_PER_BATCH} calls/batch, best of {_TRIALS}):"
    ]
    for direction, (baseline, instrumented) in results.items():
        ratio = instrumented / baseline if baseline else float("inf")
        lines.append(
            f"  {direction:10s} baseline {baseline * 1e3:8.3f} ms  "
            f"instrumented {instrumented * 1e3:8.3f} ms  ({ratio:.3f}x)"
        )
    return "\n".join(lines)


def audit_serving_hooks_without_recorder() -> int:
    """Zero-cost audit: a recorder-less gateway must never call the
    window recording hooks. Returns the number of requests served."""
    import repro.serving.gateway as gateway_mod
    from repro.serving import CompressionGateway, ServingRequest, build_ladder

    def _must_not_be_called(*_args, **_kwargs):
        raise AssertionError(
            "serving obs hook reached with recorder=None — the "
            "`recorder is not None` guard is missing at a call site"
        )

    payloads = [
        f"audit payload {i:03d} structured compressible body ".encode() * 16
        for i in range(24)
    ]
    ladder = build_ladder(payloads[:4], algorithms=("zstd",), levels=(1,))
    saved = (
        gateway_mod.record_window_verdict,
        gateway_mod.record_window_served,
    )
    gateway_mod.record_window_verdict = _must_not_be_called
    gateway_mod.record_window_served = _must_not_be_called
    try:
        gateway = CompressionGateway(ladder, capacity=16)
        assert gateway.recorder is None
        for i, payload in enumerate(payloads):
            gateway.submit(
                ServingRequest(
                    request_id=i,
                    tenant=f"tenant-{i % 2}",
                    payload=payload,
                    arrival=0.0,
                )
            )
        served = 0
        while gateway.queue.depth():
            served += len(gateway.serve_batch(0.0, 8))
    finally:
        gateway_mod.record_window_verdict = saved[0]
        gateway_mod.record_window_served = saved[1]
    return served


def audit_kvstore_hooks_disabled() -> int:
    """Zero-cost audit for the durable-LSM hooks: with telemetry off, a
    full write/flush/compact/crash-recover cycle must never reach the
    WAL/recovery recording functions or open a span. Returns the number
    of operations driven."""
    import repro.services.kvstore.db as db_mod
    import repro.services.kvstore.wal as wal_mod
    from repro.services.kvstore import KVStore
    from repro.services.kvstore.storage import SimStorage

    def _must_not_be_called(*_args, **_kwargs):
        raise AssertionError(
            "kvstore obs hook reached with telemetry disabled — the "
            "OBS_STATE.enabled guard is missing at a call site"
        )

    assert not OBS_STATE.enabled, "audit must run with telemetry disabled"
    saved = (
        db_mod.record_kvstore_recovery,
        db_mod.span,
        wal_mod.record_wal_append,
        wal_mod.record_wal_replay,
        wal_mod.record_torn_tail,
    )
    db_mod.record_kvstore_recovery = _must_not_be_called
    db_mod.span = _must_not_be_called
    wal_mod.record_wal_append = _must_not_be_called
    wal_mod.record_wal_replay = _must_not_be_called
    wal_mod.record_torn_tail = _must_not_be_called
    ops = 0
    try:
        storage = SimStorage(seed=11)
        store = KVStore(
            storage=storage, memtable_bytes=1 << 11, level0_table_limit=2
        )
        for i in range(240):
            store.put(f"audit:{i % 80:04d}".encode(), b"value body " * 8)
            ops += 1
        store.flush()
        reopened = KVStore(
            storage=storage, memtable_bytes=1 << 11, level0_table_limit=2
        )
        assert reopened.last_recovery is not None
    finally:
        db_mod.record_kvstore_recovery = saved[0]
        db_mod.span = saved[1]
        wal_mod.record_wal_append = saved[2]
        wal_mod.record_wal_replay = saved[3]
        wal_mod.record_torn_tail = saved[4]
    return ops


def test_disabled_telemetry_overhead():
    """Tier-2 guard: disabled-telemetry codec calls stay within 5%."""
    results = measure()
    failures = check(results)
    assert not failures, "\n".join([_report(results)] + failures)


def test_serving_hooks_skipped_without_recorder():
    """Tier-2 guard: recorder-less gateways do zero time-series work."""
    served = audit_serving_hooks_without_recorder()
    assert served > 0


def test_kvstore_hooks_skipped_when_disabled():
    """Tier-2 guard: durable-LSM paths do zero obs work when disabled."""
    ops = audit_kvstore_hooks_disabled()
    assert ops > 0


def _record_trajectory(results: dict) -> None:
    import trajectory

    for direction, (baseline, instrumented) in results.items():
        if not baseline:
            continue
        trajectory.record(
            f"obs.disabled_overhead.{direction}_x",
            instrumented / baseline,
            "x",
            higher_is_better=False,
            # wall-clock ratio: wide tolerance so machine noise can't flake
            tolerance=0.50,
        )


def main() -> int:
    results = measure()
    print(_report(results))
    served = audit_serving_hooks_without_recorder()
    print(f"PASS serving hooks silent without a recorder ({served} served)")
    ops = audit_kvstore_hooks_disabled()
    print(f"PASS kvstore durable hooks silent when disabled ({ops} ops)")
    _record_trajectory(results)
    failures = check(results)
    for failure in failures:
        print(f"FAIL {failure}")
    if failures:
        return 1
    print("PASS disabled-telemetry overhead within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
