"""Synthetic call-stack frames and their classification.

The fleet methodology (Section III-A) is: sample application call stacks,
filter the stacks for compression APIs, aggregate cycles by the matched
frames. This module defines the frame vocabulary the synthetic profiler
emits and the classifier the aggregation uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: compression API frames by (algorithm, direction)
_API_FRAMES = {
    ("zstd", "compress"): "ZSTD_compress",
    ("zstd", "decompress"): "ZSTD_decompress",
    ("lz4", "compress"): "LZ4_compress_default",
    ("lz4", "decompress"): "LZ4_decompress_safe",
    ("zlib", "compress"): "deflate",
    ("zlib", "decompress"): "inflate",
}

_STAGE_FRAMES = {
    "match_finding": "ZSTD_compressBlock_internal",
    "entropy": "ZSTD_entropyCompressSeqStore",
}

_FRAME_TO_CLASS = {frame: key for key, frame in _API_FRAMES.items()}


@dataclass(frozen=True)
class CallStackSample:
    """One (aggregated) profiler observation.

    ``weight`` counts how many cycle samples share this exact leaf; the
    synthetic profiler aggregates identical leaves instead of materializing
    hundreds of millions of rows.
    """

    service: str
    category: str
    frames: Tuple[str, ...]
    weight: int = 1
    #: metadata joined from service configuration (as production tooling does)
    level: Optional[int] = None
    stage: Optional[str] = None
    block_size: Optional[int] = None


def api_frame(algorithm: str, direction: str) -> str:
    """The API frame name for (algorithm, direction)."""
    return _API_FRAMES[(algorithm, direction)]


def stage_frame(stage: str) -> str:
    return _STAGE_FRAMES[stage]


def build_stack(
    service: str,
    algorithm: Optional[str] = None,
    direction: Optional[str] = None,
    stage: Optional[str] = None,
) -> Tuple[str, ...]:
    """Assemble a plausible call stack for one sample."""
    frames = ["__libc_start_main", f"svc::{service}::main", "rpc::dispatch"]
    if algorithm is None:
        frames.append("app::handle_request")
    else:
        frames.append("folly::io::Codec::compress" if direction == "compress"
                      else "folly::io::Codec::uncompress")
        frames.append(api_frame(algorithm, direction))
        if stage is not None:
            frames.append(stage_frame(stage))
    return tuple(frames)


def is_compression_frame(frame: str) -> bool:
    """Does this frame belong to a compression API? (the profiler's filter)"""
    return frame in _FRAME_TO_CLASS or frame in _STAGE_FRAMES.values()


def parse_frame(frame: str) -> Optional[Tuple[str, str]]:
    """(algorithm, direction) for an API frame, None for everything else."""
    return _FRAME_TO_CLASS.get(frame)


def classify_stack(frames: Tuple[str, ...]) -> Optional[Tuple[str, str]]:
    """Scan a stack for the innermost compression API frame."""
    for frame in reversed(frames):
        parsed = parse_frame(frame)
        if parsed:
            return parsed
    return None
