"""Trace spans: nesting, flame paths, exception safety."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.spans import SPAN_METRIC, current_span


class TestNesting:
    def test_paths_join_with_semicolons(self, fresh_obs):
        with obs.span("request"):
            with obs.span("zstd.compress", level=3):
                pass
            with obs.span("rpc.send"):
                with obs.span("zstd.decompress"):
                    pass
        flames = obs.flame_counts()
        assert set(flames) == {
            "request",
            "request;zstd.compress",
            "request;rpc.send",
            "request;rpc.send;zstd.decompress",
        }
        count, total = flames["request;zstd.compress"]
        assert count == 1 and total >= 0.0

    def test_children_attach_to_parent_record(self, fresh_obs):
        with obs.span("outer") as outer:
            with obs.span("inner"):
                pass
        assert [child.name for child in outer.children] == ["inner"]
        roots = obs.recent_roots()
        assert roots and roots[-1] is outer
        assert [rec.name for rec in outer.walk()] == ["outer", "inner"]

    def test_durations_nest(self, fresh_obs):
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                pass
        assert outer.duration_seconds >= inner.duration_seconds >= 0.0

    def test_current_span_tracks_stack(self, fresh_obs):
        assert current_span() is None
        with obs.span("a") as a:
            assert current_span() is a
            with obs.span("b") as b:
                assert current_span() is b
            assert current_span() is a
        assert current_span() is None

    def test_attributes_recorded(self, fresh_obs):
        with obs.span("c", codec="zstd") as rec:
            rec.set(level=3)
        assert rec.attributes == {"codec": "zstd", "level": 3}


class TestExceptionSafety:
    def test_exception_propagates_and_stack_unwinds(self, fresh_obs):
        with pytest.raises(RuntimeError, match="boom"):
            with obs.span("will_fail"):
                raise RuntimeError("boom")
        # the stack is clean: a new span is a root, not a child of the dead one
        assert current_span() is None
        with obs.span("after"):
            assert current_span().path == "after"

    def test_error_flag_recorded(self, fresh_obs):
        with pytest.raises(ValueError):
            with obs.span("fails"):
                raise ValueError()
        hist = fresh_obs.get(SPAN_METRIC)
        assert hist.count(path="fails", error="true") == 1
        assert hist.count(path="fails", error="false") == 0
        roots = obs.recent_roots()
        assert roots[-1].error is True

    def test_inner_failure_still_attributes_outer(self, fresh_obs):
        with pytest.raises(KeyError):
            with obs.span("outer"):
                with obs.span("inner"):
                    raise KeyError()
        hist = fresh_obs.get(SPAN_METRIC)
        assert hist.count(path="outer;inner", error="true") == 1
        assert hist.count(path="outer", error="true") == 1

    def test_duration_recorded_despite_exception(self, fresh_obs):
        with pytest.raises(RuntimeError):
            with obs.span("fails") as rec:
                raise RuntimeError()
        assert rec.duration_seconds >= 0.0


def test_reset_clears_roots_and_stack(fresh_obs):
    with obs.span("a"):
        pass
    assert obs.recent_roots()
    obs.reset_spans()
    assert obs.recent_roots() == []
