"""CompOpt: the paper's first-order compression cost optimizer (Section V).

CompOpt searches the configuration space (algorithm x level x block size)
for the cheapest option that meets a service's requirements:

1. :class:`~repro.core.engine.CompEngine` generates candidate configurations
   and runs them on user-supplied sample data, producing
   :class:`~repro.core.metrics.CompressionMetrics` (ratio, compression
   speed, decompression speed) per candidate.
2. :class:`~repro.core.costmodel.CostModel` implements equations (1)-(4):
   compute, storage, and network dollar costs from the metrics and the
   service's alpha coefficients, sampling rate beta, and retention R.
3. :class:`~repro.core.optimizer.CompOpt` filters candidates through the
   service requirements (min compression speed, max decompression latency,
   ...) and returns configurations ranked by total cost.
4. :class:`~repro.core.compsim.CompSim` models hardware accelerators as
   "just another compressor" with a speed multiplier gamma and dedicated
   compute pricing, exactly as Section V-A describes.
"""

from repro.core.config import CompressionConfig
from repro.core.metrics import CompressionMetrics
from repro.core.engine import CompEngine
from repro.core.costmodel import CostModel, CostParameters, CostBreakdown
from repro.core.constraints import (
    MaxBlockDecodeLatency,
    MinCompressionSpeed,
    MinRatio,
    Requirement,
)
from repro.core.optimizer import CompOpt, OptimizationResult, RankedConfig
from repro.core.compsim import CompSim
from repro.core.autotuner import AutoTuner, TuningEvent
from repro.core.categories import (
    OffloadAdvice,
    WorkloadCategory,
    WorkloadTraits,
    classify_workload,
    offload_recommendation,
)
from repro.core.pricing import PriceBook, DEFAULT_PRICES

__all__ = [
    "CompressionConfig",
    "CompressionMetrics",
    "CompEngine",
    "CostModel",
    "CostParameters",
    "CostBreakdown",
    "Requirement",
    "MinCompressionSpeed",
    "MaxBlockDecodeLatency",
    "MinRatio",
    "CompOpt",
    "OptimizationResult",
    "RankedConfig",
    "CompSim",
    "AutoTuner",
    "TuningEvent",
    "WorkloadCategory",
    "WorkloadTraits",
    "classify_workload",
    "offload_recommendation",
    "OffloadAdvice",
    "PriceBook",
    "DEFAULT_PRICES",
]
