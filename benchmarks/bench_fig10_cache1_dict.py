"""Fig. 10: CACHE1 compression speed vs ratio, with and without
per-type dictionaries, Zstd levels 1/3/6/11.

Paper shape: the dictionary curve sits strictly above (higher ratio at
every level); level up => ratio up, speed down along each curve.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.codecs import get_codec, train_dictionary
from repro.codecs.base import StageCounters
from repro.corpus import CACHE1_TYPES, generate_cache_items
from repro.perfmodel import DEFAULT_MACHINE

LEVELS = [1, 3, 6, 11]


def dictionary_sweep(type_specs, seed, levels=LEVELS, item_count=400):
    """(level, use_dict) -> (ratio, modeled compression MB/s)."""
    zstd = get_codec("zstd")
    items = generate_cache_items(type_specs, item_count, seed=seed)
    by_type = {}
    for type_name, payload in items:
        by_type.setdefault(type_name, []).append(payload)
    dictionaries = {
        type_name: train_dictionary(payloads[: len(payloads) // 2], 8192)
        for type_name, payloads in by_type.items()
    }
    test_items = []
    for type_name, payloads in by_type.items():
        test_items.extend((type_name, p) for p in payloads[len(payloads) // 2 :])

    curves = {}
    for use_dict in (False, True):
        for level in levels:
            raw = compressed = 0
            counters = StageCounters()
            for type_name, payload in test_items:
                dictionary = (
                    dictionaries[type_name].content if use_dict else None
                )
                result = zstd.compress(payload, level, dictionary=dictionary)
                raw += len(payload)
                compressed += len(result.data)
                counters.merge(result.counters)
            curves[(level, use_dict)] = (
                raw / compressed,
                DEFAULT_MACHINE.compress_speed("zstd", counters) / 1e6,
            )
    return curves


@pytest.fixture(scope="module")
def curves():
    return dictionary_sweep(CACHE1_TYPES, seed=100)


def test_fig10_cache1_dict(benchmark, curves, figure_output):
    rows = [
        [
            f"level {level}",
            "dict" if use_dict else "plain",
            f"{ratio:.2f}",
            f"{speed:.0f}",
        ]
        for (level, use_dict), (ratio, speed) in sorted(curves.items())
    ]
    figure_output(
        "fig10_cache1_dict",
        format_table(
            ["level", "mode", "ratio", "comp MB/s"],
            rows,
            title="Fig. 10: CACHE1 ratio/speed with and without dictionaries",
        ),
    )
    # Dictionary achieves a much higher ratio at the same level, everywhere.
    for level in LEVELS:
        plain_ratio = curves[(level, False)][0]
        dict_ratio = curves[(level, True)][0]
        assert dict_ratio > 1.15 * plain_ratio, level
    # Along each curve: higher level, higher ratio (with the paper's caveat
    # about occasional inconsistencies -- compare endpoints only).
    assert curves[(11, True)][0] > curves[(1, True)][0]
    assert curves[(11, True)][1] < curves[(1, True)][1]

    items = generate_cache_items(CACHE1_TYPES, 30, seed=101)
    zstd = get_codec("zstd")
    benchmark(lambda: [zstd.compress(p, 3) for __, p in items])
