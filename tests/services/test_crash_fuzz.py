"""Seeded recovery fuzz: random crash cells must always recover.

Like the codec fuzz, the seed comes from ``REPRO_FUZZ_SEED`` (CI sets it
from the date so each nightly walks fresh crash cells; locally it
defaults to a fixed value). Every assertion carries the seed so a red
run replays with::

    REPRO_FUZZ_SEED=<seed> pytest tests/services/test_crash_fuzz.py

Each draw picks a workload seed, a crash site, and a visit number, runs
the cell, and relies on the cell runner's built-in
:func:`~repro.services.kvstore.crashsim.verify_recovery` to enforce the
recovery invariant (acked writes survive, unacked never resurrect, no
partial level state).
"""

import os
import random

import pytest

from repro.services.kvstore.crashsim import (
    CRASH_SITES,
    run_crash_cell,
    run_crash_sweep,
)

FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20230913"))


def _draws(count):
    rng = random.Random(f"kvstore-crash-fuzz:{FUZZ_SEED}")
    return [
        (
            rng.randrange(1000),
            rng.choice(CRASH_SITES),
            rng.randint(1, 4),
            rng.choice([160, 220, 320]),
        )
        for __ in range(count)
    ]


@pytest.mark.parametrize("workload_seed,site,hit,ops", _draws(10))
def test_fuzz_crash_cell_recovers(workload_seed, site, hit, ops):
    cell = run_crash_cell(seed=workload_seed, site=site, hit=hit, ops=ops)
    # not every deep (site, hit) is reached by every workload; when it
    # fires, the runner has already enforced the invariant — reaching
    # this line without RecoveryInvariantError IS the assertion
    if cell.crashed:
        assert cell.recovery is not None, (
            f"crashed without a recovery report: site={site} hit={hit} "
            f"seed={workload_seed} REPRO_FUZZ_SEED={FUZZ_SEED}"
        )


def test_fuzz_full_sweep_at_fuzz_seed():
    # one exhaustive sweep at a seed derived from the fuzz seed: every
    # cell must fire and recover (the sweep workload is sized for that)
    sweep = run_crash_sweep(seed=FUZZ_SEED % 997, hits=2)
    assert sweep.crashes == len(sweep.cells), (
        f"unfired sweep cells at REPRO_FUZZ_SEED={FUZZ_SEED} "
        f"(workload seed {FUZZ_SEED % 997})"
    )
