"""Telemetry overhead guard: instrumented-but-disabled codec calls must be
within 5% of the pre-instrumentation baseline.

The zero-cost-when-disabled contract: with ``OBS_STATE.enabled`` false, a
codec call pays exactly one attribute read and branch. The guard times
``Compressor.compress``/``decompress`` (instrumented path, telemetry off)
against a baseline that performs the identical pre-change work — argument
validation plus ``_compress``/``_decompress`` and counter bookkeeping with
no telemetry branch — and fails if the instrumented path is more than 5%
slower (plus a small absolute epsilon so sub-millisecond noise cannot trip
the gate).

Runs standalone (``python benchmarks/bench_obs_overhead.py``, exit code 1
on regression) and under ``pytest benchmarks/``.
"""

from __future__ import annotations

import sys
import time

from repro.codecs import get_codec
from repro.codecs.base import CompressResult, DecompressResult, StageCounters
from repro.obs.state import OBS_STATE

#: tolerated slowdown of the disabled-telemetry path vs the baseline
THRESHOLD = 1.05
#: absolute slack per batch (seconds) so scheduler jitter cannot trip 5%
EPSILON = 2e-3

_DATA = (
    b"ts=1690000000|service=kvstore|status=ok|bytes=004096|region=use1\n"
) * 32  # ~2 KiB of structured, compressible text
_LEVEL = 3
_CALLS_PER_BATCH = 20
_TRIALS = 7


def _baseline_compress(codec, data: bytes, level: int) -> CompressResult:
    """The pre-instrumentation compress body: validation + work, no hooks."""
    if not codec.min_level <= level <= codec.max_level:
        raise AssertionError("level out of range")
    counters = StageCounters(bytes_in=len(data))
    payload = codec._compress(bytes(data), level, None, counters)
    counters.bytes_out = len(payload)
    return CompressResult(payload, counters, codec.name, level)


def _baseline_decompress(codec, payload: bytes) -> DecompressResult:
    counters = StageCounters(bytes_in=len(payload))
    codec._output_limit = None
    data = codec._decompress(bytes(payload), None, counters)
    counters.bytes_out = len(data)
    return DecompressResult(data, counters, codec.name)


def _best_batch_seconds(fn, trials: int = _TRIALS) -> float:
    """Minimum wall time over ``trials`` batches — the noise-robust read."""
    best = float("inf")
    for _ in range(trials):
        start = time.perf_counter()
        for _ in range(_CALLS_PER_BATCH):
            fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure() -> dict:
    """Time instrumented-disabled vs baseline compress and decompress."""
    codec = get_codec("zstd")
    assert not OBS_STATE.enabled, "guard must run with telemetry disabled"
    compressed = codec.compress(_DATA, _LEVEL).data

    # warm up caches/allocators before timing either variant
    for _ in range(3):
        _baseline_compress(codec, _DATA, _LEVEL)
        codec.compress(_DATA, _LEVEL)

    return {
        "compress": (
            _best_batch_seconds(lambda: _baseline_compress(codec, _DATA, _LEVEL)),
            _best_batch_seconds(lambda: codec.compress(_DATA, _LEVEL)),
        ),
        "decompress": (
            _best_batch_seconds(lambda: _baseline_decompress(codec, compressed)),
            _best_batch_seconds(lambda: codec.decompress(compressed)),
        ),
    }


def check(results: dict) -> list:
    """Return a list of failure strings (empty = within budget)."""
    failures = []
    for direction, (baseline, instrumented) in results.items():
        budget = baseline * THRESHOLD + EPSILON
        if instrumented > budget:
            failures.append(
                f"{direction}: instrumented {instrumented * 1e3:.3f} ms/batch "
                f"exceeds budget {budget * 1e3:.3f} ms/batch "
                f"(baseline {baseline * 1e3:.3f} ms)"
            )
    return failures


def _report(results: dict) -> str:
    lines = [
        f"telemetry-disabled overhead guard "
        f"(threshold {THRESHOLD:.2f}x + {EPSILON * 1e3:.0f} ms, "
        f"{_CALLS_PER_BATCH} calls/batch, best of {_TRIALS}):"
    ]
    for direction, (baseline, instrumented) in results.items():
        ratio = instrumented / baseline if baseline else float("inf")
        lines.append(
            f"  {direction:10s} baseline {baseline * 1e3:8.3f} ms  "
            f"instrumented {instrumented * 1e3:8.3f} ms  ({ratio:.3f}x)"
        )
    return "\n".join(lines)


def test_disabled_telemetry_overhead():
    """Tier-2 guard: disabled-telemetry codec calls stay within 5%."""
    results = measure()
    failures = check(results)
    assert not failures, "\n".join([_report(results)] + failures)


def main() -> int:
    results = measure()
    print(_report(results))
    failures = check(results)
    for failure in failures:
        print(f"FAIL {failure}")
    if failures:
        return 1
    print("PASS disabled-telemetry overhead within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
