"""A minimal RPC channel with optional payload compression.

Datacenter services "follow an RPC-based approach to interact with each
other" (Section II-A); compressing RPC payloads trades compute (and latency)
for network bytes. The channel models a link with fixed bandwidth and
propagation delay and accounts both sides' compression work.

Resilience: every message may carry a per-message timeout and a
:class:`~repro.resilience.retry.RetryPolicy` (capped exponential backoff,
deterministic jitter). A dropped, timed-out, or corrupted attempt is
retried within the budget; exhaustion raises :class:`RpcExhaustedError`.
All time is modeled (the channel's latency math), never wall-clock, so
retry behaviour is deterministic. A fault injector attached via
:class:`~repro.faults.wrappers.FaultyChannel` perturbs the wire *inside*
the retry loop -- one fault decision per attempt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.codecs import Compressor, get_codec
from repro.codecs.base import CorruptDataError, StageCounters
from repro.obs.instrument import (
    record_recovery,
    record_rpc_failure,
    record_rpc_message,
    record_rpc_retry,
)
from repro.obs.spans import span
from repro.obs.state import OBS_STATE
from repro.perfmodel import DEFAULT_MACHINE, MachineModel
from repro.resilience.retry import RetryPolicy


class RpcError(Exception):
    """Base class for channel-level delivery failures."""


class ChannelDropError(RpcError):
    """The wire dropped the message (injected or modeled loss)."""

    def __init__(self, message: str = "message dropped", elapsed_seconds: float = 0.0):
        super().__init__(message)
        self.elapsed_seconds = elapsed_seconds


class RpcTimeoutError(RpcError):
    """One attempt's modeled end-to-end time exceeded the timeout."""

    def __init__(self, message: str, elapsed_seconds: float = 0.0):
        super().__init__(message)
        self.elapsed_seconds = elapsed_seconds


class RpcCorruptPayloadError(RpcError):
    """The received payload failed decompression validation."""

    def __init__(self, message: str, elapsed_seconds: float = 0.0):
        super().__init__(message)
        self.elapsed_seconds = elapsed_seconds


class RpcExhaustedError(RpcError):
    """Delivery abandoned: the retry budget is spent."""


@dataclass
class RpcStats:
    """Per-channel accounting."""

    messages: int = 0
    raw_bytes: int = 0
    wire_bytes: int = 0
    compress_seconds: float = 0.0
    decompress_seconds: float = 0.0
    transfer_seconds: float = 0.0
    compress_counters: StageCounters = field(default_factory=StageCounters)
    decompress_counters: StageCounters = field(default_factory=StageCounters)
    # -- resilience accounting --
    retries: int = 0
    drops: int = 0
    timeouts: int = 0
    corrupt_payloads: int = 0
    #: messages delivered only after at least one retry
    recovered_messages: int = 0
    #: messages abandoned after the retry budget
    failed_messages: int = 0
    backoff_seconds: float = 0.0

    @property
    def wire_ratio(self) -> float:
        """Raw bytes per wire byte (higher = more effective compression).

        With no traffic at all the ratio is the neutral 1.0; if raw bytes
        were sent but zero bytes hit the wire (degenerate empty-payload
        compression) the ratio is unbounded, reported as ``inf`` rather
        than a misleading 1.0.
        """
        if self.wire_bytes:
            return self.raw_bytes / self.wire_bytes
        return float("inf") if self.raw_bytes else 1.0

    @property
    def total_latency_seconds(self) -> float:
        return self.compress_seconds + self.transfer_seconds + self.decompress_seconds


class Channel:
    """A point-to-point link carrying optionally compressed messages."""

    def __init__(
        self,
        bandwidth_bytes_per_second: float = 1.25e9,  # 10 Gb/s
        propagation_seconds: float = 50e-6,
        codec: Optional[Compressor] = None,
        level: int = 1,
        compress: bool = True,
        machine: MachineModel = DEFAULT_MACHINE,
        timeout_seconds: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.bandwidth = bandwidth_bytes_per_second
        self.propagation_seconds = propagation_seconds
        self.codec = codec if codec is not None else get_codec("zstd")
        self.level = level
        self.compress = compress
        self.machine = machine
        #: per-attempt modeled deadline; None = wait forever
        self.timeout_seconds = timeout_seconds
        #: retry budget and backoff shape; None = fail on first error
        self.retry = retry
        #: a fault injector attached by :class:`~repro.faults.FaultyChannel`
        self.injector = None
        self.fault_site = "rpc.wire"
        self.stats = RpcStats()

    def send(self, payload: bytes) -> Tuple[bytes, float]:
        """Deliver ``payload``; returns (received_bytes, end_to_end_seconds).

        End-to-end time = sender compression + wire transfer + receiver
        decompression (the latency sum ADS1 must keep within its SLO),
        plus any retry backoff the message needed.
        """
        if OBS_STATE.enabled:
            with span("rpc.send", codec=self.codec.name, level=self.level):
                return self._send(payload)
        return self._send(payload)

    def _send(self, payload: bytes) -> Tuple[bytes, float]:
        self.stats.messages += 1
        self.stats.raw_bytes += len(payload)
        message_key = self.stats.messages
        elapsed_total = 0.0
        attempt = 1
        while True:
            try:
                received, attempt_seconds = self._attempt(payload)
            except (ChannelDropError, RpcTimeoutError, RpcCorruptPayloadError) as exc:
                elapsed_total += exc.elapsed_seconds
                reason = self._classify(exc)
                budget = self.retry.max_attempts if self.retry is not None else 1
                if attempt >= budget:
                    self.stats.failed_messages += 1
                    if OBS_STATE.enabled:
                        record_rpc_failure(reason)
                    if self.retry is None:
                        raise
                    raise RpcExhaustedError(
                        f"message {message_key} failed after {attempt} "
                        f"attempts (last: {reason})"
                    ) from exc
                backoff = self.retry.backoff_seconds(attempt, key=message_key)
                self.stats.retries += 1
                self.stats.backoff_seconds += backoff
                elapsed_total += backoff
                if OBS_STATE.enabled:
                    record_rpc_retry(reason)
                attempt += 1
                continue
            elapsed_total += attempt_seconds
            if attempt > 1:
                self.stats.recovered_messages += 1
                if OBS_STATE.enabled:
                    record_recovery("rpc", elapsed_total)
            return received, elapsed_total

    def _classify(self, exc: RpcError) -> str:
        if isinstance(exc, ChannelDropError):
            self.stats.drops += 1
            return "drop"
        if isinstance(exc, RpcTimeoutError):
            self.stats.timeouts += 1
            return "timeout"
        self.stats.corrupt_payloads += 1
        return "corrupt"

    def _attempt(self, payload: bytes) -> Tuple[bytes, float]:
        """One delivery attempt; raises the typed retryable errors."""
        elapsed = self.propagation_seconds
        compress_seconds = decompress_seconds = 0.0
        if self.compress:
            result = self.codec.compress(payload, self.level)
            self.stats.compress_counters.merge(result.counters)
            compress_seconds = self.machine.compress_seconds(
                self.codec.name, result.counters
            )
            self.stats.compress_seconds += compress_seconds
            elapsed += compress_seconds
            wire = result.data
        else:
            wire = payload
        wire, elapsed = self._transmit_effects(wire, elapsed)
        self.stats.wire_bytes += len(wire)
        transfer = len(wire) / self.bandwidth
        self.stats.transfer_seconds += transfer
        elapsed += transfer
        self._check_timeout(elapsed)
        if self.compress:
            try:
                restored = self.codec.decompress(wire)
            except CorruptDataError as exc:
                raise RpcCorruptPayloadError(str(exc), elapsed) from exc
            self.stats.decompress_counters.merge(restored.counters)
            decompress_seconds = self.machine.decompress_seconds(
                self.codec.name, restored.counters
            )
            self.stats.decompress_seconds += decompress_seconds
            elapsed += decompress_seconds
            self._check_timeout(elapsed)
            received = restored.data
        else:
            received = wire
        if OBS_STATE.enabled:
            record_rpc_message(
                self.codec.name if self.compress else "none",
                raw_bytes=len(payload),
                wire_bytes=len(wire),
                compress_seconds=compress_seconds,
                transfer_seconds=transfer,
                decompress_seconds=decompress_seconds,
            )
        return received, elapsed

    def _transmit_effects(
        self, wire: bytes, elapsed: float
    ) -> Tuple[bytes, float]:
        """Apply injected wire faults (no-op without an injector)."""
        if self.injector is None:
            return wire, elapsed
        effects = self.injector.on_wire(self.fault_site, wire)
        if effects.extra_seconds:
            elapsed += effects.extra_seconds
            self._check_timeout(elapsed)
        if effects.dropped:
            # a drop is only *observed* at the deadline (or, with no
            # timeout, after the modeled send cost already spent)
            waited = (
                self.timeout_seconds
                if self.timeout_seconds is not None
                else elapsed
            )
            raise ChannelDropError(elapsed_seconds=max(waited, elapsed))
        return effects.payload, elapsed

    def _check_timeout(self, elapsed: float) -> None:
        if self.timeout_seconds is not None and elapsed > self.timeout_seconds:
            raise RpcTimeoutError(
                f"attempt exceeded {self.timeout_seconds * 1e3:.1f} ms "
                f"deadline ({elapsed * 1e3:.1f} ms modeled)",
                self.timeout_seconds,
            )
