"""Consistent-hash ring with virtual nodes and per-tenant replica sets.

Tenant-to-shard routing is the cluster's one load-bearing data
structure, and it has to satisfy three invariants the property suite
(``tests/cluster/test_ring_properties.py``) pins down:

- **balance** — with enough virtual nodes per physical node, the
  max/mean keys-per-node ratio stays bounded for any seeded tenant set;
- **minimal movement** — adding a node moves only keys the new node now
  owns; removing a node moves only keys that node owned. Nothing else
  re-routes, which is what makes autoscaling cheap;
- **replica disjointness** — a key's replica set is ``replicas``
  *distinct* nodes (or every node, when the ring is smaller than that).

Hashing uses :mod:`hashlib` (blake2b, 8-byte digests), never Python's
built-in ``hash`` — the builtin is salted per process, which would make
routing (and with it every scorecard) unreproducible across runs.
Points sort by ``(hash, node, vnode)`` so even a digest collision breaks
ties deterministically.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

#: virtual nodes per physical node; 64 keeps max/mean load under ~1.7
#: for the fleet sizes the simulator runs (tens of nodes)
DEFAULT_VNODES = 64
#: replica-set size: primary plus one standby
DEFAULT_REPLICAS = 2


def stable_hash(key: str) -> int:
    """64-bit deterministic hash (process- and platform-independent)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """The classic consistent-hash ring over named nodes."""

    def __init__(
        self,
        nodes: Sequence[str] = (),
        vnodes: int = DEFAULT_VNODES,
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self.vnodes = vnodes
        self.replicas = replicas
        #: sorted ring points: (hash, node, vnode-index)
        self._points: List[Tuple[int, str, int]] = []
        self._nodes: Dict[str, bool] = {}
        for node in nodes:
            self.add_node(node)

    # -- membership ----------------------------------------------------------

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def _node_points(self, node: str) -> List[Tuple[int, str, int]]:
        return [
            (stable_hash(f"{node}#{vnode}"), node, vnode)
            for vnode in range(self.vnodes)
        ]

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes[node] = True
        for point in self._node_points(node):
            bisect.insort(self._points, point)

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise ValueError(f"node {node!r} not on the ring")
        del self._nodes[node]
        self._points = [p for p in self._points if p[1] != node]

    # -- lookup --------------------------------------------------------------

    def primary(self, key: str) -> str:
        """The key's owner: the first ring point at or after its hash."""
        owners = self.replica_set(key, 1)
        if not owners:
            raise ValueError("ring has no nodes")
        return owners[0]

    def replica_set(self, key: str, count: int = 0) -> List[str]:
        """The first ``count`` distinct nodes clockwise from the key.

        ``count`` defaults to the ring's ``replicas`` setting and is
        clipped to the node population, so a two-node ring with
        ``replicas=3`` yields both nodes rather than erroring, and an
        empty ring yields an empty list (only ``primary`` raises).
        """
        if not self._points:
            return []
        wanted = min(count if count > 0 else self.replicas, len(self._nodes))
        start = bisect.bisect_left(self._points, (stable_hash(key), "", -1))
        replicas: List[str] = []
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in replicas:
                replicas.append(node)
                if len(replicas) == wanted:
                    break
        return replicas

    def assignments(self, keys: Sequence[str]) -> Dict[str, str]:
        """Primary owner per key — the before/after snapshot that the
        minimal-movement property (and the rebalancer's accounting)
        compares."""
        return {key: self.primary(key) for key in keys}
