"""Bloom filters for SST files.

RocksDB consults per-file bloom filters before touching any block, so point
reads for absent keys usually cost no decompression at all. Same here:
k hash probes over a bit array, with xxh32 under different seeds standing
in for the double-hashing scheme.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.codecs.checksum import xxh32


class BloomFilter:
    """Fixed-size bloom filter sized by bits-per-key."""

    def __init__(self, capacity: int, bits_per_key: int = 10) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if bits_per_key <= 0:
            raise ValueError("bits_per_key must be positive")
        self.bit_count = max(64, capacity * bits_per_key)
        # optimal probe count ~= bits_per_key * ln 2
        self.probes = max(1, min(16, round(bits_per_key * math.log(2))))
        self._bits = bytearray((self.bit_count + 7) // 8)

    def _positions(self, key: bytes) -> Iterable[int]:
        # Kirsch-Mitzenmacher double hashing: h1 + i*h2.
        h1 = xxh32(key, seed=0x9747B28C)
        h2 = xxh32(key, seed=0x85EBCA6B) | 1
        for i in range(self.probes):
            yield (h1 + i * h2) % self.bit_count

    def add(self, key: bytes) -> None:
        for position in self._positions(key):
            self._bits[position >> 3] |= 1 << (position & 7)

    def might_contain(self, key: bytes) -> bool:
        """False means definitely absent; True means probably present."""
        for position in self._positions(key):
            if not self._bits[position >> 3] & (1 << (position & 7)):
                return False
        return True

    @property
    def size_bytes(self) -> int:
        return len(self._bits)
