"""FaultyCodec / FaultyChannel / scrub_* wrappers."""

import pytest

from repro.codecs import get_codec
from repro.codecs.base import CorruptDataError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FaultyChannel,
    FaultyCodec,
    InjectedCodecError,
    scrub_cache,
    scrub_sstable,
)
from repro.resilience import SimClock
from repro.services.cache.client import CacheClient
from repro.services.cache.server import CacheServer
from repro.services.kvstore.sst import SSTable
from repro.services.rpc import Channel


def _injector(*specs, seed=0):
    return FaultInjector(FaultPlan("test", tuple(specs)), seed=seed)


class TestFaultyCodec:
    def test_transparent_without_faults(self):
        codec = FaultyCodec(get_codec("zstd"), _injector())
        data = b"transparent payload " * 50
        assert codec.decompress(codec.compress(data, 3).data).data == data
        assert codec.injected_failures == 0

    def test_fail_raises_injected_error(self):
        codec = FaultyCodec(
            get_codec("zstd"), _injector(FaultSpec("codec", "fail", 1.0))
        )
        with pytest.raises(InjectedCodecError):
            codec.compress(b"data " * 20, 1)
        assert codec.injected_failures == 1

    def test_slow_advances_clock(self):
        clock = SimClock()
        codec = FaultyCodec(
            get_codec("zstd"),
            _injector(FaultSpec("codec", "slow", 1.0, magnitude=0.5)),
            clock=clock,
        )
        codec.compress(b"data " * 20, 1)
        assert clock.now() == pytest.approx(0.5)
        assert codec.injected_slow_seconds == pytest.approx(0.5)

    def test_decompress_corruption_is_per_call(self):
        """Corruption hits one call's view; the payload at rest survives."""
        inner = get_codec("zstd")
        blob = inner.compress(b"precious data " * 64, 3).data
        codec = FaultyCodec(
            inner,
            _injector(
                FaultSpec("codec.zstd.decompress", "bit_flip", 1.0, magnitude=8)
            ),
        )
        with pytest.raises(CorruptDataError):
            codec.decompress(blob)
        # the stored bytes were never touched
        assert inner.decompress(blob).data == b"precious data " * 64

    def test_site_targets_only_named_direction(self):
        codec = FaultyCodec(
            get_codec("zstd"),
            _injector(FaultSpec("codec.zstd.decompress", "fail", 1.0)),
        )
        result = codec.compress(b"data " * 20, 1)  # compress unaffected
        with pytest.raises(InjectedCodecError):
            codec.decompress(result.data)

    def test_wraps_codec_metadata(self):
        inner = get_codec("lz4")
        codec = FaultyCodec(inner, _injector())
        assert codec.name == inner.name
        assert codec.min_level == inner.min_level
        assert codec.supports_dictionaries() == inner.supports_dictionaries()


class TestFaultyChannel:
    def test_attaches_injector_and_delegates(self):
        channel = Channel(codec=get_codec("zstd"))
        injector = _injector()
        faulty = FaultyChannel(channel, injector)
        assert channel.injector is injector
        payload = b"over the wire " * 30
        received, elapsed = faulty.send(payload)
        assert received == payload
        assert elapsed > 0
        assert faulty.stats.messages == 1  # attribute delegation


class TestScrubSstable:
    def _table(self):
        entries = [
            (b"key-%04d" % i, b"value %04d " % i * 8) for i in range(200)
        ]
        return SSTable.build(entries, codec=get_codec("zstd"), block_size=1024)

    def test_certain_corruption_damages_every_block(self):
        table = self._table()
        damaged = scrub_sstable(
            table,
            _injector(FaultSpec("kvstore.storage", "bit_flip", 1.0, magnitude=4)),
        )
        assert damaged == list(range(table.block_count))

    def test_damaged_blocks_quarantine_on_read(self):
        table = self._table()
        scrub_sstable(
            table,
            _injector(FaultSpec("kvstore.storage", "bit_flip", 1.0, magnitude=4)),
        )
        found, value, __ = table.get(b"key-0000")
        assert not found and value is None  # miss, not an exception
        assert table.quarantined_count >= 1
        assert table.stats.quarantined[0].source == "kvstore.sst"

    def test_replace_block_clears_quarantine(self):
        table = self._table()
        pristine = table.block_bytes(0)
        scrub_sstable(
            table,
            _injector(FaultSpec("kvstore.storage", "bit_flip", 1.0, magnitude=4)),
        )
        table.get(b"key-0000")  # quarantines block 0
        assert table.quarantined_count >= 1
        table.replace_block(0, pristine)
        found, value, __ = table.get(b"key-0000")
        assert found and value == b"value 0000 " * 8

    def test_no_plan_no_damage(self):
        table = self._table()
        assert scrub_sstable(table, _injector()) == []
        found, value, __ = table.get(b"key-0007")
        assert found and value == b"value 0007 " * 8


class TestScrubCache:
    def test_scrubbed_entry_quarantined_on_get(self):
        server = CacheServer(codec=get_codec("zstd"), min_compress_size=16)
        client = CacheClient(server)
        value = b"cache value with structure " * 16
        server.set(b"k1", "t", value)
        damaged = scrub_cache(
            server,
            _injector(FaultSpec("cache.payload", "bit_flip", 1.0, magnitude=8)),
        )
        assert damaged == [b"k1"]
        assert client.get(b"k1") is None  # miss, not an exception
        assert server.stats.corrupt_evictions == 1
        assert b"k1" not in server
        # recovery: re-install from the source of truth
        server.set(b"k1", "t", value)
        assert client.get(b"k1") == value
