"""Fleet registry, profiler, and characterization tests."""

import pytest

from repro.fleet import (
    DEFAULT_FLEET,
    SamplingProfiler,
    ServiceProfile,
    characterize,
    fleet_by_category,
)
from repro.fleet.callstack import (
    build_stack,
    classify_stack,
    is_compression_frame,
    parse_frame,
)


class TestProfiles:
    def test_registry_covers_six_categories(self):
        categories = {p.category for p in DEFAULT_FLEET}
        for expected in (
            "Ads", "Cache", "Data Warehouse", "Feed", "Key-Value Store", "Web",
        ):
            assert expected in categories

    def test_mixes_validated(self):
        with pytest.raises(ValueError):
            ServiceProfile(
                "bad", "Web", 0.1, 0.5,
                {"zstd": 0.5},  # does not sum to 1
                0.5, {1: 1.0}, (1024, 1.0),
            )

    def test_level_mix_validated(self):
        with pytest.raises(ValueError):
            ServiceProfile(
                "bad", "Web", 0.1, 0.5, {"zstd": 1.0}, 0.5,
                {1: 0.5, 3: 0.2}, (1024, 1.0),
            )

    def test_fleet_by_category_partitions(self):
        grouped = fleet_by_category()
        total = sum(len(v) for v in grouped.values())
        assert total == len(DEFAULT_FLEET)


class TestCallstacks:
    def test_compression_stack_has_api_frame(self):
        frames = build_stack("svc", "zstd", "compress", "match_finding")
        assert any(is_compression_frame(f) for f in frames)
        assert classify_stack(frames) == ("zstd", "compress")

    def test_non_compression_stack(self):
        frames = build_stack("svc")
        assert classify_stack(frames) is None

    def test_parse_frame_for_each_algorithm(self):
        assert parse_frame("ZSTD_decompress") == ("zstd", "decompress")
        assert parse_frame("LZ4_compress_default") == ("lz4", "compress")
        assert parse_frame("inflate") == ("zlib", "decompress")
        assert parse_frame("app::handle_request") is None


class TestProfilerAndCharacterization:
    @pytest.fixture(scope="class")
    def characterization(self):
        profiler = SamplingProfiler(samples_per_day=200_000, seed=13)
        return characterize(profiler.run(days=30))

    def test_total_compression_share_near_paper(self, characterization):
        """Section III-B: 4.6% of fleet cycles in (de)compression."""
        assert 0.040 <= characterization.compression_share <= 0.052

    def test_algorithm_split_near_paper(self, characterization):
        """zstd 3.9% / lz4 0.4% / zlib 0.3%."""
        shares = characterization.algorithm_shares
        assert shares["zstd"] == pytest.approx(0.039, abs=0.004)
        assert shares["lz4"] == pytest.approx(0.004, abs=0.002)
        assert shares["zlib"] == pytest.approx(0.003, abs=0.002)

    def test_zstd_dominates(self, characterization):
        shares = characterization.algorithm_shares
        assert shares["zstd"] > 5 * shares["lz4"]
        assert shares["zstd"] > 5 * shares["zlib"]

    def test_category_range_matches_fig2(self, characterization):
        """Fig. 2: category shares span ~1.8% to ~21.2%."""
        shares = {
            c: s
            for c, s in characterization.category_zstd_share.items()
            if c != "Infra"
        }
        assert max(shares.values()) == pytest.approx(0.212, abs=0.025)
        assert 0.012 <= min(shares.values()) <= 0.025

    def test_data_warehouse_is_heaviest(self, characterization):
        shares = characterization.category_zstd_share
        assert max(shares, key=shares.get) == "Data Warehouse"

    def test_decompression_dominates_most_categories(self, characterization):
        """Fig. 3: read-heavy services decompress more than they compress."""
        decompress_heavy = sum(
            1
            for c, (comp, decomp) in characterization.category_split.items()
            if decomp > comp and c != "Infra"
        )
        assert decompress_heavy >= 3

    def test_low_levels_carry_majority_of_cycles(self, characterization):
        """Fig. 4: levels 1-4 take more than half the level cycles."""
        assert characterization.low_level_share(4) > 0.5

    def test_level_usage_sums_to_one(self, characterization):
        assert sum(characterization.level_usage.values()) == pytest.approx(1.0)

    def test_block_sizes_span_orders_of_magnitude(self, characterization):
        """Fig. 5: sub-KB cache items to 256KB warehouse blocks."""
        medians = {}
        for service, sizes in characterization.block_sizes.items():
            if sizes:
                medians[service] = sorted(sizes)[len(sizes) // 2]
        if len(medians) >= 2:
            assert max(medians.values()) / max(1, min(medians.values())) > 50

    def test_deterministic_given_seed(self):
        a = characterize(SamplingProfiler(samples_per_day=50_000, seed=3).run(5))
        b = characterize(SamplingProfiler(samples_per_day=50_000, seed=3).run(5))
        assert a.algorithm_shares == b.algorithm_shares

    def test_feed_prefers_low_levels(self):
        """Section III-E: Feed's low-level share can exceed 80%."""
        feed_only = [p for p in DEFAULT_FLEET if p.category == "Feed"]
        profiler = SamplingProfiler(fleet=feed_only, samples_per_day=100_000)
        result = characterize(profiler.run(days=5))
        assert result.low_level_share(4) > 0.8

    def test_per_category_level_usage(self, characterization):
        """Fig. 4's per-category view: Feed > 80% at levels 1-4, while the
        warehouse (level-7 ingestion) sits far lower."""
        feed = characterization.category_low_level_share("Feed")
        warehouse = characterization.category_low_level_share("Data Warehouse")
        assert feed > 0.8
        assert warehouse < feed
        for usage in characterization.category_level_usage.values():
            assert sum(usage.values()) == pytest.approx(1.0)

    def test_unknown_category_level_share_zero(self, characterization):
        assert characterization.category_low_level_share("Nonexistent") == 0.0
