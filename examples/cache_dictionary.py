"""CACHE1 scenario: per-item compression with per-type dictionaries in a
memcached-style cache (paper Section IV-C, Figs 8-11).

Run:  python examples/cache_dictionary.py
"""

from repro.corpus import CACHE1_TYPES, generate_cache_items
from repro.services import CacheClient, CacheServer


def _run_cache(use_dictionaries: bool):
    server = CacheServer(level=3, use_dictionaries=use_dictionaries)
    items = generate_cache_items(CACHE1_TYPES, 400, seed=11)
    by_type = {}
    for type_name, payload in items:
        by_type.setdefault(type_name, []).append(payload)
    if use_dictionaries:
        for type_name, payloads in by_type.items():
            dictionary = server.train_type_dictionary(
                type_name, payloads[: len(payloads) // 3]
            )
            print(f"    trained {type_name}: {len(dictionary)} bytes")
    client = CacheClient(server)
    for index, (type_name, payload) in enumerate(items):
        server.set(b"item:%d" % index, type_name, payload)
    for index, (__, payload) in enumerate(items):
        assert client.get(b"item:%d" % index) == payload
    return server, client


def main() -> None:
    print("plain per-item compression:")
    plain_server, plain_client = _run_cache(use_dictionaries=False)
    print(f"  memory ratio: {plain_server.stats.memory_ratio:.2f}x")

    print("\nwith per-type dictionaries:")
    dict_server, dict_client = _run_cache(use_dictionaries=True)
    print(f"  memory ratio: {dict_server.stats.memory_ratio:.2f}x")

    improvement = (
        dict_server.stats.memory_ratio / plain_server.stats.memory_ratio
    )
    print(f"\ndictionaries improve the resident-memory ratio {improvement:.2f}x")

    # The CPU-placement property the paper highlights: the server ships
    # compressed bytes; all decompression runs on the clients.
    print(
        f"\nnetwork bytes served (compressed): "
        f"{dict_server.stats.network_bytes_served:,} "
        f"of {dict_server.stats.raw_bytes:,} raw"
    )
    print(
        f"client-side decompression time (modeled): "
        f"{dict_client.stats.decompress_seconds * 1e3:.2f} ms across "
        f"{dict_client.stats.gets} gets"
    )


if __name__ == "__main__":
    main()
