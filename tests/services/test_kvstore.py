"""LSM key-value store tests: correctness, compaction, block trade-offs."""

import pytest

from repro.codecs import get_codec
from repro.corpus import generate_kv_records
from repro.services import KVStore
from repro.services.kvstore import MemTable, SSTable


class TestMemTable:
    def test_put_get(self):
        table = MemTable()
        table.put(b"k", b"v")
        assert table.get(b"k") == (True, b"v")

    def test_missing_key(self):
        assert MemTable().get(b"nope") == (False, None)

    def test_tombstone_is_found_as_none(self):
        table = MemTable()
        table.put(b"k", b"v")
        table.put(b"k", None)
        assert table.get(b"k") == (True, None)

    def test_overwrite_updates_size(self):
        table = MemTable()
        table.put(b"k", b"v" * 100)
        size_before = table.size_bytes
        table.put(b"k", b"v")
        assert table.size_bytes < size_before

    def test_is_full(self):
        table = MemTable(capacity_bytes=64)
        table.put(b"key", b"x" * 100)
        assert table.is_full()

    def test_sorted_entries(self):
        table = MemTable()
        for key in (b"c", b"a", b"b"):
            table.put(key, key)
        assert [k for k, __ in table.sorted_entries()] == [b"a", b"b", b"c"]


class TestSSTable:
    @pytest.fixture(scope="class")
    def entries(self):
        return [(k, v) for k, v in generate_kv_records(400, seed=1)]

    def test_build_and_point_reads(self, entries):
        table = SSTable.build(entries, level=1, block_size=2048)
        for key, value in entries[::37]:
            found, got, decode_seconds = table.get(key)
            assert found and got == value
            assert decode_seconds > 0

    def test_missing_key_not_found(self, entries):
        table = SSTable.build(entries, level=1, block_size=2048)
        found, value, __ = table.get(b"zzzz/not/there")
        assert not found and value is None

    def test_key_before_first_block(self, entries):
        table = SSTable.build(entries, level=1, block_size=2048)
        found, __, decode_seconds = table.get(b"aaaa")
        assert not found
        assert decode_seconds == 0.0  # no block touched

    def test_unsorted_entries_rejected(self):
        with pytest.raises(ValueError):
            SSTable.build([(b"b", b"1"), (b"a", b"2")])

    def test_scan_returns_everything_in_order(self, entries):
        table = SSTable.build(entries, level=1, block_size=1024)
        scanned = list(table.scan())
        assert scanned == entries

    def test_blocks_respect_target_size(self, entries):
        small = SSTable.build(entries, level=1, block_size=1024)
        large = SSTable.build(entries, level=1, block_size=16384)
        assert small.block_count > large.block_count

    def test_larger_blocks_compress_better(self, entries):
        """Fig. 13's ratio trend: bigger blocks -> higher ratio."""
        small = SSTable.build(entries, level=1, block_size=1024)
        large = SSTable.build(entries, level=1, block_size=16384)
        assert large.stored_bytes < small.stored_bytes

    def test_larger_blocks_cost_more_per_read(self, entries):
        """Fig. 13's latency trend: bigger blocks -> longer decode per read."""
        small = SSTable.build(entries, level=1, block_size=1024)
        large = SSTable.build(entries, level=1, block_size=32768)
        key = entries[200][0]
        __, __, small_decode = small.get(key)
        __, __, large_decode = large.get(key)
        assert large_decode > small_decode


class TestKVStore:
    def test_put_get_through_memtable(self):
        store = KVStore()
        store.put(b"alpha", b"1")
        assert store.get(b"alpha") == b"1"

    def test_get_after_flush(self):
        store = KVStore(memtable_bytes=1 << 14)
        records = generate_kv_records(300, seed=2)
        for key, value in records:
            store.put(key, value)
        store.flush()
        assert store.sst_count >= 1
        for key, value in records[::29]:
            assert store.get(key) == value

    def test_delete_shadows_older_value(self):
        store = KVStore(memtable_bytes=1 << 12)
        store.put(b"k", b"v")
        store.flush()
        store.delete(b"k")
        store.flush()
        assert store.get(b"k") is None

    def test_newest_value_wins_across_ssts(self):
        store = KVStore(memtable_bytes=1 << 12)
        store.put(b"key", b"old")
        store.flush()
        store.put(b"key", b"new")
        store.flush()
        assert store.get(b"key") == b"new"

    def test_compaction_bounds_sst_count(self):
        store = KVStore(memtable_bytes=1 << 11, level0_table_limit=2)
        for key, value in generate_kv_records(1500, seed=3):
            store.put(key, value)
        store.flush()
        assert store.stats.compactions > 0
        assert store.sst_count <= 6

    def test_compaction_preserves_data(self):
        store = KVStore(memtable_bytes=1 << 11, level0_table_limit=2)
        records = generate_kv_records(800, seed=4)
        for key, value in records:
            store.put(key, value)
        store.flush()
        latest = {}
        for key, value in records:
            latest[key] = value
        for key, value in list(latest.items())[::23]:
            assert store.get(key) == value

    def test_storage_ratio_above_one(self):
        store = KVStore(memtable_bytes=1 << 13)
        for key, value in generate_kv_records(400, seed=5):
            store.put(key, value)
        store.flush()
        assert store.stats.storage_ratio > 1.5

    def test_read_latency_recorded(self):
        store = KVStore(memtable_bytes=1 << 12)
        records = generate_kv_records(200, seed=6)
        for key, value in records:
            store.put(key, value)
        store.flush()
        store.get(records[50][0])
        assert store.stats.reads == 1
        assert store.stats.mean_read_decode_seconds > 0

    def test_custom_codec(self):
        store = KVStore(codec=get_codec("lz4"), compression_level=1)
        for key, value in generate_kv_records(150, seed=7):
            store.put(key, value)
        store.flush()
        records = generate_kv_records(150, seed=7)
        assert store.get(records[10][0]) == records[10][1]

    def test_decompress_counter_aggregation(self):
        store = KVStore(memtable_bytes=1 << 12)
        records = generate_kv_records(300, seed=8)
        for key, value in records:
            store.put(key, value)
        store.flush()
        for key, __ in records[::17]:
            store.get(key)
        total = store.total_decompress_counters()
        assert total.bytes_out > 0


class TestLevelSizing:
    """The geometric level budget: ``level_size_multiplier`` must govern
    compaction cadence (it used to be parsed and ignored)."""

    def _run(self, multiplier):
        store = KVStore(
            memtable_bytes=1 << 11,
            level0_table_limit=2,
            level_size_multiplier=multiplier,
        )
        for key, value in generate_kv_records(1500, seed=3):
            store.put(key, value)
        store.flush()
        return store

    def test_budget_is_geometric(self):
        store = KVStore(
            memtable_bytes=1 << 11,
            level0_table_limit=2,
            level_size_multiplier=4,
        )
        assert store.level_budget_bytes(1) == (1 << 11) * 2
        assert store.level_budget_bytes(2) == (1 << 11) * 2 * 4
        assert store.level_budget_bytes(3) == (1 << 11) * 2 * 16

    def test_multiplier_changes_compaction_cadence(self):
        # a tight multiplier overflows deep levels quickly and compacts
        # often; a loose one lets levels grow and compacts rarely
        tight = self._run(multiplier=2)
        loose = self._run(multiplier=16)
        assert tight.stats.compactions > loose.stats.compactions
        # both still bound the table count
        assert tight.sst_count <= 6
        assert loose.sst_count <= 6

    def test_deep_level_overflow_cascades(self):
        store = self._run(multiplier=2)
        # with multiplier 2 the data outgrows levels 1..k in turn, so
        # more than one level beyond L0 must have been populated
        assert len(store.levels) > 2


class TestReadDecodeHistogram:
    """Satellite: ``read_decode_seconds`` is a bounded histogram whose
    mean preserves the old all-reads list-mean semantics."""

    def test_mean_counts_zero_latency_reads(self):
        store = KVStore(memtable_bytes=1 << 12)
        records = generate_kv_records(200, seed=6)
        for key, value in records:
            store.put(key, value)
        store.flush()
        store.get(records[50][0])       # SST hit: decode > 0
        nonzero_mean = store.stats.mean_read_decode_seconds
        store.put(b"hot", b"in memtable")
        store.get(b"hot")               # memtable hit: decode == 0
        store.get(b"missing-key")       # miss: decode == 0
        # zeros must dilute the mean exactly like the old list did
        assert store.stats.read_decode_seconds.count() == 3
        diluted = store.stats.mean_read_decode_seconds
        assert diluted == pytest.approx(nonzero_mean / 3, rel=1e-6)

    def test_last_read_latency_tracked(self):
        store = KVStore(memtable_bytes=1 << 12)
        records = generate_kv_records(200, seed=6)
        for key, value in records:
            store.put(key, value)
        store.flush()
        store.get(records[50][0])
        assert store.stats.last_read_decode_seconds > 0
        store.get(b"missing-key")
        assert store.stats.last_read_decode_seconds == 0.0

    def test_memory_stays_bounded(self):
        # the old implementation appended one float per read; the
        # histogram stays at a fixed bucket count no matter the volume
        store = KVStore(memtable_bytes=1 << 14)
        store.put(b"k", b"v")
        for __ in range(5000):
            store.get(b"k")
        hist = store.stats.read_decode_seconds
        assert hist.count() == 5000
        (series,) = hist._series.values()
        assert len(series.buckets) < 100
