"""Fig. 9: CACHE2 (social-graph store) item size distribution.

Paper shape: like CACHE1 but skewed even smaller (graph edges and
association counters).
"""

from __future__ import annotations

from repro.analysis import format_series, log2_histogram, summarize_sizes
from repro.corpus import CACHE1_TYPES, CACHE2_TYPES, generate_cache_items


def test_fig09_cache2_sizes(benchmark, figure_output):
    items = generate_cache_items(CACHE2_TYPES, 2000, seed=90)
    sizes = [len(payload) for __, payload in items]
    histogram = log2_histogram(sizes)
    summary = summarize_sizes(sizes)
    text = format_series(
        "CACHE2 item size histogram",
        [(bucket, fraction * 100) for bucket, fraction in histogram],
        value_format="{:.1f}%",
    )
    text += (
        f"\np50={summary['p50']:.0f}B p99={summary['p99']:.0f}B "
        f"below 1KB: {summary['below_1kb'] * 100:.1f}%"
    )
    figure_output("fig09_cache2_sizes", text)

    assert summary["below_1kb"] > 0.6
    # CACHE2 items run smaller than CACHE1's.
    cache1 = generate_cache_items(CACHE1_TYPES, 2000, seed=90)
    cache1_p50 = summarize_sizes([len(p) for __, p in cache1])["p50"]
    assert summary["p50"] < cache1_p50

    benchmark(lambda: log2_histogram(sizes))
