"""DEFLATE block encoder (RFC 1951): stored, fixed, and dynamic blocks."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.codecs.base import StageCounters
from repro.codecs.entropy.bitio import BitWriter
from repro.codecs.entropy.huffman import HuffmanEncoder, build_code_lengths
from repro.codecs.lz77 import Token
from repro.codecs.deflate import tables as dtables

_BTYPE_STORED = 0
_BTYPE_FIXED = 1
_BTYPE_DYNAMIC = 2

#: (lit_or_len_code, len_extra, len_extra_bits, dist_code, dist_extra, dist_extra_bits)
Symbol = Tuple[int, int, int, int, int, int]


def _tokens_to_symbols(data: bytes, start: int, tokens: List[Token]) -> List[Symbol]:
    """Flatten a parse into DEFLATE symbols (literals use dist_code == -1)."""
    symbols: List[Symbol] = []
    position = start
    for token in tokens:
        for byte in data[position : position + token.literal_length]:
            symbols.append((byte, 0, 0, -1, 0, 0))
        position += token.literal_length
        if token.match_length:
            lcode = dtables.length_code(token.match_length)
            lbase, lbits = dtables.LENGTH_TABLE[lcode - 257]
            dcode = dtables.distance_code(token.offset)
            dbase, dbits = dtables.DISTANCE_TABLE[dcode]
            symbols.append(
                (lcode, token.match_length - lbase, lbits, dcode, token.offset - dbase, dbits)
            )
            position += token.match_length
    symbols.append((dtables.END_OF_BLOCK, 0, 0, -1, 0, 0))
    return symbols


def _histograms(symbols: Sequence[Symbol]) -> Tuple[List[int], List[int]]:
    lit_freq = [0] * 286
    dist_freq = [0] * 30
    for code, __, __, dcode, __, __ in symbols:
        lit_freq[code] += 1
        if dcode >= 0:
            dist_freq[dcode] += 1
    return lit_freq, dist_freq


def _rle_code_lengths(lengths: Sequence[int]) -> List[Tuple[int, int, int]]:
    """Run-length encode code lengths with RFC 1951 symbols 16/17/18.

    Returns ``(symbol, extra_value, extra_bits)`` triples.
    """
    out: List[Tuple[int, int, int]] = []
    index = 0
    n = len(lengths)
    while index < n:
        value = lengths[index]
        run = 1
        while index + run < n and lengths[index + run] == value:
            run += 1
        index += run
        if value == 0:
            while run >= 11:
                repeat = min(run, 138)
                out.append((18, repeat - 11, 7))
                run -= repeat
            if run >= 3:
                out.append((17, run - 3, 3))
                run = 0
            out.extend((0, 0, 0) for _ in range(run))
        else:
            out.append((value, 0, 0))
            run -= 1
            while run >= 3:
                repeat = min(run, 6)
                out.append((16, repeat - 3, 2))
                run -= repeat
            out.extend((value, 0, 0) for _ in range(run))
    return out


def _write_symbols(
    writer: BitWriter,
    symbols: Sequence[Symbol],
    lit_encoder: HuffmanEncoder,
    dist_encoder: HuffmanEncoder,
) -> None:
    for code, len_extra, len_bits, dcode, dist_extra, dist_bits in symbols:
        lit_encoder.encode_symbol(writer, code)
        if len_bits:
            writer.write(len_extra, len_bits)
        if dcode >= 0:
            dist_encoder.encode_symbol(writer, dcode)
            if dist_bits:
                writer.write(dist_extra, dist_bits)


def _dynamic_header_plan(
    lit_lengths: List[int], dist_lengths: List[int]
) -> Tuple[int, int, List[Tuple[int, int, int]], List[int], int]:
    """Plan a dynamic block header.

    Returns (hlit, hdist, rle_items, cl_lengths, header_bits).
    """
    hlit = 286
    while hlit > 257 and lit_lengths[hlit - 1] == 0:
        hlit -= 1
    hdist = 30
    while hdist > 1 and dist_lengths[hdist - 1] == 0:
        hdist -= 1
    rle_items = _rle_code_lengths(lit_lengths[:hlit] + dist_lengths[:hdist])
    cl_freq = [0] * 19
    for symbol, __, __ in rle_items:
        cl_freq[symbol] += 1
    cl_lengths = build_code_lengths(cl_freq, max_bits=7)
    hclen = 19
    while hclen > 4 and cl_lengths[dtables.CODE_LENGTH_ORDER[hclen - 1]] == 0:
        hclen -= 1
    header_bits = 5 + 5 + 4 + 3 * hclen + sum(
        cl_lengths[symbol] + bits for symbol, __, bits in rle_items
    )
    return hlit, hdist, rle_items, cl_lengths, header_bits


def encode_stream(
    data: bytes,
    start: int,
    tokens: List[Token],
    counters: StageCounters,
    level: int,
) -> bytes:
    """Produce a complete DEFLATE stream for ``data[start:]``.

    Picks the cheapest of stored / fixed-Huffman / dynamic-Huffman encoding,
    like the reference implementation's opt_len/static_len comparison.
    """
    raw = data[start:]
    if level == 0:
        return _stored_stream(raw, counters)

    symbols = _tokens_to_symbols(data, start, tokens)
    lit_freq, dist_freq = _histograms(symbols)
    if not any(dist_freq):
        dist_freq[0] = 1  # give the distance tree one code, as zlib does

    dyn_lit_lengths = build_code_lengths(lit_freq, max_bits=15)
    dyn_dist_lengths = build_code_lengths(dist_freq, max_bits=15)
    hlit, hdist, rle_items, cl_lengths, header_bits = _dynamic_header_plan(
        dyn_lit_lengths, dyn_dist_lengths
    )
    counters.table_builds += 2

    fixed_lit = dtables.fixed_literal_lengths()
    fixed_dist = dtables.fixed_distance_lengths()

    def body_bits(lit_lengths: Sequence[int], dist_lengths: Sequence[int]) -> int:
        total = 0
        for code, __, len_bits, dcode, __, dist_bits in symbols:
            total += lit_lengths[code] + len_bits
            if dcode >= 0:
                total += dist_lengths[dcode] + dist_bits
        return total

    dynamic_bits = 3 + header_bits + body_bits(dyn_lit_lengths, dyn_dist_lengths)
    fixed_bits = 3 + body_bits(fixed_lit, fixed_dist)
    stored_bits = 8 * len(raw) + 40 * (1 + len(raw) // 65535) + 8

    writer = BitWriter()
    if stored_bits < min(dynamic_bits, fixed_bits):
        return _stored_stream(raw, counters)
    if fixed_bits <= dynamic_bits:
        writer.write(1, 1)  # BFINAL
        writer.write(_BTYPE_FIXED, 2)
        _write_symbols(writer, symbols, HuffmanEncoder(fixed_lit), HuffmanEncoder(fixed_dist))
        counters.entropy_bits += fixed_bits
    else:
        writer.write(1, 1)
        writer.write(_BTYPE_DYNAMIC, 2)
        writer.write(hlit - 257, 5)
        writer.write(hdist - 1, 5)
        hclen = 19
        while hclen > 4 and cl_lengths[dtables.CODE_LENGTH_ORDER[hclen - 1]] == 0:
            hclen -= 1
        writer.write(hclen - 4, 4)
        for order_index in range(hclen):
            writer.write(cl_lengths[dtables.CODE_LENGTH_ORDER[order_index]], 3)
        cl_encoder = HuffmanEncoder(cl_lengths)
        for symbol, extra, bits in rle_items:
            cl_encoder.encode_symbol(writer, symbol)
            if bits:
                writer.write(extra, bits)
        _write_symbols(
            writer, symbols, HuffmanEncoder(dyn_lit_lengths), HuffmanEncoder(dyn_dist_lengths)
        )
        counters.entropy_bits += dynamic_bits
    counters.entropy_symbols += len(symbols)
    writer.align_to_byte()
    return writer.getvalue()


def _stored_stream(raw: bytes, counters: StageCounters) -> bytes:
    """Emit the input as stored blocks (BTYPE 00), 65535 bytes max each."""
    writer = BitWriter()
    chunks = [raw[i : i + 65535] for i in range(0, len(raw), 65535)] or [b""]
    for index, chunk in enumerate(chunks):
        writer.write(1 if index == len(chunks) - 1 else 0, 1)
        writer.write(_BTYPE_STORED, 2)
        writer.align_to_byte()
        writer.write_bytes(len(chunk).to_bytes(2, "little"))
        writer.write_bytes((len(chunk) ^ 0xFFFF).to_bytes(2, "little"))
        writer.write_bytes(chunk)
    counters.entropy_bits += len(raw) * 8
    return writer.getvalue()
