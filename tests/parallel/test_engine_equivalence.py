"""The engine's load-bearing property: jobs=1 and jobs=N are equivalent.

Byte-identical compressed output, identical merged StageCounters, and a
stream any plain serial decoder accepts -- checked for every codec. Corpora
are kept small (the codecs are pure Python); the ISSUE's 4 MiB acceptance
run lives in test_acceptance_large.py behind REPRO_ACCEPTANCE=1.
"""

import random

import pytest

from repro.codecs import available_codecs, get_codec, train_dictionary
from repro.codecs.base import OutputLimitExceeded
from repro.parallel import (
    SerialExecutor,
    compress_chunked,
    decompress_chunked,
    make_executor,
    resolve_jobs,
)

_CHUNK = 8192


def _corpus(size: int, seed: int = 4242) -> bytes:
    rng = random.Random(seed)
    out = bytearray()
    while len(out) < size:
        if rng.random() < 0.6:
            out.extend(b"service=%d status=ok latency_us=%d\n" % (rng.randint(0, 99), rng.randint(10, 99999)))
        else:
            out.extend(rng.randbytes(rng.randint(1, 48)))
    return bytes(out[:size])


@pytest.fixture(scope="module")
def corpus():
    return _corpus(5 * _CHUNK + 137)


@pytest.mark.parametrize("codec_name", available_codecs())
def test_pool_output_byte_identical_to_serial(codec_name, corpus):
    codec = get_codec(codec_name)
    serial = compress_chunked(codec, corpus, 1, chunk_size=_CHUNK, jobs=1)
    pooled = compress_chunked(codec, corpus, 1, chunk_size=_CHUNK, jobs=4)
    assert serial.data == pooled.data
    assert serial.counters == pooled.counters
    assert serial.reports == tuple(
        r.__class__(r.index, r.raw_bytes, r.frame_bytes, s.seconds)
        for r, s in zip(pooled.reports, serial.reports)
    )  # reports match apart from wall-clock


@pytest.mark.parametrize("codec_name", available_codecs())
def test_serial_decoder_accepts_chunked_stream(codec_name, corpus):
    codec = get_codec(codec_name)
    chunked = compress_chunked(codec, corpus, 1, chunk_size=_CHUNK, jobs=4)
    assert chunked.chunk_count == 6
    assert codec.decompress(chunked.data).data == corpus


@pytest.mark.parametrize("codec_name", available_codecs())
def test_parallel_decode_matches_serial_decode(codec_name, corpus):
    codec = get_codec(codec_name)
    chunked = compress_chunked(codec, corpus, 1, chunk_size=_CHUNK, jobs=1)
    serial = codec.decompress(chunked.data)
    parallel = decompress_chunked(codec, chunked.data, jobs=4)
    assert parallel.data == serial.data == corpus
    assert parallel.counters == serial.counters


@pytest.mark.parametrize("codec_name", available_codecs())
def test_merged_counters_equal_sum_of_per_chunk_compress(codec_name, corpus):
    """Merging worker counters loses nothing vs compressing chunks inline."""
    codec = get_codec(codec_name)
    chunked = compress_chunked(codec, corpus, 1, chunk_size=_CHUNK, jobs=1)
    expected = None
    for start in range(0, len(corpus), _CHUNK):
        result = codec.compress(corpus[start : start + _CHUNK], 1)
        if expected is None:
            expected = result.counters
        else:
            expected.merge(result.counters)
    assert chunked.counters == expected


def test_counter_merge_order_is_chunk_order(corpus):
    """bytes_in/bytes_out track the full stream exactly."""
    chunked = compress_chunked("lz4", corpus, 1, chunk_size=_CHUNK, jobs=4)
    assert chunked.counters.bytes_in == len(corpus)
    assert chunked.counters.bytes_out == len(chunked.data)
    assert sum(r.raw_bytes for r in chunked.reports) == len(corpus)
    assert sum(r.frame_bytes for r in chunked.reports) == len(chunked.data)


def test_dictionary_chunked_roundtrip():
    zstd = get_codec("zstd")
    samples = [_corpus(300, seed=s) for s in range(20)]
    dictionary = train_dictionary(samples, max_size=2048).content
    data = _corpus(3 * _CHUNK)
    serial = compress_chunked(zstd, data, 3, dictionary=dictionary, chunk_size=_CHUNK, jobs=1)
    pooled = compress_chunked(zstd, data, 3, dictionary=dictionary, chunk_size=_CHUNK, jobs=2)
    assert serial.data == pooled.data
    assert zstd.decompress(serial.data, dictionary=dictionary).data == data
    assert decompress_chunked(zstd, serial.data, dictionary=dictionary, jobs=2).data == data


@pytest.mark.parametrize("size", [0, 1, _CHUNK - 1, _CHUNK, _CHUNK + 1])
def test_boundary_sizes_match_serial(size):
    data = _corpus(size) if size else b""
    for codec_name in available_codecs():
        codec = get_codec(codec_name)
        serial = compress_chunked(codec, data, 1, chunk_size=_CHUNK, jobs=1)
        pooled = compress_chunked(codec, data, 1, chunk_size=_CHUNK, jobs=3)
        assert serial.data == pooled.data, (codec_name, size)
        assert codec.decompress(serial.data).data == data, (codec_name, size)


def test_single_chunk_equals_plain_compress(corpus):
    """One chunk => the stream is exactly the serial codec's frame."""
    for codec_name in available_codecs():
        codec = get_codec(codec_name)
        chunked = compress_chunked(codec, corpus, 1, chunk_size=1 << 20, jobs=2)
        assert chunked.chunk_count == 1
        assert chunked.data == codec.compress(corpus, 1).data, codec_name


def test_decompress_chunked_respects_output_limit(corpus):
    chunked = compress_chunked("zstd", corpus, 1, chunk_size=_CHUNK, jobs=1)
    with pytest.raises(OutputLimitExceeded):
        decompress_chunked("zstd", chunked.data, jobs=4, max_output_bytes=len(corpus) // 2)


def test_accepts_codec_name_or_instance(corpus):
    by_name = compress_chunked("gzip", corpus, 6, chunk_size=_CHUNK, jobs=1)
    by_instance = compress_chunked(get_codec("gzip"), corpus, 6, chunk_size=_CHUNK, jobs=1)
    assert by_name.data == by_instance.data


def test_explicit_executor_reuse(corpus):
    with make_executor(2) as executor:
        first = compress_chunked("lz4", corpus, 1, chunk_size=_CHUNK, executor=executor)
        second = compress_chunked("lz4", corpus, 1, chunk_size=_CHUNK, executor=executor)
    assert first.data == second.data


def test_resolve_jobs_defaults_to_cpu_count():
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) >= 1
    assert resolve_jobs(3) == 3


def test_serial_executor_is_in_order():
    assert SerialExecutor().map(lambda x: x * 2, [3, 1, 2]) == [6, 2, 4]
