"""Service requirements that candidate configurations must satisfy.

The sensitivity studies gate candidates on requirements before cost ranking:
ADS1 requires a minimum compression speed (200 MB/s in study 1), KVSTORE1 a
maximum decompression latency per block (0.08 ms in study 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import CompressionMetrics


class Requirement:
    """A predicate over measured metrics."""

    def satisfied(self, metrics: CompressionMetrics) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class MinCompressionSpeed(Requirement):
    """Compression speed must be at least ``bytes_per_second``."""

    bytes_per_second: float

    def satisfied(self, metrics: CompressionMetrics) -> bool:
        return metrics.compression_speed >= self.bytes_per_second

    def describe(self) -> str:
        return f"compression speed >= {self.bytes_per_second / 1e6:.0f} MB/s"


@dataclass(frozen=True)
class MaxBlockDecodeLatency(Requirement):
    """Mean per-block decompression time must not exceed ``seconds``."""

    seconds: float

    def satisfied(self, metrics: CompressionMetrics) -> bool:
        return metrics.decode_seconds_per_block <= self.seconds

    def describe(self) -> str:
        return f"block decode latency <= {self.seconds * 1e3:.2f} ms"


@dataclass(frozen=True)
class MinRatio(Requirement):
    """Compression ratio must be at least ``ratio``."""

    ratio: float

    def satisfied(self, metrics: CompressionMetrics) -> bool:
        return metrics.ratio >= self.ratio

    def describe(self) -> str:
        return f"ratio >= {self.ratio:.2f}"


@dataclass(frozen=True)
class MinDecompressionSpeed(Requirement):
    """Decompression speed must be at least ``bytes_per_second``."""

    bytes_per_second: float

    def satisfied(self, metrics: CompressionMetrics) -> bool:
        return metrics.decompression_speed >= self.bytes_per_second

    def describe(self) -> str:
        return f"decompression speed >= {self.bytes_per_second / 1e6:.0f} MB/s"
