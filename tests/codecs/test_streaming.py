"""Linked-window streaming compression tests."""

import pytest

from repro.codecs import CodecError, get_codec
from repro.codecs.streaming import (
    StreamCompressor,
    StreamDecompressor,
    stream_roundtrip_ratio,
)
from repro.corpus import generate_records, generate_text


@pytest.fixture()
def zstd():
    return get_codec("zstd")


def _chunks(generator, count, size, seed=0):
    return [generator(size, seed=seed + i) for i in range(count)]


class TestStreamRoundtrip:
    def test_chunks_roundtrip_in_order(self, zstd):
        chunks = _chunks(generate_records, 6, 2048, seed=60)
        compressor = StreamCompressor(zstd, level=3)
        stream = compressor.compress_stream(chunks)
        decompressor = StreamDecompressor(zstd)
        assert list(decompressor.decompress_stream(stream)) == chunks

    def test_single_chunk(self, zstd):
        compressor = StreamCompressor(zstd)
        record = compressor.compress_chunk(b"only chunk " * 50)
        decompressor = StreamDecompressor(zstd)
        chunk, pos = decompressor.decompress_chunk(record)
        assert chunk == b"only chunk " * 50
        assert pos == len(record)

    def test_empty_chunks(self, zstd):
        chunks = [b"", b"data " * 40, b""]
        compressor = StreamCompressor(zstd)
        stream = compressor.compress_stream(chunks)
        assert list(StreamDecompressor(zstd).decompress_stream(stream)) == chunks

    def test_out_of_order_replay_fails(self, zstd):
        chunks = _chunks(generate_records, 3, 2048, seed=61)
        compressor = StreamCompressor(zstd, level=3)
        records = [compressor.compress_chunk(c) for c in chunks]
        decompressor = StreamDecompressor(zstd)
        # Skipping chunk 0 breaks the window chain for chunk 1.
        with pytest.raises(CodecError):
            decompressor.decompress_chunk(records[1])

    def test_truncated_record_rejected(self, zstd):
        compressor = StreamCompressor(zstd)
        record = compressor.compress_chunk(b"payload " * 30)
        with pytest.raises(CodecError):
            next(StreamDecompressor(zstd).decompress_stream(record[:-3]))

    def test_non_dictionary_codec_rejected(self):
        with pytest.raises(CodecError):
            StreamCompressor(get_codec("lz4"))
        with pytest.raises(CodecError):
            StreamDecompressor(get_codec("lz4"))

    def test_invalid_window(self, zstd):
        with pytest.raises(ValueError):
            StreamCompressor(zstd, window_bytes=0)


class TestWindowLinkingBenefit:
    def test_linking_beats_independent_chunks(self, zstd):
        """Cross-chunk redundancy: repeated text spread over small chunks."""
        base = generate_text(3000, seed=62)
        chunks = [base[i : i + 500] for i in range(0, len(base), 500)] * 3
        linked = stream_roundtrip_ratio(zstd, chunks, level=3)
        independent_bytes = sum(
            len(zstd.compress(c, 3).data) for c in chunks
        )
        independent = sum(len(c) for c in chunks) / independent_bytes
        assert linked > 1.3 * independent

    def test_window_cap_limits_reach(self, zstd):
        """A tiny linked window cannot reach far-back redundancy."""
        base = generate_text(4000, seed=63)
        filler = [generate_records(2000, seed=64 + i) for i in range(4)]
        chunks = [base] + filler + [base]
        wide = stream_roundtrip_ratio(zstd, chunks, window_bytes=1 << 16)
        narrow = stream_roundtrip_ratio(zstd, chunks, window_bytes=1 << 10)
        assert wide > narrow

    def test_history_capped(self, zstd):
        compressor = StreamCompressor(zstd, window_bytes=1024)
        for i in range(8):
            compressor.compress_chunk(generate_records(1000, seed=70 + i))
        assert len(compressor._history) <= 1024
