"""Checksums used by the codec frame formats, implemented from scratch.

- XXH32 / XXH64: the non-cryptographic hashes used by LZ4 and Zstandard
  frames (and by dictionary identifiers).
- Adler-32: the zlib container checksum.
- CRC-32: the gzip container checksum (also used for SST block footers).
"""

from __future__ import annotations

_MASK32 = 0xFFFFFFFF

_XXH_PRIME1 = 0x9E3779B1
_XXH_PRIME2 = 0x85EBCA77
_XXH_PRIME3 = 0xC2B2AE3D
_XXH_PRIME4 = 0x27D4EB2F
_XXH_PRIME5 = 0x165667B1


def _rotl32(value: int, count: int) -> int:
    value &= _MASK32
    return ((value << count) | (value >> (32 - count))) & _MASK32


def _xxh_round(acc: int, lane: int) -> int:
    acc = (acc + lane * _XXH_PRIME2) & _MASK32
    return (_rotl32(acc, 13) * _XXH_PRIME1) & _MASK32


def xxh32(data: bytes, seed: int = 0) -> int:
    """XXH32 digest of ``data`` with the given seed."""
    length = len(data)
    pos = 0
    if length >= 16:
        acc1 = (seed + _XXH_PRIME1 + _XXH_PRIME2) & _MASK32
        acc2 = (seed + _XXH_PRIME2) & _MASK32
        acc3 = seed & _MASK32
        acc4 = (seed - _XXH_PRIME1) & _MASK32
        limit = length - 16
        while pos <= limit:
            acc1 = _xxh_round(acc1, int.from_bytes(data[pos : pos + 4], "little"))
            acc2 = _xxh_round(acc2, int.from_bytes(data[pos + 4 : pos + 8], "little"))
            acc3 = _xxh_round(acc3, int.from_bytes(data[pos + 8 : pos + 12], "little"))
            acc4 = _xxh_round(acc4, int.from_bytes(data[pos + 12 : pos + 16], "little"))
            pos += 16
        acc = (
            _rotl32(acc1, 1) + _rotl32(acc2, 7) + _rotl32(acc3, 12) + _rotl32(acc4, 18)
        ) & _MASK32
    else:
        acc = (seed + _XXH_PRIME5) & _MASK32

    acc = (acc + length) & _MASK32
    while pos + 4 <= length:
        lane = int.from_bytes(data[pos : pos + 4], "little")
        acc = (acc + lane * _XXH_PRIME3) & _MASK32
        acc = (_rotl32(acc, 17) * _XXH_PRIME4) & _MASK32
        pos += 4
    while pos < length:
        acc = (acc + data[pos] * _XXH_PRIME5) & _MASK32
        acc = (_rotl32(acc, 11) * _XXH_PRIME1) & _MASK32
        pos += 1

    acc ^= acc >> 15
    acc = (acc * _XXH_PRIME2) & _MASK32
    acc ^= acc >> 13
    acc = (acc * _XXH_PRIME3) & _MASK32
    acc ^= acc >> 16
    return acc


_MASK64 = 0xFFFFFFFFFFFFFFFF

_XXH64_PRIME1 = 0x9E3779B185EBCA87
_XXH64_PRIME2 = 0xC2B2AE3D27D4EB4F
_XXH64_PRIME3 = 0x165667B19E3779F9
_XXH64_PRIME4 = 0x85EBCA77C2B2AE63
_XXH64_PRIME5 = 0x27D4EB2F165667C5


def _rotl64(value: int, count: int) -> int:
    value &= _MASK64
    return ((value << count) | (value >> (64 - count))) & _MASK64


def _xxh64_round(acc: int, lane: int) -> int:
    acc = (acc + lane * _XXH64_PRIME2) & _MASK64
    return (_rotl64(acc, 31) * _XXH64_PRIME1) & _MASK64


def _xxh64_merge(acc: int, value: int) -> int:
    acc ^= _xxh64_round(0, value)
    return (acc * _XXH64_PRIME1 + _XXH64_PRIME4) & _MASK64


def xxh64(data: bytes, seed: int = 0) -> int:
    """XXH64 digest of ``data`` with the given seed."""
    length = len(data)
    pos = 0
    if length >= 32:
        acc1 = (seed + _XXH64_PRIME1 + _XXH64_PRIME2) & _MASK64
        acc2 = (seed + _XXH64_PRIME2) & _MASK64
        acc3 = seed & _MASK64
        acc4 = (seed - _XXH64_PRIME1) & _MASK64
        limit = length - 32
        while pos <= limit:
            acc1 = _xxh64_round(acc1, int.from_bytes(data[pos : pos + 8], "little"))
            acc2 = _xxh64_round(acc2, int.from_bytes(data[pos + 8 : pos + 16], "little"))
            acc3 = _xxh64_round(acc3, int.from_bytes(data[pos + 16 : pos + 24], "little"))
            acc4 = _xxh64_round(acc4, int.from_bytes(data[pos + 24 : pos + 32], "little"))
            pos += 32
        acc = (
            _rotl64(acc1, 1) + _rotl64(acc2, 7) + _rotl64(acc3, 12) + _rotl64(acc4, 18)
        ) & _MASK64
        for lane_acc in (acc1, acc2, acc3, acc4):
            acc = _xxh64_merge(acc, lane_acc)
    else:
        acc = (seed + _XXH64_PRIME5) & _MASK64

    acc = (acc + length) & _MASK64
    while pos + 8 <= length:
        lane = int.from_bytes(data[pos : pos + 8], "little")
        acc ^= _xxh64_round(0, lane)
        acc = (_rotl64(acc, 27) * _XXH64_PRIME1 + _XXH64_PRIME4) & _MASK64
        pos += 8
    if pos + 4 <= length:
        lane = int.from_bytes(data[pos : pos + 4], "little")
        acc ^= (lane * _XXH64_PRIME1) & _MASK64
        acc = (_rotl64(acc, 23) * _XXH64_PRIME2 + _XXH64_PRIME3) & _MASK64
        pos += 4
    while pos < length:
        acc ^= (data[pos] * _XXH64_PRIME5) & _MASK64
        acc = (_rotl64(acc, 11) * _XXH64_PRIME1) & _MASK64
        pos += 1

    acc ^= acc >> 33
    acc = (acc * _XXH64_PRIME2) & _MASK64
    acc ^= acc >> 29
    acc = (acc * _XXH64_PRIME3) & _MASK64
    acc ^= acc >> 32
    return acc


_ADLER_MOD = 65521


def adler32(data: bytes, value: int = 1) -> int:
    """Adler-32 checksum, continuing from ``value`` (1 for a fresh stream)."""
    low = value & 0xFFFF
    high = (value >> 16) & 0xFFFF
    # Process in chunks small enough that the sums stay bounded between
    # modulo reductions (the classic 5552-byte block trick).
    pos = 0
    length = len(data)
    while pos < length:
        chunk = data[pos : pos + 5552]
        for byte in chunk:
            low += byte
            high += low
        low %= _ADLER_MOD
        high %= _ADLER_MOD
        pos += 5552
    return (high << 16) | low


def _build_crc32_table() -> tuple:
    table = []
    for i in range(256):
        crc = i
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ 0xEDB88320
            else:
                crc >>= 1
        table.append(crc)
    return tuple(table)


_CRC32_TABLE = _build_crc32_table()


def crc32(data: bytes, value: int = 0) -> int:
    """CRC-32 (IEEE 802.3 polynomial), continuing from ``value``."""
    crc = value ^ _MASK32
    table = _CRC32_TABLE
    for byte in data:
        crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF]
    return crc ^ _MASK32
