"""Fig. 2: Zstd compute-cycle share per service category.

Paper shape: considerable variance, ~1.8% to ~21.2%, Data Warehouse and
Key-Value Store at the top.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_series
from repro.fleet import SamplingProfiler, characterize


@pytest.fixture(scope="module")
def characterization():
    profiler = SamplingProfiler(samples_per_day=300_000, seed=30)
    return characterize(profiler.run(days=30))


def test_fig02_category_cycles(benchmark, characterization, figure_output):
    shares = {
        category: share
        for category, share in characterization.category_zstd_share.items()
        if category != "Infra"
    }
    points = sorted(shares.items(), key=lambda kv: -kv[1])
    figure_output(
        "fig02_category_cycles",
        format_series(
            "Zstd cycles share by category (paper: 1.8%..21.2%)",
            [(c, s * 100) for c, s in points],
            value_format="{:.2f}%",
        ),
    )
    assert max(shares.values()) > 0.15
    assert min(shares.values()) < 0.03

    profiler = SamplingProfiler(samples_per_day=50_000, seed=30)
    benchmark(lambda: characterize(profiler.run(days=1)))
