"""Per-category training/evaluation samples from the corpus generators.

The category names line up with :data:`repro.graphs.trained.TRAINED_CATEGORIES`;
each maps to the corpus member whose structure the category's graph
encodes. Samples are pure functions of ``(category, size, seed)``, so
training, the acceptance tests, and the benchmark trajectory all see the
same bytes.
"""

from __future__ import annotations

from typing import List

from repro.corpus.embeddings import generate_ads_request
from repro.corpus.logs import generate_logs
from repro.corpus.records import generate_records

#: default training sample size; column/section structure needs room to
#: repeat before splitting pays for its per-frame overhead
DEFAULT_SAMPLE_SIZE = 65536


def category_sample(category: str, size: int, seed: int) -> bytes:
    """One sample payload for a category."""
    if category == "record":
        return generate_records(size, seed=seed)
    if category == "text":
        return generate_logs(size, seed=seed)
    if category == "float":
        # ads model B: one request per sample — the wire layout (header,
        # dense block, sparse block) is per-request, so concatenating
        # requests would misalign the sections the graph's slice targets.
        # ``size`` is ignored; the model fixes the request size.
        return generate_ads_request("B", seed=seed)
    raise ValueError(f"unknown graph category {category!r}")


def category_samples(
    category: str,
    count: int = 3,
    size: int = DEFAULT_SAMPLE_SIZE,
    seed: int = 0,
) -> List[bytes]:
    """Deterministic sample set for training or evaluation."""
    return [
        category_sample(category, size, seed + 1000 * i) for i in range(count)
    ]
