"""Metric primitives: Counter, Gauge, log-bucketed Histogram, and the registry.

The shapes follow the fleet-profiling needs of the paper: counters keyed by
(algorithm, direction, level, stage) labels reproduce the cycle-attribution
tables of Section III, and mergeable log-bucketed histograms give the
percentile-grade block-decode latency view of Fig. 13 without retaining raw
samples. Every type supports ``merge`` so per-shard registries can be
combined associatively into a fleet-wide view.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Type

#: canonical label identity: sorted (name, value-as-string) pairs
LabelKey = Tuple[Tuple[str, str], ...]


def label_key(labels: Mapping[str, object]) -> LabelKey:
    """Normalize a label mapping into a hashable, order-independent key."""
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


class Metric:
    """Base class: a named metric family holding one series per label set."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help

    def merge(self, other: "Metric") -> None:
        raise NotImplementedError

    def spawn_empty(self) -> "Metric":
        """A fresh, zero-valued metric of the same shape (for merging)."""
        return type(self)(self.name, self.help)

    def label_keys(self) -> List[LabelKey]:
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing count, one series per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        key = label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._values.values())

    def samples(self) -> Iterator[Tuple[LabelKey, float]]:
        for key in sorted(self._values):
            yield key, self._values[key]

    def label_keys(self) -> List[LabelKey]:
        return sorted(self._values)

    def merge(self, other: "Metric") -> None:
        if not isinstance(other, Counter):
            raise TypeError(f"cannot merge {other.kind} into counter {self.name}")
        for key, value in other._values.items():
            self._values[key] = self._values.get(key, 0.0) + value


class Gauge(Metric):
    """Point-in-time value. ``merge`` sums series, the multi-shard reading
    (total resident bytes across shards, etc.)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._values.get(label_key(labels), 0.0)

    def samples(self) -> Iterator[Tuple[LabelKey, float]]:
        for key in sorted(self._values):
            yield key, self._values[key]

    def label_keys(self) -> List[LabelKey]:
        return sorted(self._values)

    def merge(self, other: "Metric") -> None:
        if not isinstance(other, Gauge):
            raise TypeError(f"cannot merge {other.kind} into gauge {self.name}")
        for key, value in other._values.items():
            self._values[key] = self._values.get(key, 0.0) + value


class _HistogramSeries:
    """Bucket counts plus exact count/sum/min/max for one label set."""

    __slots__ = ("buckets", "zeros", "count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        #: observations <= 0 (zero-duration cache hits, empty payloads)
        self.zeros = 0
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf


class Histogram(Metric):
    """Log-bucketed histogram with percentile queries.

    Bucket boundaries are powers of ``2 ** (1 / buckets_per_octave)``, so
    relative quantile error is bounded by half a bucket width (~9% at the
    default 4 buckets per octave) across the full dynamic range — the same
    scheme production latency telemetry (hdrhistogram-style) uses so that
    nanosecond cache hits and second-long compactions share one metric.
    Merging adds bucket counts, which is associative and commutative.
    """

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "", buckets_per_octave: int = 4
    ) -> None:
        super().__init__(name, help)
        if buckets_per_octave <= 0:
            raise ValueError("buckets_per_octave must be positive")
        self.buckets_per_octave = buckets_per_octave
        self._log_base = math.log(2.0) / buckets_per_octave
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def spawn_empty(self) -> "Histogram":
        return Histogram(self.name, self.help, self.buckets_per_octave)

    # -- recording ---------------------------------------------------------

    def _bucket_index(self, value: float) -> int:
        return math.floor(math.log(value) / self._log_base)

    def _bucket_upper(self, index: int) -> float:
        return math.exp((index + 1) * self._log_base)

    def _bucket_mid(self, index: int) -> float:
        """Geometric midpoint — the bucket's representative value."""
        return math.exp((index + 0.5) * self._log_base)

    def observe(self, value: float, **labels: object) -> None:
        key = label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries()
        series.count += 1
        series.total += value
        if value < series.minimum:
            series.minimum = value
        if value > series.maximum:
            series.maximum = value
        if value <= 0.0:
            series.zeros += 1
        else:
            index = self._bucket_index(value)
            series.buckets[index] = series.buckets.get(index, 0) + 1

    # -- queries -----------------------------------------------------------

    def _get(self, labels: Mapping[str, object]) -> Optional[_HistogramSeries]:
        return self._series.get(label_key(labels))

    def count(self, **labels: object) -> int:
        series = self._get(labels)
        return series.count if series else 0

    def sum(self, **labels: object) -> float:
        series = self._get(labels)
        return series.total if series else 0.0

    def min(self, **labels: object) -> float:
        series = self._get(labels)
        return series.minimum if series and series.count else 0.0

    def max(self, **labels: object) -> float:
        series = self._get(labels)
        return series.maximum if series and series.count else 0.0

    def mean(self, **labels: object) -> float:
        series = self._get(labels)
        if not series or not series.count:
            return 0.0
        return series.total / series.count

    def percentile(self, p: float, **labels: object) -> float:
        """Value at percentile ``p`` (0..100), within one bucket's width."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        series = self._get(labels)
        if series is None or not series.count:
            return 0.0
        rank = max(1, math.ceil(p / 100.0 * series.count))
        seen = series.zeros
        if seen >= rank:
            return max(0.0, series.minimum)
        for index in sorted(series.buckets):
            seen += series.buckets[index]
            if seen >= rank:
                estimate = self._bucket_mid(index)
                # exact extremes beat the bucket estimate at the tails
                return min(max(estimate, series.minimum), series.maximum)
        return series.maximum

    def p50(self, **labels: object) -> float:
        return self.percentile(50, **labels)

    def p90(self, **labels: object) -> float:
        return self.percentile(90, **labels)

    def p99(self, **labels: object) -> float:
        return self.percentile(99, **labels)

    def label_keys(self) -> List[LabelKey]:
        return sorted(self._series)

    def cumulative_buckets(
        self, **labels: object
    ) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ascending; for exporters."""
        series = self._get(labels)
        if series is None:
            return []
        out: List[Tuple[float, int]] = []
        running = series.zeros
        if series.zeros:
            out.append((0.0, running))
        for index in sorted(series.buckets):
            running += series.buckets[index]
            out.append((self._bucket_upper(index), running))
        return out

    def merge(self, other: "Metric") -> None:
        if not isinstance(other, Histogram):
            raise TypeError(f"cannot merge {other.kind} into histogram {self.name}")
        if other.buckets_per_octave != self.buckets_per_octave:
            raise ValueError(
                f"histogram {self.name}: bucket schemes differ "
                f"({self.buckets_per_octave} vs {other.buckets_per_octave})"
            )
        for key, theirs in other._series.items():
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries()
            for index, count in theirs.buckets.items():
                series.buckets[index] = series.buckets.get(index, 0) + count
            series.zeros += theirs.zeros
            series.count += theirs.count
            series.total += theirs.total
            series.minimum = min(series.minimum, theirs.minimum)
            series.maximum = max(series.maximum, theirs.maximum)


class MetricsRegistry:
    """Named metric families, creation-ordered; get-or-create semantics."""

    def __init__(self) -> None:
        self._metrics: "OrderedDict[str, Metric]" = OrderedDict()

    def _get_or_create(
        self, name: str, cls: Type[Metric], help: str, **kwargs: object
    ) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, **kwargs)  # type: ignore[arg-type]
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help)  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str = "", buckets_per_octave: int = 4
    ) -> Histogram:
        return self._get_or_create(  # type: ignore[return-value]
            name, Histogram, help, buckets_per_octave=buckets_per_octave
        )

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def metrics(self) -> List[Metric]:
        return list(self._metrics.values())

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def clear(self) -> None:
        self._metrics.clear()

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (multi-shard aggregation); associative."""
        for metric in other:
            mine = self._metrics.get(metric.name)
            if mine is None:
                mine = metric.spawn_empty()
                self._metrics[metric.name] = mine
            mine.merge(metric)


#: the process-global registry every instrumentation hook records into
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
