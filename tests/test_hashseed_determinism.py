"""PYTHONHASHSEED immunity: scorecards may not depend on hash salting.

The builtin ``hash()`` is salted per process, so anything seeded or
ordered through it changes between runs even with identical seeds --
exactly the bug rule D002 exists to catch (and that
``fleet.profiler.block_size_samples`` had before it switched to
``cluster.ring.stable_hash``). These tests re-run the headline
deterministic artifacts in subprocesses under two different hash seeds
and require byte-identical output.
"""

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_PROFILER_SNIPPET = """
import numpy as np
from repro.fleet.profiler import SamplingProfiler
from repro.fleet.profiles import DEFAULT_FLEET

profiler = SamplingProfiler(samples_per_day=50_000, seed=3)
for profile in DEFAULT_FLEET:
    sizes = profiler.block_size_samples(profile, count=64)
    print(profile.name, int(sizes.sum()), int(sizes.max()))
for sample in profiler.run(days=2)[:50]:
    print(sample.service, sample.weight, sample.level, sample.block_size)
"""


def _run(argv, hash_seed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run(
        argv,
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout


def _identical_across_hash_seeds(argv):
    assert _run(argv, "0") == _run(argv, "1")


def test_profiler_block_sizes_ignore_hash_seed():
    _identical_across_hash_seeds([sys.executable, "-c", _PROFILER_SNIPPET])


def test_chaos_scorecard_ignores_hash_seed():
    _identical_across_hash_seeds(
        [
            sys.executable, "-m", "repro", "chaos",
            "--plan", "standard", "--seed", "7", "--ops", "0.1",
        ]
    )


def test_cluster_sim_scorecard_ignores_hash_seed():
    _identical_across_hash_seeds(
        [
            sys.executable, "-m", "repro", "cluster-sim",
            "--scenario", "fleet-surge", "--seed", "7", "--scale", "0.1",
        ]
    )
