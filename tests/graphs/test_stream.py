"""Corruption handling for the self-describing graph stream container.

Every structural violation must surface as :class:`CorruptDataError` —
never a raw ``IndexError``/``zlib.error``/``struct.error`` (the E001
decode-boundary contract) and never silent wrong output.
"""

import zlib

import pytest

from repro.codecs.base import CorruptDataError
from repro.codecs.varint import write_uvarint
from repro.graphs.codec import GraphCompressor, decode_graph_header
from repro.graphs.stream import MAGIC, MAX_HEADER_BYTES, decode_stream, encode_stream

_SPEC = {
    "kind": "tokenize",
    "delim": 124,
    "lanes": 2,
    "children": [{"kind": "leaf", "codec": "zlib", "level": 6}] * 3,
}

_PAYLOAD = b"alpha|beta|gamma|delta|" * 40


def _stream() -> bytes:
    return GraphCompressor("t", _SPEC).compress(_PAYLOAD, 1).data


def test_roundtrip_container():
    spec, frames = decode_stream(_stream())
    assert spec == _SPEC
    assert len(frames) == 3
    assert sum(raw for raw, __ in frames) >= len(_PAYLOAD) - 3  # delims dropped


def test_header_survives_decode_graph_header():
    assert decode_graph_header(_stream()) == _SPEC


@pytest.mark.parametrize("prefix", [b"", b"RGZ", b"XXXX", b"RGZ2"])
def test_bad_magic(prefix):
    with pytest.raises(CorruptDataError, match="magic"):
        decode_stream(prefix + _stream()[4:])


def test_truncated_everywhere():
    """Cutting the stream at any point must raise, never crash or succeed."""
    blob = _stream()
    for cut in range(len(blob)):
        with pytest.raises(CorruptDataError):
            decode_stream(blob[:cut])


def test_single_byte_flips_never_escape():
    """Flip one byte at a time: decode raises or returns the exact spec.

    A flip inside a frame payload must be caught by the CRC; a flip in
    the header by inflate/validation; a flip in a length field by the
    overrun checks. (A flip in a *raw_len* field is caught later by the
    codec layer — here we only require no low-level exception escapes.)
    """
    blob = bytearray(_stream())
    for pos in range(len(blob)):
        blob[pos] ^= 0xFF
        try:
            spec, __ = decode_stream(bytes(blob))
        except CorruptDataError:
            pass
        else:
            # raw_len fields are not covered by the container CRC; any
            # surviving parse must still carry an intact spec
            assert spec == _SPEC, f"flip at {pos} silently altered the spec"
        blob[pos] ^= 0xFF


def test_crc_mismatch_detected():
    blob = bytearray(_stream())
    blob[-1] ^= 0x01  # last payload byte of the last frame
    with pytest.raises(CorruptDataError, match="checksum"):
        decode_stream(bytes(blob))


def test_trailing_bytes_rejected():
    with pytest.raises(CorruptDataError, match="trailing"):
        decode_stream(_stream() + b"\x00")


def test_oversized_header_claim_rejected():
    out = bytearray(MAGIC)
    write_uvarint(out, MAX_HEADER_BYTES + 1)
    write_uvarint(out, 1)
    out += b"\x00"
    with pytest.raises(CorruptDataError, match="cap"):
        decode_stream(bytes(out))


def test_header_inflate_bomb_rejected():
    """Header that inflates past its claimed raw size must be refused."""
    bomb = zlib.compress(b"\x00" * 4096, 9)
    out = bytearray(MAGIC)
    write_uvarint(out, 16)  # claims 16 raw bytes; inflates to 4096
    write_uvarint(out, len(bomb))
    out += bomb
    write_uvarint(out, 0)
    with pytest.raises(CorruptDataError, match="inflates"):
        decode_stream(bytes(out))


def test_garbage_header_bytes_rejected():
    out = bytearray(MAGIC)
    write_uvarint(out, 64)
    write_uvarint(out, 8)
    out += b"notzlib!"
    with pytest.raises(CorruptDataError, match="inflate"):
        decode_stream(bytes(out))


def test_invalid_spec_in_header_rejected():
    bad = zlib.compress(b'{"kind":"nope"}', 9)
    out = bytearray(MAGIC)
    write_uvarint(out, len(b'{"kind":"nope"}'))
    write_uvarint(out, len(bad))
    out += bad
    write_uvarint(out, 0)
    with pytest.raises(CorruptDataError, match="corrupt graph header"):
        decode_stream(bytes(out))


def _container_prefix(spec) -> bytearray:
    """Magic + deflated header for ``spec``, ready for a forged frame table."""
    from repro.graphs.model import canonical_bytes

    prefix = bytearray(MAGIC)
    raw = canonical_bytes(spec)
    deflated = zlib.compress(raw, 9)
    write_uvarint(prefix, len(raw))
    write_uvarint(prefix, len(deflated))
    prefix += deflated
    return prefix


def test_absurd_frame_count_rejected():
    prefix = _container_prefix(_SPEC)
    write_uvarint(prefix, 10**9)
    with pytest.raises(CorruptDataError, match="frames"):
        decode_stream(bytes(prefix))


def test_frame_overrun_rejected():
    prefix = _container_prefix({"kind": "leaf", "codec": "zlib", "level": 6})
    write_uvarint(prefix, 1)  # one frame...
    write_uvarint(prefix, 100)  # raw_len
    write_uvarint(prefix, 1000)  # ...claiming more payload than exists
    prefix += b"\x00\x00\x00\x00" + b"xy"
    with pytest.raises(CorruptDataError, match="overruns"):
        decode_stream(bytes(prefix))


# -- codec-layer decode checks (above the container) --------------------------


def test_unknown_leaf_codec_is_corruption():
    spec = {"kind": "leaf", "codec": "zlib", "level": 6}
    blob = GraphCompressor("t", spec).compress(b"hello world" * 20, 1).data
    __, frames = decode_stream(blob)
    evil = {"kind": "leaf", "codec": "no-such-codec", "level": 6}
    forged = encode_stream(evil, frames)
    with pytest.raises(CorruptDataError, match="leaf failed to decode"):
        GraphCompressor("t", spec).decompress(forged)


def test_missing_frames_for_leaves_is_corruption():
    blob = _stream()
    spec, frames = decode_stream(blob)
    forged = encode_stream(spec, frames[:-1])  # drop the last leaf's frame
    with pytest.raises(CorruptDataError, match="before all leaves"):
        GraphCompressor("t", _SPEC).decompress(forged)


def test_extra_frames_beyond_leaves_is_corruption():
    blob = _stream()
    spec, frames = decode_stream(blob)
    forged = encode_stream(spec, frames + [frames[-1]])
    with pytest.raises(CorruptDataError, match="beyond the graph"):
        GraphCompressor("t", _SPEC).decompress(forged)


def test_lying_raw_len_is_corruption():
    blob = _stream()
    spec, frames = decode_stream(blob)
    lied = [(raw + 1, payload) for raw, payload in frames]
    forged = encode_stream(spec, lied)
    with pytest.raises(CorruptDataError):
        GraphCompressor("t", _SPEC).decompress(forged)
