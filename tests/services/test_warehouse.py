"""Warehouse tests: ORC-like format round-trips and the DW1-4 workflows."""

import numpy as np
import pytest

from repro.codecs.base import CorruptDataError
from repro.corpus import generate_table
from repro.services import (
    IngestionJob,
    MLDataJob,
    OrcReader,
    OrcWriter,
    ShuffleJob,
    SparkJob,
)
from repro.services.warehouse.orc import decode_column, encode_column


def _tables_equal(a, b):
    assert set(a) == set(b)
    for name in a:
        if isinstance(a[name], list):
            assert a[name] == b[name], name
        else:
            assert np.array_equal(np.asarray(a[name]), np.asarray(b[name])), name


class TestColumnEncoders:
    def test_int_delta_roundtrip(self):
        values = np.array([100, 105, 103, 200, 150], dtype=np.int64)
        kind, payload = encode_column(values)
        assert np.array_equal(decode_column(kind, payload, 5), values)

    def test_negative_ints(self):
        values = np.array([-5, 10, -20, 0], dtype=np.int64)
        kind, payload = encode_column(values)
        assert np.array_equal(decode_column(kind, payload, 4), values)

    def test_float_roundtrip(self):
        values = np.array([1.5, -2.25, 0.0, 3e8])
        kind, payload = encode_column(values)
        assert np.array_equal(decode_column(kind, payload, 4), values)

    def test_bool_bitpack_roundtrip(self):
        values = np.array([True, False, True, True, False] * 7)
        kind, payload = encode_column(values)
        assert np.array_equal(decode_column(kind, payload, 35), values)
        assert len(payload) <= 5  # 35 bits -> 5 bytes

    def test_string_dictionary_roundtrip(self):
        values = ["click", "view", "click", "click", "share"]
        kind, payload = encode_column(values)
        assert decode_column(kind, payload, 5) == values

    def test_monotone_ints_encode_compactly(self):
        values = np.arange(1_000_000, 1_001_000, dtype=np.int64)
        __, payload = encode_column(values)
        assert len(payload) < 2100  # ~2 bytes per delta


class TestOrcFormat:
    def test_write_read_roundtrip(self):
        table = generate_table(500, seed=1)
        writer = OrcWriter(level=1)
        payload = writer.write(table)
        _tables_equal(OrcReader().read(payload), table)

    def test_compression_shrinks_file(self):
        table = generate_table(2000, seed=2)
        payload = OrcWriter(level=1).write(table)
        writer = OrcWriter(level=1)
        writer.write(table)
        assert writer.stats.compressed_bytes < writer.stats.encoded_bytes

    def test_higher_level_smaller_file(self):
        table = generate_table(2000, seed=3)
        low = OrcWriter(level=1)
        low.write(table)
        high = OrcWriter(level=7)
        high.write(table)
        assert high.stats.compressed_bytes <= low.stats.compressed_bytes

    def test_block_cap_enforced(self):
        with pytest.raises(ValueError):
            OrcWriter(block_size=1 << 20)

    def test_bad_magic_rejected(self):
        with pytest.raises(CorruptDataError):
            OrcReader().read(b"JUNKdata")

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            OrcWriter().write({})

    def test_unequal_row_counts_rejected(self):
        table = {"a": np.arange(5), "b": np.arange(6)}
        with pytest.raises(ValueError):
            OrcWriter().write(table)


class TestWorkflows:
    @pytest.fixture(scope="class")
    def ingested(self):
        table = generate_table(2500, seed=4)
        return IngestionJob().run(table)

    def test_ingestion_uses_level_7(self):
        assert IngestionJob().compression_level == 7

    def test_ingestion_report_compression_heavy(self, ingested):
        """DW1 spends ~28.5% of cycles in Zstd (Fig. 6)."""
        assert 0.18 < ingested.report.zstd_share < 0.40

    def test_ingestion_match_finding_dominates(self, ingested):
        """Fig. 7: level 7 compression is match-finding dominated."""
        assert ingested.report.match_finding_share_of_compression > 0.5

    def test_shuffle_splits_partitions(self, ingested):
        result = ShuffleJob().run(ingested.payload, partitions=4)
        assert len(result.partitions) == 4
        total_rows = 0
        for part in result.partitions:
            table = OrcReader().read(part)
            total_rows += len(next(iter(table.values())))
        assert total_rows == 2500

    def test_shuffle_compression_share(self, ingested):
        """DW2: ~22% compression + ~8% decompression (Fig. 7)."""
        report = ShuffleJob().run(ingested.payload).report
        assert 0.20 < report.zstd_share < 0.45
        assert report.compress_share > report.decompress_share

    def test_spark_is_decompression_heavy(self, ingested):
        """DW3 reads much more than it writes."""
        report = SparkJob().run(ingested.payload).report
        assert report.decompress_cycles > report.compress_cycles

    def test_ml_job_share_band(self, ingested):
        """DW4: ~8% of cycles in Zstd."""
        report = MLDataJob().run(ingested.payload).report
        assert 0.04 < report.zstd_share < 0.16

    def test_share_ordering_matches_paper(self, ingested):
        """Fig. 6 ordering: DW1/DW2 > DW3 > DW4."""
        dw1 = ingested.report.zstd_share
        dw2 = ShuffleJob().run(ingested.payload).report.zstd_share
        dw3 = SparkJob().run(ingested.payload).report.zstd_share
        dw4 = MLDataJob().run(ingested.payload).report.zstd_share
        assert min(dw1, dw2) > dw3 > dw4

    def test_low_level_entropy_heavier_than_high_level(self, ingested):
        """Fig. 7: match finding ~80% at level 7 vs ~30% at level 1."""
        dw1_mf = ingested.report.match_finding_share_of_compression
        dw4_mf = MLDataJob().run(ingested.payload).report.match_finding_share_of_compression
        assert dw1_mf > dw4_mf
