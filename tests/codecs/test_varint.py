"""LEB128 varint tests."""

import pytest
from hypothesis import given, strategies as st

from repro.codecs.base import CorruptDataError
from repro.codecs.varint import read_uvarint, write_uvarint


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**60])
    def test_roundtrip(self, value):
        out = bytearray()
        write_uvarint(out, value)
        decoded, pos = read_uvarint(bytes(out), 0)
        assert decoded == value
        assert pos == len(out)

    def test_small_values_are_one_byte(self):
        out = bytearray()
        write_uvarint(out, 127)
        assert len(out) == 1

    def test_128_takes_two_bytes(self):
        out = bytearray()
        write_uvarint(out, 128)
        assert len(out) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            write_uvarint(bytearray(), -1)

    def test_truncated_stream_raises(self):
        with pytest.raises(CorruptDataError):
            read_uvarint(b"\x80", 0)

    def test_overlong_stream_raises(self):
        with pytest.raises(CorruptDataError):
            read_uvarint(b"\x80" * 12 + b"\x01", 0)

    def test_sequential_reads(self):
        out = bytearray()
        for value in (5, 500, 50000):
            write_uvarint(out, value)
        data = bytes(out)
        pos = 0
        for expected in (5, 500, 50000):
            value, pos = read_uvarint(data, pos)
            assert value == expected


@given(st.lists(st.integers(0, 2**63 - 1), max_size=50))
def test_roundtrip_property(values):
    out = bytearray()
    for value in values:
        write_uvarint(out, value)
    data = bytes(out)
    pos = 0
    for expected in values:
        value, pos = read_uvarint(data, pos)
        assert value == expected
    assert pos == len(data)
