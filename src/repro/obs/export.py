"""Registry exporters: Prometheus text, JSON-lines, human-readable table.

All three render the same snapshot; the Prometheus form is what a scrape
endpoint would serve, the JSON-lines form is the append-friendly flight
recorder, and the table is for eyeballs (``repro obs --format table``).
"""

from __future__ import annotations

import json
import math
from typing import Dict, List

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

#: percentiles reported in snapshots — p50/p90/p99 per the paper's
#: latency-distribution figures
QUANTILES = (50, 90, 99)

#: decimal places kept by the deterministic JSON form; nanosecond-scale
#: resolution, far below anything the metrics can resolve, so rounding
#: never loses signal but does make float spelling stable across runs
JSON_PRECISION = 9


def round_floats(value, precision: int = JSON_PRECISION):
    """Recursively round floats to ``precision`` decimal places.

    Dict keys are untouched; non-finite floats pass through. This plus
    ``sort_keys`` is the whole determinism contract: two runs that
    measured the same thing spell it identically, so their exports diff
    clean.
    """
    if isinstance(value, float):
        if not math.isfinite(value):
            return value
        return round(value, precision)
    if isinstance(value, dict):
        return {k: round_floats(v, precision) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [round_floats(v, precision) for v in value]
    return value


def json_line(entry, precision: int = JSON_PRECISION) -> str:
    """One deterministic JSON line: sorted keys, compact separators,
    fixed-precision floats."""
    return json.dumps(
        round_floats(entry, precision), sort_keys=True, separators=(",", ":")
    )


def _labels_dict(key) -> Dict[str, str]:
    return dict(key)


def _entry_sort_key(entry: dict):
    return (entry["metric"], sorted(entry["labels"].items()))


def registry_snapshot(registry: MetricsRegistry) -> List[dict]:
    """Plain-data snapshot: one dict per (metric, label set) series."""
    out: List[dict] = []
    for metric in registry:
        if isinstance(metric, (Counter, Gauge)):
            for key, value in metric.samples():
                out.append(
                    {
                        "metric": metric.name,
                        "kind": metric.kind,
                        "labels": _labels_dict(key),
                        "value": value,
                    }
                )
        elif isinstance(metric, Histogram):
            for key in metric.label_keys():
                labels = _labels_dict(key)
                entry = {
                    "metric": metric.name,
                    "kind": metric.kind,
                    "labels": labels,
                    "count": metric.count(**labels),
                    "sum": metric.sum(**labels),
                    "min": metric.min(**labels),
                    "max": metric.max(**labels),
                }
                for q in QUANTILES:
                    entry[f"p{q}"] = metric.percentile(q, **labels)
                out.append(entry)
    out.sort(key=_entry_sort_key)
    return out


def to_jsonl(registry: MetricsRegistry) -> str:
    """One JSON object per series, newline-delimited.

    Deterministic by construction: series sorted by (metric, labels),
    keys sorted within each object, floats at fixed precision — so two
    runs that recorded the same values produce byte-identical output.
    """
    lines = [json_line(entry) for entry in registry_snapshot(registry)]
    return "\n".join(lines) + ("\n" if lines else "")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format (0.0.4)."""
    lines: List[str] = []
    for metric in registry:
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for key, value in metric.samples():
                labels = _format_labels(_labels_dict(key))
                lines.append(f"{metric.name}{labels} {_format_number(value)}")
        elif isinstance(metric, Histogram):
            for key in metric.label_keys():
                labels = _labels_dict(key)
                count = metric.count(**labels)
                for upper, cumulative in metric.cumulative_buckets(**labels):
                    le = _format_number(upper)
                    bucket_labels = _format_labels(labels, extra=f'le="{le}"')
                    lines.append(
                        f"{metric.name}_bucket{bucket_labels} {cumulative}"
                    )
                inf_labels = _format_labels(labels, extra='le="+Inf"')
                lines.append(f"{metric.name}_bucket{inf_labels} {count}")
                plain = _format_labels(labels)
                lines.append(
                    f"{metric.name}_sum{plain} "
                    f"{_format_number(metric.sum(**labels))}"
                )
                lines.append(f"{metric.name}_count{plain} {count}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_table(registry: MetricsRegistry) -> str:
    """Fixed-width table: one row per series, histograms with quantiles."""
    headers = ["metric", "labels", "value / quantiles"]
    rows: List[List[str]] = []
    for entry in registry_snapshot(registry):
        labels = ",".join(
            f"{k}={v}" for k, v in sorted(entry["labels"].items())
        )
        if entry["kind"] == "histogram":
            value = (
                f"n={entry['count']} sum={entry['sum']:.6g} "
                f"p50={entry['p50']:.3g} p90={entry['p90']:.3g} "
                f"p99={entry['p99']:.3g}"
            )
        else:
            value = _format_number(entry["value"])
        rows.append([entry["metric"], labels, value])
    if not rows:
        return "(no telemetry recorded)"
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
