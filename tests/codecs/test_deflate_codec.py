"""DEFLATE/zlib codec tests, including stdlib interop both directions."""

import zlib as stdlib_zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.codecs import CodecError, CorruptDataError, ZlibCompressor
from repro.codecs.base import StageCounters
from repro.codecs.deflate import tables as dtables
from repro.codecs.deflate.deflate import _rle_code_lengths


class TestLengthDistanceTables:
    def test_length_code_boundaries(self):
        assert dtables.length_code(3) == 257
        assert dtables.length_code(10) == 264
        assert dtables.length_code(11) == 265
        assert dtables.length_code(12) == 265
        assert dtables.length_code(258) == 285

    def test_length_code_range_check(self):
        with pytest.raises(ValueError):
            dtables.length_code(2)
        with pytest.raises(ValueError):
            dtables.length_code(259)

    def test_length_roundtrip(self):
        for length in range(3, 259):
            code = dtables.length_code(length)
            base, bits = dtables.LENGTH_TABLE[code - 257]
            assert base <= length < base + (1 << bits) + (bits == 0 and code == 285)

    def test_distance_code_boundaries(self):
        assert dtables.distance_code(1) == 0
        assert dtables.distance_code(4) == 3
        assert dtables.distance_code(5) == 4
        assert dtables.distance_code(32768) == 29

    def test_distance_roundtrip(self):
        for distance in [1, 2, 5, 24, 100, 1000, 5000, 32768]:
            code = dtables.distance_code(distance)
            base, bits = dtables.DISTANCE_TABLE[code]
            assert base <= distance < base + (1 << bits) + (bits == 0)

    def test_fixed_tree_shape(self):
        lit = dtables.fixed_literal_lengths()
        assert len(lit) == 288
        assert lit[0] == 8 and lit[144] == 9 and lit[256] == 7 and lit[280] == 8
        assert dtables.fixed_distance_lengths() == [5] * 30


class TestCodeLengthRLE:
    def _expand(self, items):
        out = []
        for symbol, extra, __ in items:
            if symbol < 16:
                out.append(symbol)
            elif symbol == 16:
                out.extend([out[-1]] * (extra + 3))
            elif symbol == 17:
                out.extend([0] * (extra + 3))
            else:
                out.extend([0] * (extra + 11))
        return out

    @pytest.mark.parametrize(
        "lengths",
        [
            [5, 5, 5, 5, 5, 5, 5, 5],
            [0] * 138,
            [0] * 200,
            [3] + [0] * 9 + [3],
            [7, 7, 0, 0, 0, 8, 8, 8, 8, 8, 8, 8],
            [1],
            [0, 0],
        ],
    )
    def test_rle_expands_back(self, lengths):
        assert self._expand(_rle_code_lengths(lengths)) == lengths

    def test_rle_compresses_long_zero_runs(self):
        items = _rle_code_lengths([0] * 138)
        assert len(items) == 1
        assert items[0][0] == 18


class TestZlibCompressor:
    def test_roundtrip_all_levels(self, zlib_codec, payloads):
        for name, data in payloads.items():
            for level in range(0, 10):
                result = zlib_codec.compress(data, level)
                assert zlib_codec.decompress(result.data).data == data, (name, level)

    def test_our_output_decodable_by_stdlib(self, zlib_codec, payloads):
        for name, data in payloads.items():
            for level in (0, 1, 5, 6, 9):
                result = zlib_codec.compress(data, level)
                assert stdlib_zlib.decompress(result.data) == data, (name, level)

    def test_stdlib_output_decodable_by_us(self, zlib_codec, payloads):
        for name, data in payloads.items():
            for level in (1, 6, 9):
                reference = stdlib_zlib.compress(data, level)
                assert zlib_codec.decompress(reference).data == data, (name, level)

    def test_level0_is_stored(self, zlib_codec, payloads):
        data = payloads["text"]
        result = zlib_codec.compress(data, 0)
        assert len(result.data) >= len(data)

    def test_level_range(self, zlib_codec):
        with pytest.raises(CodecError):
            zlib_codec.compress(b"x", 10)

    def test_adler_mismatch_detected(self, zlib_codec, payloads):
        result = zlib_codec.compress(payloads["text"], 6)
        corrupted = result.data[:-1] + bytes([result.data[-1] ^ 1])
        with pytest.raises(CorruptDataError):
            zlib_codec.decompress(corrupted)

    def test_bad_header_check_detected(self, zlib_codec):
        with pytest.raises(CorruptDataError):
            zlib_codec.decompress(b"\x78\x00" + b"\x00" * 10)

    def test_preset_dictionary_flag_rejected(self, zlib_codec):
        header = bytes([0x78, ((0x78 * 256 + 0x20) % 31 and 0) or 0])
        # construct a header with FDICT set and valid check
        cmf = 0x78
        flg = 0x20
        rem = (cmf * 256 + flg) % 31
        if rem:
            flg += 31 - rem
        with pytest.raises(CorruptDataError):
            zlib_codec.decompress(bytes([cmf, flg]) + b"\x00" * 10)

    def test_higher_level_not_meaningfully_worse(self, zlib_codec, payloads):
        # The paper notes level "bets" can occasionally lose (Section IV-C);
        # allow 2% slack for per-input inversions.
        data = payloads["structured"]
        l1 = zlib_codec.compress(data, 1)
        l9 = zlib_codec.compress(data, 9)
        assert len(l9.data) <= len(l1.data) * 1.02

    def test_comparable_to_stdlib_ratio(self, zlib_codec, payloads):
        # Our deflate should land within 15% of stdlib zlib at level 6.
        data = payloads["structured"] * 4
        ours = len(zlib_codec.compress(data, 6).data)
        theirs = len(stdlib_zlib.compress(data, 6))
        assert ours <= theirs * 1.15


@settings(max_examples=25, deadline=None)
@given(st.binary(max_size=3000))
def test_interop_property(data):
    codec = ZlibCompressor()
    ours = codec.compress(data, 6).data
    assert stdlib_zlib.decompress(ours) == data
    theirs = stdlib_zlib.compress(data, 6)
    assert codec.decompress(theirs).data == data
