"""``repro.faults`` — deterministic, seed-driven fault injection.

The test harness for the resilience layer (:mod:`repro.resilience`): a
:class:`FaultPlan` declares which faults fire where and how often, a
:class:`FaultInjector` executes it reproducibly (per-spec string-seeded
RNGs; one seed -> one byte-identical fault history), and the wrappers
thread the faults into real traffic:

- :class:`FaultyCodec` — wrap any codec; calls fail, stall, or see
  corrupted payloads.
- :class:`FaultyChannel` — wrap any RPC channel; messages drop, spike,
  or arrive corrupted, inside the channel's retry loop.
- :func:`scrub_sstable` / :func:`scrub_cache` — permanent storage-media
  corruption of SST blocks / resident cache entries.

``repro chaos --plan <name> --seed <n>`` (see :mod:`repro.chaos`) runs
the full service stack under a named plan and prints a survival
scorecard.
"""

from repro.faults.corrupt import append_garbage, corrupt, flip_bits, truncate
from repro.faults.crash import CrashInjector, CrashPlan, CrashPoint, SimulatedCrash
from repro.faults.plan import (
    KINDS,
    NAMED_PLANS,
    PAYLOAD_KINDS,
    CodecEffects,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    WireEffects,
)
from repro.faults.wrappers import (
    FaultyChannel,
    FaultyCodec,
    InjectedCodecError,
    scrub_cache,
    scrub_sstable,
)

__all__ = [
    "CodecEffects",
    "CrashInjector",
    "CrashPlan",
    "CrashPoint",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultyChannel",
    "FaultyCodec",
    "InjectedCodecError",
    "KINDS",
    "NAMED_PLANS",
    "PAYLOAD_KINDS",
    "SimulatedCrash",
    "WireEffects",
    "append_garbage",
    "corrupt",
    "flip_bits",
    "scrub_cache",
    "scrub_sstable",
    "truncate",
]
