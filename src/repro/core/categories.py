"""Workload categories and offload guidance (paper Section VI).

Section VI-A sorts datacenter compression users into four categories:

- **A. Compression-speed-sensitive** — prefers low levels (write-heavy
  pipelines like DW2's shuffle);
- **B. Decompression-speed-sensitive** — prefers small blocks (read-latency
  SLOs like KVSTORE1);
- **C. Latency-insensitive** — prefers high levels (long-term storage like
  DW1's ingestion);
- **D. Small-data-friendly** — prefers dictionary compression (caches).

Section VI-B then argues categories A and C benefit from HW offload (bulk
compression, CPU relief) while B and D should stay on the CPU unless the
accelerator is on-chip, because per-call offload overhead swamps small
blocks. :func:`classify_workload` and :func:`offload_recommendation`
implement exactly that guidance.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence


class WorkloadCategory(Enum):
    COMPRESSION_SPEED_SENSITIVE = "A"
    DECOMPRESSION_SPEED_SENSITIVE = "B"
    LATENCY_INSENSITIVE = "C"
    SMALL_DATA_FRIENDLY = "D"


@dataclass(frozen=True)
class WorkloadTraits:
    """What the classifier needs to know about a compression user."""

    #: median block/item size passed to the codec, bytes
    median_block_bytes: int
    #: decompressions per compression (read amplification)
    reads_per_write: float
    #: is (de)compression on a request-latency-critical path?
    latency_critical: bool
    #: does the data consist of many same-typed small messages?
    typed_small_messages: bool = False


def classify_workload(traits: WorkloadTraits) -> WorkloadCategory:
    """Map workload traits onto the paper's four categories.

    Order of precedence follows the paper's descriptions: dictionary-shaped
    small-message data is D regardless of latency; small-block latency-
    critical readers are B; latency-critical writers are A; everything
    else (no latency requirement) is C.
    """
    if traits.typed_small_messages and traits.median_block_bytes < 4096:
        return WorkloadCategory.SMALL_DATA_FRIENDLY
    if traits.latency_critical:
        if traits.reads_per_write > 1.5:
            return WorkloadCategory.DECOMPRESSION_SPEED_SENSITIVE
        return WorkloadCategory.COMPRESSION_SPEED_SENSITIVE
    return WorkloadCategory.LATENCY_INSENSITIVE


@dataclass(frozen=True)
class OffloadAdvice:
    """Recommendation for one workload on one accelerator placement."""

    category: WorkloadCategory
    offload: bool
    reason: str


#: per-call offload cost below which an accelerator counts as "on-chip"
_ON_CHIP_THRESHOLD_SECONDS = 2e-6


def offload_recommendation(
    traits: WorkloadTraits,
    offload_overhead_seconds: float,
    gamma: float = 10.0,
    cpu_seconds_per_call: Optional[float] = None,
) -> OffloadAdvice:
    """Section VI-B's guidance, quantified.

    Categories A and C offload profitably (bulk work, CPU relief). B and D
    only offload when the accelerator is close enough that the per-call
    crossing cost does not dominate their small blocks; when
    ``cpu_seconds_per_call`` is known the break-even is computed exactly:
    offload wins iff ``cpu/gamma + overhead < cpu``.
    """
    category = classify_workload(traits)
    if cpu_seconds_per_call is not None:
        accel_seconds = cpu_seconds_per_call / gamma + offload_overhead_seconds
        if accel_seconds >= cpu_seconds_per_call:
            return OffloadAdvice(
                category,
                False,
                f"offload loses: {accel_seconds * 1e6:.1f}us vs CPU "
                f"{cpu_seconds_per_call * 1e6:.1f}us per call",
            )
    if category in (
        WorkloadCategory.COMPRESSION_SPEED_SENSITIVE,
        WorkloadCategory.LATENCY_INSENSITIVE,
    ):
        return OffloadAdvice(
            category, True,
            "bulk (de)compression amortizes the crossing; frees CPU cycles",
        )
    if offload_overhead_seconds <= _ON_CHIP_THRESHOLD_SECONDS:
        return OffloadAdvice(
            category, True,
            "accelerator is effectively on-chip; small blocks still win",
        )
    return OffloadAdvice(
        category, False,
        "per-call offload overhead dominates small blocks; stay on CPU",
    )


def classify_catalog() -> Sequence[tuple]:
    """Classify the Table-I services; returns (name, category) pairs."""
    presets = {
        "DW1": WorkloadTraits(262144, 0.2, False),
        "DW2": WorkloadTraits(262144, 0.4, True),
        "DW3": WorkloadTraits(262144, 8.0, False),
        "DW4": WorkloadTraits(131072, 2.0, False),
        "ADS1": WorkloadTraits(16384, 1.0, True),
        "CACHE1": WorkloadTraits(400, 20.0, True, typed_small_messages=True),
        "CACHE2": WorkloadTraits(250, 30.0, True, typed_small_messages=True),
        "KVSTORE1": WorkloadTraits(16384, 6.0, True),
    }
    return [(name, classify_workload(traits)) for name, traits in presets.items()]
