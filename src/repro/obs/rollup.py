"""Fleet rollup: fold per-shard registries and window series into one.

The cluster plane records telemetry *per shard* — each node owns a
:class:`~repro.obs.timeseries.TimeSeriesRecorder`, advanced in lockstep
by the cluster simulator's event loop — and every fleet-level number is
derived by merging, never by double recording. Two folds cover it:

- :func:`merge_registries` — the whole-run view: fold every shard's
  cumulative registry into one. Because counters add and log-bucket
  histograms merge losslessly (bucket counts, count/sum, min/max all
  survive), the result is *exactly* what one global recorder observing
  the same events would have produced; ``tests/obs/test_rollup.py`` and
  the cluster determinism suite prove the equality on real simulations.

- :func:`merge_shard_windows` — the time-series view: align each
  shard's closed windows **by index** and merge the aligned slices into
  one fleet window per index. The alignment rule matters for SLO math:
  a fleet window's ``[start, end)`` span is the *shared* interval, not
  the per-shard sum, so span-normalized signals (goodput bytes/second,
  burn rates over ``sum(w.width)``) read correctly. Concatenating shard
  windows instead would multiply the apparent span by the shard count
  and silently deflate every rate by the same factor.

Shards that joined late or retired early simply have empty (or absent)
windows at some indexes; an absent window contributes nothing to the
merge, which is the correct reading of "this node observed no traffic
then".
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import WindowSnapshot


def merge_registries(
    registries: Sequence[MetricsRegistry],
) -> MetricsRegistry:
    """Fold shard registries into one; associative and lossless."""
    merged = MetricsRegistry()
    for registry in registries:
        merged.merge(registry)
    return merged


def merge_shard_windows(
    per_shard: Sequence[Sequence[WindowSnapshot]],
) -> List[WindowSnapshot]:
    """Merge per-shard window series into one fleet series, by index.

    Every input series must use the same window width and the same
    epoch (index 0 starts at the same time) — true by construction for
    recorders driven off one SimClock. Raises ``ValueError`` when two
    shards disagree about a window's bounds, because silently merging
    misaligned windows would corrupt every rate derived from them.
    """
    by_index: Dict[int, List[WindowSnapshot]] = {}
    for series in per_shard:
        for window in series:
            by_index.setdefault(window.index, []).append(window)
    fleet: List[WindowSnapshot] = []
    for index in sorted(by_index):
        slices = by_index[index]
        first = slices[0]
        for other in slices[1:]:
            if other.start != first.start or other.end != first.end:
                raise ValueError(
                    f"window #{index} misaligned across shards: "
                    f"[{first.start}, {first.end}) vs "
                    f"[{other.start}, {other.end})"
                )
        registry = MetricsRegistry()
        for window in slices:
            registry.merge(window.registry)
        fleet.append(
            WindowSnapshot(index, first.start, first.end, registry)
        )
    return fleet
