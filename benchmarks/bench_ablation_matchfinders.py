"""Ablation: match-finding strategy ladder (DESIGN.md section 5).

Holds the entropy stage fixed (always the Zstd-style coder) and sweeps the
parsing strategy, isolating the compression-speed/ratio axis the paper
attributes to the LZ match-finding stage.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.codecs.base import StageCounters
from repro.codecs.matchfinders import MatchFinderParams, finder_for_strategy
from repro.codecs.zstd import blocks as zblocks
from repro.corpus import generate_records
from repro.perfmodel import DEFAULT_MACHINE

_STRATEGIES = [
    ("fast", MatchFinderParams(strategy="fast")),
    ("greedy", MatchFinderParams(strategy="greedy", search_depth=8)),
    ("lazy", MatchFinderParams(strategy="lazy", search_depth=16, lazy_steps=1)),
    ("lazy2", MatchFinderParams(strategy="lazy2", search_depth=32, lazy_steps=2)),
    ("optimal", MatchFinderParams(strategy="optimal", search_depth=32)),
]


@pytest.fixture(scope="module")
def sweep():
    data = generate_records(32768, seed=170)
    out = {}
    for name, params in _STRATEGIES:
        counters = StageCounters(bytes_in=len(data))
        finder = finder_for_strategy(params.strategy)
        tokens = finder.parse(data, 0, params, counters)
        payload = zblocks.encode_block(data, 0, tokens, counters)
        out[name] = (
            len(data) / len(payload),
            DEFAULT_MACHINE.compress_speed("zstd", counters) / 1e6,
            counters.match_candidates,
        )
    return out


def test_ablation_matchfinders(benchmark, sweep, figure_output):
    rows = [
        [name, f"{ratio:.3f}", f"{speed:.0f}", candidates]
        for name, (ratio, speed, candidates) in sweep.items()
    ]
    figure_output(
        "ablation_matchfinders",
        format_table(
            ["strategy", "ratio", "modeled MB/s", "candidates"],
            rows,
            title="Ablation: parsing strategy at a fixed entropy stage",
        ),
    )
    # Effort ladder: strictly more candidate evaluations down the ladder...
    candidates = [sweep[name][2] for name, __ in _STRATEGIES]
    assert candidates == sorted(candidates)
    # ...buying ratio at the endpoints.
    assert sweep["lazy2"][0] > sweep["fast"][0]
    # ...and costing modeled speed at the endpoints.
    assert sweep["optimal"][1] < sweep["fast"][1]

    data = generate_records(8192, seed=171)
    fast = finder_for_strategy("fast")
    params = MatchFinderParams(strategy="fast")
    benchmark(lambda: fast.parse(data, 0, params))
