"""Graph rungs in the serving plane: opt-in, exercised, byte-identical.

The degradation ladder gains trained graphs as *candidates* only when
asked (``graphs=``); by default nothing changes. On a record-heavy
tenant the trained record graph wins rung 0 outright and the simulation
serves through it — the serving-integration acceptance for this PR.
"""

import pytest

from repro.graphs.samples import category_sample
from repro.serving.degrade import build_ladder
from repro.serving.simulate import build_scenario_ladder, run_simulation
from repro.serving.workload import TenantSpec

_RECORD_TENANTS = [
    TenantSpec(
        name="feed-records",
        weight=1.0,
        median_bytes=49152,
        sigma=0.25,
        deadline_seconds=0.5,
        corpus="records",
    )
]


def test_build_ladder_gains_graph_rung_on_record_samples():
    samples = [category_sample("record", size=49152, seed=s) for s in (1, 2)]
    ladder = build_ladder(
        samples,
        algorithms=("zstd", "lz4"),
        levels=(1, 2, 3, 6),
        graphs=("record",),
    )
    assert ladder.labels()[0] == "graph:record-1", (
        f"expected the trained record graph at rung 0, got {ladder.labels()}"
    )
    # the graph rung must still be the best-ratio rung on the ladder
    assert ladder.rungs[0].ratio == max(r.ratio for r in ladder.rungs)


def test_default_ladder_is_unchanged_without_graphs():
    samples = [category_sample("record", size=16384, seed=1)]
    base = build_ladder(samples, algorithms=("zstd", "lz4"), levels=(1, 3))
    explicit = build_ladder(
        samples, algorithms=("zstd", "lz4"), levels=(1, 3), graphs=()
    )
    assert base.labels() == explicit.labels()
    assert [r.ratio for r in base.rungs] == [r.ratio for r in explicit.rungs]


def test_simulation_exercises_graph_rung():
    report = run_simulation(
        scenario="baseline",
        scale=0.1,
        seed=7,
        tenants=_RECORD_TENANTS,
        graphs=["record"],
        with_timeline=False,
    )
    assert report.ladder_labels[0] == "graph:record-1"
    assert report.served > 0, "the graph rung was never exercised"
    assert report.rung0_ratio > 4.0


def test_simulation_with_graphs_is_identical_across_jobs():
    reports = [
        run_simulation(
            scenario="baseline",
            scale=0.1,
            seed=7,
            tenants=_RECORD_TENANTS,
            graphs=["record"],
            jobs=jobs,
            with_timeline=False,
        )
        for jobs in (1, 2)
    ]
    first, second = reports
    assert first.ladder_labels == second.ladder_labels
    assert first.served == second.served
    assert first.rung0_ratio == second.rung0_ratio
    assert first.shed_rate() == second.shed_rate()


def test_simulation_without_graphs_matches_pre_graph_behavior():
    """graphs=None must be a strict no-op on an existing scenario."""
    base = run_simulation(
        scenario="baseline", scale=0.05, seed=7, with_timeline=False
    )
    explicit = run_simulation(
        scenario="baseline", scale=0.05, seed=7, graphs=[], with_timeline=False
    )
    assert base.ladder_labels == explicit.ladder_labels
    assert base.served == explicit.served


def test_build_scenario_ladder_accepts_graphs():
    class _Req:
        def __init__(self, payload):
            self.payload = payload

    requests = [
        _Req(category_sample("record", size=49152, seed=s)) for s in range(4)
    ]
    ladder = build_scenario_ladder(requests, graphs=("record",))
    assert "graph:record-1" in ladder.labels()


def test_unknown_graph_name_fails_loudly():
    samples = [category_sample("record", size=8192, seed=1)]
    with pytest.raises(Exception):
        build_ladder(
            samples, algorithms=("zstd",), levels=(1,), graphs=("missing",)
        )
