"""Admission control: token bucket, AIMD limit, verdicts."""

import pytest

from repro.resilience.clock import SimClock
from repro.serving.admission import (
    ADMIT,
    SHED,
    THROTTLE,
    AdaptiveConcurrencyLimit,
    AdmissionController,
    AdmissionVerdict,
    TokenBucket,
)


class TestTokenBucket:
    def test_burst_then_exhaustion(self):
        bucket = TokenBucket(rate=10.0, burst=3, clock=SimClock())
        assert bucket.try_take()
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_follows_the_clock(self):
        clock = SimClock()
        bucket = TokenBucket(rate=10.0, burst=5, clock=clock)
        for __ in range(5):
            assert bucket.try_take()
        assert not bucket.try_take()
        clock.advance(0.1)  # 1 token at 10/s
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = SimClock()
        bucket = TokenBucket(rate=100.0, burst=4, clock=clock)
        clock.advance(1000.0)
        assert bucket.tokens == 4.0

    def test_fractional_take(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        assert bucket.try_take(0.5)
        assert bucket.try_take(0.5)
        assert not bucket.try_take(0.5)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


class TestAdaptiveConcurrencyLimit:
    def test_additive_increase_under_target(self):
        limiter = AdaptiveConcurrencyLimit(
            target_latency=0.1, initial=4.0, maximum=8.0
        )
        for __ in range(40):
            limiter.on_complete(0.01)
        assert limiter.limit == 8
        assert limiter.increases == 40 and limiter.decreases == 0

    def test_multiplicative_decrease_over_target(self):
        limiter = AdaptiveConcurrencyLimit(
            target_latency=0.1, initial=8.0, backoff=0.5
        )
        limiter.on_complete(1.0)
        assert limiter.limit == 4
        limiter.on_complete(1.0)
        assert limiter.limit == 2

    def test_floor_is_one(self):
        limiter = AdaptiveConcurrencyLimit(
            target_latency=0.1, initial=1.0, minimum=1.0, backoff=0.5
        )
        for __ in range(10):
            limiter.on_complete(9.9)
        assert limiter.limit == 1

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            AdaptiveConcurrencyLimit(target_latency=0.0)
        with pytest.raises(ValueError):
            AdaptiveConcurrencyLimit(target_latency=0.1, initial=0.5)
        with pytest.raises(ValueError):
            AdaptiveConcurrencyLimit(target_latency=0.1, backoff=1.0)


class TestAdmissionController:
    def test_admit_by_default(self):
        verdict = AdmissionController().admit(queue_depth=0, queue_capacity=10)
        assert verdict == AdmissionVerdict(ADMIT)
        assert verdict.admitted

    def test_throttle_before_shed(self):
        clock = SimClock()
        controller = AdmissionController(
            bucket=TokenBucket(rate=1.0, burst=1, clock=clock)
        )
        assert controller.admit(0, 10).decision == ADMIT
        # bucket empty AND queue full: the rate limit rules first
        verdict = controller.admit(10, 10)
        assert verdict.decision == THROTTLE
        assert "token bucket" in verdict.reason
        assert controller.stats.throttled == 1

    def test_shed_at_queue_threshold(self):
        controller = AdmissionController(queue_shed_threshold=0.5)
        assert controller.admit(4, 10).decision == ADMIT
        verdict = controller.admit(5, 10)
        assert verdict.decision == SHED
        assert "5/10" in verdict.reason
        assert controller.stats.shed_queue_full == 1
        assert controller.stats.offered == 2

    def test_concurrency_clipped_by_limiter(self):
        limiter = AdaptiveConcurrencyLimit(
            target_latency=0.1, initial=2.0, backoff=0.5
        )
        controller = AdmissionController(limiter=limiter)
        assert controller.concurrency(8) == 2
        limiter.on_complete(1.0)  # limit drops to 1
        assert controller.concurrency(8) == 1
        assert AdmissionController().concurrency(8) == 8

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            AdmissionController(queue_shed_threshold=0.0)
        with pytest.raises(ValueError):
            AdmissionController(queue_shed_threshold=1.5)
