"""ADS1: ads-serving ML inference with compressed request payloads.

"Since machine learning input features are usually large with frequent
requests, transmitting them over the wire is expensive ... Since this
service has a strict latency requirement, it is important to understand the
trade-off between the reduction in request size ... and the increase in the
application latency" (Section IV-D).
"""

from repro.services.ads.service import AdsInferenceService, AdsRequestStats

__all__ = ["AdsInferenceService", "AdsRequestStats"]
