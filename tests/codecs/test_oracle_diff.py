"""Differential tests against the stdlib deflate oracle.

CPython's ``zlib``/``gzip`` modules wrap the canonical C zlib, which makes
them an implementation-independent oracle for the deflate family: every
stream our encoders emit must inflate bit-exactly there, and everything
the oracle emits must inflate here. The level sweep 0-9 walks the whole
strategy table (stored at 0, fast/greedy below 4, lazy above), so each
match finder's token stream gets checked against the oracle, not just
against our own decoder. Chunked multi-member output must additionally
satisfy the documented concatenation semantics (RFC 1950/1952) under the
stdlib decoders -- that is the contract the parallel engine relies on.
"""

import gzip as stdlib_gzip
import zlib as stdlib_zlib

import pytest

from repro.codecs import GzipCompressor, ZlibCompressor
from repro.parallel import compress_chunked

_ORACLE_KEYS = ["empty", "short", "rle", "periodic", "text", "structured", "random"]
_LEVELS = list(range(10))


def _oracle_inflate_members(payload: bytes) -> bytes:
    """Inflate concatenated zlib streams with the stdlib, member by member."""
    out = bytearray()
    while payload:
        dec = stdlib_zlib.decompressobj()
        out.extend(dec.decompress(payload))
        assert dec.eof, "oracle saw a truncated zlib member"
        payload = dec.unused_data
    return bytes(out)


@pytest.mark.parametrize("level", _LEVELS)
@pytest.mark.parametrize("key", _ORACLE_KEYS)
class TestOursToOracle:
    def test_zlib_stream_accepted_by_oracle(self, payloads, key, level):
        data = payloads[key]
        blob = ZlibCompressor().compress(data, level).data
        assert stdlib_zlib.decompress(blob) == data, (key, level)

    def test_gzip_stream_accepted_by_oracle(self, payloads, key, level):
        data = payloads[key]
        blob = GzipCompressor().compress(data, level).data
        assert stdlib_gzip.decompress(blob) == data, (key, level)


@pytest.mark.parametrize("level", [0, 1, 6, 9])
@pytest.mark.parametrize("key", _ORACLE_KEYS)
class TestOracleToOurs:
    def test_our_inflate_accepts_oracle_zlib(self, payloads, key, level):
        data = payloads[key]
        blob = stdlib_zlib.compress(data, level)
        assert ZlibCompressor().decompress(blob).data == data, (key, level)

    def test_our_inflate_accepts_oracle_gzip(self, payloads, key, level):
        data = payloads[key]
        blob = stdlib_gzip.compress(data, compresslevel=level, mtime=0)
        assert GzipCompressor().decompress(blob).data == data, (key, level)


@pytest.mark.parametrize("codec_cls", [ZlibCompressor, GzipCompressor])
def test_chunked_members_accepted_by_oracle(payloads, codec_cls):
    """Parallel-engine output is plain multi-member deflate to the oracle."""
    data = payloads["text"] + payloads["structured"] + payloads["random"]
    codec = codec_cls()
    chunked = compress_chunked(codec, data, 6, chunk_size=1024, jobs=1)
    assert chunked.chunk_count > 1
    if codec.name == "gzip":
        # stdlib gzip natively concatenates members (RFC 1952 section 2.2).
        assert stdlib_gzip.decompress(chunked.data) == data
    else:
        assert _oracle_inflate_members(chunked.data) == data
    # And our own decoder agrees with the oracle.
    assert codec.decompress(chunked.data).data == data


def test_oracle_and_ours_agree_on_empty_members(payloads):
    """Zero-byte input still emits one well-formed member."""
    for codec_cls in (ZlibCompressor, GzipCompressor):
        codec = codec_cls()
        chunked = compress_chunked(codec, b"", 6, chunk_size=1024, jobs=1)
        assert chunked.chunk_count == 1
        if codec.name == "gzip":
            assert stdlib_gzip.decompress(chunked.data) == b""
        else:
            assert _oracle_inflate_members(chunked.data) == b""
        assert codec.decompress(chunked.data).data == b""
