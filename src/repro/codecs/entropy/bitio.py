"""LSB-first bit-level reader and writer.

Both DEFLATE and FSE consume bits least-significant-bit first within each
byte, so a single pair of primitives serves every entropy coder in the
package. The writer accumulates into a Python int (cheap arbitrary-precision
shifting) and flushes whole bytes eagerly to keep the accumulator small.
"""

from __future__ import annotations


class BitWriter:
    """Accumulates bit fields LSB-first and renders them to bytes."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._bit_count = 0

    def write(self, value: int, num_bits: int) -> None:
        """Append the low ``num_bits`` bits of ``value``."""
        if num_bits < 0:
            raise ValueError("num_bits must be non-negative")
        if num_bits == 0:
            return
        if value < 0:
            raise ValueError("value must be non-negative")
        self._accumulator |= (value & ((1 << num_bits) - 1)) << self._bit_count
        self._bit_count += num_bits
        while self._bit_count >= 8:
            self._buffer.append(self._accumulator & 0xFF)
            self._accumulator >>= 8
            self._bit_count -= 8

    def align_to_byte(self) -> None:
        """Pad with zero bits up to the next byte boundary."""
        if self._bit_count:
            self._buffer.append(self._accumulator & 0xFF)
            self._accumulator = 0
            self._bit_count = 0

    def write_bytes(self, data: bytes) -> None:
        """Append whole bytes; the stream must be byte-aligned."""
        if self._bit_count:
            raise ValueError("stream is not byte-aligned")
        self._buffer.extend(data)

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return len(self._buffer) * 8 + self._bit_count

    def getvalue(self) -> bytes:
        """Return the byte rendering, zero-padding any trailing partial byte."""
        out = bytearray(self._buffer)
        if self._bit_count:
            out.append(self._accumulator & 0xFF)
        return bytes(out)


class BitReader:
    """Reads bit fields LSB-first from a byte string."""

    def __init__(self, data: bytes, start: int = 0) -> None:
        self._data = data
        self._byte_pos = start
        self._accumulator = 0
        self._bit_count = 0

    def read(self, num_bits: int) -> int:
        """Read ``num_bits`` bits; raises ``EOFError`` past end of data."""
        if num_bits < 0:
            raise ValueError("num_bits must be non-negative")
        while self._bit_count < num_bits:
            if self._byte_pos >= len(self._data):
                raise EOFError("bit stream exhausted")
            self._accumulator |= self._data[self._byte_pos] << self._bit_count
            self._byte_pos += 1
            self._bit_count += 8
        value = self._accumulator & ((1 << num_bits) - 1)
        self._accumulator >>= num_bits
        self._bit_count -= num_bits
        return value

    def peek(self, num_bits: int) -> int:
        """Return the next ``num_bits`` bits without consuming them.

        Past end-of-stream the missing bits read as zero, which is what
        table-driven Huffman decoding needs for its final symbols.
        """
        while self._bit_count < num_bits and self._byte_pos < len(self._data):
            self._accumulator |= self._data[self._byte_pos] << self._bit_count
            self._byte_pos += 1
            self._bit_count += 8
        return self._accumulator & ((1 << num_bits) - 1)

    def skip(self, num_bits: int) -> None:
        """Consume ``num_bits`` previously peeked bits."""
        if num_bits > self._bit_count:
            raise EOFError("cannot skip past available bits")
        self._accumulator >>= num_bits
        self._bit_count -= num_bits

    def align_to_byte(self) -> None:
        """Drop bits up to the next byte boundary."""
        drop = self._bit_count % 8
        self._accumulator >>= drop
        self._bit_count -= drop

    def read_bytes(self, count: int) -> bytes:
        """Read whole bytes; the stream must be byte-aligned."""
        if self._bit_count % 8:
            raise ValueError("stream is not byte-aligned")
        # Serve buffered whole bytes first.
        out = bytearray()
        while self._bit_count and count:
            out.append(self._accumulator & 0xFF)
            self._accumulator >>= 8
            self._bit_count -= 8
            count -= 1
        if count:
            if self._byte_pos + count > len(self._data):
                raise EOFError("byte stream exhausted")
            out.extend(self._data[self._byte_pos : self._byte_pos + count])
            self._byte_pos += count
        return bytes(out)

    @property
    def bits_remaining(self) -> int:
        """Bits left in the stream (buffered plus unread bytes)."""
        return self._bit_count + 8 * (len(self._data) - self._byte_pos)

    @property
    def byte_position(self) -> int:
        """Byte offset of the read cursor within the underlying data.

        Exact only when the stream is byte-aligned (call
        :meth:`align_to_byte` first); mid-byte the partially-consumed byte
        counts as unread. Frame-aware decoders use this to find where one
        member ends and the next concatenated member begins.
        """
        return self._byte_pos - self._bit_count // 8
