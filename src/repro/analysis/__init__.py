"""Analysis helpers: distributions and report rendering for the benches."""

from repro.analysis.distributions import (
    log2_histogram,
    percentile,
    size_bucket_label,
    summarize_sizes,
)
from repro.analysis.reporting import format_series, format_table
from repro.analysis.plots import ascii_scatter, tradeoff_curve

__all__ = [
    "percentile",
    "log2_histogram",
    "size_bucket_label",
    "summarize_sizes",
    "format_table",
    "format_series",
    "ascii_scatter",
    "tradeoff_curve",
]
