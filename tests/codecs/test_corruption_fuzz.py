"""Corruption robustness: decoders must fail *cleanly* on damaged input.

Any byte flip, truncation, or random garbage must either round-trip (if it
hit dead bits) or raise :class:`CodecError` -- never an arbitrary
IndexError/KeyError/MemoryError escape.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.codecs import CodecError, get_codec

_CODEC_NAMES = ["zstd", "lz4", "zlib", "gzip"]


def _attempt(codec, payload: bytes) -> None:
    """Decode; only CodecError (or success) is acceptable."""
    try:
        codec.decompress(payload, max_output_bytes=1 << 22)
    except CodecError:
        pass


@pytest.mark.parametrize("codec_name", _CODEC_NAMES)
class TestByteFlips:
    def test_every_single_byte_flip_fails_cleanly(self, codec_name):
        codec = get_codec(codec_name)
        data = b"".join(b"structured payload %d " % i for i in range(40))
        blob = bytearray(codec.compress(data, codec.default_level).data)
        for position in range(len(blob)):
            corrupted = bytearray(blob)
            corrupted[position] ^= 0xFF
            _attempt(codec, bytes(corrupted))

    def test_random_multi_byte_flips(self, codec_name):
        codec = get_codec(codec_name)
        rng = random.Random(99)
        data = bytes(rng.getrandbits(8) for _ in range(2000)) + b"tail " * 100
        blob = bytearray(codec.compress(data, codec.default_level).data)
        for __ in range(60):
            corrupted = bytearray(blob)
            for __ in range(rng.randint(1, 6)):
                corrupted[rng.randrange(len(corrupted))] ^= rng.randint(1, 255)
            _attempt(codec, bytes(corrupted))

    def test_all_truncations_fail_cleanly(self, codec_name):
        codec = get_codec(codec_name)
        data = b"truncation target " * 50
        blob = codec.compress(data, codec.default_level).data
        for length in range(len(blob)):
            _attempt(codec, blob[:length])

    def test_garbage_with_valid_magic(self, codec_name):
        codec = get_codec(codec_name)
        valid = codec.compress(b"seed", codec.default_level).data
        rng = random.Random(7)
        for __ in range(40):
            garbage = valid[:6] + bytes(
                rng.getrandbits(8) for _ in range(rng.randint(0, 200))
            )
            _attempt(codec, garbage)


@settings(max_examples=60, deadline=None)
@given(payload=st.binary(max_size=400))
def test_pure_garbage_never_escapes_codecerror(payload):
    for codec_name in _CODEC_NAMES:
        _attempt(get_codec(codec_name), payload)
