"""SLO burn-rate math and the multi-window alert state machine."""

from __future__ import annotations

import pytest

from repro.obs.slo import (
    DEFAULT_RULES,
    OK,
    PAGE,
    WARN,
    AlertStateMachine,
    BoundSLO,
    BurnRule,
    EventRateSLO,
    SLOEvaluator,
    metric_total,
)
from repro.obs.timeseries import TimeSeriesRecorder


def _windows(bad_by_window, total_per_window=100):
    """Build closed windows with ``events_total`` counters per spec."""
    rec = TimeSeriesRecorder(width_seconds=1.0)
    for i, bad in enumerate(bad_by_window):
        reg = rec.registry()
        reg.counter("events_total").inc(bad, result="bad")
        reg.counter("events_total").inc(total_per_window - bad, result="good")
        rec.advance(float(i + 1))
    return rec.windows()


def _event_slo(budget=0.01, name="errors"):
    return EventRateSLO(
        name,
        bad=lambda r: metric_total(r, "events_total", result="bad"),
        total=lambda r: metric_total(r, "events_total"),
        budget=budget,
    )


class TestMetricTotal:
    def test_label_filtered_sum(self):
        rec = TimeSeriesRecorder(width_seconds=1.0)
        reg = rec.registry()
        reg.counter("ops").inc(3, kind="a", zone="x")
        reg.counter("ops").inc(5, kind="b", zone="x")
        reg.counter("ops").inc(7, kind="a", zone="y")
        assert metric_total(reg, "ops") == 15
        assert metric_total(reg, "ops", kind="a") == 10
        assert metric_total(reg, "ops", kind="a", zone="y") == 7
        assert metric_total(reg, "ops", kind="c") == 0.0
        assert metric_total(reg, "absent") == 0.0


class TestBurnRates:
    def test_event_rate_burn(self):
        slo = _event_slo(budget=0.01)
        # 2% bad against a 1% budget burns at 2x
        assert slo.burn_rate(_windows([2])) == pytest.approx(2.0)
        assert slo.burn_rate(_windows([0])) == 0.0

    def test_event_rate_no_signal(self):
        slo = _event_slo()
        assert slo.burn_rate(_windows([0], total_per_window=0)) is None

    def test_event_rate_budget_validated(self):
        with pytest.raises(ValueError):
            _event_slo(budget=0.0)
        with pytest.raises(ValueError):
            _event_slo(budget=1.0)

    def test_bound_upper_and_lower(self):
        upper = BoundSLO("p99", value=lambda r: 0.5, bound=0.25, mode="upper")
        assert upper.burn_rate(_windows([0])) == pytest.approx(2.0)
        lower = BoundSLO("rate", value=lambda r: 50.0, bound=100.0, mode="lower")
        assert lower.burn_rate(_windows([0])) == pytest.approx(2.0)
        dead = BoundSLO("rate", value=lambda r: 0.0, bound=100.0, mode="lower")
        assert dead.burn_rate(_windows([0])) == float("inf")
        silent = BoundSLO("p99", value=lambda r: None, bound=0.25)
        assert silent.burn_rate(_windows([0])) is None

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            BoundSLO("x", value=lambda r: 1.0, bound=0.0)
        with pytest.raises(ValueError):
            BoundSLO("x", value=lambda r: 1.0, bound=1.0, mode="sideways")


class TestBurnRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            BurnRule("critical", 4, 2, 6.0)
        with pytest.raises(ValueError):
            BurnRule(PAGE, 2, 4, 6.0)  # short > long
        with pytest.raises(ValueError):
            BurnRule(PAGE, 4, 0, 6.0)
        with pytest.raises(ValueError):
            BurnRule(PAGE, 4, 2, 0.0)

    def test_default_rules_shape(self):
        severities = [r.severity for r in DEFAULT_RULES]
        assert PAGE in severities and WARN in severities


class TestAlertStateMachine:
    def test_immediate_escalation_and_hysteresis(self):
        m = AlertStateMachine("errors", clear_after=2)
        assert m.evaluate(1.0, PAGE, "burning") is not None
        assert m.state == PAGE
        # still burning: no edge, quiet counter stays reset
        assert m.evaluate(2.0, PAGE) is None
        # one quiet evaluation is not enough to step down
        assert m.evaluate(3.0, None) is None
        assert m.state == PAGE
        edge = m.evaluate(4.0, None)
        assert edge is not None and (edge.from_state, edge.to_state) == (
            PAGE,
            WARN,
        )
        # step-down is one severity at a time: PAGE -> WARN -> OK
        assert m.evaluate(5.0, None) is None
        assert m.evaluate(6.0, None).to_state == OK

    def test_quiet_streak_broken_by_refire(self):
        m = AlertStateMachine("errors", clear_after=2)
        m.evaluate(1.0, WARN)
        m.evaluate(2.0, None)
        m.evaluate(3.0, WARN)  # resets the quiet streak
        assert m.evaluate(4.0, None) is None
        assert m.state == WARN

    def test_seconds_accounting_covers_span(self):
        m = AlertStateMachine("errors", clear_after=1)
        m.evaluate(0.0, None)
        m.evaluate(2.0, PAGE)   # 0..2 in OK
        m.evaluate(5.0, None)   # 2..5 in PAGE, then step to WARN
        m.finish(6.0)           # 5..6 in WARN
        assert m.seconds_in[OK] == pytest.approx(2.0)
        assert m.seconds_in[PAGE] == pytest.approx(3.0)
        assert m.seconds_in[WARN] == pytest.approx(1.0)
        assert sum(m.seconds_in.values()) == pytest.approx(6.0)

    def test_clear_after_validated(self):
        with pytest.raises(ValueError):
            AlertStateMachine("x", clear_after=0)


class TestSLOEvaluator:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            SLOEvaluator([_event_slo(name="a"), _event_slo(name="a")])

    def test_multiwindow_pages_only_on_sustained_burn(self):
        rules = (
            BurnRule(PAGE, long_windows=4, short_windows=2, threshold=6.0),
            BurnRule(WARN, long_windows=8, short_windows=2, threshold=1.5),
        )
        slo = _event_slo(budget=0.01)

        def run(bad_by_window):
            evaluator = SLOEvaluator([slo], rules=rules)
            windows = _windows(bad_by_window)
            for i in range(len(windows)):
                evaluator.on_window(windows[: i + 1], float(i + 1))
            evaluator.finish(float(len(windows)))
            return evaluator

        # one hot window (10x burn in the short view) diluted to 5x by
        # the 4-window long view: below the 6x page threshold -> no page
        spike = run([0, 0, 0, 20, 0, 0])
        assert all(t.to_state != PAGE for t in spike.transitions)
        # sustained 12% bad vs 1% budget: burns 12x in both views -> page
        sustained = run([12, 12, 12, 12])
        assert any(t.to_state == PAGE for t in sustained.transitions)
        assert sustained.states()["errors"] == PAGE
        assert sustained.total_page_seconds() > 0
        assert sustained.worst_state() == PAGE

    def test_burns_reported_page_rule_first(self):
        evaluator = SLOEvaluator([_event_slo()])
        windows = _windows([2, 2])
        evaluator.on_window(windows, 2.0)
        keys = list(evaluator.last_burns["errors"])
        assert keys[0].startswith(PAGE)
        assert all(":" in k and "w/" in k for k in keys)

    def test_deterministic_timeline(self):
        bad = [0, 8, 12, 12, 12, 0, 0, 0, 0]

        def timeline():
            evaluator = SLOEvaluator([_event_slo(budget=0.01)])
            windows = _windows(bad)
            for i in range(len(windows)):
                evaluator.on_window(windows[: i + 1], float(i + 1))
            evaluator.finish(float(len(windows)))
            return [
                (t.at, t.slo, t.from_state, t.to_state, t.reason)
                for t in evaluator.transitions
            ]

        first, second = timeline(), timeline()
        assert first == second
        assert first, "expected at least one transition"

    def test_empty_window_list_is_noop(self):
        evaluator = SLOEvaluator([_event_slo()])
        assert evaluator.on_window([], 0.0) == []
