"""The serving SLO timeline: determinism, ordering, and drilldowns.

Acceptance-critical properties (ISSUE 6):

- two runs at the same seed render **byte-identical** alert timelines
  (table and JSONL forms);
- under overload the shed-rate burn alert fires **after** the
  degradation ladder has engaged — alerting observes the ladder's
  attempt to absorb the overload, it does not preempt it;
- the baseline scenario holds every SLO at OK end to end.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.rollup import merge_shard_windows
from repro.obs.slo import OK, PAGE, SLOEvaluator
from repro.obs.timeseries import WindowSnapshot
from repro.serving import run_simulation
from repro.serving.slos import (
    ServingSLOConfig,
    build_window_row,
    format_timeline,
    record_window_completion,
    record_window_served,
    record_window_verdict,
    serving_slos,
    timeline_jsonl,
    window_tenants,
)

_OVERLOAD = dict(scenario="overload", seed=42, scale=0.5)


@pytest.fixture(scope="module")
def overload_report():
    return run_simulation(**_OVERLOAD)


class TestDeterminism:
    def test_jsonl_timeline_byte_identical(self, overload_report):
        again = run_simulation(**_OVERLOAD)
        assert timeline_jsonl(overload_report.timeline) == timeline_jsonl(
            again.timeline
        )

    def test_table_timeline_byte_identical(self, overload_report):
        again = run_simulation(**_OVERLOAD)
        assert format_timeline(overload_report.timeline) == format_timeline(
            again.timeline
        )

    def test_jsonl_lines_parse_sorted_keys(self, overload_report):
        lines = timeline_jsonl(overload_report.timeline).splitlines()
        kinds = []
        for line in lines:
            row = json.loads(line)
            kinds.append(row["kind"])
            assert list(row) == sorted(row)
        assert kinds[0] == "run"
        assert kinds[-1] == "end"
        assert "window" in kinds and "alert" in kinds


class TestAlertOrdering:
    def test_overload_pages_shed_rate_after_degradation(self, overload_report):
        timeline = overload_report.timeline
        page = timeline.first_transition("shed_rate", PAGE)
        assert page is not None, "overload must page the shed-rate SLO"
        assert overload_report.first_degraded_at is not None
        # the ladder engages first; the burn alert recognizes overload later
        assert page.at > overload_report.first_degraded_at
        assert timeline.total_page_seconds() > 0
        assert timeline.worst_state() == PAGE

    def test_overload_windows_show_expired_pressure(self, overload_report):
        # the shed-rate SLO counts deadline-expired work as shed capacity
        assert sum(w.expired for w in overload_report.timeline.windows) > 0

    def test_baseline_stays_ok(self):
        report = run_simulation("baseline", seed=7, scale=0.25)
        timeline = report.timeline
        assert timeline.transitions == []
        assert set(timeline.final_states.values()) == {OK}
        assert timeline.total_page_seconds() == 0.0


class TestWindowAccounting:
    def test_windows_contiguous_fixed_width(self, overload_report):
        timeline = overload_report.timeline
        width = timeline.window_seconds
        for i, w in enumerate(timeline.windows):
            assert w.index == i
            assert w.end - w.start == pytest.approx(width)
            assert w.start == pytest.approx(i * width)

    def test_window_totals_match_report(self, overload_report):
        timeline = overload_report.timeline
        report = overload_report
        assert sum(w.offered for w in timeline.windows) == report.arrivals
        assert sum(w.served for w in timeline.windows) == report.served
        assert sum(w.shed for w in timeline.windows) == report.shed
        assert sum(w.degraded for w in timeline.windows) == report.degraded

    def test_tenant_drilldowns_partition_offered(self, overload_report):
        windows = overload_report.timeline.windows
        assert any(w.tenants for w in windows)
        for w in windows:
            assert sum(t.offered for t in w.tenants.values()) == w.offered
            assert sum(t.served for t in w.tenants.values()) == w.served
            for tenant in w.tenants.values():
                if tenant.p99_ms is not None:
                    assert tenant.p99_ms >= 0.0

    def test_custom_window_width(self):
        report = run_simulation(**_OVERLOAD, window_seconds=0.5)
        assert report.timeline.window_seconds == 0.5
        assert len(report.timeline.windows) < len(
            run_simulation(**_OVERLOAD).timeline.windows
        )

    def test_invalid_window_width_rejected(self):
        with pytest.raises(ValueError):
            run_simulation(**_OVERLOAD, window_seconds=0.0)

    def test_timeline_opt_out(self):
        report = run_simulation(**_OVERLOAD, with_timeline=False)
        assert report.timeline is None


class TestMultiShardDrilldowns:
    """Regression: tenant drilldowns on *merged shard* windows.

    On a cluster, one tenant's traffic spans replicas, and a request's
    completion can land on a different shard (and window) than its
    admission. The drilldown used to assume one node — tenant discovery
    read only arrival verdicts, so a completion-only tenant vanished
    and its latency folded silently into ``_all``.
    """

    @staticmethod
    def _window(build):
        registry = MetricsRegistry()
        build(registry)
        return WindowSnapshot(0, 0.0, 1.0, registry)

    def _merged_row(self, *builders):
        merged = merge_shard_windows(
            [[self._window(b)] for b in builders]
        )[0]
        evaluator = SLOEvaluator(serving_slos(ServingSLOConfig(), 3.0))
        evaluator.on_window([merged], merged.end)
        return build_window_row(merged, evaluator, 3.0, ())

    def test_tenant_rows_partition_across_shards(self):
        """tenant-a spans both shards; the merged row must count each
        verdict and serve exactly once."""
        def shard_one(reg):
            for _ in range(4):
                record_window_verdict(reg, "tenant-a", "admit")
                record_window_served(reg, "tenant-a", "zstd-3", False, False, 100, 50)
            record_window_verdict(reg, "tenant-b", "admit")
            record_window_served(reg, "tenant-b", "zstd-3", False, False, 80, 40)

        def shard_two(reg):
            for _ in range(3):
                record_window_verdict(reg, "tenant-a", "admit")
                record_window_served(reg, "tenant-a", "zstd-3", False, False, 100, 50)
            record_window_verdict(reg, "tenant-a", "shed")

        row = self._merged_row(shard_one, shard_two)
        assert row.offered == 9 and row.served == 8
        assert sum(t.offered for t in row.tenants.values()) == row.offered
        assert sum(t.served for t in row.tenants.values()) == row.served
        assert row.tenants["tenant-a"].offered == 8
        assert row.tenants["tenant-a"].served == 7
        assert row.tenants["tenant-b"].offered == 1

    def test_completion_only_tenant_keeps_its_row(self):
        """A tenant admitted in an earlier window whose completion lands
        here (on a replica shard) still gets a drilldown row, carrying
        its latency instead of losing it to the aggregate."""
        def shard_one(reg):
            record_window_verdict(reg, "tenant-live", "admit")
            record_window_served(reg, "tenant-live", "zstd-3", False, False, 60, 30)

        def shard_two(reg):
            record_window_completion(
                reg, "tenant-late", 0.123, 0.010, on_time=True, bytes_in=500
            )

        row = self._merged_row(shard_one, shard_two)
        assert set(row.tenants) == {"tenant-live", "tenant-late"}
        late = row.tenants["tenant-late"]
        assert late.offered == 0 and late.served == 0
        assert late.p99_ms == pytest.approx(123.0, rel=0.2)
        # and still a partition: the phantom row contributes zeros
        assert sum(t.offered for t in row.tenants.values()) == row.offered

    def test_window_tenants_spans_all_series(self):
        registry = MetricsRegistry()
        record_window_verdict(registry, "by-verdict", "throttle")
        record_window_served(registry, "by-serve", "lz4-1", False, True, 10, 10)
        record_window_completion(
            registry, "by-latency", 0.05, 0.0, on_time=True, bytes_in=10
        )
        assert window_tenants(registry) == [
            "by-latency", "by-serve", "by-verdict",
        ]


class TestConfig:
    def test_serving_slos_cover_the_four_objectives(self):
        names = {s.name for s in serving_slos(ServingSLOConfig(), 3.0)}
        assert names == {"shed_rate", "latency_p99", "goodput", "ratio_lost"}

    def test_custom_budget_changes_alerting(self):
        # an absurdly lax shed budget keeps overload from paging shed_rate
        lax = ServingSLOConfig(shed_budget=0.9)
        report = run_simulation(**_OVERLOAD, slo_config=lax)
        assert report.timeline.first_transition("shed_rate", PAGE) is None
