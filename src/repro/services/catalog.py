"""Table I: the eight services characterized at service level.

Percent-of-cycles figures marked *published* come straight from the paper's
text/figures; the others are calibration targets chosen inside the ranges
the paper reports (Fig. 6 spans 1.7%-30.5%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class ServiceInfo:
    """One row of Table I plus its calibration targets."""

    name: str
    category: str
    description: str
    resource_boundedness: str
    key_takeaway: str
    #: target share of compute cycles spent in Zstd (Fig. 6)
    zstd_cycles_share: float
    #: is the share above published in the paper (vs calibrated here)?
    share_published: bool
    #: dominant compression level used by the service
    typical_level: int


SERVICE_CATALOG: Dict[str, ServiceInfo] = {
    "DW1": ServiceInfo(
        "DW1", "Data warehouse", "Distributed data delivery service (ingestion)",
        "Storage bound", "Compute-storage cost trade-offs",
        zstd_cycles_share=0.285, share_published=True, typical_level=7,
    ),
    "DW2": ServiceInfo(
        "DW2", "Data warehouse", "Distributed data shuffle service",
        "Storage bound", "Compute-storage cost trade-offs",
        zstd_cycles_share=0.305, share_published=True, typical_level=1,
    ),
    "DW3": ServiceInfo(
        "DW3", "Data warehouse", "Distributed scheduling framework for data warehouse jobs",
        "Storage bound", "Compute-storage cost trade-offs",
        zstd_cycles_share=0.135, share_published=True, typical_level=1,
    ),
    "DW4": ServiceInfo(
        "DW4", "Data warehouse", "Distributed scheduling framework for machine learning jobs",
        "Storage bound", "Compute-storage cost trade-offs",
        zstd_cycles_share=0.08, share_published=True, typical_level=1,
    ),
    "ADS1": ServiceInfo(
        "ADS1", "Ads", "Ads serving machine learning inference service",
        "Network bound", "Network compression and model variance",
        zstd_cycles_share=0.055, share_published=False, typical_level=1,
    ),
    "CACHE1": ServiceInfo(
        "CACHE1", "Caching", "Distributed memory object caching service",
        "Compute/memory bound", "Small data compression",
        zstd_cycles_share=0.041, share_published=False, typical_level=3,
    ),
    "CACHE2": ServiceInfo(
        "CACHE2", "Caching", "Distributed social graph data store service",
        "Compute/memory bound", "Small data compression",
        zstd_cycles_share=0.017, share_published=False, typical_level=3,
    ),
    "KVSTORE1": ServiceInfo(
        "KVSTORE1", "Key-value store", "Large distributed key-value store",
        "Storage bound", "Different block sizes",
        zstd_cycles_share=0.108, share_published=False, typical_level=1,
    ),
}
