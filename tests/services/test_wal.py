"""The write-ahead log: framing, rotation, replay, torn-tail truncation."""

import struct

import pytest

from repro.services.kvstore.storage import SimStorage
from repro.services.kvstore.wal import WriteAheadLog


def _batch(i, n=3):
    return [
        (f"k{i:03d}:{j}".encode(), f"value {i:03d}/{j}".encode())
        for j in range(n)
    ]


class TestAppendReplay:
    def test_round_trip(self):
        storage = SimStorage()
        wal = WriteAheadLog(storage)
        wal.append(1, _batch(1))
        wal.append(2, [(b"gone", None)])
        replay = WriteAheadLog(storage).replay()
        assert replay.records == 2
        assert replay.entries == 4
        assert replay.max_seq == 2
        assert replay.batches[0][0] == 1
        assert replay.batches[0][1] == _batch(1)
        assert replay.batches[1][1] == [(b"gone", None)]
        assert replay.torn_tails == 0

    def test_empty_log_replays_empty(self):
        replay = WriteAheadLog(SimStorage()).replay()
        assert replay.records == 0
        assert replay.max_seq == 0
        assert replay.segments == 0

    def test_rotation_spreads_segments(self):
        storage = SimStorage()
        wal = WriteAheadLog(storage, segment_bytes=256)
        for i in range(20):
            wal.append(i + 1, _batch(i))
        segments = storage.list("wal-")
        assert len(segments) > 1
        replay = WriteAheadLog(storage).replay()
        assert replay.records == 20
        assert replay.segments == len(segments)
        assert replay.max_seq == 20

    def test_prune_removes_all_segments(self):
        storage = SimStorage()
        wal = WriteAheadLog(storage, segment_bytes=256)
        for i in range(10):
            wal.append(i + 1, _batch(i))
        wal.prune()
        assert storage.list("wal-") == []
        # appends after a prune land in a fresh segment and replay clean
        wal.append(11, _batch(11))
        assert WriteAheadLog(storage).replay().records == 1


class TestTornTails:
    def test_unsynced_record_never_replays(self):
        storage = SimStorage(seed=9)
        wal = WriteAheadLog(storage)
        wal.append(1, _batch(1))
        # an in-flight append that crashed before sync: simulate by
        # appending raw bytes without syncing, then cutting power
        segment = storage.list("wal-")[-1]
        storage.append(segment, b"\xff" * 40)
        storage.crash()
        replay = WriteAheadLog(storage).replay()
        assert replay.records == 1
        assert replay.max_seq == 1
        assert replay.torn_tails == 1

    def test_crash_mid_record_for_every_seed(self):
        # the strictly-partial tear guarantees a CRC/length failure, so
        # no seed can resurrect the torn record
        for seed in range(12):
            storage = SimStorage(seed=seed)
            wal = WriteAheadLog(storage)
            wal.append(1, _batch(1))
            segment = storage.list("wal-")[-1]
            payload = b"not-a-record-but-plausible-bytes" * 3
            storage.append(
                segment,
                struct.pack("<II", len(payload), 0xDEAD) + payload,
            )
            storage.crash()
            replay = WriteAheadLog(storage).replay()
            assert replay.records == 1, f"seed {seed} resurrected a record"

    def test_corrupt_crc_truncates(self):
        storage = SimStorage()
        wal = WriteAheadLog(storage)
        wal.append(1, _batch(1))
        wal.append(2, _batch(2))
        segment = storage.list("wal-")[0]
        data = bytearray(storage.read(segment))
        data[-1] ^= 0xFF  # flip a byte in the last record's payload
        storage.write_file(segment, bytes(data))
        replay = WriteAheadLog(storage).replay()
        assert replay.records == 1
        assert replay.torn_tails == 1

    def test_torn_nonfinal_segment_does_not_stop_replay(self):
        # a lying fsync can leave an older segment torn while newer,
        # properly synced segments follow — replay must continue past it
        storage = SimStorage()
        wal = WriteAheadLog(storage, segment_bytes=64)
        wal.append(1, _batch(1))  # fills segment 0, rotates
        wal.append(2, _batch(2))  # segment 1
        first = storage.list("wal-")[0]
        storage.truncate(first, storage.size(first) - 3)
        replay = WriteAheadLog(storage).replay()
        assert replay.torn_tails == 1
        assert [seq for seq, _ in replay.batches] == [2]
        assert replay.max_seq == 2

    def test_next_append_goes_past_replayed_segments(self):
        storage = SimStorage()
        wal = WriteAheadLog(storage, segment_bytes=64)
        wal.append(1, _batch(1))
        wal.append(2, _batch(2))
        reopened = WriteAheadLog(storage, segment_bytes=64)
        reopened.replay()
        reopened.append(3, _batch(3))
        replay = WriteAheadLog(storage).replay()
        assert [seq for seq, _ in replay.batches] == [1, 2, 3]


class TestDecodeStrictness:
    def test_trailing_garbage_in_payload_rejected(self):
        from repro.services.kvstore.wal import _decode_batch, _encode_batch

        good = _encode_batch(5, _batch(5))
        assert _decode_batch(good)[0] == 5
        with pytest.raises(ValueError):
            _decode_batch(good + b"\x00")
        with pytest.raises(ValueError):
            _decode_batch(good[:-1])
