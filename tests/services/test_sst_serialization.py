"""SST file-image serialization tests."""

import pytest

from repro.codecs import get_codec
from repro.codecs.base import CorruptDataError
from repro.corpus import generate_kv_records
from repro.services.kvstore import BlockCache, SSTable


@pytest.fixture(scope="module")
def entries():
    return generate_kv_records(400, seed=91)


@pytest.fixture(scope="module")
def original(entries):
    return SSTable.build(entries, level=1, block_size=2048)


class TestSSTSerialization:
    def test_roundtrip_preserves_reads(self, entries, original):
        image = original.to_bytes()
        loaded = SSTable.from_bytes(image)
        for key, value in entries[::23]:
            found, got, __ = loaded.get(key)
            assert found and got == value

    def test_roundtrip_preserves_metadata(self, original):
        loaded = SSTable.from_bytes(original.to_bytes())
        assert loaded.codec_name == original.codec_name
        assert loaded.level == original.level
        assert loaded.entry_count == original.entry_count
        assert loaded.block_count == original.block_count

    def test_scan_equals_original(self, entries, original):
        loaded = SSTable.from_bytes(original.to_bytes())
        assert list(loaded.scan()) == entries

    def test_negative_level_roundtrip(self, entries):
        table = SSTable.build(entries, codec=get_codec("zstd"), level=-3)
        loaded = SSTable.from_bytes(table.to_bytes())
        assert loaded.level == -3

    def test_lz4_sst_roundtrip(self, entries):
        table = SSTable.build(entries, codec=get_codec("lz4"), level=1)
        loaded = SSTable.from_bytes(table.to_bytes())
        found, got, __ = loaded.get(entries[100][0])
        assert found and got == entries[100][1]

    def test_bloom_rebuilt_on_request(self, entries, original):
        loaded = SSTable.from_bytes(original.to_bytes(), rebuild_bloom=True)
        found, __, decode_seconds = loaded.get(b"zzz/not/present")
        assert not found
        assert loaded.stats.bloom_skips >= 1
        assert decode_seconds == 0.0

    def test_no_bloom_by_default(self, original):
        loaded = SSTable.from_bytes(original.to_bytes())
        loaded.get(b"zzz/not/present")
        assert loaded.stats.bloom_skips == 0

    def test_block_cache_attached_on_load(self, entries, original):
        cache = BlockCache(1 << 20)
        loaded = SSTable.from_bytes(original.to_bytes(), block_cache=cache)
        key = entries[50][0]
        loaded.get(key)
        loaded.get(key)
        assert loaded.stats.cache_hits == 1

    def test_bad_magic_rejected(self):
        with pytest.raises(CorruptDataError):
            SSTable.from_bytes(b"NOPE" + b"\x00" * 30)

    def test_truncated_rejected(self, original):
        image = original.to_bytes()
        with pytest.raises(CorruptDataError):
            SSTable.from_bytes(image[: len(image) // 2])

    def test_disk_roundtrip(self, entries, original, tmp_path):
        path = tmp_path / "table.sst"
        path.write_bytes(original.to_bytes())
        loaded = SSTable.from_bytes(path.read_bytes())
        assert list(loaded.scan()) == entries
