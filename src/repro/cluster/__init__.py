"""Sharded multi-node serving cluster over the single-node plane.

The package splits along the control/data boundary:

- :mod:`repro.cluster.ring` — consistent hashing (placement);
- :mod:`repro.cluster.node` — one shard's gateway + lifecycle (data);
- :mod:`repro.cluster.autoscaler` — node-count control loop;
- :mod:`repro.cluster.rebalance` — tenant routing + hot-tenant moves;
- :mod:`repro.cluster.simulate` — the discrete-event fleet simulator
  tying them together under one seeded clock.
"""

from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig, ScaleEvent
from repro.cluster.node import (
    ACTIVE,
    DRAINING,
    RETIRED,
    ClusterNode,
    CodecCache,
    NodeConfig,
    memo_codec_factory,
)
from repro.cluster.rebalance import (
    RebalanceEvent,
    Rebalancer,
    RebalancerConfig,
    TenantRouter,
)
from repro.cluster.ring import HashRing, stable_hash
from repro.cluster.simulate import (
    CLUSTER_SCENARIOS,
    ClusterReport,
    ClusterScenario,
    ShardReport,
    cluster_slos,
    format_cluster_scorecard,
    run_cluster_simulation,
)

__all__ = [
    "ACTIVE",
    "Autoscaler",
    "AutoscalerConfig",
    "CLUSTER_SCENARIOS",
    "ClusterNode",
    "ClusterReport",
    "ClusterScenario",
    "CodecCache",
    "DRAINING",
    "HashRing",
    "NodeConfig",
    "RETIRED",
    "RebalanceEvent",
    "Rebalancer",
    "RebalancerConfig",
    "ScaleEvent",
    "ShardReport",
    "TenantRouter",
    "cluster_slos",
    "format_cluster_scorecard",
    "memo_codec_factory",
    "run_cluster_simulation",
    "stable_hash",
]
