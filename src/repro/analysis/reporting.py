"""Plain-text rendering so each bench prints the rows its figure plots."""

from __future__ import annotations

from typing import List, Sequence, Tuple


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table."""
    columns = [[str(h)] + [str(row[i]) for row in rows] for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_series(
    name: str, points: Sequence[Tuple[object, float]], value_format: str = "{:.3f}"
) -> str:
    """One named series as ``name: x=value`` pairs, one per line."""
    lines = [f"series: {name}"]
    for x, y in points:
        lines.append(f"  {x} = " + value_format.format(y))
    return "\n".join(lines)
