"""Columnar tables for the Data Warehouse (ORC-like) substrate."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union

import numpy as np

from repro.corpus.distributions import SeededSampler

ColumnValues = Union[np.ndarray, List[str]]


@dataclass(frozen=True)
class ColumnSpec:
    """One column: name, logical type, and value skew."""

    name: str
    kind: str  # "int_sequence" | "int_skewed" | "float" | "string_dict" | "bool"
    cardinality: int = 16


DEFAULT_SCHEMA = [
    ColumnSpec("event_id", "int_sequence"),
    ColumnSpec("user_id", "int_skewed", cardinality=50_000),
    ColumnSpec("event_type", "string_dict", cardinality=12),
    ColumnSpec("country", "string_dict", cardinality=40),
    ColumnSpec("duration_ms", "int_skewed", cardinality=60_000),
    ColumnSpec("score", "float"),
    ColumnSpec("is_organic", "bool"),
]

_STRING_POOLS = {
    "event_type": [
        "impression", "click", "view", "like", "share", "comment",
        "follow", "scroll", "hover", "dismiss", "report", "save",
    ],
    "country": [f"C{i:02d}" for i in range(40)],
}


def generate_table(
    rows: int, seed: int = 0, schema: List[ColumnSpec] = None
) -> Dict[str, ColumnValues]:
    """A columnar table: dict of column name -> values.

    Columns have warehouse-typical skew -- monotone ids (delta-friendly),
    low-cardinality strings (dictionary-friendly), and heavy-tailed
    numerics -- so the ORC-style encoders in the warehouse substrate have
    realistic material to work with.
    """
    sampler = SeededSampler(seed)
    schema = schema if schema is not None else DEFAULT_SCHEMA
    table: Dict[str, ColumnValues] = {}
    for spec in schema:
        if spec.kind == "int_sequence":
            start = int(sampler.uniform(1e9, 2e9))
            steps = sampler.integers(1, 5, rows)
            table[spec.name] = start + np.cumsum(steps)
        elif spec.kind == "int_skewed":
            table[spec.name] = sampler.rng.zipf(1.2, size=rows) % spec.cardinality
        elif spec.kind == "float":
            table[spec.name] = np.round(
                sampler.rng.exponential(0.5, size=rows), 4
            )
        elif spec.kind == "string_dict":
            pool = _STRING_POOLS.get(
                spec.name, [f"{spec.name}_{i}" for i in range(spec.cardinality)]
            )
            indices = sampler.zipf_indices(rows, len(pool))
            table[spec.name] = [pool[i] for i in indices]
        elif spec.kind == "bool":
            table[spec.name] = sampler.rng.uniform(size=rows) < 0.7
        else:
            raise ValueError(f"unknown column kind {spec.kind!r}")
    return table
