"""Fig. 15(b) / Sensitivity study 2: KVSTORE1 compute + storage cost across
algorithms, levels, and block sizes (4..64KB), with and without a per-block
decompression-latency requirement.

Paper shape: unconstrained, Zstd level 1 at 64KB blocks wins (53% below the
worst option, LZ4 level 1 at 4KB). With the latency requirement, the winner
moves to a middle block size (the paper reports Zstd-1 at 16KB, 48% below
worst).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import (
    CompEngine,
    CompOpt,
    CompressionConfig,
    CostModel,
    CostParameters,
    MaxBlockDecodeLatency,
)
from repro.corpus import generate_kv_records

_BLOCK_SIZES = [4096, 8192, 16384, 32768, 65536]


@pytest.fixture(scope="module")
def setup():
    records = generate_kv_records(2500, seed=150)
    sample = b"".join(k + b"\x00" + v for k, v in records)
    engine = CompEngine([sample])
    params = CostParameters.from_price_book(
        network_weight=0.0,
        storage_kind="flash",
        beta=1e-7,
        retention_days=90.0,
    )
    grid = [
        CompressionConfig(algo, 1, block)
        for algo in ("zstd", "lz4")
        for block in _BLOCK_SIZES
    ] + [CompressionConfig("zstd", 3, block) for block in _BLOCK_SIZES]
    return engine, CostModel(params), grid


@pytest.fixture(scope="module")
def unconstrained(setup):
    engine, model, grid = setup
    return CompOpt(engine, model).optimize(grid)


@pytest.fixture(scope="module")
def constrained(setup, unconstrained):
    engine, model, grid = setup
    # The paper's 0.08 ms requirement, placed at the equivalent point of
    # our decode-latency curve: between the 16KB and 32KB block latencies.
    latency_16k = engine.measure(CompressionConfig("zstd", 1, 16384)).decode_seconds_per_block
    latency_32k = engine.measure(CompressionConfig("zstd", 1, 32768)).decode_seconds_per_block
    budget = (latency_16k + latency_32k) / 2
    opt = CompOpt(engine, model, [MaxBlockDecodeLatency(budget)])
    return opt.optimize(grid), budget


def test_fig15b_sensitivity_kvstore(
    benchmark, setup, unconstrained, constrained, figure_output
):
    engine, model, grid = setup
    constrained_result, budget = constrained
    feasibility = {
        r.config: r.feasible for r in constrained_result.ranked
    }
    rows = [
        [
            ranked.config.label(),
            f"{ranked.metrics.ratio:.2f}",
            f"{ranked.metrics.decode_seconds_per_block * 1e6:.1f}",
            "yes" if feasibility[ranked.config] else "no",
            f"{ranked.total_cost / unconstrained.worst.total_cost:.3f}",
        ]
        for ranked in unconstrained.ranked
    ]
    best = unconstrained.best_any
    constrained_best = constrained_result.best
    summary = (
        f"unconstrained best: {best.config.label()} at "
        f"{best.total_cost / unconstrained.worst.total_cost:.3f} of worst "
        f"(paper: zstd-1@64KB, 53% below worst)\n"
        f"with decode budget {budget * 1e6:.1f}us: "
        f"{constrained_best.config.label()} "
        f"(paper: zstd-1@16KB, 48% below worst)"
    )
    figure_output(
        "fig15b_sensitivity_kvstore",
        format_table(
            ["config", "ratio", "decode us/blk", "feasible", "norm cost"],
            rows,
            title="Fig. 15b: KVSTORE1 normalized cost across block sizes",
        )
        + "\n" + summary,
    )

    # Unconstrained winner: zstd at the largest block size.
    assert best.config.algorithm == "zstd"
    assert best.config.block_size == 65536
    # Constrained winner: zstd at a middle block size.
    assert constrained_best.config.algorithm == "zstd"
    assert constrained_best.config.block_size in (8192, 16384)
    # Worst option is LZ4 at the smallest block size (as in the paper).
    assert unconstrained.worst.config.algorithm == "lz4"
    assert unconstrained.worst.config.block_size == 4096
    # Meaningful cost spread between best and worst.
    assert best.total_cost < 0.75 * unconstrained.worst.total_cost

    benchmark(
        lambda: engine.measure(CompressionConfig("zstd", 1, 16384)).ratio
    )
