"""Unit tests for the fleet rollup fold (:mod:`repro.obs.rollup`).

The cluster plane's central claim is that fleet numbers are *derived*
from per-shard telemetry by merging, never double-recorded — so the
fold has to be provably lossless and order-independent, and it has to
refuse to merge windows whose bounds disagree (silent misalignment
would corrupt every rate computed over the result).
"""

import random

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.rollup import merge_registries, merge_shard_windows
from repro.obs.timeseries import WindowSnapshot


def _shard_registry(seed: int, events: int) -> MetricsRegistry:
    """One shard's worth of seeded traffic: a counter and a histogram."""
    rng = random.Random(seed)
    registry = MetricsRegistry()
    requests = registry.counter("requests_total")
    latency = registry.histogram("latency_seconds")
    for _ in range(events):
        tenant = rng.choice(["a", "b", "c"])
        requests.inc(1, tenant=tenant)
        latency.observe(rng.lognormvariate(-4.0, 1.0), tenant=tenant)
    return registry


def test_merge_registries_equals_one_global_recorder():
    """Recording the same seeded events into three shard registries and
    folding must equal recording them all into one registry."""
    shards = [_shard_registry(seed, 300) for seed in (1, 2, 3)]
    merged = merge_registries(shards)

    global_registry = MetricsRegistry()
    for seed in (1, 2, 3):
        global_registry.merge(_shard_registry(seed, 300))

    assert sorted(merged.get("requests_total").samples()) == sorted(
        global_registry.get("requests_total").samples()
    )
    merged_hist = merged.get("latency_seconds")
    global_hist = global_registry.get("latency_seconds")
    for tenant in ("a", "b", "c"):
        assert merged_hist.count(tenant=tenant) == global_hist.count(tenant=tenant)
        assert merged_hist.percentile(99, tenant=tenant) == global_hist.percentile(
            99, tenant=tenant
        )
        assert merged_hist.sum(tenant=tenant) == pytest.approx(
            global_hist.sum(tenant=tenant)
        )


def test_merge_registries_is_order_independent():
    shards = [_shard_registry(seed, 200) for seed in (5, 6, 7)]
    forward = merge_registries(shards)
    backward = merge_registries(list(reversed(shards)))
    assert sorted(forward.get("requests_total").samples()) == sorted(
        backward.get("requests_total").samples()
    )
    fwd_hist, bwd_hist = (
        r.get("latency_seconds") for r in (forward, backward)
    )
    for tenant in ("a", "b", "c"):
        assert fwd_hist.count(tenant=tenant) == bwd_hist.count(tenant=tenant)
        assert fwd_hist.percentile(99, tenant=tenant) == bwd_hist.percentile(
            99, tenant=tenant
        )


def test_merge_registries_of_nothing_is_empty():
    assert merge_registries([]).metrics() == []


def test_merge_shard_windows_aligns_by_index():
    """Two shards, two windows each — the fold yields one fleet window
    per index spanning the shared interval, with counts summed."""
    def window(index, count):
        registry = MetricsRegistry()
        registry.counter("served_total").inc(count)
        return WindowSnapshot(index, index * 1.0, (index + 1) * 1.0, registry)

    fleet = merge_shard_windows(
        [[window(0, 3), window(1, 5)], [window(0, 7), window(1, 11)]]
    )
    assert [w.index for w in fleet] == [0, 1]
    assert fleet[0].start == 0.0 and fleet[0].end == 1.0
    totals = [
        sum(value for _, value in w.registry.get("served_total").samples())
        for w in fleet
    ]
    assert totals == [10, 16]


def test_merge_shard_windows_tolerates_late_joiners():
    """A shard that joined at window 1 simply contributes nothing to
    window 0 — no padding, no error."""
    def window(index, count):
        registry = MetricsRegistry()
        registry.counter("served_total").inc(count)
        return WindowSnapshot(index, index * 1.0, (index + 1) * 1.0, registry)

    fleet = merge_shard_windows([[window(0, 2), window(1, 2)], [window(1, 9)]])
    assert [w.index for w in fleet] == [0, 1]
    totals = [
        sum(value for _, value in w.registry.get("served_total").samples())
        for w in fleet
    ]
    assert totals == [2, 11]


def test_merge_shard_windows_rejects_misaligned_bounds():
    a = WindowSnapshot(0, 0.0, 1.0, MetricsRegistry())
    b = WindowSnapshot(0, 0.5, 1.5, MetricsRegistry())
    with pytest.raises(ValueError, match="misaligned"):
        merge_shard_windows([[a], [b]])


def test_merge_shard_windows_of_nothing_is_empty():
    assert merge_shard_windows([]) == []
    assert merge_shard_windows([[], []]) == []
