"""Zstd frame inspection tests."""

import pytest

from repro.codecs import CorruptDataError, get_codec, train_dictionary
from repro.codecs.zstd import inspect_frame


@pytest.fixture(scope="module")
def zstd():
    return get_codec("zstd")


class TestInspectFrame:
    def test_content_size(self, zstd):
        data = b"inspect me " * 100
        blob = zstd.compress(data, 3).data
        info = inspect_frame(blob)
        assert info.content_size == len(data)
        assert info.compressed_size == len(blob)

    def test_checksum_flag(self, zstd):
        info = inspect_frame(zstd.compress(b"x" * 100, 1).data)
        assert info.has_checksum

    def test_block_types_compressed(self, zstd):
        data = b"pattern " * 500
        info = inspect_frame(zstd.compress(data, 3).data)
        assert info.block_count == 1
        assert info.block_types == ("compressed",)

    def test_block_types_rle(self, zstd):
        info = inspect_frame(zstd.compress(b"a" * 10000, 3).data)
        assert info.block_types == ("rle",)

    def test_block_types_raw(self, zstd):
        import random

        rng = random.Random(3)
        noise = bytes(rng.getrandbits(8) for _ in range(2000))
        info = inspect_frame(zstd.compress(noise, 1).data)
        assert info.block_types == ("raw",)

    def test_multi_block_frame(self, zstd):
        from repro.codecs.zstd import params as zparams

        data = bytes((i * 7 + i // 251) & 0xFF for i in range(zparams.MAX_BLOCK_SIZE + 100))
        info = inspect_frame(zstd.compress(data, 1).data)
        assert info.block_count == 2

    def test_dict_id_present(self, zstd):
        dictionary = train_dictionary([b"sample data here " * 10] * 5, 1024)
        blob = zstd.compress(
            b"sample data here again", 3, dictionary=dictionary.content
        ).data
        info = inspect_frame(blob)
        assert info.dict_id == dictionary.dict_id

    def test_no_dict_id_without_dictionary(self, zstd):
        info = inspect_frame(zstd.compress(b"plain " * 50, 3).data)
        assert info.dict_id is None

    def test_window_log_recorded(self, zstd):
        info = inspect_frame(zstd.compress(b"w" * 5000, 3).data)
        assert 10 <= info.window_log <= 22

    def test_bad_magic_rejected(self):
        with pytest.raises(CorruptDataError):
            inspect_frame(b"XXXX" + b"\x00" * 20)

    def test_truncated_rejected(self, zstd):
        blob = zstd.compress(b"data " * 100, 3).data
        with pytest.raises(CorruptDataError):
            inspect_frame(blob[:8])

    def test_inspection_never_decodes(self, zstd):
        """Inspection must stay cheap: no decode counters are produced."""
        data = b"never decoded " * 1000
        blob = zstd.compress(data, 3).data
        info = inspect_frame(blob)
        assert info.content_size == len(data)  # got metadata without decode


class TestAsciiScatter:
    def test_renders_series(self):
        from repro.analysis import ascii_scatter

        text = ascii_scatter(
            {"zstd": [(100, 3.0), (50, 3.5)], "lz4": [(400, 2.0)]},
            width=30,
            height=8,
            x_label="MB/s",
            y_label="ratio",
        )
        assert "legend" in text
        assert "o=zstd" in text and "x=lz4" in text

    def test_log_axis(self):
        from repro.analysis import ascii_scatter

        text = ascii_scatter(
            {"s": [(10, 1.0), (1000, 2.0)]}, log_x=True, width=20, height=5
        )
        assert "(log)" in text

    def test_empty(self):
        from repro.analysis import ascii_scatter

        assert ascii_scatter({}) == "(no data)"

    def test_tradeoff_curve_ordering(self):
        from repro.analysis import tradeoff_curve

        rows = tradeoff_curve(["a", "b"], [100, 300], [3.0, 2.0])
        assert rows[0][0] == "b"  # fastest first
