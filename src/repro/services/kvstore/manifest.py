"""Versioned manifest: the LSM's durable level state, swapped atomically.

A manifest file (``manifest-000007.mf``) is a sequence of checksummed
records — one header, then one *edit* per SST file — that rebuild a
:class:`ManifestState` from empty. Every commit serializes the complete
next state into a **new** file via the backend's atomic ``write_file``,
then swaps the ``CURRENT`` pointer to it. A crash therefore sees either
the old manifest or the new one, never a blend: mid-flush and
mid-compaction crashes can leave orphan SST/manifest *files*, but the
visible level state is always one committed version. Recovery garbage
collects the orphans.

Record framing matches the WAL (u32 LE length | u32 LE crc32 | payload);
a manifest that fails any checksum is rejected wholesale and recovery
falls back to the newest older manifest that parses.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional

from repro.codecs.checksum import crc32
from repro.codecs.varint import read_uvarint, write_uvarint
from repro.services.kvstore.storage import StorageBackend

_HEADER = struct.Struct("<II")

#: crash site between writing the new manifest file and swapping CURRENT
SWAP_SITE = "kvstore.manifest.swap"
#: crash site between the swap and deleting the superseded manifest file
CLEANUP_SITE = "kvstore.manifest.cleanup"

_KIND_HEADER = 0
_KIND_ADD = 1


class ManifestCorruptError(ValueError):
    """No manifest file parsed cleanly."""


@dataclass
class ManifestState:
    """One committed version of the LSM's durable shape."""

    version: int = 0
    #: highest WAL batch seq whose effects are captured in the SSTs below;
    #: replay skips batches with seq <= wal_cutoff
    wal_cutoff: int = 0
    #: next SST file id to allocate (monotonic across crashes)
    next_file_id: int = 0
    #: SST file names per level; level 0 is newest-first
    levels: List[List[str]] = field(default_factory=lambda: [[]])

    def copy(self) -> "ManifestState":
        return ManifestState(
            version=self.version,
            wal_cutoff=self.wal_cutoff,
            next_file_id=self.next_file_id,
            levels=[list(level) for level in self.levels],
        )

    def files(self) -> List[str]:
        return [name for level in self.levels for name in level]

    def add(self, level: int, name: str, front: bool = False) -> None:
        while len(self.levels) <= level:
            self.levels.append([])
        if front:
            self.levels[level].insert(0, name)
        else:
            self.levels[level].append(name)

    def remove(self, level: int, name: str) -> None:
        self.levels[level].remove(name)

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        out = bytearray()
        header = bytearray()
        write_uvarint(header, self.version)
        write_uvarint(header, self.wal_cutoff)
        write_uvarint(header, self.next_file_id)
        write_uvarint(header, len(self.levels))
        _write_record(out, _KIND_HEADER, bytes(header))
        for level, names in enumerate(self.levels):
            for name in names:
                edit = bytearray()
                write_uvarint(edit, level)
                encoded = name.encode()
                write_uvarint(edit, len(encoded))
                edit.extend(encoded)
                _write_record(out, _KIND_ADD, bytes(edit))
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ManifestState":
        state: Optional[ManifestState] = None
        pos = 0
        while pos < len(data):
            if pos + _HEADER.size > len(data):
                raise ManifestCorruptError("truncated manifest record header")
            length, checksum = _HEADER.unpack_from(data, pos)
            body_start = pos + _HEADER.size
            payload = data[body_start : body_start + length]
            if len(payload) != length or crc32(payload) != checksum:
                raise ManifestCorruptError("manifest record checksum mismatch")
            kind = payload[0]
            body = payload[1:]
            if kind == _KIND_HEADER:
                version, p = read_uvarint(body, 0)
                wal_cutoff, p = read_uvarint(body, p)
                next_file_id, p = read_uvarint(body, p)
                level_count, p = read_uvarint(body, p)
                state = cls(
                    version=version,
                    wal_cutoff=wal_cutoff,
                    next_file_id=next_file_id,
                    levels=[[] for __ in range(max(1, level_count))],
                )
            elif kind == _KIND_ADD:
                if state is None:
                    raise ManifestCorruptError("edit before manifest header")
                level, p = read_uvarint(body, 0)
                name_len, p = read_uvarint(body, p)
                name = body[p : p + name_len]
                if len(name) != name_len:
                    raise ManifestCorruptError("short manifest file name")
                state.add(level, name.decode())
            else:
                raise ManifestCorruptError(f"unknown manifest record kind {kind}")
            pos = body_start + length
        if state is None:
            raise ManifestCorruptError("empty manifest")
        return state


def _write_record(out: bytearray, kind: int, body: bytes) -> None:
    payload = bytes([kind]) + body
    out.extend(_HEADER.pack(len(payload), crc32(payload)))
    out.extend(payload)


class Manifest:
    """Storage-side manager: load the CURRENT state, commit new versions."""

    POINTER = "CURRENT"

    def __init__(self, storage: StorageBackend, prefix: str = "manifest") -> None:
        self.storage = storage
        self.prefix = prefix

    def _name(self, version: int) -> str:
        return f"{self.prefix}-{version:06d}.mf"

    def manifest_files(self) -> List[str]:
        return self.storage.list(f"{self.prefix}-")

    def current_name(self) -> Optional[str]:
        return self.storage.get_pointer(self.POINTER)

    def load(self) -> ManifestState:
        """The committed state: CURRENT's target, or the newest older
        manifest that parses, or empty if none exists."""
        candidates: List[str] = []
        current = self.current_name()
        if current is not None:
            candidates.append(current)
        for name in sorted(self.manifest_files(), reverse=True):
            if name not in candidates:
                candidates.append(name)
        for name in candidates:
            if not self.storage.exists(name):
                continue
            try:
                return ManifestState.from_bytes(self.storage.read(name))
            except ManifestCorruptError:
                continue
        if candidates and any(self.storage.exists(n) for n in candidates):
            raise ManifestCorruptError("no manifest file parsed cleanly")
        return ManifestState()

    def commit(self, state: ManifestState) -> ManifestState:
        """Durably install ``state`` as the next version (atomic swap).

        Bumps the version, writes the new manifest file, crosses the
        :data:`SWAP_SITE` crash point, swaps ``CURRENT``, crosses
        :data:`CLEANUP_SITE`, then deletes superseded manifest files.
        """
        state = state.copy()
        state.version += 1
        name = self._name(state.version)
        self.storage.write_file(name, state.to_bytes())
        self.storage.crash_point(SWAP_SITE)
        self.storage.set_pointer(self.POINTER, name)
        self.storage.crash_point(CLEANUP_SITE)
        for stale in self.manifest_files():
            if stale != name:
                self.storage.delete(stale)
        return state

    def collect_garbage(self, state: ManifestState) -> List[str]:
        """Delete files no committed state references (crash orphans):
        manifest files other than CURRENT's target, and unreferenced
        SST files. Returns the deleted names."""
        current = self.current_name()
        live = set(state.files())
        removed: List[str] = []
        for name in self.manifest_files():
            if name != current:
                self.storage.delete(name)
                removed.append(name)
        for name in self.storage.list("sst-"):
            if name not in live:
                self.storage.delete(name)
                removed.append(name)
        return removed
