"""ParallelSweepRunner: fan measurement cells out over the worker pool.

Fleet characterization and the ``bench_fig*`` suites are sweeps: a grid of
independent measurement cells -- (service, codec, level) or
(codec, file, level) -- each of which compresses a payload and reports
ratio/counters. The cells share nothing, so they parallelize perfectly;
the runner maps a module-level cell function over the grid on an executor
and returns results *in cell order*, making ``--jobs 1`` and ``--jobs N``
output byte-identical (same cells, same per-cell determinism, same
ordering -- only wall-clock changes).

The cell function must be picklable (module-level) and derive everything
from the cell itself: no closure state survives the trip to a worker.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.parallel.executors import make_executor

Cell = TypeVar("Cell")
Result = TypeVar("Result")


class ParallelSweepRunner:
    """Runs independent measurement cells on an executor, in cell order."""

    def __init__(
        self,
        cell_fn: Callable[[Cell], Result],
        jobs: Optional[int] = 1,
        executor=None,
    ) -> None:
        self.cell_fn = cell_fn
        self.jobs = jobs
        self._executor = executor
        #: wall seconds of the last :meth:`run` (for speedup reporting)
        self.last_wall_seconds = 0.0

    def run(self, cells: Sequence[Cell]) -> List[Result]:
        """Evaluate every cell; results align index-for-index with ``cells``."""
        cells = list(cells)
        if not cells:
            return []
        own_executor = self._executor is None
        executor = self._executor if not own_executor else make_executor(self.jobs)
        # repro: lint-ok[D001] -- last_wall_seconds is an informational
        # measurement; sweep cell results are seed-deterministic
        start = perf_counter()
        try:
            results = executor.map(self.cell_fn, cells)
        finally:
            if own_executor:
                executor.close()
        self.last_wall_seconds = perf_counter() - start  # repro: lint-ok[D001] -- informational wall measurement
        return results

    def run_tagged(self, cells: Sequence[Cell]) -> List[Tuple[Cell, Result]]:
        """Like :meth:`run`, but pairs each result with its cell."""
        return list(zip(cells, self.run(cells)))


def run_cells(
    cell_fn: Callable[[Cell], Result],
    cells: Sequence[Cell],
    jobs: Optional[int] = 1,
) -> List[Result]:
    """One-shot convenience wrapper around :class:`ParallelSweepRunner`."""
    return ParallelSweepRunner(cell_fn, jobs=jobs).run(cells)
