"""Zstd-style codec tests: frame, blocks, levels, dictionaries."""

import pytest

from repro.codecs import CodecError, CorruptDataError, ZstdCompressor
from repro.codecs.base import StageCounters
from repro.codecs.zstd import blocks as zblocks
from repro.codecs.zstd import params as zparams
from repro.codecs.lz77 import Token


class TestSequenceCodeTables:
    def test_ll_codes_direct_below_16(self):
        for value in range(16):
            assert zparams.ll_code(value) == value

    def test_ll_code_boundaries(self):
        assert zparams.ll_code(16) == 16
        assert zparams.ll_code(17) == 16
        assert zparams.ll_code(18) == 17
        assert zparams.ll_code(65536) == 35
        assert zparams.ll_code(131071) == 35

    def test_ll_roundtrip_via_baseline_extra(self):
        for value in [0, 15, 16, 17, 31, 47, 64, 127, 1000, 65535, 131071]:
            code = zparams.ll_code(value)
            baseline, bits = zparams.LL_TABLE[code]
            assert baseline <= value < baseline + (1 << bits) + (bits == 0)

    def test_ml_code_minimum(self):
        assert zparams.ml_code(3) == 0
        assert zparams.ml_code(34) == 31
        assert zparams.ml_code(35) == 32

    def test_ml_code_below_min_match_rejected(self):
        with pytest.raises(ValueError):
            zparams.ml_code(2)

    def test_ml_roundtrip_via_baseline_extra(self):
        for value in [3, 10, 34, 35, 36, 37, 100, 513, 65538, 131072]:
            code = zparams.ml_code(value)
            baseline, bits = zparams.ML_TABLE[code]
            assert baseline <= value < baseline + (1 << bits) + (bits == 0)

    def test_of_code_is_log2(self):
        assert zparams.of_code(1) == 0
        assert zparams.of_code(2) == 1
        assert zparams.of_code(3) == 1
        assert zparams.of_code(4) == 2
        assert zparams.of_code(65536) == 16

    def test_of_code_zero_rejected(self):
        with pytest.raises(ValueError):
            zparams.of_code(0)

    def test_predefined_norms_sum_to_table_size(self):
        assert sum(zparams.PREDEFINED_LL_NORM) == 1 << zparams.PREDEFINED_LL_LOG
        assert sum(zparams.PREDEFINED_ML_NORM) == 1 << zparams.PREDEFINED_ML_LOG
        assert sum(zparams.PREDEFINED_OF_NORM) == 1 << zparams.PREDEFINED_OF_LOG


class TestBlockCoding:
    def _roundtrip(self, data, tokens):
        counters = StageCounters()
        payload = zblocks.encode_block(data, 0, tokens, counters)
        return zblocks.decode_block(payload, StageCounters())

    def test_literals_only(self):
        assert self._roundtrip(b"plain literals", [Token(14, 0, 0)]) == b"plain literals"

    def test_single_sequence(self):
        data = b"abcdabcd"
        assert self._roundtrip(data, [Token(4, 4, 4)]) == data

    def test_rle_literals_mode(self):
        data = b"a" * 300 + b"a" * 20
        payload = zblocks.encode_block(data, 0, [Token(320, 0, 0)], StageCounters())
        # RLE literal header: mode byte + varint + 1 byte, well under raw
        assert len(payload) < 20
        assert zblocks.decode_block(payload, StageCounters()) == data

    def test_huffman_literals_mode(self):
        data = (b"abcdefgh" * 64) + bytes(range(64))
        tokens = [Token(len(data), 0, 0)]
        counters = StageCounters()
        payload = zblocks.encode_block(data, 0, tokens, counters)
        assert counters.entropy_symbols >= len(data)
        assert zblocks.decode_block(payload, StageCounters()) == data

    def test_many_sequences_use_fse(self):
        piece = b"0123456789abcdef"
        data = piece + b"".join(
            piece[: 4 + (i % 10)] for i in range(100)
        )
        from repro.codecs.matchfinders import HashChainMatchFinder, MatchFinderParams

        tokens = HashChainMatchFinder().parse(
            data, 0, MatchFinderParams(strategy="greedy", min_match=4)
        )
        counters = StageCounters()
        payload = zblocks.encode_block(data, 0, tokens, counters)
        assert zblocks.decode_block(payload, StageCounters()) == data

    def test_trailing_bytes_rejected(self):
        payload = zblocks.encode_block(b"abc", 0, [Token(3, 0, 0)], StageCounters())
        with pytest.raises(CorruptDataError):
            zblocks.decode_block(payload + b"\x00", StageCounters())

    def test_history_offsets_decode(self):
        history = b"0123456789"
        data = history + b"0123456789"
        tokens = [Token(0, 10, 10)]
        payload = zblocks.encode_block(data, len(history), tokens, StageCounters())
        out = zblocks.decode_block(payload, StageCounters(), history=history)
        assert out == b"0123456789"


class TestZstdCompressor:
    def test_roundtrip_representative_levels(self, zstd, payloads):
        for name, data in payloads.items():
            for level in (-5, -1, 1, 3, 6, 9, 13, 19):
                result = zstd.compress(data, level)
                assert zstd.decompress(result.data).data == data, (name, level)

    def test_level_range(self, zstd):
        with pytest.raises(CodecError):
            zstd.compress(b"x", -6)
        with pytest.raises(CodecError):
            zstd.compress(b"x", 23)

    def test_higher_levels_do_not_regress_much(self, zstd, payloads):
        data = payloads["structured"]
        low = zstd.compress(data, 1)
        high = zstd.compress(data, 12)
        assert len(high.data) <= len(low.data) * 1.02

    def test_negative_levels_scan_less(self, zstd, payloads):
        data = payloads["text"] * 4
        normal = zstd.compress(data, 1)
        turbo = zstd.compress(data, -5)
        assert (
            turbo.counters.positions_scanned < normal.counters.positions_scanned
        )

    def test_rle_block_for_constant_input(self, zstd):
        result = zstd.compress(b"z" * 100000, 3)
        assert len(result.data) < 64
        assert zstd.decompress(result.data).data == b"z" * 100000

    def test_multi_block_input(self, zstd):
        data = bytes(
            (i * 31 + (i >> 8)) & 0xFF for i in range(zparams.MAX_BLOCK_SIZE + 5000)
        )
        result = zstd.compress(data, 1)
        assert zstd.decompress(result.data).data == data

    def test_checksum_detects_corruption(self, zstd, payloads):
        result = zstd.compress(payloads["text"], 3)
        corrupted = bytearray(result.data)
        corrupted[-1] ^= 0x01  # flip checksum byte
        with pytest.raises(CorruptDataError):
            zstd.decompress(bytes(corrupted))

    def test_bad_magic(self, zstd):
        with pytest.raises(CorruptDataError):
            zstd.decompress(b"NOPE" + b"\x00" * 32)

    def test_content_size_in_frame(self, zstd, payloads):
        data = payloads["text"]
        result = zstd.compress(data, 1)
        stored = int.from_bytes(result.data[6:14], "little")
        assert stored == len(data)

    def test_small_input_shrinks_tables(self, zstd):
        small = zstd.params_for_level(3, input_size=1024)
        large = zstd.params_for_level(3, input_size=1 << 20)
        assert small.hash_log < large.hash_log
        assert small.window_log <= large.window_log

    def test_match_finding_counters_grow_with_level(self, zstd, payloads):
        data = payloads["structured"]
        low = zstd.compress(data, 1)
        high = zstd.compress(data, 9)
        assert high.counters.match_candidates > low.counters.match_candidates


class TestZstdDictionary:
    def test_dictionary_roundtrip(self, zstd):
        dictionary = b"common prefix material: user_id country status score "
        data = b"user_id=5;country=US;status=ok;score=9"
        result = zstd.compress(data, 3, dictionary=dictionary)
        restored = zstd.decompress(result.data, dictionary=dictionary)
        assert restored.data == data

    def test_dictionary_improves_small_item_ratio(self, zstd):
        dictionary = (
            b'{"user_id": 0, "country": "US", "status": "active", "score": 0}'
        ) * 4
        item = b'{"user_id": 4217, "country": "US", "status": "active", "score": 77}'
        plain = zstd.compress(item, 3)
        with_dict = zstd.compress(item, 3, dictionary=dictionary)
        assert len(with_dict.data) < len(plain.data)

    def test_missing_dictionary_rejected(self, zstd):
        dictionary = b"shared history " * 10
        result = zstd.compress(b"shared history again", 3, dictionary=dictionary)
        with pytest.raises(CorruptDataError):
            zstd.decompress(result.data)

    def test_wrong_dictionary_rejected(self, zstd):
        dictionary = b"shared history " * 10
        result = zstd.compress(b"shared history again", 3, dictionary=dictionary)
        with pytest.raises(CorruptDataError):
            zstd.decompress(result.data, dictionary=b"a different dictionary")
