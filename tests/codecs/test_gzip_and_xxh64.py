"""gzip container and XXH64 tests."""

import gzip as stdlib_gzip

import pytest
from hypothesis import given, settings, strategies as st

from repro.codecs import CorruptDataError, get_codec
from repro.codecs.checksum import xxh64


class TestXXH64:
    # Known-answer vectors from the reference xxHash implementation.
    def test_empty(self):
        assert xxh64(b"") == 0xEF46DB3751D8E999

    def test_empty_with_seed(self):
        assert xxh64(b"", seed=1) == 0xD5AFBA1336A3BE4B

    def test_xxhash_string(self):
        assert xxh64(b"xxhash") == 0x32DD38952C4BC720

    def test_hello_world(self):
        assert xxh64(b"Hello World") == 0x6334D20719245BC2

    def test_32_byte_lane_path(self):
        digest = xxh64(b"0123456789abcdef0123456789abcdef")
        assert digest != xxh64(b"0123456789abcdef0123456789abcdeF")

    def test_long_input_sensitivity(self):
        data = bytes(range(256)) * 10
        assert xxh64(data) != xxh64(data[:-1] + b"\x00")

    def test_seed_changes_digest(self):
        assert xxh64(b"payload") != xxh64(b"payload", seed=7)


class TestGzipCodec:
    @pytest.fixture(scope="class")
    def codec(self):
        return get_codec("gzip")

    def test_roundtrip(self, codec, payloads):
        for name, data in payloads.items():
            for level in (0, 1, 6, 9):
                result = codec.compress(data, level)
                assert codec.decompress(result.data).data == data, (name, level)

    def test_stdlib_decodes_ours(self, codec, payloads):
        for data in payloads.values():
            blob = codec.compress(data, 6).data
            assert stdlib_gzip.decompress(blob) == data

    def test_we_decode_stdlib(self, codec, payloads):
        for data in payloads.values():
            blob = stdlib_gzip.compress(data, 6)
            assert codec.decompress(blob).data == data

    def test_we_decode_stdlib_with_filename(self, codec, tmp_path):
        # stdlib GzipFile writes FNAME; our parser must skip it.
        path = tmp_path / "named.txt"
        path.write_bytes(b"content with a name " * 50)
        gz_path = tmp_path / "named.txt.gz"
        with stdlib_gzip.open(gz_path, "wb") as handle:
            handle.write(path.read_bytes())
        assert codec.decompress(gz_path.read_bytes()).data == path.read_bytes()

    def test_deterministic_output(self, codec):
        data = b"deterministic " * 100
        assert codec.compress(data, 6).data == codec.compress(data, 6).data

    def test_crc_mismatch_detected(self, codec):
        blob = bytearray(codec.compress(b"x" * 500, 6).data)
        blob[-5] ^= 0xFF  # flip a CRC byte
        with pytest.raises(CorruptDataError):
            codec.decompress(bytes(blob))

    def test_bad_magic(self, codec):
        with pytest.raises(CorruptDataError):
            codec.decompress(b"\x1f\x8c" + b"\x00" * 20)

    def test_truncated(self, codec):
        blob = codec.compress(b"hello world " * 20, 6).data
        with pytest.raises(CorruptDataError):
            codec.decompress(blob[:12])


@settings(max_examples=20, deadline=None)
@given(st.binary(max_size=2000))
def test_gzip_interop_property(data):
    codec = get_codec("gzip")
    assert stdlib_gzip.decompress(codec.compress(data, 6).data) == data
    assert codec.decompress(stdlib_gzip.compress(data, 6)).data == data
