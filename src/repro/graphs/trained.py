"""Per-category trained graphs, pinned as literals.

These are the outputs of ``repro graph train`` (the GraphSearch strategy
over each corpus category's samples), frozen as plain dict literals so:

- resolution needs no training run — ``get_codec("graph:record")`` works
  instantly in any process, including pool workers;
- the shapes are reviewable — each graph documents *why* it beats the
  flat codecs on its category, in the OpenZL sense of encoding data
  structure into the compressor.

Regenerate with ``repro graph train --category <name>`` and paste the
winning spec here; ``tests/graphs/test_trained.py`` holds the acceptance
bar (beats the best flat (codec, level) ratio at comparable modeled cost
on at least two of the three categories).

Measured on the 64 KiB training samples (seed 7), ratio vs the best flat
config at comparable modeled cost:

===========  ==============  ====================  =====================
category     graph ratio     best comparable flat  best flat at any cost
===========  ==============  ====================  =====================
record       5.48 @ 517 us   zstd-9  5.13          zstd-21 5.53 @ 5.9 ms
float        2.66 @ ~180 us  zlib-9  2.55          zlib-9  2.55
text         6.53 @ 321 us   zstd-9  6.88          zstd-15 7.15
===========  ==============  ====================  =====================

(text is the honest miss: JSON-lines logs carry their redundancy in
whole-line templates that span fields, which flat LZ matches directly
and a column split destroys — the paper's point that graph shapes are
*per-category*, not universally better.)
"""

from __future__ import annotations

from typing import Dict, List

from repro.graphs.model import Spec

#: categories with a trained graph, and the corpus member each models
TRAINED_CATEGORIES = ("record", "text", "float")


def _zstd(level: int) -> Spec:
    return {"kind": "leaf", "codec": "zstd", "level": level}


def _zlib(level: int) -> Spec:
    return {"kind": "leaf", "codec": "zlib", "level": level}


#: record category (corpus.records): pipe-delimited rows with a fixed
#: 7-field schema. Tokenizing on ``|`` with 6 lanes and the lane counter
#: re-anchored at ``\n`` turns the row-major stream into columns — each
#: lane sees one field's values (all the countries together, all the
#: timestamps together), which is where the low-cardinality values live.
#: The varint lengths stream is nearly constant and compresses away.
RECORD_GRAPH: Spec = {
    "kind": "tokenize",
    "delim": 124,  # ord("|")
    "lanes": 6,
    "reset": 10,  # ord("\n"): re-anchor the lane counter at row breaks
    "children": [_zlib(9)] * 7,
}

#: text category (corpus.logs): JSON-lines with sorted keys. Splitting on
#: ``"`` groups the quoted keys and values into periodic lanes; the
#: line-break reset keeps lanes aligned across lines whose message
#: contains extra delimiters.
TEXT_GRAPH: Spec = {
    "kind": "tokenize",
    "delim": 34,  # ord('"')
    "lanes": 8,
    "reset": 10,  # ord("\n"): lane alignment self-heals at line breaks
    "children": [_zlib(9)] * 9,
}

#: float category (corpus.embeddings, ads model B): JSON header
#: terminated by a NUL, then a 9828-byte dense float32 block, then
#: sparse int64 features that are ~75% zeros. ``headsplit`` peels the
#: variable-length header so the body stays element-aligned; ``slice``
#: encodes the learned section layout; the dense floats keep a plain LZ
#: leaf (quantized activations repeat as whole 4-byte tokens), while the
#: mostly-small sparse integers shrink through varint recoding.
FLOAT_GRAPH: Spec = {
    "kind": "headsplit",
    "marker": 0,
    "children": [
        _zstd(3),
        {
            "kind": "slice",
            "sizes": [9828],
            "children": [
                _zlib(9),
                {"kind": "varint", "width": 8, "child": _zlib(9)},
            ],
        },
    ],
}

TRAINED_GRAPHS: Dict[str, Spec] = {
    "record": RECORD_GRAPH,
    "text": TEXT_GRAPH,
    "float": FLOAT_GRAPH,
}


def trained_graph_names() -> List[str]:
    return sorted(TRAINED_GRAPHS)
