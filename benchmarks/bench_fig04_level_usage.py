"""Fig. 4: Zstd compression-level usage by compute cycles.

Paper shape: service owners favor low levels -- levels 1-4 take more than
50% of level-attributed cycles (over 80% for Feed services).
"""

from __future__ import annotations

import pytest

from repro.fleet import DEFAULT_FLEET, SamplingProfiler, characterize
from repro.analysis import format_series


@pytest.fixture(scope="module")
def characterization():
    return characterize(
        SamplingProfiler(samples_per_day=300_000, seed=32).run(days=30)
    )


def test_fig04_level_usage(benchmark, characterization, figure_output):
    lines = [
        format_series(
            "Zstd level usage by cycles",
            [
                (f"level {level}", share * 100)
                for level, share in characterization.level_usage.items()
            ],
            value_format="{:.1f}%",
        )
    ]
    low_share = characterization.low_level_share(4)
    lines.append(f"levels 1-4 share: {low_share * 100:.1f}% (paper: >50%)")

    feed_fleet = [p for p in DEFAULT_FLEET if p.category == "Feed"]
    feed = characterize(
        SamplingProfiler(fleet=feed_fleet, samples_per_day=100_000, seed=33).run(10)
    )
    feed_low = feed.low_level_share(4)
    lines.append(f"Feed levels 1-4 share: {feed_low * 100:.1f}% (paper: >80%)")
    figure_output("fig04_level_usage", "\n".join(lines))

    assert low_share > 0.5
    assert feed_low > 0.8

    benchmark(lambda: characterization.low_level_share(4))
