"""CACHE1/CACHE2: distributed memory object caching with item compression.

"Caches need to offer fast random access to their contents, so when they
offer compression, they compress each item individually. ... Compressing
items individually means that the item can be sent compressed over the
network to the client without decompressing on the server-side, saving both
CPU and network. ... we can group items by their type and provide one
dictionary per data type" (Section IV-C).
"""

from repro.services.cache.server import CacheServer, CacheStats
from repro.services.cache.client import CacheClient

__all__ = ["CacheServer", "CacheStats", "CacheClient"]
