"""Deterministic crash injection: plans, points, and the injector.

A *crash point* is a named site in the durable write path ("the instant
after the SST file landed but before the manifest swap"). A
:class:`CrashPlan` declares which site dies at which visit, and a
:class:`CrashInjector` executes it: the Nth time the site is reached,
:class:`SimulatedCrash` is raised. The storage layer then models the
power cut (:meth:`SimStorage.crash
<repro.services.kvstore.storage.SimStorage.crash>` tears the unsynced
tail at a seeded byte), and the harness reopens the store and checks the
recovery invariant.

Everything is counted, nothing is random at this layer: a crash plan is
a pure function of ``(site, hit)``, so one failing sweep cell replays
exactly. Seed-driven *selection* of crash points (which site, which
visit) belongs to the caller — the chaos scenario draws them from its
:class:`~repro.faults.plan.FaultInjector` spec RNGs, the sweep
enumerates them exhaustively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


class SimulatedCrash(RuntimeError):
    """The process died at a crash point. Never caught by the store
    itself — only the harness (or chaos scenario) may survive it."""

    def __init__(self, site: str, hit: int) -> None:
        super().__init__(f"simulated crash at {site} (hit {hit})")
        self.site = site
        self.hit = hit


@dataclass(frozen=True)
class CrashPoint:
    """Die the ``hit``-th time execution reaches ``site`` (1-based)."""

    site: str
    hit: int = 1

    def __post_init__(self) -> None:
        if self.hit < 1:
            raise ValueError(f"hit must be >= 1, got {self.hit}")


@dataclass(frozen=True)
class CrashPlan:
    """A named set of crash points, armed together."""

    name: str
    points: Tuple[CrashPoint, ...]

    @staticmethod
    def single(site: str, hit: int = 1) -> "CrashPlan":
        """The one-cell plan the sweep iterates."""
        return CrashPlan(f"{site}#{hit}", (CrashPoint(site, hit),))

    @staticmethod
    def none() -> "CrashPlan":
        return CrashPlan("none", ())


class CrashInjector:
    """Counts visits per site and raises when a planned point is hit.

    ``disarm()`` turns the injector off — the harness calls it before
    reopening the store so recovery itself cannot re-crash (recovery
    crash coverage is expressed as separate plans against the recovered
    image, not by re-arming mid-recovery).
    """

    def __init__(self, plan: CrashPlan) -> None:
        self.plan = plan
        self.armed = True
        #: visits per site, including visits while disarmed
        self.reached: Dict[str, int] = {}
        #: the (site, hit) that actually fired, if any
        self.fired: Optional[Tuple[str, int]] = None

    def reach(self, site: str) -> None:
        """Record one visit; raise :class:`SimulatedCrash` if planned."""
        count = self.reached.get(site, 0) + 1
        self.reached[site] = count
        if not self.armed or self.fired is not None:
            return
        for point in self.plan.points:
            if point.site == site and point.hit == count:
                self.fired = (site, count)
                raise SimulatedCrash(site, count)

    def disarm(self) -> None:
        self.armed = False

    def rearm(self) -> None:
        """Re-enable unfired points (multi-crash chaos rounds)."""
        self.armed = True

    def arm_point(self, site: str, offset: int = 1) -> None:
        """Replace the plan with one point ``offset`` visits from now.

        The chaos scenario uses this to arm "die at the next flush"
        style points relative to the current visit counts.
        """
        hit = self.reached.get(site, 0) + offset
        self.plan = CrashPlan.single(site, hit)
        self.fired = None
        self.armed = True
