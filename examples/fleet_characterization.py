"""Fleet-level characterization: profile the synthetic fleet for 30 days
and print the Section-III views (Figs 2-5 and the headline totals).

Run:  python examples/fleet_characterization.py
"""

from repro.analysis import summarize_sizes
from repro.fleet import DEFAULT_FLEET, SamplingProfiler, characterize


def main() -> None:
    profiler = SamplingProfiler(samples_per_day=300_000, seed=2023)
    print("profiling the fleet for 30 simulated days ...")
    samples = profiler.run(days=30)
    result = characterize(samples)

    print(
        f"\nfleet totals: {result.compression_share * 100:.2f}% of cycles in "
        f"(de)compression (paper: 4.6%)"
    )
    for algorithm, share in sorted(
        result.algorithm_shares.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {algorithm:5s}: {share * 100:.2f}%")

    print("\nZstd cycle share by category (Fig. 2):")
    for category, share in sorted(
        result.category_zstd_share.items(), key=lambda kv: -kv[1]
    ):
        if category == "Infra":
            continue
        comp, decomp = result.category_split.get(category, (0.0, 0.0))
        print(
            f"  {category:17s} {share * 100:5.2f}%   "
            f"split {comp * 100:4.1f}% comp / {decomp * 100:4.1f}% decomp"
        )

    print("\nZstd level usage (Fig. 4):")
    for level, share in result.level_usage.items():
        print(f"  level {level:2d}: {share * 100:5.1f}%")
    print(f"  levels 1-4 total: {result.low_level_share(4) * 100:.1f}% (paper: >50%)")

    print("\nblock sizes by service (Fig. 5, medians):")
    for profile in DEFAULT_FLEET:
        if profile.compression_share == 0:
            continue
        sizes = profiler.block_size_samples(profile, count=500).tolist()
        summary = summarize_sizes(sizes)
        print(
            f"  {profile.name:20s} p50 {summary['p50']:9,.0f} B   "
            f"p99 {summary['p99']:10,.0f} B"
        )


if __name__ == "__main__":
    main()
