"""ASCII scatter/line rendering for trade-off curves.

The benches and examples print figures as text; this renderer gives the
speed/ratio curves of Figs 1, 10-12 a visual form without any plotting
dependency.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

Point = Tuple[float, float]

_MARKERS = "oxv*#@+%"


def ascii_scatter(
    series: Dict[str, Sequence[Point]],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    log_x: bool = False,
) -> str:
    """Render named point series on one text grid.

    Each series gets a marker from ``oxv*``...; axes are annotated with the
    data ranges. ``log_x`` puts the x axis on a log10 scale (speed axes
    span decades).
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"

    def x_of(value: float) -> float:
        return math.log10(max(value, 1e-12)) if log_x else value

    xs = [x_of(x) for x, __ in points]
    ys = [y for __, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for __ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in pts:
            col = int((x_of(x) - x_low) / x_span * (width - 1))
            row = height - 1 - int((y - y_low) / y_span * (height - 1))
            grid[row][col] = marker

    lines = [f"{y_label} [{y_low:.3g} .. {y_high:.3g}]"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    x_range = (
        f"[{10 ** x_low:.3g} .. {10 ** x_high:.3g}] (log)"
        if log_x
        else f"[{x_low:.3g} .. {x_high:.3g}]"
    )
    lines.append(f" {x_label} {x_range}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)


def tradeoff_curve(
    labels: Sequence[str], speeds: Sequence[float], ratios: Sequence[float]
) -> List[Tuple[str, float, float]]:
    """Zip a (label, speed, ratio) curve, sorted by speed descending --
    the right-to-left level traversal the paper's figures use."""
    rows = sorted(zip(labels, speeds, ratios), key=lambda r: -r[1])
    return [(label, speed, ratio) for label, speed, ratio in rows]
