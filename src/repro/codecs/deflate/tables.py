"""RFC 1951 constant tables: length codes, distance codes, fixed trees."""

from __future__ import annotations

from typing import List, Tuple

MIN_MATCH = 3
MAX_MATCH = 258
MAX_DISTANCE = 32768
END_OF_BLOCK = 256

#: length code -> (baseline, extra bits); codes 257..285
LENGTH_TABLE: List[Tuple[int, int]] = [
    (3, 0), (4, 0), (5, 0), (6, 0), (7, 0), (8, 0), (9, 0), (10, 0),
    (11, 1), (13, 1), (15, 1), (17, 1),
    (19, 2), (23, 2), (27, 2), (31, 2),
    (35, 3), (43, 3), (51, 3), (59, 3),
    (67, 4), (83, 4), (99, 4), (115, 4),
    (131, 5), (163, 5), (195, 5), (227, 5),
    (258, 0),
]

#: distance code -> (baseline, extra bits); codes 0..29
DISTANCE_TABLE: List[Tuple[int, int]] = [
    (1, 0), (2, 0), (3, 0), (4, 0),
    (5, 1), (7, 1),
    (9, 2), (13, 2),
    (17, 3), (25, 3),
    (33, 4), (49, 4),
    (65, 5), (97, 5),
    (129, 6), (193, 6),
    (257, 7), (385, 7),
    (513, 8), (769, 8),
    (1025, 9), (1537, 9),
    (2049, 10), (3073, 10),
    (4097, 11), (6145, 11),
    (8193, 12), (12289, 12),
    (16385, 13), (24577, 13),
]

#: order in which code-length-code lengths appear in a dynamic header
CODE_LENGTH_ORDER = [16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15]


def length_code(length: int) -> int:
    """DEFLATE length code (257..285) for a match length (3..258)."""
    if not MIN_MATCH <= length <= MAX_MATCH:
        raise ValueError(f"match length {length} outside 3..258")
    low, high = 0, len(LENGTH_TABLE) - 1
    while low < high:
        mid = (low + high + 1) // 2
        if LENGTH_TABLE[mid][0] <= length:
            low = mid
        else:
            high = mid - 1
    # Length 258 belongs to code 285 (its dedicated zero-extra code).
    return 257 + low


def distance_code(distance: int) -> int:
    """DEFLATE distance code (0..29) for a distance (1..32768)."""
    if not 1 <= distance <= MAX_DISTANCE:
        raise ValueError(f"distance {distance} outside 1..32768")
    low, high = 0, len(DISTANCE_TABLE) - 1
    while low < high:
        mid = (low + high + 1) // 2
        if DISTANCE_TABLE[mid][0] <= distance:
            low = mid
        else:
            high = mid - 1
    return low


def fixed_literal_lengths() -> List[int]:
    """Code lengths of the fixed literal/length tree (RFC 1951 section 3.2.6)."""
    lengths = [8] * 144 + [9] * 112 + [7] * 24 + [8] * 8
    return lengths


def fixed_distance_lengths() -> List[int]:
    """Code lengths of the fixed distance tree (all 5 bits)."""
    return [5] * 30
