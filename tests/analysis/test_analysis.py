"""Distribution summaries and report rendering tests."""

import pytest

from repro.analysis import (
    format_series,
    format_table,
    log2_histogram,
    percentile,
    size_bucket_label,
    summarize_sizes,
)


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_median_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5, 1, 9, 3]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_single_value(self):
        assert percentile([7], 99) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestHistograms:
    def test_bucket_labels(self):
        assert size_bucket_label(512) == "512B"
        assert size_bucket_label(2048) == "2KB"
        assert size_bucket_label(1 << 21) == "2MB"

    def test_log2_histogram_fractions_sum_to_one(self):
        hist = log2_histogram([100, 200, 1000, 5000, 5000])
        assert sum(frac for __, frac in hist) == pytest.approx(1.0)

    def test_log2_histogram_buckets(self):
        hist = dict(log2_histogram([1024, 1500, 2048]))
        assert hist["1KB"] == pytest.approx(2 / 3)
        assert hist["2KB"] == pytest.approx(1 / 3)

    def test_empty_histogram(self):
        assert log2_histogram([]) == []

    def test_summarize_sizes(self):
        sizes = [100] * 90 + [10000] * 10
        summary = summarize_sizes(sizes)
        assert summary["below_1kb"] == pytest.approx(0.9)
        assert summary["p50"] == 100
        assert summary["p99"] == 10000

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_sizes([])


class TestRendering:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        text = format_series("ratio", [("L1", 2.5), ("L3", 3.0)])
        assert "series: ratio" in text
        assert "L1 = 2.500" in text
