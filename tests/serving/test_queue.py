"""FairQueue: weighted-fair order, bounded lanes, deadline drops."""

import math

import pytest

from repro.serving.queue import FairQueue, ServingRequest


def _request(request_id, tenant, size=100, arrival=0.0, deadline=math.inf):
    return ServingRequest(
        request_id=request_id,
        tenant=tenant,
        payload=b"x" * size,
        arrival=arrival,
        deadline=deadline,
    )


class TestBasics:
    def test_fifo_within_one_tenant(self):
        queue = FairQueue(capacity=8)
        for i in range(5):
            assert queue.offer(_request(i, "a"))
        order = []
        while queue.depth():
            request, expired = queue.poll(0.0)
            assert expired == []
            order.append(request.request_id)
        assert order == [0, 1, 2, 3, 4]

    def test_depth_and_tenants(self):
        queue = FairQueue(capacity=4)
        queue.offer(_request(0, "a"))
        queue.offer(_request(1, "b"))
        queue.offer(_request(2, "b"))
        assert queue.depth() == 3
        assert queue.depth("b") == 2
        assert queue.depth("missing") == 0
        assert queue.tenants() == ["a", "b"]
        assert len(queue) == 3

    def test_poll_empty(self):
        request, expired = FairQueue().poll(0.0)
        assert request is None and expired == []

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            FairQueue(capacity=0)
        with pytest.raises(ValueError):
            FairQueue(weights={"a": 0.0})
        with pytest.raises(ValueError):
            FairQueue(default_weight=-1.0)


class TestWeightedFairness:
    def test_heavier_tenant_served_proportionally_more(self):
        queue = FairQueue(capacity=64, weights={"heavy": 3.0, "light": 1.0})
        for i in range(24):
            queue.offer(_request(i, "heavy" if i % 2 == 0 else "light"))
        first_eight = []
        for __ in range(8):
            request, __expired = queue.poll(0.0)
            first_eight.append(request.tenant)
        # 3:1 weights with equal sizes: the first dequeues skew 3-to-1
        assert first_eight.count("heavy") == 6
        assert first_eight.count("light") == 2

    def test_large_payload_costs_proportionally(self):
        queue = FairQueue(capacity=8)
        queue.offer(_request(0, "bulky", size=4000))
        queue.offer(_request(1, "bulky", size=4000))
        queue.offer(_request(2, "tiny", size=100))
        queue.offer(_request(3, "tiny", size=100))
        order = []
        while queue.depth():
            request, __ = queue.poll(0.0)
            order.append(request.request_id)
        # both tiny requests finish (virtually) before the second bulky one
        assert order.index(3) < order.index(1)

    def test_deterministic_tie_break(self):
        def drain():
            queue = FairQueue(capacity=4)
            for i, tenant in enumerate(["b", "a", "c"]):
                queue.offer(_request(i, tenant, size=100))
            order = []
            while queue.depth():
                request, __ = queue.poll(0.0)
                order.append(request.tenant)
            return order

        # equal tags: ties break by tenant name, then sequence -- a pure
        # function of the offered traffic, not of dict iteration order
        assert drain() == drain() == ["a", "b", "c"]

    def test_idle_tenant_does_not_bank_credit(self):
        queue = FairQueue(capacity=64)
        # tenant a drains 8 requests, advancing virtual time
        for i in range(8):
            queue.offer(_request(i, "a", size=1000))
        for __ in range(8):
            queue.poll(0.0)
        # b arrives late: its tag starts at the current virtual time, not
        # at zero, so idling banked it no credit -- its tag ties with a's
        # next request instead of jumping the whole backlog
        queue.offer(_request(100, "b", size=1000))
        queue.offer(_request(101, "a", size=1000))
        first, __ = queue.poll(0.0)
        second, __ = queue.poll(0.0)
        assert {first.tenant, second.tenant} == {"a", "b"}
        assert first.tenant == "a"  # the tie-break, not a b head start


class TestBoundsAndDeadlines:
    def test_full_lane_rejected(self):
        queue = FairQueue(capacity=2)
        assert queue.offer(_request(0, "a"))
        assert queue.offer(_request(1, "a"))
        assert not queue.offer(_request(2, "a"))
        # other tenants have their own lane
        assert queue.offer(_request(3, "b"))
        assert queue.stats.rejected_full == 1
        assert queue.stats.enqueued == 3

    def test_expired_dropped_at_poll(self):
        queue = FairQueue(capacity=8)
        queue.offer(_request(0, "a", deadline=1.0))
        queue.offer(_request(1, "a", deadline=10.0))
        request, expired = queue.poll(5.0)
        assert [r.request_id for r in expired] == [0]
        assert request.request_id == 1
        assert queue.stats.expired == 1
        assert queue.stats.dequeued == 1

    def test_all_expired_returns_none(self):
        queue = FairQueue(capacity=8)
        queue.offer(_request(0, "a", deadline=1.0))
        queue.offer(_request(1, "b", deadline=2.0))
        request, expired = queue.poll(99.0)
        assert request is None
        assert {r.request_id for r in expired} == {0, 1}

    def test_deadline_exactly_now_still_served(self):
        queue = FairQueue(capacity=4)
        queue.offer(_request(0, "a", deadline=5.0))
        request, expired = queue.poll(5.0)
        assert request is not None and expired == []
