"""Deterministic discrete-event simulation of the serving plane.

The simulator runs the :class:`~repro.serving.gateway.CompressionGateway`
against a :class:`~repro.serving.workload.WorkloadGenerator` with zero
wall-clock dependence: arrivals come from the seeded workload, service
durations are modeled (machine model x host-contention scale), and time
is an event heap driving a :class:`~repro.resilience.clock.SimClock`.
The same ``(scenario, seed, scale)`` therefore renders a byte-identical
scorecard — the property CI certifies by diffing two runs, exactly as it
does for ``repro chaos``.

Scenario vocabulary:

- ``baseline``  — comfortable headroom; the ladder should stay on rung 0.
- ``overload``  — sustained arrivals beyond capacity; the ladder engages
  and, if pressure still wins, admission sheds.
- ``burst``     — diurnal arrivals whose peak overloads a fleet sized for
  the average (the paper's "services see daily load swings" reality).

The scorecard reports p50/p90/p99 latency and queue wait, goodput
(on-time bytes per simulated second), shed/throttle/expired counts, and
the compression ratio lost to degradation — the bicriteria trade made
explicit.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import Histogram
from repro.obs.slo import PAGE, WARN, SLOEvaluator
from repro.obs.timeseries import TimeSeriesRecorder, WindowSnapshot
from repro.parallel.executors import make_executor
from repro.resilience.clock import SimClock
from repro.serving.admission import (
    AdaptiveConcurrencyLimit,
    AdmissionController,
    TokenBucket,
)
from repro.serving.degrade import DegradationLadder, build_ladder
from repro.serving.gateway import CompressionGateway, ServedRequest
from repro.serving.slos import (
    ServingSLOConfig,
    ServingTimeline,
    build_window_row,
    record_window_completion,
    serving_slos,
)
from repro.serving.workload import TenantSpec, WorkloadGenerator, tenants_from_fleet

#: ladder candidate grid: the levels production fleets actually run
#: (Fig. 4: levels 1-4 carry most cycles) plus one high-ratio anchor
_LADDER_ALGORITHMS = ("zstd", "lz4")
_LADDER_LEVELS = (1, 2, 3, 6)
#: payload samples used to measure the ladder grid
_LADDER_SAMPLES = 12


@dataclass(frozen=True)
class ServingScenario:
    """One named load shape for the simulator."""

    name: str
    description: str
    rate_rps: float
    duration_seconds: float
    workers: int
    #: gateway queue capacity (requests)
    capacity: int
    #: admission token bucket (requests/second, burst)
    token_rate: float
    token_burst: float
    process: str = "poisson"
    diurnal_amplitude: float = 0.6
    #: modeled host-contention factor (see CompressionGateway.service_scale)
    service_scale: float = 400.0
    #: adaptive-concurrency latency target, seconds
    target_latency: float = 0.08
    categories: Tuple[str, ...] = ("Cache", "Key-Value Store", "Web", "Ads")


SCENARIOS: Dict[str, ServingScenario] = {
    "baseline": ServingScenario(
        name="baseline",
        description="comfortable headroom; rung 0 throughout",
        rate_rps=60.0,
        duration_seconds=4.0,
        workers=4,
        capacity=64,
        token_rate=200.0,
        token_burst=64,
    ),
    "overload": ServingScenario(
        name="overload",
        description="sustained 2-3x capacity; ladder engages, then sheds",
        rate_rps=260.0,
        duration_seconds=4.0,
        workers=2,
        capacity=32,
        token_rate=600.0,
        token_burst=128,
    ),
    "burst": ServingScenario(
        name="burst",
        description="diurnal swing whose peak overloads the average-sized fleet",
        rate_rps=100.0,
        duration_seconds=4.0,
        workers=2,
        capacity=48,
        token_rate=400.0,
        token_burst=96,
        process="diurnal",
        diurnal_amplitude=0.8,
    ),
}


@dataclass
class ServingReport:
    """Everything one simulation run learned."""

    scenario: str
    seed: int
    degradation_enabled: bool
    ladder_labels: List[str]
    thresholds: List[float]
    #: measured ratio of the unpressured rung-0 configuration (the
    #: reference the "ratio lost to degradation" line compares against)
    rung0_ratio: float = 0.0
    # -- traffic accounting --
    arrivals: int = 0
    admitted: int = 0
    throttled: int = 0
    shed: int = 0
    expired: int = 0
    served: int = 0
    on_time: int = 0
    tardy: int = 0
    degraded: int = 0
    degraded_by_rung: Dict[str, int] = field(default_factory=dict)
    raw_fallbacks: int = 0
    # -- volume --
    bytes_in_served: int = 0
    bytes_out: int = 0
    bytes_in_degraded: int = 0
    bytes_out_degraded: int = 0
    #: input bytes of requests completed within their deadline
    bytes_on_time: int = 0
    # -- time --
    makespan_seconds: float = 0.0
    first_degraded_at: Optional[float] = None
    first_shed_at: Optional[float] = None
    # -- distributions (label ``source``: "all" plus per tenant) --
    latency: Histogram = field(
        default_factory=lambda: Histogram(
            "serving_latency_seconds", "end-to-end request latency"
        )
    )
    wait: Histogram = field(
        default_factory=lambda: Histogram(
            "serving_wait_seconds", "queue wait before dispatch"
        )
    )
    #: the window-by-window SLO record (None when recording is disabled)
    timeline: Optional[ServingTimeline] = None

    @property
    def goodput_bytes_per_second(self) -> float:
        if self.makespan_seconds <= 0:
            return 0.0
        return self.bytes_on_time / self.makespan_seconds

    @property
    def achieved_ratio(self) -> float:
        if not self.bytes_out:
            return 1.0 if not self.bytes_in_served else float("inf")
        return self.bytes_in_served / self.bytes_out

    def shed_rate(self) -> float:
        return self.shed / self.arrivals if self.arrivals else 0.0

    def ratio_lost_to_degradation(self) -> float:
        """Fraction of ratio given up by the ladder, in [0, 1].

        Compares the achieved ratio against a counterfactual run where
        every degraded request had been served at rung 0 (its output
        estimated from the sample-measured rung-0 ratio). Payload-mix
        noise cancels because the non-degraded bytes appear on both
        sides.
        """
        if not self.bytes_in_degraded or self.rung0_ratio <= 0:
            return 0.0
        counterfactual_out = (
            self.bytes_out
            - self.bytes_out_degraded
            + self.bytes_in_degraded / self.rung0_ratio
        )
        if counterfactual_out <= 0 or self.bytes_out <= 0:
            return 0.0
        ratio_no_degradation = self.bytes_in_served / counterfactual_out
        if ratio_no_degradation <= 0:
            return 0.0
        return max(0.0, 1.0 - self.achieved_ratio / ratio_no_degradation)


def _resolve_scenario(scenario) -> ServingScenario:
    if isinstance(scenario, ServingScenario):
        return scenario
    try:
        return SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown serving scenario {scenario!r}; "
            f"available: {sorted(SCENARIOS)}"
        )


def build_scenario_ladder(
    requests: Sequence, graphs: Sequence[str] = ()
) -> DegradationLadder:
    """Ladder measured on the run's own leading payloads.

    ``graphs`` names trained graph codecs (``repro.graphs``) to enter as
    ladder candidates alongside the flat grid; empty keeps the ladder —
    and therefore every downstream scorecard byte — unchanged.
    """
    samples = [r.payload for r in requests[:_LADDER_SAMPLES] if r.payload]
    if not samples:
        samples = [b"serving ladder reference sample " * 32]
    return build_ladder(
        samples,
        algorithms=_LADDER_ALGORITHMS,
        levels=_LADDER_LEVELS,
        graphs=graphs,
    )


#: default rolling-window width for the SLO timeline, seconds
DEFAULT_WINDOW_SECONDS = 0.25


def run_simulation(
    scenario="overload",
    seed: int = 7,
    scale: float = 1.0,
    degradation: Optional[bool] = None,
    jobs: int = 1,
    tenants: Optional[Sequence[TenantSpec]] = None,
    window_seconds: float = DEFAULT_WINDOW_SECONDS,
    slo_config: Optional[ServingSLOConfig] = None,
    with_timeline: bool = True,
    graphs: Optional[Sequence[str]] = None,
) -> ServingReport:
    """Run one scenario end to end; returns the full report.

    ``scale`` multiplies the scenario duration (0.25 = quick smoke, same
    convention as ``repro chaos --ops``); ``degradation`` overrides the
    ladder on/off (None = on); ``jobs`` sizes the gateway's executor —
    output is byte-identical across job counts because compression output
    and modeled time are functions of the payload alone; ``graphs``
    names trained graph codecs to enter as ladder candidates (None/empty
    preserves the pre-graph ladder byte for byte).

    With ``with_timeline`` (the default) the run also records
    fixed-width metric windows, evaluates the serving SLOs after each
    window closes, and attaches the resulting
    :class:`~repro.serving.slos.ServingTimeline` to the report. The
    timeline is a pure function of the simulated events, so it inherits
    the scorecard's byte-identical-per-seed property.
    """
    sc = _resolve_scenario(scenario)
    if scale <= 0:
        raise ValueError("scale must be positive")
    if window_seconds <= 0:
        raise ValueError("window_seconds must be positive")
    degradation_enabled = True if degradation is None else degradation
    workload = WorkloadGenerator(
        tenants=tenants
        if tenants is not None
        else tenants_from_fleet(sc.categories),
        rate_rps=sc.rate_rps,
        duration_seconds=sc.duration_seconds * scale,
        seed=seed,
        process=sc.process,
        diurnal_amplitude=sc.diurnal_amplitude,
    )
    requests = workload.generate()
    ladder = build_scenario_ladder(requests, graphs=graphs or ())
    clock = SimClock()
    controller = AdmissionController(
        bucket=TokenBucket(sc.token_rate, sc.token_burst, clock),
        limiter=AdaptiveConcurrencyLimit(
            target_latency=sc.target_latency,
            initial=float(sc.workers),
            maximum=float(sc.workers * 4),
        ),
    )
    executor = make_executor(jobs)
    recorder = (
        TimeSeriesRecorder(window_seconds) if with_timeline else None
    )
    gateway = CompressionGateway(
        ladder,
        capacity=sc.capacity,
        admission=controller,
        tenant_weights=workload.tenant_weights(),
        clock=clock,
        executor=executor,
        degradation_enabled=degradation_enabled,
        service_scale=sc.service_scale,
        recorder=recorder,
    )
    report = ServingReport(
        scenario=sc.name,
        seed=seed,
        degradation_enabled=degradation_enabled,
        ladder_labels=ladder.labels(),
        thresholds=list(ladder.thresholds),
        rung0_ratio=ladder.rungs[0].ratio,
        arrivals=len(requests),
    )

    # -- the SLO timeline: evaluate after every closed window ----------------
    config = slo_config if slo_config is not None else ServingSLOConfig()
    evaluator: Optional[SLOEvaluator] = None
    timeline: Optional[ServingTimeline] = None
    seen: List[WindowSnapshot] = []
    if recorder is not None:
        evaluator = SLOEvaluator(serving_slos(config, report.rung0_ratio))
        timeline = ServingTimeline(
            scenario=sc.name,
            seed=seed,
            scale=scale,
            window_seconds=window_seconds,
            config=config,
        )

    def close_windows(snapshots: Sequence[WindowSnapshot]) -> None:
        for snapshot in snapshots:
            seen.append(snapshot)
            edges = evaluator.on_window(seen, snapshot.end)
            timeline.windows.append(
                build_window_row(
                    snapshot, evaluator, report.rung0_ratio, edges
                )
            )

    # -- the event loop: (time, priority, seq, kind, payload) ----------------
    # completions (priority 0) land before same-instant arrivals so a
    # freed worker is visible to the dispatch that follows the arrival
    events: List[Tuple[float, int, int, str, object]] = []
    seq = 0
    for request in requests:
        events.append((request.arrival, 1, seq, "arrival", request))
        seq += 1
    heapq.heapify(events)
    busy = 0
    last_event_at = 0.0

    def dispatch(now: float) -> None:
        nonlocal busy, seq
        width = controller.concurrency(sc.workers) - busy
        if width <= 0:
            return
        for served in gateway.serve_batch(now, width):
            done_at = now + served.service_seconds
            heapq.heappush(events, (done_at, 0, seq, "done", served))
            seq += 1
            busy += 1

    while events:
        at, __, __, kind, payload = heapq.heappop(events)
        if at > clock.now():
            clock.advance(at - clock.now())
        if recorder is not None:
            close_windows(recorder.advance(at))
        last_event_at = max(last_event_at, at)
        if kind == "arrival":
            gateway.submit(payload)
        else:
            served: ServedRequest = payload
            busy -= 1
            latency = at - served.request.arrival
            on_time = at <= served.request.deadline
            controller.limiter.on_complete(latency)
            report.latency.observe(latency, source="all")
            report.latency.observe(latency, source=served.request.tenant)
            report.wait.observe(served.wait_seconds, source="all")
            if on_time:
                report.on_time += 1
                report.bytes_on_time += served.request.size
            else:
                report.tardy += 1
            if recorder is not None:
                record_window_completion(
                    recorder.registry(),
                    served.request.tenant,
                    latency,
                    served.wait_seconds,
                    on_time=on_time,
                    bytes_in=served.request.size,
                )
        dispatch(clock.now())
    executor.close()

    if recorder is not None:
        tail = recorder.flush()
        if tail is not None:
            close_windows([tail])
        end_at = seen[-1].end if seen else last_event_at
        evaluator.finish(end_at)
        timeline.final_states = evaluator.states()
        timeline.page_seconds = evaluator.seconds_in(PAGE)
        timeline.warn_seconds = evaluator.seconds_in(WARN)
        report.timeline = timeline

    stats = gateway.stats
    report.admitted = stats.admitted
    report.throttled = stats.throttled
    report.shed = stats.shed
    report.expired = stats.expired
    report.served = stats.served
    report.degraded = stats.degraded
    report.degraded_by_rung = dict(sorted(stats.degraded_by_rung.items()))
    report.raw_fallbacks = stats.raw_fallbacks
    report.bytes_in_served = stats.bytes_in_served
    report.bytes_out = stats.bytes_out
    report.bytes_in_degraded = stats.bytes_in_degraded
    report.bytes_out_degraded = stats.bytes_out_degraded
    report.first_degraded_at = stats.first_degraded_at
    report.first_shed_at = stats.first_shed_at
    report.makespan_seconds = last_event_at
    return report


def format_scorecard(report: ServingReport) -> str:
    """Render the report; byte-identical for identical reports."""
    lines = [
        f"serving scorecard -- scenario '{report.scenario}', seed {report.seed}, "
        f"degradation {'on' if report.degradation_enabled else 'off'}",
        "",
        f"ladder: {' -> '.join(report.ladder_labels)} "
        f"(pressure thresholds {'/'.join(f'{t:.2f}' for t in report.thresholds)})",
        "",
        f"{'arrivals':>10s} {'admitted':>9s} {'throttled':>9s} {'shed':>6s} "
        f"{'expired':>8s} {'served':>7s} {'on-time':>8s} {'tardy':>6s}",
        f"{report.arrivals:10d} {report.admitted:9d} {report.throttled:9d} "
        f"{report.shed:6d} {report.expired:8d} {report.served:7d} "
        f"{report.on_time:8d} {report.tardy:6d}",
        "",
    ]
    for name, hist in (("latency", report.latency), ("queue wait", report.wait)):
        if hist.count(source="all"):
            lines.append(
                f"{name:10s} p50={hist.p50(source='all') * 1e3:9.3f} ms  "
                f"p90={hist.p90(source='all') * 1e3:9.3f} ms  "
                f"p99={hist.p99(source='all') * 1e3:9.3f} ms"
            )
    lines.append(
        f"goodput    {report.goodput_bytes_per_second / 1e6:.3f} MB/s on-time "
        f"({report.bytes_on_time} bytes in {report.makespan_seconds:.3f} s), "
        f"shed rate {report.shed_rate() * 100:.1f}%"
    )
    lines.append(
        f"ratio      achieved {report.achieved_ratio:.3f} "
        f"(rung-0 reference {report.rung0_ratio:.3f}, "
        f"lost to degradation {report.ratio_lost_to_degradation() * 100:.1f}%)"
    )
    if report.degraded:
        lines.append(
            f"degraded   {report.degraded} requests "
            f"({report.degraded / max(1, report.served) * 100:.1f}% of served)"
        )
        for label, count in report.degraded_by_rung.items():
            lines.append(f"  {label}: {count}")
    if report.raw_fallbacks:
        lines.append(f"raw fallbacks: {report.raw_fallbacks}")
    timeline = []
    if report.first_degraded_at is not None:
        timeline.append(f"first degraded at {report.first_degraded_at:.3f} s")
    if report.first_shed_at is not None:
        timeline.append(f"first shed at {report.first_shed_at:.3f} s")
    if timeline:
        lines.append("; ".join(timeline))
    return "\n".join(lines)
