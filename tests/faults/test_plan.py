"""FaultSpec/FaultPlan/FaultInjector: validation and determinism."""

import pytest

from repro.faults import (
    NAMED_PLANS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    corrupt,
    flip_bits,
    truncate,
)
import random


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("rpc.wire", "meltdown", 0.5)

    def test_rate_must_be_probability(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("rpc.wire", "drop", 1.5)
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("rpc.wire", "drop", -0.1)

    def test_prefix_matching(self):
        spec = FaultSpec("codec", "fail", 1.0)
        assert spec.matches("codec")
        assert spec.matches("codec.zstd.decompress")
        assert not spec.matches("codecs")
        assert not spec.matches("rpc.wire")

    def test_exact_site_matching(self):
        spec = FaultSpec("rpc.wire", "drop", 1.0)
        assert spec.matches("rpc.wire")
        assert not spec.matches("rpc")


class TestFaultPlan:
    def test_named_plans_resolve(self):
        for name in NAMED_PLANS:
            plan = FaultPlan.named(name)
            assert plan.name == name

    def test_unknown_plan_lists_available(self):
        with pytest.raises(ValueError, match="available"):
            FaultPlan.named("nonexistent")

    def test_none_plan_is_empty(self):
        assert FaultPlan.named("none").specs == ()


class TestInjectorDeterminism:
    def _drive(self, injector, opportunities=200):
        for i in range(opportunities):
            injector.on_wire("rpc.wire", b"payload %d" % i)
            injector.on_codec_call("codec.zstd.decompress", b"blob %d" % i)
        return list(injector.history)

    def test_same_seed_identical_history(self):
        plan = FaultPlan.named("standard")
        first = self._drive(FaultInjector(plan, seed=7))
        second = self._drive(FaultInjector(plan, seed=7))
        assert first == second
        assert first  # the standard plan does fire within 200 opportunities

    def test_different_seed_different_history(self):
        plan = FaultPlan.named("standard")
        assert self._drive(FaultInjector(plan, seed=7)) != self._drive(
            FaultInjector(plan, seed=8)
        )

    def test_specs_draw_independently(self):
        """Adding an unrelated spec must not perturb another spec's stream."""
        drop_only = FaultPlan("a", (FaultSpec("rpc.wire", "drop", 0.3),))
        with_extra = FaultPlan(
            "b",
            (
                FaultSpec("rpc.wire", "drop", 0.3),
                FaultSpec("codec", "fail", 0.9),
            ),
        )

        def drop_decisions(plan):
            injector = FaultInjector(plan, seed=5)
            return [
                injector.on_wire("rpc.wire", b"x").dropped for __ in range(300)
            ]

        assert drop_decisions(drop_only) == drop_decisions(with_extra)

    def test_payload_corruption_deterministic(self):
        plan = FaultPlan("p", (FaultSpec("site", "bit_flip", 1.0, magnitude=4),))
        one = FaultInjector(plan, seed=3).corrupt_payload("site", b"A" * 64)
        two = FaultInjector(plan, seed=3).corrupt_payload("site", b"A" * 64)
        assert one == two
        assert one[0] != b"A" * 64
        assert one[1] == ("bit_flip",)


class TestInjectorEffects:
    def test_certain_drop(self):
        plan = FaultPlan("p", (FaultSpec("rpc.wire", "drop", 1.0),))
        effects = FaultInjector(plan).on_wire("rpc.wire", b"hello")
        assert effects.dropped
        assert effects.kinds == ("drop",)

    def test_latency_magnitude_is_seconds(self):
        plan = FaultPlan("p", (FaultSpec("rpc.wire", "latency", 1.0, magnitude=0.25),))
        effects = FaultInjector(plan).on_wire("rpc.wire", b"hello")
        assert effects.extra_seconds == pytest.approx(0.25)
        assert not effects.dropped
        assert effects.payload == b"hello"

    def test_codec_fail_and_slow(self):
        plan = FaultPlan(
            "p",
            (
                FaultSpec("codec", "fail", 1.0),
                FaultSpec("codec", "slow", 1.0, magnitude=0.01),
            ),
        )
        effects = FaultInjector(plan).on_codec_call("codec.zstd.compress")
        assert effects.fail
        assert effects.slow_seconds == pytest.approx(0.01)

    def test_should_for_dict_loss(self):
        plan = FaultPlan("p", (FaultSpec("managed.dictionary", "dict_loss", 1.0),))
        injector = FaultInjector(plan)
        assert injector.should("managed.dictionary", "dict_loss")
        assert not injector.should("managed.dictionary", "drop")

    def test_zero_rate_never_fires(self):
        plan = FaultPlan("p", (FaultSpec("rpc.wire", "drop", 0.0),))
        injector = FaultInjector(plan)
        assert not any(
            injector.on_wire("rpc.wire", b"x").dropped for __ in range(100)
        )
        assert injector.fired_total() == 0

    def test_accounting(self):
        plan = FaultPlan("p", (FaultSpec("rpc.wire", "drop", 1.0),))
        injector = FaultInjector(plan)
        for __ in range(5):
            injector.on_wire("rpc.wire", b"x")
        injector.on_wire("other.site", b"x")
        assert injector.opportunities == {"rpc.wire": 5, "other.site": 1}
        assert injector.fired[("rpc.wire", "drop")] == 5
        assert injector.fired_total() == 5


class TestCorruptPrimitives:
    def test_flip_bits_changes_and_preserves_length(self):
        rng = random.Random("t")
        data = b"\x00" * 32
        flipped = flip_bits(data, rng, flips=3)
        assert len(flipped) == 32
        assert flipped != data

    def test_truncate_always_shortens(self):
        rng = random.Random("t")
        for __ in range(20):
            assert len(truncate(b"0123456789", rng)) < 10

    def test_empty_input_safe(self):
        rng = random.Random("t")
        assert flip_bits(b"", rng) == b""
        assert truncate(b"", rng) == b""
        assert corrupt(b"", "garbage", rng) != b""  # garbage appends
