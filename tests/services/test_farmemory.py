"""Far-memory (cold-page compression) substrate tests."""

import random

import pytest

from repro.corpus import generate_records
from repro.services.farmemory import PAGE_SIZE, FarMemoryPool


def _structured_page(seed: int) -> bytes:
    return generate_records(PAGE_SIZE, seed=seed)


def _random_page(seed: int) -> bytes:
    rng = random.Random(seed)
    return bytes(rng.getrandbits(8) for _ in range(PAGE_SIZE))


class TestPageLifecycle:
    def test_write_read_roundtrip(self):
        pool = FarMemoryPool()
        page = _structured_page(1)
        pool.write(0, page)
        assert pool.read(0) == page

    def test_short_page_padded(self):
        pool = FarMemoryPool()
        pool.write(0, b"short")
        data = pool.read(0)
        assert len(data) == PAGE_SIZE
        assert data.startswith(b"short")

    def test_missing_page_raises(self):
        with pytest.raises(KeyError):
            FarMemoryPool().read(42)

    def test_cold_page_gets_compressed(self):
        pool = FarMemoryPool(cold_age_ticks=2)
        pool.write(0, _structured_page(2))
        for __ in range(3):
            pool.tick()
        assert pool.stats.pages_compressed == 1
        assert pool.compressed_bytes > 0
        assert pool.resident_bytes == 0

    def test_hot_page_stays_resident(self):
        pool = FarMemoryPool(cold_age_ticks=3)
        pool.write(0, _structured_page(3))
        for __ in range(10):
            pool.tick()
            pool.read(0)  # keep touching it
        assert pool.stats.pages_compressed == 0
        assert pool.resident_bytes == PAGE_SIZE

    def test_fault_restores_contents_and_counts(self):
        pool = FarMemoryPool(cold_age_ticks=1)
        page = _structured_page(4)
        pool.write(0, page)
        pool.tick()
        pool.tick()
        assert pool.stats.pages_compressed == 1
        assert pool.read(0) == page
        assert pool.stats.pages_faulted == 1
        assert pool.stats.mean_fault_seconds > 0

    def test_incompressible_page_left_resident(self):
        pool = FarMemoryPool(cold_age_ticks=1)
        pool.write(0, _random_page(5))
        pool.tick()
        pool.tick()
        assert pool.stats.pages_compressed == 0
        assert pool.stats.incompressible_pages >= 1
        assert pool.resident_bytes == PAGE_SIZE


class TestMemoryAccounting:
    def test_memory_saving_on_structured_pool(self):
        pool = FarMemoryPool(cold_age_ticks=1)
        for page_number in range(16):
            pool.write(page_number, _structured_page(100 + page_number))
        pool.tick()
        pool.tick()
        assert pool.stats.pages_compressed == 16
        assert pool.memory_saving > 0.5

    def test_mixed_pool_partial_saving(self):
        pool = FarMemoryPool(cold_age_ticks=1)
        for page_number in range(8):
            pool.write(page_number, _structured_page(page_number))
        for page_number in range(8, 12):
            pool.write(page_number, _random_page(page_number))
        pool.tick()
        pool.tick()
        assert 0.0 < pool.memory_saving < 0.9
        assert pool.stats.incompressible_pages >= 1

    def test_empty_pool_saving_zero(self):
        assert FarMemoryPool().memory_saving == 0.0

    def test_rewrite_resets_residency(self):
        pool = FarMemoryPool(cold_age_ticks=1)
        pool.write(0, _structured_page(7))
        pool.tick()
        pool.tick()
        assert pool.resident_bytes == 0
        pool.write(0, _structured_page(8))
        assert pool.resident_bytes == PAGE_SIZE

    def test_working_set_skew(self):
        """Zipf access pattern: most pages compress, hot few stay resident."""
        pool = FarMemoryPool(cold_age_ticks=2)
        for page_number in range(32):
            pool.write(page_number, _structured_page(200 + page_number))
        rng = random.Random(6)
        for __ in range(12):
            pool.tick()
            for __ in range(8):
                pool.read(rng.choice([0, 1, 2, 0, 1, 0]))  # hot subset
        assert pool.resident_bytes <= 4 * PAGE_SIZE
        assert pool.stats.pages_compressed >= 28
