"""Acceptance: trained graphs beat the best flat config on >= 2 categories.

This is the PR's headline claim, stated the way the paper would: at
*comparable modeled cost* (flat configs within 3x the graph's modeled
compress seconds), the per-category trained graph wins on ratio for at
least two of the three corpus categories. The text category is allowed to
lose — JSON-lines template redundancy spans fields, so flat LZ sees
matches the column split destroys — and the trained module documents it.
"""

import pytest

from repro.core.config import CompressionConfig
from repro.core.engine import CompEngine
from repro.core.optimizer import CompOpt
from repro.graphs.samples import category_sample
from repro.graphs.search import default_cost_model
from repro.graphs.trained import TRAINED_CATEGORIES, TRAINED_GRAPHS

#: flat comparison grid: the levels a service would realistically run
_FLAT_GRID = [
    ("zstd", 1),
    ("zstd", 3),
    ("zstd", 6),
    ("zstd", 9),
    ("zlib", 6),
    ("zlib", 9),
    ("lz4", 1),
]

#: a flat config "comparable" when its modeled compress time is within this
_COST_WINDOW = 3.0


def _category_outcome(category: str, seed: int):
    data = category_sample(category, size=65536, seed=seed)
    engine = CompEngine([data])
    opt = CompOpt(engine, default_cost_model())
    configs = [CompressionConfig(a, l) for a, l in _FLAT_GRID]
    configs.append(CompressionConfig(f"graph:{category}", 1))
    ranked = opt.optimize(configs).ranked
    graph = next(r for r in ranked if r.config.algorithm.startswith("graph:"))
    budget = _COST_WINDOW * graph.metrics.compress_seconds
    window = [
        r
        for r in ranked
        if not r.config.algorithm.startswith("graph:")
        and r.metrics.compress_seconds <= budget
    ]
    best_flat = max(window, key=lambda r: r.metrics.ratio) if window else None
    return graph, best_flat


def test_trained_graphs_beat_flat_on_two_categories():
    wins = {}
    for category in TRAINED_CATEGORIES:
        graph, best_flat = _category_outcome(category, seed=3)
        wins[category] = (
            best_flat is None or graph.metrics.ratio > best_flat.metrics.ratio
        )
    assert sum(wins.values()) >= 2, (
        f"trained graphs must beat the best comparable flat config on at "
        f"least 2 of {len(TRAINED_CATEGORIES)} categories, got {wins}"
    )


@pytest.mark.parametrize("category", ["record", "float"])
@pytest.mark.parametrize("seed", [3, 11])
def test_winning_categories_win_across_seeds(category, seed):
    """The two documented winners must win on fresh sample draws too."""
    graph, best_flat = _category_outcome(category, seed=seed)
    assert best_flat is None or graph.metrics.ratio > best_flat.metrics.ratio, (
        f"graph:{category} ratio {graph.metrics.ratio:.3f} lost to "
        f"{best_flat.config.label()} {best_flat.metrics.ratio:.3f} at seed {seed}"
    )


def test_every_trained_graph_is_valid_and_labeled():
    from repro.graphs.model import spec_label, validate_spec

    assert set(TRAINED_GRAPHS) == set(TRAINED_CATEGORIES)
    for category, spec in TRAINED_GRAPHS.items():
        validate_spec(spec)
        assert spec_label(spec), f"{category} graph has no label"
