"""Managed Compression service tests."""

import pytest

from repro.codecs import get_codec
from repro.codecs.base import CodecError
from repro.corpus import CACHE1_TYPES, generate_cache_items
from repro.services.managed import ManagedCompression


def _payloads(count, seed=7):
    return [p for __, p in generate_cache_items(CACHE1_TYPES, count, seed=seed)]


class TestStatelessInterface:
    def test_roundtrip_without_training(self):
        service = ManagedCompression()
        blob = service.compress("logs", b"some log line " * 20)
        assert service.decompress(blob) == b"some log line " * 20
        assert blob.dictionary_version == 0

    def test_roundtrip_across_many_items(self):
        service = ManagedCompression()
        service.register_use_case("items", retrain_interval=32)
        payloads = _payloads(120)
        blobs = [service.compress("items", p) for p in payloads]
        for blob, payload in zip(blobs, payloads):
            assert service.decompress(blob) == payload

    def test_auto_registration(self):
        service = ManagedCompression()
        blob = service.compress("never_registered", b"x" * 200)
        assert service.decompress(blob) == b"x" * 200

    def test_non_dictionary_codec_rejected(self):
        with pytest.raises(CodecError):
            ManagedCompression(codec=get_codec("lz4"))


class TestTraining:
    def test_automatic_retraining_kicks_in(self):
        service = ManagedCompression(sample_every=1)
        service.register_use_case("typed", retrain_interval=16)
        for payload in _payloads(40):
            service.compress("typed", payload)
        assert service.current_version("typed") >= 1
        assert service.stats("typed").retrains >= 1

    def test_dictionary_improves_ratio(self):
        payloads = _payloads(200)
        untrained = ManagedCompression(sample_every=1)
        untrained.register_use_case("u", retrain_interval=10**9)  # never train
        trained = ManagedCompression(sample_every=1)
        trained.register_use_case("u", retrain_interval=16)
        warmup, test = payloads[:100], payloads[100:]
        for p in warmup:
            trained.compress("u", p)
        # measure both services on the same held-out set
        for p in test:
            untrained.compress("u", p)
        before = trained.stats("u").compressed_bytes
        for p in test:
            trained.compress("u", p)
        trained_bytes = trained.stats("u").compressed_bytes - before
        assert trained_bytes < untrained.stats("u").compressed_bytes

    def test_old_blobs_decode_after_retrain(self):
        service = ManagedCompression(sample_every=1)
        service.register_use_case("v", retrain_interval=16, max_versions=16)
        payloads = _payloads(80)
        early_blob = None
        for index, payload in enumerate(payloads):
            blob = service.compress("v", payload)
            if index == 20:
                early_blob = (blob, payload)
        assert service.current_version("v") >= 1
        blob, payload = early_blob
        assert service.decompress(blob) == payload

    def test_retired_version_raises(self):
        service = ManagedCompression(sample_every=1)
        service.register_use_case("w", retrain_interval=8, max_versions=1)
        payloads = _payloads(60)
        first_trained_blob = None
        for payload in payloads:
            blob = service.compress("w", payload)
            if blob.dictionary_version == 1 and first_trained_blob is None:
                first_trained_blob = (blob, payload)
        # Force enough retrains to retire version 1.
        for __ in range(3):
            service.force_retrain("w")
        if first_trained_blob is not None and service.current_version("w") > 1:
            blob, __ = first_trained_blob
            if 1 not in service.available_versions("w"):
                with pytest.raises(CodecError):
                    service.decompress(blob)

    def test_version_retention_window(self):
        service = ManagedCompression(sample_every=1)
        service.register_use_case("x", retrain_interval=8, max_versions=2)
        for payload in _payloads(120):
            service.compress("x", payload)
        versions = service.available_versions("x")
        assert len(versions) <= 2

    def test_stats_accounting(self):
        service = ManagedCompression()
        payloads = _payloads(20)
        blobs = [service.compress("s", p) for p in payloads]
        for blob in blobs:
            service.decompress(blob)
        stats = service.stats("s")
        assert stats.compress_calls == 20
        assert stats.decompress_calls == 20
        assert stats.raw_bytes == sum(len(p) for p in payloads)
        assert stats.ratio > 1.0


class TestDictionaryLossEdgeCases:
    def _trained_service(self):
        service = ManagedCompression(sample_every=1)
        service.register_use_case(
            "loss", retrain_interval=8, max_versions=4
        )
        for payload in _payloads(16):
            service.compress("loss", payload)
        assert service.current_version("loss") >= 1
        return service

    def test_drop_current_version_degrades_to_dictionaryless(self):
        service = self._trained_service()
        current = service.current_version("loss")
        payload = _payloads(1, seed=11)[0]
        dictionary_blob = service.compress("loss", payload)
        assert dictionary_blob.dictionary_version == current

        assert service.drop_dictionary("loss", current) is True
        assert current not in service.available_versions("loss")

        # new blobs must say "no dictionary" (version 0), not name the
        # missing version -- and still roundtrip
        raw_blob = service.compress("loss", payload)
        assert raw_blob.dictionary_version == 0
        assert service.decompress(raw_blob) == payload

        # old blobs naming the dropped version take the typed error path
        from repro.services.managed import DictionaryRetiredError

        with pytest.raises(DictionaryRetiredError) as excinfo:
            service.decompress(dictionary_blob)
        assert excinfo.value.version == current
        assert service.stats("loss").retired_blobs == 1

    def test_drop_missing_version_returns_false(self):
        service = self._trained_service()
        assert service.drop_dictionary("loss", 999) is False

    def test_force_retrain_with_no_samples_keeps_version(self):
        service = ManagedCompression()
        service.register_use_case("fresh")
        before = service.current_version("fresh")
        assert service.force_retrain("fresh") == before
        assert service.stats("fresh").retrains == 0
        assert service.available_versions("fresh") == ()

    def test_force_retrain_with_too_few_samples_keeps_version(self):
        # two tiny samples train an empty dictionary: the retrain must be
        # a no-op on the version chain, not publish a useless version
        service = ManagedCompression(sample_every=1)
        service.register_use_case("tiny")
        service.compress("tiny", b"ab")
        service.compress("tiny", b"cd")
        before = service.current_version("tiny")
        assert service.force_retrain("tiny") == before
        assert service.stats("tiny").retrains == 0
