"""Clock-driven rolling windows over the metric primitives.

The paper's characterization exists because Google's fleet profiler is
*continuous*: compression behavior is a curve over time, not a point.
This module adds that time axis to :mod:`repro.obs`: a
:class:`TimeSeriesRecorder` slices recording into fixed-width windows,
each window a full :class:`~repro.obs.metrics.MetricsRegistry` of its
own, kept in a bounded ring. Because every metric type merges
associatively, any span of windows folds back into one registry whose
histograms are *exactly* what a one-shot recording over the same samples
would have produced (bucket counts, count/sum, and min/max all survive
the window boundary) — the property the SLO layer's burn-rate math and
the window-merge tests rely on.

Time is whatever the caller says it is:

- simulation drives ``advance(clock.now())`` from a
  :class:`~repro.resilience.clock.SimClock`, so window edges — and
  everything computed from them — are deterministic per seed;
- live processes drive it from :class:`WallClock` (``time.monotonic``);
- the chaos runner drives it with *operation index* as the clock, which
  works because the recorder never interprets the unit.

Windows close only when time reaches their end: ``advance`` returns the
newly closed snapshots so callers (the SLO evaluator, a JSONL writer)
can react per tick, and ``flush`` force-closes the in-progress window at
end of run.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, List, Optional, Sequence, Union

from repro.obs.metrics import MetricsRegistry

#: default ring capacity: enough for hours of 1 s windows or any
#: simulated run this repo produces, while still bounding memory
DEFAULT_CAPACITY = 512


class WallClock:
    """``time.monotonic`` behind the same ``now()`` face as SimClock."""

    __slots__ = ()

    def now(self) -> float:
        # repro: lint-ok[D001] -- WallClock IS the wall-time injection point;
        # sim paths pass SimClock instead (the D001 contract's live half)
        return time.monotonic()


class WindowSnapshot:
    """One closed window: ``[start, end)`` plus everything recorded in it."""

    __slots__ = ("index", "start", "end", "registry")

    def __init__(
        self, index: int, start: float, end: float, registry: MetricsRegistry
    ) -> None:
        self.index = index
        self.start = start
        self.end = end
        self.registry = registry

    @property
    def width(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:
        return (
            f"WindowSnapshot(#{self.index} "
            f"[{self.start:.3f}, {self.end:.3f}) "
            f"{len(self.registry)} families)"
        )


class TimeSeriesRecorder:
    """Fixed-width window ring over mergeable metric registries.

    Callers record into :meth:`registry` (the in-progress window) and
    drive time with :meth:`advance`; the recorder owns nothing about
    *what* is recorded. A window that time has skipped entirely still
    closes (empty), so the series has no gaps and window ``index`` times
    ``width`` is always the window's start offset.
    """

    def __init__(
        self,
        width_seconds: float,
        capacity: int = DEFAULT_CAPACITY,
        start: float = 0.0,
        clock: Optional[Union[object, Callable[[], float]]] = None,
    ) -> None:
        if width_seconds <= 0:
            raise ValueError("width_seconds must be positive")
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.width = float(width_seconds)
        self.capacity = capacity
        self._clock = clock
        self._start = float(start)
        self._index = 0
        self._current = MetricsRegistry()
        self._ring: Deque[WindowSnapshot] = deque(maxlen=capacity)
        #: windows evicted from the ring (ring full), for honest reporting
        self.evicted = 0

    # -- recording -----------------------------------------------------------

    def registry(self) -> MetricsRegistry:
        """The in-progress window's registry; record into this."""
        return self._current

    @property
    def current_start(self) -> float:
        return self._start

    @property
    def current_end(self) -> float:
        return self._start + self.width

    @property
    def current_index(self) -> int:
        return self._index

    # -- time ----------------------------------------------------------------

    def _clock_now(self) -> float:
        if self._clock is None:
            raise ValueError("recorder has no clock; call advance(now)")
        if callable(self._clock):
            return float(self._clock())
        return float(self._clock.now())

    def _close_current(self, end: float) -> WindowSnapshot:
        snapshot = WindowSnapshot(self._index, self._start, end, self._current)
        if len(self._ring) == self.capacity:
            self.evicted += 1
        self._ring.append(snapshot)
        self._index += 1
        self._current = MetricsRegistry()
        return snapshot

    def advance(self, now: float) -> List[WindowSnapshot]:
        """Close every window whose end is at or before ``now``.

        Returns the newly closed snapshots, oldest first (empty list when
        ``now`` is still inside the current window). Time never moves
        backwards; a stale ``now`` is a no-op, matching SimClock's
        monotonic contract.
        """
        closed: List[WindowSnapshot] = []
        while now >= self._start + self.width:
            closed.append(self._close_current(self._start + self.width))
            self._start += self.width
        return closed

    def tick(self) -> List[WindowSnapshot]:
        """``advance`` to the bound clock's reading (live/driver use)."""
        return self.advance(self._clock_now())

    def flush(self) -> Optional[WindowSnapshot]:
        """Force-close the in-progress window (end of run).

        The closed window keeps its nominal ``[start, start + width)``
        bounds so the series stays fixed-width; an untouched (empty)
        current window is not emitted. Returns the snapshot, if any.
        """
        if not len(self._current):
            return None
        snapshot = self._close_current(self._start + self.width)
        self._start += self.width
        return snapshot

    # -- queries -------------------------------------------------------------

    def windows(self, last: Optional[int] = None) -> List[WindowSnapshot]:
        """Closed windows, oldest first; ``last`` limits to the newest N."""
        if last is None:
            return list(self._ring)
        if last < 0:
            raise ValueError("last must be non-negative")
        return list(self._ring)[max(0, len(self._ring) - last):]

    def __len__(self) -> int:
        return len(self._ring)

    def merged(self, last: Optional[int] = None) -> MetricsRegistry:
        """Fold the newest ``last`` windows (all, when None) into one
        registry — the rolling-window read the SLO layer evaluates."""
        return merge_windows(self.windows(last))


def merge_windows(windows: Sequence[WindowSnapshot]) -> MetricsRegistry:
    """Merge window snapshots into one registry; associative, lossless
    for counters and histograms (gauges sum, the multi-shard reading)."""
    merged = MetricsRegistry()
    for window in windows:
        merged.merge(window.registry)
    return merged
