"""One shard of the cluster: a gateway plus its telemetry and lifecycle.

A :class:`ClusterNode` wraps the single-node serving stack —
:class:`~repro.serving.gateway.CompressionGateway` over a
:class:`~repro.serving.queue.FairQueue` behind an
:class:`~repro.serving.admission.AdmissionController` — and adds the two
things a fleet member needs that a standalone gateway does not:

- a **lifecycle**: ``active`` (on the ring, taking traffic) →
  ``draining`` (off the ring, finishing its queue) → ``retired``
  (empty and idle; accounted but inert). Draining before retiring is
  what makes scale-down safe: an admitted request is never stranded by
  the autoscaler, only finished or deadline-expired by the queue's own
  rules.
- **per-shard telemetry**: every node owns a
  :class:`~repro.obs.timeseries.TimeSeriesRecorder` sharing the fleet's
  window epoch, so per-shard windows align by index and fold into fleet
  windows via :func:`repro.obs.rollup.merge_shard_windows`. Nothing is
  recorded twice; the fleet view is always a merge.

Compression cost stays real — payloads run through the actual codecs —
but the cluster memoizes ``(algorithm, level, payload)`` results in a
fleet-shared :class:`CodecCache`, because the workload generator draws
payloads from finite per-tenant pools and recompressing an identical
payload on every hit would make O(10⁵)-request runs pay O(10⁵) real
compressions for information the first one already produced. A cached
serve bills the same modeled service seconds as the original (counters
are part of the cached result), so modeled time is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.codecs import Compressor, get_codec
from repro.obs.timeseries import TimeSeriesRecorder, WindowSnapshot
from repro.resilience.clock import SimClock
from repro.serving.admission import (
    AdaptiveConcurrencyLimit,
    AdmissionController,
    AdmissionVerdict,
    TokenBucket,
)
from repro.serving.degrade import DegradationLadder
from repro.serving.gateway import CompressionGateway, ServedRequest
from repro.serving.queue import ServingRequest

#: lifecycle states
ACTIVE = "active"
DRAINING = "draining"
RETIRED = "retired"


class CodecCache:
    """Fleet-shared memo of ``(algorithm, level, payload) -> result``."""

    def __init__(self) -> None:
        self._results: Dict[Tuple[str, int, bytes], object] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, algorithm: str, level: int, payload: bytes):
        return self._results.get((algorithm, level, payload))

    def store(self, algorithm: str, level: int, payload: bytes, result) -> None:
        self._results[(algorithm, level, payload)] = result


class _MemoCodec:
    """A real codec behind the fleet cache; duck-types ``Compressor``."""

    def __init__(self, inner: Compressor, cache: CodecCache) -> None:
        self._inner = inner
        self._cache = cache
        self.name = inner.name

    def compress(self, payload: bytes, level: Optional[int] = None):
        result = self._cache.lookup(self.name, level, payload)
        if result is not None:
            self._cache.hits += 1
            return result
        self._cache.misses += 1
        result = self._inner.compress(payload, level)
        self._cache.store(self.name, level, payload, result)
        return result


def memo_codec_factory(cache: CodecCache) -> Callable[[str], Compressor]:
    return lambda name: _MemoCodec(get_codec(name), cache)


@dataclass(frozen=True)
class NodeConfig:
    """Per-node sizing — every node in a cluster scenario is identical,
    which is what makes scale-up a pure capacity statement."""

    workers: int = 2
    #: fair-queue depth; pressure = depth / capacity drives both the
    #: degradation ladder and the autoscaler, so overload surfaces as
    #: queue growth well before anything sheds
    capacity: int = 48
    #: sized to never bind in the built-in scenarios — the cluster's
    #: load signal is the queue, not a rate limiter in front of it
    token_rate: float = 2000.0
    token_burst: float = 256.0
    target_latency: float = 0.2
    service_scale: float = 400.0


class ClusterNode:
    """One shard: gateway + admission + recorder + lifecycle."""

    def __init__(
        self,
        name: str,
        ladder: DegradationLadder,
        config: NodeConfig,
        clock: SimClock,
        tenant_weights: Optional[Dict[str, float]] = None,
        window_seconds: Optional[float] = None,
        window_capacity: int = 4096,
        codec_factory: Optional[Callable[[str], Compressor]] = None,
        executor=None,
        created_at: float = 0.0,
    ) -> None:
        self.name = name
        self.config = config
        self.status = ACTIVE
        self.created_at = created_at
        self.drain_started_at: Optional[float] = None
        self.retired_at: Optional[float] = None
        #: requests the router sent here (admitted or not)
        self.routed = 0
        #: in-service request count (the simulator's busy tracker)
        self.busy = 0
        self.peak_depth = 0
        self.controller = AdmissionController(
            bucket=TokenBucket(config.token_rate, config.token_burst, clock),
            limiter=AdaptiveConcurrencyLimit(
                target_latency=config.target_latency,
                initial=float(config.workers),
                maximum=float(config.workers * 4),
            ),
        )
        # Windows share the fleet epoch (start=0) regardless of when the
        # node joined: a late joiner's first advance() closes the empty
        # history, keeping window index == fleet window index.
        self.recorder = (
            TimeSeriesRecorder(window_seconds, capacity=window_capacity)
            if window_seconds is not None
            else None
        )
        self.windows: List[WindowSnapshot] = []
        self.gateway = CompressionGateway(
            ladder,
            capacity=config.capacity,
            admission=self.controller,
            tenant_weights=tenant_weights,
            clock=clock,
            executor=executor,
            codec_factory=codec_factory,
            service_scale=config.service_scale,
            recorder=self.recorder,
        )

    # -- traffic -------------------------------------------------------------

    def submit(self, request: ServingRequest) -> AdmissionVerdict:
        self.routed += 1
        verdict = self.gateway.submit(request)
        depth = self.gateway.queue.depth()
        if depth > self.peak_depth:
            self.peak_depth = depth
        return verdict

    def serve_batch(self, now: float, max_count: int) -> List[ServedRequest]:
        return self.gateway.serve_batch(now, max_count)

    def dispatch_width(self) -> int:
        return self.controller.concurrency(self.config.workers) - self.busy

    # -- signals -------------------------------------------------------------

    @property
    def pressure(self) -> float:
        return self.gateway.pressure

    def queued(self) -> int:
        return self.gateway.queue.depth()

    def idle(self) -> bool:
        return self.queued() == 0 and self.busy == 0

    # -- lifecycle -----------------------------------------------------------

    def start_drain(self, at: float) -> None:
        if self.status != ACTIVE:
            raise ValueError(f"cannot drain node in state {self.status!r}")
        self.status = DRAINING
        self.drain_started_at = at

    def retire(self, at: float) -> None:
        if self.status != DRAINING:
            raise ValueError(f"cannot retire node in state {self.status!r}")
        if not self.idle():
            raise ValueError(f"node {self.name!r} still has work queued")
        self.status = RETIRED
        self.retired_at = at

    # -- telemetry -----------------------------------------------------------

    def advance_windows(self, now: float) -> List[WindowSnapshot]:
        """Close any windows ``now`` has passed; lockstep with the fleet."""
        if self.recorder is None:
            return []
        closed = self.recorder.advance(now)
        self.windows.extend(closed)
        return closed

    def flush_windows(self) -> Optional[WindowSnapshot]:
        if self.recorder is None:
            return None
        tail = self.recorder.flush()
        if tail is not None:
            self.windows.append(tail)
        return tail
