"""Cache server: typed item store with per-type dictionary compression."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.codecs import (
    CompressionDictionary,
    Compressor,
    get_codec,
    train_dictionary,
)
from repro.codecs.base import CodecError, StageCounters
from repro.obs.instrument import record_cache_request, record_quarantine
from repro.obs.state import OBS_STATE
from repro.perfmodel import DEFAULT_MACHINE, MachineModel
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.quarantine import QuarantinedBlock


@dataclass
class CacheStats:
    """Server-side accounting: hit rate, bytes, compression work."""

    sets: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    raw_bytes: int = 0
    stored_bytes: int = 0
    network_bytes_served: int = 0
    compress_counters: StageCounters = field(default_factory=StageCounters)
    compress_seconds: float = 0.0
    # -- resilience accounting --
    #: items stored raw because the codec failed on them
    compress_failures: int = 0
    #: items stored raw because the circuit breaker was open
    raw_fallbacks: int = 0
    #: poisoned entries removed after failing client-side decompression
    corrupt_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def memory_ratio(self) -> float:
        """Effective compression ratio of resident items.

        Follows the ``RpcStats.wire_ratio`` convention: neutral 1.0 only
        when there has been no traffic at all; ``inf`` when raw bytes
        came in but zero bytes were stored (degenerate all-empty values).
        """
        if self.stored_bytes:
            return self.raw_bytes / self.stored_bytes
        return float("inf") if self.raw_bytes else 1.0


class CacheServer:
    """Memcached-style server that compresses each item individually.

    Items below ``min_compress_size`` are stored raw (compression overhead
    exceeds the saving). With ``use_dictionaries=True`` a per-type
    dictionary, trained on sample items, is used for both compression and
    the client's decompression.

    Resilience: an optional :class:`CircuitBreaker` guards the codec --
    while it is open every item is stored raw (the bicriteria trade: a
    failing compressor is swapped for the raw path), and a codec failure
    on one item degrades that item to raw instead of failing the ``set``.
    :meth:`quarantine` removes an entry a client found undecodable.

    Chunked path (opt-in): items of at least ``chunk_threshold`` bytes are
    compressed as concatenated independent frames by the parallel engine
    (``chunk_jobs`` workers). The stored bytes remain a standard stream --
    clients decode them with a plain ``codec.decompress`` and never know
    chunking happened.
    """

    def __init__(
        self,
        codec: Optional[Compressor] = None,
        level: int = 3,
        use_dictionaries: bool = False,
        dictionary_size: int = 8192,
        min_compress_size: int = 64,
        capacity_bytes: Optional[int] = None,
        machine: MachineModel = DEFAULT_MACHINE,
        breaker: Optional[CircuitBreaker] = None,
        chunk_threshold: Optional[int] = None,
        chunk_size: int = 128 * 1024,
        chunk_jobs: int = 1,
    ) -> None:
        self.codec = codec if codec is not None else get_codec("zstd")
        self.level = level
        self.use_dictionaries = use_dictionaries
        self.dictionary_size = dictionary_size
        self.min_compress_size = min_compress_size
        #: resident-memory budget; None = unbounded. Compression stretches
        #: this budget, which is the memory-TCO argument of the paper's
        #: introduction.
        self.capacity_bytes = capacity_bytes
        self.machine = machine
        #: trips the codec to raw passthrough after repeated failures
        self.breaker = breaker
        #: payloads at least this large take the chunked path (None = never)
        self.chunk_threshold = chunk_threshold
        self.chunk_size = chunk_size
        self.chunk_jobs = chunk_jobs
        self.dictionaries: Dict[str, CompressionDictionary] = {}
        #: key -> (type_name, compressed flag, stored bytes); LRU order
        self._store: "OrderedDict[bytes, Tuple[str, bool, bytes]]" = OrderedDict()
        self._resident_bytes = 0
        self.stats = CacheStats()

    # -- dictionary management -------------------------------------------------

    def train_type_dictionary(
        self, type_name: str, samples: Iterable[bytes]
    ) -> CompressionDictionary:
        """Train and install the dictionary for one item type."""
        dictionary = train_dictionary(samples, max_size=self.dictionary_size)
        self.dictionaries[type_name] = dictionary
        return dictionary

    def dictionary_for(self, type_name: str) -> Optional[bytes]:
        if not self.use_dictionaries:
            return None
        dictionary = self.dictionaries.get(type_name)
        return dictionary.content if dictionary else None

    # -- item operations ----------------------------------------------------------

    def set(self, key: bytes, type_name: str, value: bytes) -> None:
        """Store an item, compressing it individually if worthwhile.

        Codec failures never fail the ``set``: the item falls back to raw
        storage and the breaker (if any) accumulates the failure.
        """
        self.stats.sets += 1
        self.stats.raw_bytes += len(value)
        if len(value) < self.min_compress_size:
            self._insert(bytes(key), type_name, False, bytes(value))
            return
        if self.breaker is not None and not self.breaker.allow():
            self.stats.raw_fallbacks += 1
            self._insert(bytes(key), type_name, False, bytes(value))
            if OBS_STATE.enabled:
                record_cache_request("set", "raw_fallback", len(value))
            return
        dictionary = self.dictionary_for(type_name)
        try:
            if (
                self.chunk_threshold is not None
                and len(value) >= self.chunk_threshold
            ):
                from repro.parallel import compress_chunked

                result = compress_chunked(
                    self.codec,
                    value,
                    self.level,
                    dictionary=dictionary,
                    chunk_size=self.chunk_size,
                    jobs=self.chunk_jobs,
                )
            else:
                result = self.codec.compress(
                    value, self.level, dictionary=dictionary
                )
        except CodecError:
            self.stats.compress_failures += 1
            if self.breaker is not None:
                self.breaker.record_failure()
            self._insert(bytes(key), type_name, False, bytes(value))
            if OBS_STATE.enabled:
                record_cache_request("set", "compress_failed", len(value))
            return
        if self.breaker is not None:
            self.breaker.record_success()
        self.stats.compress_counters.merge(result.counters)
        compress_seconds = self.machine.compress_seconds(
            self.codec.name, result.counters
        )
        self.stats.compress_seconds += compress_seconds
        if self.breaker is not None:
            # modeled compression time moves the breaker's clock, so a
            # cooldown expressed in seconds means modeled seconds
            self.breaker.clock.advance(compress_seconds)
        if len(result.data) < len(value):
            self._insert(bytes(key), type_name, True, result.data)
        else:
            self._insert(bytes(key), type_name, False, bytes(value))
        if OBS_STATE.enabled:
            record_cache_request("set", "stored", len(value))

    def _insert(self, key: bytes, type_name: str, compressed: bool, payload: bytes) -> None:
        """Store one entry, evicting LRU items past the capacity budget."""
        if key in self._store:
            self._resident_bytes -= len(self._store.pop(key)[2])
        self._store[key] = (type_name, compressed, payload)
        self._resident_bytes += len(payload)
        self.stats.stored_bytes += len(payload)
        if self.capacity_bytes is not None:
            while self._resident_bytes > self.capacity_bytes and len(self._store) > 1:
                __, (__, __, evicted) = self._store.popitem(last=False)
                self._resident_bytes -= len(evicted)
                self.stats.evictions += 1

    def get_compressed(self, key: bytes) -> Optional[Tuple[str, bool, bytes]]:
        """Serve the stored (possibly compressed) bytes -- no server decompress.

        This is the property the paper highlights: the server ships the
        compressed item straight to the client, saving server CPU and
        network bytes.
        """
        key = bytes(key)
        entry = self._store.get(key)
        if entry is None:
            self.stats.misses += 1
            if OBS_STATE.enabled:
                record_cache_request("get", "miss")
            return None
        self._store.move_to_end(key)  # LRU touch
        self.stats.hits += 1
        self.stats.network_bytes_served += len(entry[2])
        if OBS_STATE.enabled:
            record_cache_request("get", "hit", len(entry[2]))
        return entry

    def quarantine(
        self, key: bytes, reason: str = "failed verified-decompress"
    ) -> Optional[QuarantinedBlock]:
        """Evict a poisoned entry; returns the structured event (or None).

        Called by clients whose decompression of the served bytes raised
        :class:`~repro.codecs.base.CorruptDataError`: the entry is removed
        so the next get is an honest miss (and a re-fetch from the backing
        store), instead of every reader crashing on the same bytes.
        """
        key = bytes(key)
        entry = self._store.pop(key, None)
        if entry is None:
            return None
        self._resident_bytes -= len(entry[2])
        self.stats.corrupt_evictions += 1
        if OBS_STATE.enabled:
            record_quarantine("cache.server")
        return QuarantinedBlock(
            source="cache.server",
            identifier=repr(key),
            codec=self.codec.name,
            reason=reason,
        )

    # -- fault-injection support ----------------------------------------------

    def stored_keys(self) -> Tuple[bytes, ...]:
        """Every resident key, LRU order (coldest first)."""
        return tuple(self._store)

    def stored_entry(self, key: bytes) -> Tuple[str, bool, bytes]:
        """One entry's (type, compressed flag, stored bytes) -- no stats,
        no LRU touch, unlike :meth:`get_compressed`."""
        return self._store[bytes(key)]

    def replace_stored(self, key: bytes, payload: bytes) -> None:
        """Overwrite one entry's stored bytes in place (media-decay injection).

        Used by :func:`repro.faults.scrub_cache`; the compressed flag is
        kept, so a damaged compressed entry exercises the client's
        verified-decompress path on its next get.
        """
        key = bytes(key)
        type_name, compressed, old = self._store[key]
        self._store[key] = (type_name, compressed, bytes(payload))
        self._resident_bytes += len(payload) - len(old)

    @property
    def resident_bytes(self) -> int:
        """Bytes currently held in memory (post-compression)."""
        return self._resident_bytes

    def __contains__(self, key: bytes) -> bool:
        return bytes(key) in self._store

    def __len__(self) -> int:
        return len(self._store)
