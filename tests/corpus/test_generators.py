"""Corpus generator tests: determinism, sizes, and compressibility bands."""

import pytest

from repro.codecs import get_codec
from repro.corpus import (
    SILESIA_FILES,
    generate_binary,
    generate_logs,
    generate_records,
    generate_telemetry,
    generate_text,
    generate_xml,
    silesia_like_corpus,
)

_GENERATORS = {
    "text": generate_text,
    "records": generate_records,
    "xml": generate_xml,
    "binary": generate_binary,
    "logs": generate_logs,
    "telemetry": generate_telemetry,
}


@pytest.mark.parametrize("name,generator", _GENERATORS.items())
class TestGeneratorContract:
    def test_exact_size(self, name, generator):
        assert len(generator(5000, seed=1)) == 5000

    def test_deterministic(self, name, generator):
        assert generator(2000, seed=7) == generator(2000, seed=7)

    def test_seed_changes_output(self, name, generator):
        assert generator(2000, seed=1) != generator(2000, seed=2)


class TestCompressibilityBands:
    """Fig. 1 depends on the file classes spanning distinct ratio bands."""

    @pytest.fixture(scope="class")
    def ratios(self):
        zstd = get_codec("zstd")
        out = {}
        for name, generator in _GENERATORS.items():
            data = generator(32768, seed=42)
            out[name] = zstd.compress(data, 3).ratio
        return out

    def test_text_band(self, ratios):
        assert 2.0 < ratios["text"] < 5.0

    def test_records_band(self, ratios):
        assert 3.0 < ratios["records"] < 8.0

    def test_xml_band(self, ratios):
        assert 5.0 < ratios["xml"] < 15.0

    def test_binary_band(self, ratios):
        assert 1.2 < ratios["binary"] < 2.6

    def test_logs_band(self, ratios):
        assert 4.0 < ratios["logs"] < 10.0

    def test_telemetry_band(self, ratios):
        assert 1.3 < ratios["telemetry"] < 4.0

    def test_order_of_magnitude_spread(self, ratios):
        """The paper's Fig. 1 point: data type dominates the metrics."""
        assert max(ratios.values()) / min(ratios.values()) > 3.0


class TestSilesiaBundle:
    def test_contains_all_classes(self):
        corpus = silesia_like_corpus(4096)
        assert set(corpus) == set(SILESIA_FILES)

    def test_file_sizes(self):
        corpus = silesia_like_corpus(4096)
        assert all(len(data) == 4096 for data in corpus.values())

    def test_deterministic_for_seed(self):
        assert silesia_like_corpus(2048, seed=5) == silesia_like_corpus(2048, seed=5)
