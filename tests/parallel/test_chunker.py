"""Chunk planning: exact cover, determinism, edge sizes."""

import pytest

from repro.parallel import DEFAULT_CHUNK_SIZE, MIN_CHUNK_SIZE, chunk_count, plan_chunks


def test_default_chunk_size_is_128k():
    assert DEFAULT_CHUNK_SIZE == 128 * 1024


def test_empty_input_plans_one_empty_chunk():
    assert plan_chunks(0, 1024) == [(0, 0)]
    assert chunk_count(0, 1024) == 1


@pytest.mark.parametrize(
    "total,chunk,expected",
    [
        (1, 1024, [(0, 1)]),
        (1024, 1024, [(0, 1024)]),
        (1025, 1024, [(0, 1024), (1024, 1025)]),
        (2048, 1024, [(0, 1024), (1024, 2048)]),
        (100, 1024, [(0, 100)]),
    ],
)
def test_plan_shapes(total, chunk, expected):
    assert plan_chunks(total, chunk) == expected
    assert chunk_count(total, chunk) == len(expected)


@pytest.mark.parametrize("total", [0, 1, 63, 64, 65, 1000, 4096, 4097, 1 << 17])
@pytest.mark.parametrize("chunk", [64, 100, 4096, DEFAULT_CHUNK_SIZE])
def test_plan_covers_input_exactly(total, chunk):
    spans = plan_chunks(total, chunk)
    assert spans[0][0] == 0
    assert spans[-1][1] == max(total, 0)
    for (_, stop), (start, _) in zip(spans, spans[1:]):
        assert stop == start  # contiguous, no gaps or overlaps
    assert all(stop - start <= chunk for start, stop in spans)


def test_chunk_size_floor_enforced():
    with pytest.raises(ValueError):
        plan_chunks(1000, MIN_CHUNK_SIZE - 1)
    with pytest.raises(ValueError):
        plan_chunks(1000, 0)


def test_plan_depends_only_on_size_and_chunk():
    assert plan_chunks(10_000, 4096) == plan_chunks(10_000, 4096)
