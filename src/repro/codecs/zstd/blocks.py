"""Compressed-block encoding for the Zstd-style codec.

A compressed block body is::

    [literals section][sequences section]

Literals (all blocks' literal bytes concatenated in parse order) are stored
raw, as an RLE byte, or Huffman-coded -- whichever is smallest. Sequences
are (literal length, offset, match length) triples; each field is mapped to
a code (RFC 8478 tables) and the three code streams are FSE-coded, each with
either a predefined distribution, a custom table shipped in the block header,
or RLE when the stream is constant. Extra bits follow, packed per sequence.

Trailing literals after the last sequence are implicit (the decoder appends
whatever literals remain), matching the real format's convention.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.codecs.base import CorruptDataError, StageCounters
from repro.codecs.entropy.bitio import BitReader, BitWriter
from repro.codecs.entropy.fse import FSEDecoder, FSEEncoder, normalize_counts
from repro.codecs.entropy.huffman import (
    HuffmanDecoder,
    HuffmanEncoder,
    build_code_lengths,
)
from repro.codecs.lz77 import Token, copy_match
from repro.codecs.varint import read_uvarint, write_uvarint
from repro.codecs.zstd import params as zparams

_LITERALS_RAW = 0
_LITERALS_RLE = 1
_LITERALS_HUFFMAN = 2

_STREAM_PREDEFINED = 0
_STREAM_CUSTOM = 1
_STREAM_RLE = 2

_HUFFMAN_MAX_BITS = 11


# --------------------------------------------------------------------------
# Literals section


def _encode_literals(literals: bytes, out: bytearray, counters: StageCounters) -> None:
    if literals and literals.count(literals[0]) == len(literals):
        out.append(_LITERALS_RLE)
        write_uvarint(out, len(literals))
        out.append(literals[0] if literals else 0)
        counters.entropy_symbols += 1
        return
    if len(literals) >= 64:
        frequencies = [0] * 256
        for byte in literals:
            frequencies[byte] += 1
        lengths = build_code_lengths(frequencies, _HUFFMAN_MAX_BITS)
        encoder = HuffmanEncoder(lengths)
        counters.table_builds += 1
        payload_bits = encoder.encoded_bit_length(frequencies)
        max_symbol = max(s for s, f in enumerate(frequencies) if f)
        table_bytes = 2 + (max_symbol + 2) // 2
        total = 1 + 5 + table_bytes + (payload_bits + 7) // 8
        if total < len(literals):
            out.append(_LITERALS_HUFFMAN)
            write_uvarint(out, len(literals))
            out.extend(max_symbol.to_bytes(2, "little"))
            nibbles = bytearray()
            for sym in range(0, max_symbol + 1, 2):
                low = lengths[sym]
                high = lengths[sym + 1] if sym + 1 <= max_symbol else 0
                nibbles.append(low | (high << 4))
            out.extend(nibbles)
            writer = BitWriter()
            for byte in literals:
                encoder.encode_symbol(writer, byte)
            encoded = writer.getvalue()
            write_uvarint(out, len(encoded))
            out.extend(encoded)
            counters.entropy_symbols += len(literals)
            counters.entropy_bits += payload_bits
            return
    out.append(_LITERALS_RAW)
    write_uvarint(out, len(literals))
    out.extend(literals)


def _decode_literals(
    payload: bytes, pos: int, counters: StageCounters
) -> Tuple[bytes, int]:
    if pos >= len(payload):
        raise CorruptDataError("missing literals section")
    mode = payload[pos]
    pos += 1
    size, pos = read_uvarint(payload, pos)
    if size > zparams.MAX_BLOCK_SIZE:
        raise CorruptDataError("literals size exceeds block limit")
    if mode == _LITERALS_RAW:
        if pos + size > len(payload):
            raise CorruptDataError("truncated raw literals")
        return payload[pos : pos + size], pos + size
    if mode == _LITERALS_RLE:
        if pos >= len(payload):
            raise CorruptDataError("truncated RLE literals")
        byte = payload[pos]
        counters.entropy_symbols_decoded += 1
        return bytes([byte]) * size, pos + 1
    if mode == _LITERALS_HUFFMAN:
        if pos + 2 > len(payload):
            raise CorruptDataError("truncated Huffman table header")
        max_symbol = int.from_bytes(payload[pos : pos + 2], "little")
        pos += 2
        if max_symbol > 255:
            raise CorruptDataError("invalid Huffman alphabet")
        nibble_count = (max_symbol + 2) // 2
        if pos + nibble_count > len(payload):
            raise CorruptDataError("truncated Huffman table")
        lengths = [0] * 256
        for index in range(nibble_count):
            packed = payload[pos + index]
            lengths[2 * index] = packed & 0x0F
            if 2 * index + 1 <= max_symbol:
                lengths[2 * index + 1] = packed >> 4
        pos += nibble_count
        encoded_size, pos = read_uvarint(payload, pos)
        if pos + encoded_size > len(payload):
            raise CorruptDataError("truncated Huffman payload")
        decoder = HuffmanDecoder(lengths)
        reader = BitReader(payload[pos : pos + encoded_size])
        try:
            literals = bytes(decoder.decode_symbol(reader) for _ in range(size))
        except (EOFError, ValueError) as exc:
            raise CorruptDataError(f"bad Huffman stream: {exc}") from None
        counters.entropy_symbols_decoded += size
        return literals, pos + encoded_size
    raise CorruptDataError(f"unknown literals mode {mode}")


# --------------------------------------------------------------------------
# Sequences section


def _split_value(value: int, table: List[Tuple[int, int]], code: int) -> Tuple[int, int]:
    baseline, bits = table[code]
    return value - baseline, bits


def _choose_stream_mode(
    codes: List[int],
    predefined_norm: Sequence[int],
    predefined_log: int,
    alphabet: int,
) -> Tuple[int, Optional[List[int]], int]:
    """Pick RLE / predefined / custom coding for one code stream.

    Returns (mode, normalized_counts_or_None, table_log). The decision
    compares exact coded cost including the custom table header.
    """
    if all(code == codes[0] for code in codes):
        return _STREAM_RLE, None, 0
    frequencies = [0] * alphabet
    for code in codes:
        frequencies[code] += 1
    predefined_cost = FSEEncoder(predefined_norm, predefined_log).cost_in_bits(codes)
    custom_log = min(9, max(5, len(codes).bit_length()))
    try:
        custom_norm = normalize_counts(frequencies, custom_log)
    except ValueError:
        return _STREAM_PREDEFINED, None, predefined_log
    header_bits = 8 + 8 + alphabet * (custom_log + 1)
    custom_cost = FSEEncoder(custom_norm, custom_log).cost_in_bits(codes) + header_bits
    if custom_cost < predefined_cost:
        return _STREAM_CUSTOM, custom_norm, custom_log
    return _STREAM_PREDEFINED, None, predefined_log


def _write_custom_table(out: bytearray, normalized: List[int], table_log: int) -> None:
    out.append(table_log)
    max_symbol = max(s for s, n in enumerate(normalized) if n)
    out.append(max_symbol)
    writer = BitWriter()
    for symbol in range(max_symbol + 1):
        writer.write(normalized[symbol], table_log + 1)
    out.extend(writer.getvalue())


def _read_custom_table(
    payload: bytes, pos: int, alphabet: int
) -> Tuple[List[int], int, int]:
    if pos + 2 > len(payload):
        raise CorruptDataError("truncated FSE table header")
    table_log = payload[pos]
    max_symbol = payload[pos + 1]
    pos += 2
    if table_log > 12:
        raise CorruptDataError("FSE table too large")
    if max_symbol >= alphabet:
        raise CorruptDataError("FSE symbol out of range")
    total_bits = (max_symbol + 1) * (table_log + 1)
    total_bytes = (total_bits + 7) // 8
    if pos + total_bytes > len(payload):
        raise CorruptDataError("truncated FSE table")
    reader = BitReader(payload[pos : pos + total_bytes])
    normalized = [0] * alphabet
    for symbol in range(max_symbol + 1):
        normalized[symbol] = reader.read(table_log + 1)
    if sum(normalized) != (1 << table_log):
        raise CorruptDataError("FSE table does not sum to table size")
    return normalized, table_log, pos + total_bytes


_STREAM_SPECS = (
    # (code table, predefined norm, predefined log)
    (zparams.LL_TABLE, zparams.PREDEFINED_LL_NORM, zparams.PREDEFINED_LL_LOG),
    (zparams.OF_TABLE, zparams.PREDEFINED_OF_NORM, zparams.PREDEFINED_OF_LOG),
    (zparams.ML_TABLE, zparams.PREDEFINED_ML_NORM, zparams.PREDEFINED_ML_LOG),
)


def _encode_sequences(
    sequences: List[Tuple[int, int, int]], out: bytearray, counters: StageCounters
) -> None:
    """Encode (literal_length, offset, match_length) triples."""
    write_uvarint(out, len(sequences))
    if not sequences:
        return
    code_streams = [
        [zparams.ll_code(ll) for ll, __, __ in sequences],
        [zparams.of_code(of) for __, of, __ in sequences],
        [zparams.ml_code(ml) for __, __, ml in sequences],
    ]
    writer = BitWriter()
    for stream_index, codes in enumerate(code_streams):
        table, predefined_norm, predefined_log = _STREAM_SPECS[stream_index]
        mode, norm, table_log = _choose_stream_mode(
            codes, predefined_norm, predefined_log, len(table)
        )
        out.append(mode)
        if mode == _STREAM_RLE:
            out.append(codes[0])
            continue
        if mode == _STREAM_CUSTOM:
            _write_custom_table(out, norm, table_log)
            counters.table_builds += 1
            encoder = FSEEncoder(norm, table_log)
        else:
            encoder = FSEEncoder(predefined_norm, predefined_log)
        encoder.encode(codes, writer)
        counters.entropy_symbols += len(codes)
    # Extra bits, packed per sequence in (ll, of, ml) order.
    values_and_tables = (
        (0, zparams.LL_TABLE, zparams.ll_code),
        (1, zparams.OF_TABLE, zparams.of_code),
        (2, zparams.ML_TABLE, zparams.ml_code),
    )
    for seq_index, (ll, of, ml) in enumerate(sequences):
        triple = (ll, of, ml)
        for field_index, table, code_fn in values_and_tables:
            code = code_streams[field_index][seq_index]
            extra, bits = _split_value(triple[field_index], table, code)
            if bits:
                writer.write(extra, bits)
    encoded = writer.getvalue()
    counters.entropy_bits += writer.bit_length
    write_uvarint(out, len(encoded))
    out.extend(encoded)


def _decode_sequences(
    payload: bytes, pos: int, counters: StageCounters
) -> Tuple[List[Tuple[int, int, int]], int]:
    count, pos = read_uvarint(payload, pos)
    if count == 0:
        return [], pos
    if count > zparams.MAX_BLOCK_SIZE:
        raise CorruptDataError("sequence count exceeds block limit")
    stream_plans = []  # (mode, decoder-or-symbol)
    for table, predefined_norm, predefined_log in _STREAM_SPECS:
        if pos >= len(payload):
            raise CorruptDataError("truncated sequence stream header")
        mode = payload[pos]
        pos += 1
        if mode == _STREAM_RLE:
            if pos >= len(payload):
                raise CorruptDataError("truncated RLE stream symbol")
            symbol = payload[pos]
            pos += 1
            if symbol >= len(table):
                raise CorruptDataError("RLE code out of range")
            stream_plans.append((mode, symbol))
        elif mode == _STREAM_CUSTOM:
            normalized, table_log, pos = _read_custom_table(payload, pos, len(table))
            stream_plans.append((mode, FSEDecoder(normalized, table_log)))
        elif mode == _STREAM_PREDEFINED:
            stream_plans.append((mode, FSEDecoder(predefined_norm, predefined_log)))
        else:
            raise CorruptDataError(f"unknown sequence stream mode {mode}")
    size, pos = read_uvarint(payload, pos)
    if pos + size > len(payload):
        raise CorruptDataError("truncated sequence bitstream")
    reader = BitReader(payload[pos : pos + size])
    code_streams: List[List[int]] = []
    try:
        for mode, plan in stream_plans:
            if mode == _STREAM_RLE:
                code_streams.append([plan] * count)
            else:
                code_streams.append(plan.decode(count, reader))
                counters.entropy_symbols_decoded += count
        sequences: List[Tuple[int, int, int]] = []
        tables = (zparams.LL_TABLE, zparams.OF_TABLE, zparams.ML_TABLE)
        for index in range(count):
            values = []
            for field in range(3):
                code = code_streams[field][index]
                baseline, bits = tables[field][code]
                extra = reader.read(bits) if bits else 0
                values.append(baseline + extra)
            sequences.append((values[0], values[1], values[2]))
    except (EOFError, ValueError) as exc:
        raise CorruptDataError(f"bad sequence stream: {exc}") from None
    return sequences, pos + size


# --------------------------------------------------------------------------
# Block assembly


def encode_block(
    data: bytes, start: int, tokens: List[Token], counters: StageCounters
) -> bytes:
    """Serialize a parse of ``data[start:]`` into a compressed block body."""
    literals = bytearray()
    sequences: List[Tuple[int, int, int]] = []
    position = start
    for token in tokens:
        literals.extend(data[position : position + token.literal_length])
        position += token.literal_length
        if token.match_length:
            sequences.append((token.literal_length, token.offset, token.match_length))
            position += token.match_length
    out = bytearray()
    _encode_literals(bytes(literals), out, counters)
    _encode_sequences(sequences, out, counters)
    return bytes(out)


def decode_block(
    payload: bytes, counters: StageCounters, history: bytes = b""
) -> bytes:
    """Decode one compressed block body; ``history`` seeds the window."""
    literals, pos = _decode_literals(payload, 0, counters)
    sequences, pos = _decode_sequences(payload, pos, counters)
    if pos != len(payload):
        raise CorruptDataError("trailing bytes in compressed block")
    out = bytearray(history)
    base = len(out)
    lit_pos = 0
    for ll, offset, ml in sequences:
        if lit_pos + ll > len(literals):
            raise CorruptDataError("literal run exceeds literals buffer")
        out.extend(literals[lit_pos : lit_pos + ll])
        lit_pos += ll
        try:
            copy_match(out, offset, ml)
        except ValueError as exc:
            raise CorruptDataError(str(exc)) from None
        counters.literal_bytes_copied += ll
        counters.match_bytes_copied += ml
        counters.sequences_decoded += 1
    out.extend(literals[lit_pos:])
    counters.literal_bytes_copied += len(literals) - lit_pos
    return bytes(out[base:])
