"""Managed Compression: a stateful dictionary-management service.

The paper (Section II-B) describes Managed Compression as exposing "a
stateless interface to users while the service keeps the states to train
dictionaries using previous samples". This module implements that service:

- callers just say ``compress(use_case, data)`` / ``decompress(use_case,
  blob)``;
- the service samples traffic per use case, periodically (re)trains a
  dictionary from recent samples, and versions every dictionary so blobs
  compressed under older dictionaries remain decodable;
- blobs are self-describing (use case config version travels with the
  payload).

Resilience: decompressing a blob whose dictionary version is gone (retired
past the retention window, or lost to an injected fault) raises the typed
:class:`DictionaryRetiredError`; a ``retired_handler`` hook lets the owner
rebuild the blob from its source of truth instead of crashing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.codecs import Compressor, get_codec, train_dictionary
from repro.codecs.base import CodecError


@dataclass(frozen=True)
class ManagedBlob:
    """A compressed payload plus the state needed to decompress it."""

    use_case: str
    dictionary_version: int  # 0 = no dictionary
    payload: bytes


class DictionaryRetiredError(CodecError):
    """The blob names a dictionary version the service no longer holds.

    Carries enough context (``use_case``, ``version``, ``available``) for
    the caller to decide between re-fetching the blob's source data and
    declaring it rotted.
    """

    def __init__(
        self, use_case: str, version: int, available: Tuple[int, ...]
    ) -> None:
        super().__init__(
            f"dictionary version {version} for {use_case!r} has been "
            f"retired (available: {list(available) or 'none'})"
        )
        self.use_case = use_case
        self.version = version
        self.available = available


@dataclass
class UseCaseStats:
    """Accounting per use case."""

    compress_calls: int = 0
    decompress_calls: int = 0
    raw_bytes: int = 0
    compressed_bytes: int = 0
    retrains: int = 0
    # -- resilience accounting --
    #: decompress calls that hit a retired/lost dictionary version
    retired_blobs: int = 0
    #: retired blobs recovered through the retired_handler hook
    recoveries: int = 0

    @property
    def ratio(self) -> float:
        """Compression ratio, following the ``RpcStats.wire_ratio`` convention.

        Neutral 1.0 only with no traffic; ``inf`` when raw bytes went in
        but zero compressed bytes came out (degenerate all-empty inputs).
        """
        if self.compressed_bytes:
            return self.raw_bytes / self.compressed_bytes
        return float("inf") if self.raw_bytes else 1.0


@dataclass
class _UseCaseState:
    level: int
    dictionary_size: int
    retrain_interval: int
    max_versions: int
    samples: Deque[bytes] = field(default_factory=lambda: deque(maxlen=256))
    #: version -> dictionary content; version 0 is "no dictionary"
    dictionaries: Dict[int, bytes] = field(default_factory=dict)
    current_version: int = 0
    calls_since_training: int = 0
    stats: UseCaseStats = field(default_factory=UseCaseStats)


class ManagedCompression:
    """The stateful service behind the stateless compress/decompress API."""

    def __init__(
        self,
        codec: Optional[Compressor] = None,
        sample_every: int = 4,
        retired_handler: Optional[
            Callable[[DictionaryRetiredError], Optional[bytes]]
        ] = None,
    ) -> None:
        self.codec = codec if codec is not None else get_codec("zstd")
        if not self.codec.supports_dictionaries():
            raise CodecError(
                f"managed compression needs a dictionary-capable codec, "
                f"not {self.codec.name}"
            )
        self.sample_every = max(1, sample_every)
        #: called when a blob's dictionary version is gone; returns the
        #: recovered plaintext (from the blob's source of truth) or None
        #: to let the error propagate
        self.retired_handler = retired_handler
        self._use_cases: Dict[str, _UseCaseState] = {}

    def register_use_case(
        self,
        name: str,
        level: int = 3,
        dictionary_size: int = 8192,
        retrain_interval: int = 64,
        max_versions: int = 4,
    ) -> None:
        """Declare a use case (idempotent; re-registering keeps state)."""
        if name not in self._use_cases:
            self._use_cases[name] = _UseCaseState(
                level=level,
                dictionary_size=dictionary_size,
                retrain_interval=retrain_interval,
                max_versions=max_versions,
            )

    def _state(self, use_case: str) -> _UseCaseState:
        if use_case not in self._use_cases:
            self.register_use_case(use_case)
        return self._use_cases[use_case]

    # -- the stateless-looking API -------------------------------------------

    def compress(self, use_case: str, data: bytes) -> ManagedBlob:
        """Compress under the use case's current dictionary (if any)."""
        state = self._state(use_case)
        state.stats.compress_calls += 1
        state.calls_since_training += 1
        if state.stats.compress_calls % self.sample_every == 0:
            state.samples.append(bytes(data))
        if (
            state.calls_since_training >= state.retrain_interval
            and len(state.samples) >= 8
        ):
            self._retrain(use_case)
        dictionary = state.dictionaries.get(state.current_version)
        # a lost current dictionary degrades to dictionary-less compression,
        # and the blob must say so (version 0), not name the missing version
        version = state.current_version if dictionary is not None else 0
        result = self.codec.compress(data, state.level, dictionary=dictionary)
        state.stats.raw_bytes += len(data)
        state.stats.compressed_bytes += len(result.data)
        return ManagedBlob(use_case, version, result.data)

    def decompress(self, blob: ManagedBlob) -> bytes:
        """Decompress a blob under the dictionary version it names.

        A missing (retired or lost) version raises the typed
        :class:`DictionaryRetiredError` -- unless a ``retired_handler`` is
        installed and can rebuild the plaintext, in which case the call
        succeeds and the recovery is counted.
        """
        state = self._state(blob.use_case)
        state.stats.decompress_calls += 1
        if blob.dictionary_version == 0:
            dictionary = None
        else:
            dictionary = state.dictionaries.get(blob.dictionary_version)
            if dictionary is None:
                state.stats.retired_blobs += 1
                error = DictionaryRetiredError(
                    blob.use_case,
                    blob.dictionary_version,
                    tuple(sorted(state.dictionaries)),
                )
                if self.retired_handler is not None:
                    recovered = self.retired_handler(error)
                    if recovered is not None:
                        state.stats.recoveries += 1
                        return recovered
                raise error
        return self.codec.decompress(blob.payload, dictionary=dictionary).data

    # -- training --------------------------------------------------------------

    def _retrain(self, use_case: str) -> None:
        state = self._state(use_case)
        dictionary = train_dictionary(
            list(state.samples), max_size=state.dictionary_size
        )
        state.calls_since_training = 0
        if not len(dictionary):
            return
        state.current_version += 1
        state.dictionaries[state.current_version] = dictionary.content
        state.stats.retrains += 1
        # Retire versions beyond the retention window (old blobs re-compress
        # or rot, as any versioned-dictionary deployment must decide).
        retired = [
            version
            for version in state.dictionaries
            if version <= state.current_version - state.max_versions
        ]
        for version in retired:
            del state.dictionaries[version]

    def force_retrain(self, use_case: str) -> int:
        """Retrain now; returns the new current version."""
        self._retrain(use_case)
        return self._state(use_case).current_version

    def drop_dictionary(self, use_case: str, version: int) -> bool:
        """Lose one dictionary version (fault injection / forced retire).

        Returns True if the version existed. Blobs naming it now take the
        :class:`DictionaryRetiredError` path; compression falls back to
        dictionary-less if the *current* version is the one dropped.
        """
        state = self._state(use_case)
        if version not in state.dictionaries:
            return False
        del state.dictionaries[version]
        return True

    # -- introspection -----------------------------------------------------------

    def stats(self, use_case: str) -> UseCaseStats:
        return self._state(use_case).stats

    def current_version(self, use_case: str) -> int:
        return self._state(use_case).current_version

    def available_versions(self, use_case: str) -> Tuple[int, ...]:
        return tuple(sorted(self._state(use_case).dictionaries))
