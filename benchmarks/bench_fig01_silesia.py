"""Fig. 1: ratio and speed for Zstd/Zlib/LZ4, levels 1-9, Silesia-like files.

Paper shape: order-of-magnitude spread in ratio and speed across file
types; for every file, level up => ratio up, compression speed down; LZ4
fastest / zlib slowest at comparable levels.

The (codec, file, level) grid is evaluated through
:class:`repro.parallel.ParallelSweepRunner`; set ``REPRO_BENCH_JOBS=N`` to
fan the cells out over N worker processes (the table is byte-identical at
any job count, only wall-clock changes).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import format_table
from repro.codecs import get_codec
from repro.corpus import silesia_like_corpus
from repro.parallel import ParallelSweepRunner
from repro.perfmodel import DEFAULT_MACHINE

_FILE_SIZE = 1 << 14
_LEVELS = [1, 3, 5, 7, 9]
_CORPUS_SEED = 2023


@pytest.fixture(scope="module")
def corpus():
    return silesia_like_corpus(_FILE_SIZE, seed=_CORPUS_SEED)


def _measure_cell(cell):
    """One (codec, file, level) grid point; regenerates its own payload so
    it can run in a pool worker."""
    codec_name, file_name, level = cell
    codec = get_codec(codec_name)
    data = silesia_like_corpus(_FILE_SIZE, seed=_CORPUS_SEED)[file_name]
    result = codec.compress(data, level)
    decoded = codec.decompress(result.data)
    return (
        result.ratio,
        DEFAULT_MACHINE.compress_speed(codec_name, result.counters) / 1e6,
        DEFAULT_MACHINE.decompress_speed(codec_name, decoded.counters) / 1e6,
    )


def test_fig01_series(benchmark, corpus, figure_output):
    from repro.analysis import ascii_scatter

    cells = []
    for codec_name in ("zstd", "zlib", "lz4"):
        codec = get_codec(codec_name)
        for file_name in corpus:
            for level in _LEVELS:
                if codec.min_level <= level <= codec.max_level:
                    cells.append((codec_name, file_name, level))

    runner = ParallelSweepRunner(
        _measure_cell, jobs=int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    )
    measurements = runner.run(cells)

    rows = []
    scatter = {}
    for (codec_name, file_name, level), (ratio, comp, decomp) in zip(
        cells, measurements
    ):
        rows.append(
            [codec_name, file_name, level, f"{ratio:.2f}", f"{comp:.0f}", f"{decomp:.0f}"]
        )
        if file_name == "dickens-like":
            scatter.setdefault(codec_name, []).append((comp, ratio))
    figure_output(
        "fig01_silesia",
        format_table(
            ["codec", "file", "level", "ratio", "comp MB/s", "decomp MB/s"],
            rows,
            title="Fig. 1: compression ratio and speed across Silesia-like files",
        )
        + "\n\n"
        + ascii_scatter(
            scatter,
            x_label="compression MB/s",
            y_label="ratio",
            log_x=True,
            width=56,
            height=14,
        )
        + "\n (dickens-like file; levels trace each codec's curve right-to-left)",
    )

    # Benchmark kernel: zstd-3 on the text file (the figure's center point).
    zstd = get_codec("zstd")
    data = corpus["dickens-like"]
    benchmark(lambda: zstd.compress(data, 3))
