"""Segmented, per-record-checksummed write-ahead log.

Record framing (fixed 8-byte header, then payload)::

    u32 LE payload length | u32 LE crc32(payload) | payload

Payload: ``uvarint batch seq | uvarint entry count | entries``, each
entry in the SST key/tombstone-flag/value varint framing — one record
per :meth:`KVStore.write_batch <repro.services.kvstore.db.KVStore>`
group, so a batch is acked by a single sync (group commit).

The log is a series of segments (``wal-000000.log``, ``wal-000001.log``,
…); an append that pushes the active segment past ``segment_bytes``
rotates to the next index. Replay walks segments in order and, at the
first record whose length or checksum doesn't verify, truncates that
segment at the last good boundary (*torn-tail truncation*) and moves on
to the next segment — tail records of an earlier segment can be torn by
a dropped sync followed by a crash, and later segments may still hold
acked batches. A torn record can never be an acked batch: the ack *is*
the successful sync, and :meth:`SimStorage.crash
<repro.services.kvstore.storage.SimStorage.crash>` tears strictly inside
the unsynced tail.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.codecs.checksum import crc32
from repro.codecs.varint import read_uvarint, write_uvarint
from repro.obs.instrument import record_torn_tail, record_wal_append, record_wal_replay
from repro.obs.state import OBS_STATE
from repro.services.kvstore.storage import StorageBackend
from repro.services.kvstore.sst import _TOMBSTONE_FLAG, _encode_entry

_HEADER = struct.Struct("<II")

#: crash site visited after a record is appended but before it is synced:
#: the in-flight batch is unacked and must NOT survive recovery
APPEND_SITE = "kvstore.wal.append"

Entry = Tuple[bytes, Optional[bytes]]


@dataclass
class WalReplayResult:
    """What one replay pass recovered."""

    #: (batch seq, entries) in log order
    batches: List[Tuple[int, List[Entry]]] = field(default_factory=list)
    records: int = 0
    entries: int = 0
    bytes_replayed: int = 0
    torn_tails: int = 0
    segments: int = 0

    @property
    def max_seq(self) -> int:
        return max((seq for seq, __ in self.batches), default=0)


def _encode_batch(seq: int, items: List[Entry]) -> bytes:
    payload = bytearray()
    write_uvarint(payload, seq)
    write_uvarint(payload, len(items))
    for key, value in items:
        _encode_entry(payload, key, value)
    return bytes(payload)


def _decode_batch(payload: bytes) -> Tuple[int, List[Entry]]:
    seq, pos = read_uvarint(payload, 0)
    count, pos = read_uvarint(payload, pos)
    entries: List[Entry] = []
    for __ in range(count):
        klen, pos = read_uvarint(payload, pos)
        key = payload[pos : pos + klen]
        if len(key) != klen:
            raise ValueError("short key")
        pos += klen
        flag = payload[pos]
        pos += 1
        if flag & _TOMBSTONE_FLAG:
            entries.append((key, None))
        else:
            vlen, pos = read_uvarint(payload, pos)
            value = payload[pos : pos + vlen]
            if len(value) != vlen:
                raise ValueError("short value")
            pos += vlen
            entries.append((key, value))
    if pos != len(payload):
        raise ValueError("trailing bytes in WAL batch")
    return seq, entries


class WriteAheadLog:
    """The durable write path: group append, sync-to-ack, replay."""

    def __init__(
        self,
        storage: StorageBackend,
        prefix: str = "wal",
        segment_bytes: int = 1 << 16,
    ) -> None:
        self.storage = storage
        self.prefix = prefix
        self.segment_bytes = segment_bytes
        self._index = self._highest_index() + 1 if self.segments() else 0

    # -- layout ------------------------------------------------------------

    def segments(self) -> List[str]:
        return self.storage.list(f"{self.prefix}-")

    def _highest_index(self) -> int:
        highest = -1
        for name in self.segments():
            stem = name[len(self.prefix) + 1 :].split(".", 1)[0]
            try:
                highest = max(highest, int(stem))
            except ValueError:
                continue
        return highest

    @property
    def active_segment(self) -> str:
        return f"{self.prefix}-{self._index:06d}.log"

    # -- write path --------------------------------------------------------

    def append(self, seq: int, items: List[Entry]) -> int:
        """Frame, append, and sync one batch; returns framed bytes.

        The sync is the ack: callers may only report the batch durable
        after this returns. A crash between append and sync (the
        :data:`APPEND_SITE` point) leaves a torn, unacked record.
        """
        payload = _encode_batch(seq, items)
        frame = _HEADER.pack(len(payload), crc32(payload)) + payload
        segment = self.active_segment
        self.storage.append(segment, frame)
        self.storage.crash_point(APPEND_SITE)
        self.storage.sync(segment)
        if OBS_STATE.enabled:
            record_wal_append(1, len(frame))
        if self.storage.size(segment) >= self.segment_bytes:
            self._index += 1
        return len(frame)

    # -- recovery ----------------------------------------------------------

    def replay(self) -> WalReplayResult:
        """Parse every segment, truncating each torn tail at the last
        good record boundary; returns the recovered batches in order."""
        result = WalReplayResult()
        for name in self.segments():
            result.segments += 1
            data = self.storage.read(name)
            pos = 0
            while pos < len(data):
                if pos + _HEADER.size > len(data):
                    self._truncate_torn(name, pos, result)
                    break
                length, checksum = _HEADER.unpack_from(data, pos)
                body_start = pos + _HEADER.size
                if body_start + length > len(data):
                    self._truncate_torn(name, pos, result)
                    break
                payload = data[body_start : body_start + length]
                if crc32(payload) != checksum:
                    self._truncate_torn(name, pos, result)
                    break
                try:
                    seq, entries = _decode_batch(payload)
                except (ValueError, IndexError):
                    self._truncate_torn(name, pos, result)
                    break
                result.batches.append((seq, entries))
                result.records += 1
                result.entries += len(entries)
                result.bytes_replayed += _HEADER.size + length
                pos = body_start + length
        # recovery always writes into a fresh segment past everything seen
        self._index = self._highest_index() + 1
        if OBS_STATE.enabled:
            record_wal_replay(result.records, result.bytes_replayed)
        return result

    def _truncate_torn(self, name: str, pos: int, result: WalReplayResult) -> None:
        self.storage.truncate(name, pos)
        result.torn_tails += 1
        if OBS_STATE.enabled:
            record_torn_tail(name)

    # -- pruning -----------------------------------------------------------

    def prune(self) -> None:
        """Drop every segment (called after a flush made them obsolete:
        the manifest's ``wal_cutoff`` covers all appended batches)."""
        for name in self.segments():
            self.storage.delete(name)
        self._index += 1
