"""The graph model: compressors as DAGs of invertible transforms.

OpenZL (PAPERS.md) models a compressor not as one monolithic codec but as
a *graph of composable transforms*: structure-aware splitters tear a
payload into homogeneous streams, value transforms (delta, zigzag,
varint) concentrate its entropy, and generic entropy/LZ stages finish the
job. The shape of the graph — not the codec — is what gets specialized
per data category.

This module defines the graph *specification*: a nested, JSON-able node
tree, its validation rules, and its canonical byte encoding. The
canonical encoding is what travels in the stream header
(:mod:`repro.graphs.stream`), so two constraints are load-bearing:

- **determinism** — ``canonical_bytes`` is a pure function of the spec
  (sorted keys, fixed separators), so identical graphs serialize
  byte-identically everywhere, including pool workers;
- **hostility** — specs are parsed from untrusted payloads at decode
  time, so validation caps node counts, depth, and fan-out before any
  transform executes.

Each node is a plain dict with a ``kind`` key:

========== ============================================= ==============
kind       parameters                                    children
========== ============================================= ==============
leaf       ``codec`` (registry name), ``level``          terminal
store      —                                             terminal
transpose  ``width`` (2..32)                             ``child``
delta      ``width`` (1/2/4/8)                           ``child``
zigzag     ``width`` (1/2/4/8)                           ``child``
varint     ``width`` (1/2/4/8)                           ``child``
tokenize   ``delim`` (0..255), ``lanes`` (1..8),         ``children``
           optional ``reset`` (0..255) — splits on a     (1 + lanes)
           delimiter byte; lengths stream plus
           round-robin token lanes; the lane counter
           restarts after any token containing the
           ``reset`` byte (the row boundary), so lanes
           stay column-aligned across records
floatsplit ``width`` (2/4/8), ``hi`` (1..width-1)        ``children``
           — per-element byte split: high (sign/exponent) (2)
           stream and low (mantissa) stream
headsplit  ``marker`` (0..255) — splits at the *first*    ``children``
           marker byte: prefix (through the marker) one   (2)
           way, remainder the other; isolates a textual
           header from an aligned binary body
slice      ``sizes`` (1..4 byte counts) — fixed-offset    ``children``
           section split: child *i* gets ``sizes[i]``     (len+1)
           bytes, the last child the remainder; encodes
           a learned wire-format layout (dense floats
           here, sparse ints there) into the graph
========== ============================================= ==============
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterator, List, Tuple

Spec = Dict[str, object]
Path = Tuple[int, ...]


class GraphSpecError(ValueError):
    """Raised when a graph specification violates the grammar."""


#: hard caps enforced on every spec, including ones parsed from payloads
MAX_NODES = 24
#: maximum number of transform nodes on any root-to-leaf path
MAX_DEPTH = 6

#: element widths the value transforms accept
VALUE_WIDTHS = (1, 2, 4, 8)
#: widths floatsplit accepts (float16/float32/float64-shaped elements)
FLOAT_WIDTHS = (2, 4, 8)
#: transpose width bounds
TRANSPOSE_MIN_WIDTH, TRANSPOSE_MAX_WIDTH = 2, 32
#: tokenize lane bounds
MAX_LANES = 8

#: node kinds with exactly one child under the ``child`` key
SINGLE_CHILD_KINDS = ("transpose", "delta", "zigzag", "varint")
#: node kinds with a ``children`` list
MULTI_CHILD_KINDS = ("tokenize", "floatsplit", "headsplit", "slice")

#: slice caps: section count and single-section byte size
MAX_SLICE_SECTIONS = 4
MAX_SLICE_BYTES = 1 << 24
#: terminal node kinds
TERMINAL_KINDS = ("leaf", "store")
ALL_KINDS = TERMINAL_KINDS + SINGLE_CHILD_KINDS + MULTI_CHILD_KINDS


def _require_int(node: Spec, key: str, kind: str) -> int:
    value = node.get(key)
    # bool is an int subclass; a graph header saying {"width": true} is bad
    if not isinstance(value, int) or isinstance(value, bool):
        raise GraphSpecError(f"{kind} node needs integer {key!r}, got {value!r}")
    return value


def children_of(node: Spec) -> List[Spec]:
    """The child specs of a node, in edge order (empty for terminals)."""
    kind = node.get("kind")
    if kind in SINGLE_CHILD_KINDS:
        return [node["child"]]
    if kind in MULTI_CHILD_KINDS:
        return list(node["children"])
    return []


def with_children(node: Spec, children: List[Spec]) -> Spec:
    """A copy of ``node`` with its child edges replaced."""
    out = {k: v for k, v in node.items() if k not in ("child", "children")}
    kind = node.get("kind")
    if kind in SINGLE_CHILD_KINDS:
        if len(children) != 1:
            raise GraphSpecError(f"{kind} takes exactly one child")
        out["child"] = children[0]
    elif kind in MULTI_CHILD_KINDS:
        out["children"] = list(children)
    elif children:
        raise GraphSpecError(f"{kind} is terminal, got children")
    return out


def validate_spec(spec: Spec) -> None:
    """Check a spec against the grammar; raises :class:`GraphSpecError`.

    Codec names on leaves are validated *syntactically* here (non-empty
    string, not itself a graph); existence in the codec registry is
    checked when the graph executes, so specs can be validated in
    processes that have not registered every codec yet.
    """
    count = _validate_node(spec, depth=0)
    if count > MAX_NODES:
        raise GraphSpecError(f"graph has {count} nodes, cap is {MAX_NODES}")


def _validate_node(node: Spec, depth: int) -> int:
    if depth > MAX_DEPTH:
        raise GraphSpecError(f"graph deeper than {MAX_DEPTH} transforms")
    if not isinstance(node, dict):
        raise GraphSpecError(f"node must be an object, got {type(node).__name__}")
    kind = node.get("kind")
    if kind not in ALL_KINDS:
        raise GraphSpecError(f"unknown node kind {kind!r}")
    if kind == "leaf":
        codec = node.get("codec")
        if not isinstance(codec, str) or not codec:
            raise GraphSpecError("leaf node needs a codec name")
        if codec.startswith("graph:"):
            raise GraphSpecError("graphs do not nest: leaf codec cannot be a graph")
        _require_int(node, "level", kind)
        return 1
    if kind == "store":
        return 1
    if kind == "transpose":
        width = _require_int(node, "width", kind)
        if not TRANSPOSE_MIN_WIDTH <= width <= TRANSPOSE_MAX_WIDTH:
            raise GraphSpecError(
                f"transpose width {width} outside "
                f"{TRANSPOSE_MIN_WIDTH}..{TRANSPOSE_MAX_WIDTH}"
            )
    elif kind in ("delta", "zigzag", "varint"):
        width = _require_int(node, "width", kind)
        if width not in VALUE_WIDTHS:
            raise GraphSpecError(f"{kind} width {width} not in {VALUE_WIDTHS}")
    elif kind == "tokenize":
        delim = _require_int(node, "delim", kind)
        if not 0 <= delim <= 255:
            raise GraphSpecError(f"tokenize delim {delim} outside 0..255")
        lanes = _require_int(node, "lanes", kind)
        if not 1 <= lanes <= MAX_LANES:
            raise GraphSpecError(f"tokenize lanes {lanes} outside 1..{MAX_LANES}")
        if "reset" in node:
            reset = _require_int(node, "reset", kind)
            if not 0 <= reset <= 255:
                raise GraphSpecError(
                    f"tokenize reset {reset} outside 0..255"
                )
        kids = node.get("children")
        if not isinstance(kids, list) or len(kids) != 1 + lanes:
            raise GraphSpecError(
                f"tokenize with {lanes} lanes needs {1 + lanes} children"
            )
    elif kind == "floatsplit":
        width = _require_int(node, "width", kind)
        if width not in FLOAT_WIDTHS:
            raise GraphSpecError(f"floatsplit width {width} not in {FLOAT_WIDTHS}")
        hi = _require_int(node, "hi", kind)
        if not 1 <= hi <= width - 1:
            raise GraphSpecError(f"floatsplit hi {hi} outside 1..{width - 1}")
        kids = node.get("children")
        if not isinstance(kids, list) or len(kids) != 2:
            raise GraphSpecError("floatsplit needs exactly 2 children")
    elif kind == "headsplit":
        marker = _require_int(node, "marker", kind)
        if not 0 <= marker <= 255:
            raise GraphSpecError(f"headsplit marker {marker} outside 0..255")
        kids = node.get("children")
        if not isinstance(kids, list) or len(kids) != 2:
            raise GraphSpecError("headsplit needs exactly 2 children")
    elif kind == "slice":
        sizes = node.get("sizes")
        if (
            not isinstance(sizes, list)
            or not 1 <= len(sizes) <= MAX_SLICE_SECTIONS
        ):
            raise GraphSpecError(
                f"slice needs 1..{MAX_SLICE_SECTIONS} sizes"
            )
        for size in sizes:
            if not isinstance(size, int) or isinstance(size, bool):
                raise GraphSpecError(f"slice size {size!r} is not an integer")
            if not 0 <= size <= MAX_SLICE_BYTES:
                raise GraphSpecError(
                    f"slice size {size} outside 0..{MAX_SLICE_BYTES}"
                )
        kids = node.get("children")
        if not isinstance(kids, list) or len(kids) != len(sizes) + 1:
            raise GraphSpecError(
                f"slice with {len(sizes)} sizes needs {len(sizes) + 1} children"
            )
    if kind in SINGLE_CHILD_KINDS and "child" not in node:
        raise GraphSpecError(f"{kind} node needs a child")
    count = 1
    for child in children_of(node):
        count += _validate_node(child, depth + 1)
        if count > MAX_NODES:
            raise GraphSpecError(f"graph exceeds {MAX_NODES} nodes")
    return count


# -- canonical encoding -------------------------------------------------------


def canonical_bytes(spec: Spec) -> bytes:
    """The canonical byte encoding of a spec (the stream-header form)."""
    return json.dumps(
        spec, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


def parse_spec(data: bytes) -> Spec:
    """Parse and validate a canonical encoding.

    Raises :class:`GraphSpecError` for anything that is not a valid
    graph — the caller decides whether that means "bad argument" or
    "corrupt stream".
    """
    try:
        spec = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise GraphSpecError(f"graph header is not valid JSON: {exc}") from exc
    validate_spec(spec)
    return spec


def spec_fingerprint(spec: Spec) -> str:
    """Short stable fingerprint of a spec (names search candidates)."""
    return hashlib.blake2b(canonical_bytes(spec), digest_size=8).hexdigest()


# -- traversal helpers (used by the search's mutation operators) --------------


def iter_paths(spec: Spec) -> Iterator[Tuple[Path, Spec]]:
    """Yield ``(path, node)`` for every node, in DFS pre-order.

    A path is the tuple of child indices from the root; the root's path
    is ``()``.
    """
    stack: List[Tuple[Path, Spec]] = [((), spec)]
    while stack:
        path, node = stack.pop()
        yield path, node
        kids = children_of(node)
        for index in range(len(kids) - 1, -1, -1):
            stack.append((path + (index,), kids[index]))


def node_at(spec: Spec, path: Path) -> Spec:
    node = spec
    for index in path:
        node = children_of(node)[index]
    return node


def replace_at(spec: Spec, path: Path, replacement: Spec) -> Spec:
    """A new spec with the node at ``path`` swapped for ``replacement``."""
    if not path:
        return replacement
    kids = children_of(spec)
    index = path[0]
    kids[index] = replace_at(kids[index], path[1:], replacement)
    return with_children(spec, kids)


def node_count(spec: Spec) -> int:
    return sum(1 for __ in iter_paths(spec))


def leaf_paths(spec: Spec) -> List[Path]:
    """Paths of all terminal nodes, in DFS pre-order (the frame order)."""
    return [
        path
        for path, node in iter_paths(spec)
        if node.get("kind") in TERMINAL_KINDS
    ]


def spec_label(spec: Spec) -> str:
    """Compact single-line rendering, e.g. ``transpose(8)>leaf(zstd-3)``."""
    kind = spec.get("kind")
    if kind == "leaf":
        return f"leaf({spec['codec']}-{spec['level']})"
    if kind == "store":
        return "store"
    if kind == "tokenize":
        inner = ",".join(spec_label(c) for c in children_of(spec))
        extra = f",r{spec['reset']}" if "reset" in spec else ""
        return f"tokenize({spec['delim']},{spec['lanes']}{extra})[{inner}]"
    if kind == "floatsplit":
        inner = ",".join(spec_label(c) for c in children_of(spec))
        return f"floatsplit({spec['width']},{spec['hi']})[{inner}]"
    if kind == "headsplit":
        inner = ",".join(spec_label(c) for c in children_of(spec))
        return f"headsplit({spec['marker']})[{inner}]"
    if kind == "slice":
        inner = ",".join(spec_label(c) for c in children_of(spec))
        sizes = ",".join(str(s) for s in spec["sizes"])
        return f"slice({sizes})[{inner}]"
    return f"{kind}({spec['width']})>{spec_label(spec['child'])}"


def format_spec(spec: Spec, indent: int = 0) -> str:
    """Multi-line tree rendering for ``repro graph describe``."""
    pad = "  " * indent
    kind = spec.get("kind")
    if kind == "leaf":
        return f"{pad}leaf codec={spec['codec']} level={spec['level']}"
    if kind == "store":
        return f"{pad}store"
    if kind == "tokenize":
        head = f"{pad}tokenize delim={spec['delim']} lanes={spec['lanes']}"
        if "reset" in spec:
            head += f" reset={spec['reset']}"
        parts = [head]
        labels = ["lengths"] + [f"lane{j}" for j in range(int(spec["lanes"]))]
        for label, child in zip(labels, children_of(spec)):
            parts.append(f"{pad}  [{label}]")
            parts.append(format_spec(child, indent + 2))
        return "\n".join(parts)
    if kind == "floatsplit":
        head = f"{pad}floatsplit width={spec['width']} hi={spec['hi']}"
        parts = [head]
        for label, child in zip(("high", "low"), children_of(spec)):
            parts.append(f"{pad}  [{label}]")
            parts.append(format_spec(child, indent + 2))
        return "\n".join(parts)
    if kind == "headsplit":
        parts = [f"{pad}headsplit marker={spec['marker']}"]
        for label, child in zip(("head", "body"), children_of(spec)):
            parts.append(f"{pad}  [{label}]")
            parts.append(format_spec(child, indent + 2))
        return "\n".join(parts)
    if kind == "slice":
        sizes = list(spec["sizes"])
        parts = [f"{pad}slice sizes={sizes}"]
        labels = [f"sec{j}({s}B)" for j, s in enumerate(sizes)] + ["rest"]
        for label, child in zip(labels, children_of(spec)):
            parts.append(f"{pad}  [{label}]")
            parts.append(format_spec(child, indent + 2))
        return "\n".join(parts)
    head = f"{pad}{kind} width={spec['width']}"
    return "\n".join([head, format_spec(spec["child"], indent + 1)])
