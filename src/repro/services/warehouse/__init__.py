"""Data Warehouse substrate: ORC-like columnar storage plus DW1-4 workflows.

"Data Warehouse ... stores data in a columnar format called Optimized Row
Columnar (ORC). Columns get encoded by the storage engine and then passed to
Zstd in blocks of up to 256KB. Nearly all compression usage in Data
Warehouse services is driven by reading and writing ORC files"
(Section IV-B).
"""

from repro.services.warehouse.orc import OrcReader, OrcWriter, encode_column, decode_column
from repro.services.warehouse.stripes import StripedOrcReader, StripedOrcWriter
from repro.services.warehouse.workflows import (
    IngestionJob,
    MLDataJob,
    ShuffleJob,
    SparkJob,
    WorkflowReport,
)

__all__ = [
    "OrcWriter",
    "OrcReader",
    "StripedOrcWriter",
    "StripedOrcReader",
    "encode_column",
    "decode_column",
    "IngestionJob",
    "ShuffleJob",
    "SparkJob",
    "MLDataJob",
    "WorkflowReport",
]
