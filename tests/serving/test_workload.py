"""Workload generation: determinism, arrival processes, fleet tenants."""

import pytest

from repro.fleet.profiles import DEFAULT_FLEET
from repro.serving.workload import (
    TenantSpec,
    WorkloadGenerator,
    tenants_from_fleet,
)

_FAST_TENANTS = [
    TenantSpec(
        name="alpha",
        weight=0.7,
        median_bytes=512,
        sigma=0.5,
        deadline_seconds=0.1,
        corpus="logs",
    ),
    TenantSpec(
        name="beta",
        weight=0.3,
        median_bytes=1024,
        sigma=0.5,
        deadline_seconds=1.0,
        corpus="records",
    ),
]


class TestFleetTenants:
    def test_default_tenants_normalized(self):
        tenants = tenants_from_fleet()
        assert len(tenants) == 4
        assert sum(t.weight for t in tenants) == pytest.approx(1.0)
        assert all(t.weight > 0 for t in tenants)
        assert all(64 <= t.median_bytes <= 16384 for t in tenants)
        # every tenant is a real fleet service
        names = {p.name for p in DEFAULT_FLEET}
        assert all(t.name in names for t in tenants)

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            tenants_from_fleet(categories=("No Such Category",))


class TestGeneration:
    def test_deterministic_per_seed(self):
        def run():
            return WorkloadGenerator(
                _FAST_TENANTS, rate_rps=200, duration_seconds=1.0, seed=5
            ).generate()

        a, b = run(), run()
        assert len(a) == len(b) > 0
        for left, right in zip(a, b):
            assert left == right

    def test_different_seed_differs(self):
        a = WorkloadGenerator(
            _FAST_TENANTS, rate_rps=200, duration_seconds=1.0, seed=5
        ).generate()
        b = WorkloadGenerator(
            _FAST_TENANTS, rate_rps=200, duration_seconds=1.0, seed=6
        ).generate()
        assert [r.arrival for r in a] != [r.arrival for r in b]

    def test_request_shape(self):
        requests = WorkloadGenerator(
            _FAST_TENANTS, rate_rps=300, duration_seconds=1.0, seed=7
        ).generate()
        assert len(requests) > 100
        names = {t.name for t in _FAST_TENANTS}
        deadlines = {t.name: t.deadline_seconds for t in _FAST_TENANTS}
        previous = 0.0
        for i, request in enumerate(requests):
            assert request.request_id == i
            assert request.tenant in names
            assert previous <= request.arrival < 1.0
            assert 64 <= request.size <= 1 << 16
            assert request.deadline == pytest.approx(
                request.arrival + deadlines[request.tenant]
            )
            previous = request.arrival

    def test_tenant_mix_follows_weights(self):
        requests = WorkloadGenerator(
            _FAST_TENANTS, rate_rps=500, duration_seconds=2.0, seed=11
        ).generate()
        share = sum(r.tenant == "alpha" for r in requests) / len(requests)
        assert share == pytest.approx(0.7, abs=0.08)

    def test_poisson_rate_is_unscaled_by_amplitude(self):
        # the diurnal amplitude must not inflate a pure Poisson stream
        requests = WorkloadGenerator(
            _FAST_TENANTS,
            rate_rps=400,
            duration_seconds=2.0,
            seed=13,
            process="poisson",
            diurnal_amplitude=0.9,
        ).generate()
        assert len(requests) == pytest.approx(800, rel=0.15)

    def test_diurnal_peak_in_first_half(self):
        # one sinusoidal period over the run: rate above average in the
        # first half (sin > 0), below in the second
        requests = WorkloadGenerator(
            _FAST_TENANTS,
            rate_rps=400,
            duration_seconds=2.0,
            seed=17,
            process="diurnal",
            diurnal_amplitude=0.8,
        ).generate()
        first = sum(r.arrival < 1.0 for r in requests)
        second = len(requests) - first
        assert first > second * 1.5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(_FAST_TENANTS, process="bursty")
        with pytest.raises(ValueError):
            WorkloadGenerator(_FAST_TENANTS, rate_rps=0.0)
        with pytest.raises(ValueError):
            WorkloadGenerator(_FAST_TENANTS, diurnal_amplitude=1.0)
