"""Level tables and sequence code alphabets for the Zstd-style codec.

The literal-length and match-length code tables are the RFC 8478 ones;
offsets use the pure power-of-two code (``code = floor(log2(offset))``)
without repcodes -- a documented simplification (DESIGN.md section 3).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.codecs.entropy.fse import normalize_counts
from repro.codecs.matchfinders import MatchFinderParams

MIN_MATCH = 3
MAX_BLOCK_SIZE = 1 << 17  # 128 KiB, as in the real format

# --------------------------------------------------------------------------
# Sequence code tables (code -> (baseline, extra_bits)).

_LL_EXTRA = [0] * 16 + [1, 1, 1, 1, 2, 2, 3, 3, 4, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16]
_LL_BASELINES = list(range(16)) + [
    16, 18, 20, 22, 24, 28, 32, 40,
    48, 64, 128, 256, 512, 1024, 2048, 4096,
    8192, 16384, 32768, 65536,
]

_ML_EXTRA = [0] * 32 + [1, 1, 1, 1, 2, 2, 3, 3, 4, 4, 5, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16]
_ML_BASELINES = [code + MIN_MATCH for code in range(32)] + [
    35, 37, 39, 41, 43, 47, 51, 59,
    67, 83, 99, 131, 259, 515, 1027, 2051,
    4099, 8195, 16387, 32771, 65539,
]

MAX_OFFSET_CODE = 26  # offsets < 2**27 -- beyond any window this codec uses
_OF_EXTRA = list(range(MAX_OFFSET_CODE + 1))
_OF_BASELINES = [1 << code for code in range(MAX_OFFSET_CODE + 1)]

LL_TABLE: List[Tuple[int, int]] = list(zip(_LL_BASELINES, _LL_EXTRA))
ML_TABLE: List[Tuple[int, int]] = list(zip(_ML_BASELINES, _ML_EXTRA))
OF_TABLE: List[Tuple[int, int]] = list(zip(_OF_BASELINES, _OF_EXTRA))


def _code_for(value: int, table: List[Tuple[int, int]]) -> int:
    """Largest code whose baseline does not exceed ``value``."""
    low, high = 0, len(table) - 1
    while low < high:
        mid = (low + high + 1) // 2
        if table[mid][0] <= value:
            low = mid
        else:
            high = mid - 1
    return low


def ll_code(literal_length: int) -> int:
    return literal_length if literal_length < 16 else _code_for(literal_length, LL_TABLE)


def ml_code(match_length: int) -> int:
    if match_length < MIN_MATCH:
        raise ValueError(f"match length {match_length} below minimum {MIN_MATCH}")
    return (match_length - MIN_MATCH) if match_length < 32 + MIN_MATCH else _code_for(match_length, ML_TABLE)


def of_code(offset: int) -> int:
    if offset < 1:
        raise ValueError("offsets start at 1")
    return offset.bit_length() - 1


# --------------------------------------------------------------------------
# Predefined FSE distributions (used when a custom table would not pay off).
# Deterministic, shared by encoder and decoder; geometric-ish weights favor
# small codes the way the RFC default tables do.

PREDEFINED_LL_LOG = 6
PREDEFINED_ML_LOG = 6
PREDEFINED_OF_LOG = 5


def _geometric_counts(alphabet: int, half_life: float) -> List[int]:
    return [max(1, int(4096 * 0.5 ** (code / half_life))) for code in range(alphabet)]


PREDEFINED_LL_NORM = normalize_counts(_geometric_counts(len(LL_TABLE), 4.0), PREDEFINED_LL_LOG)
PREDEFINED_ML_NORM = normalize_counts(_geometric_counts(len(ML_TABLE), 6.0), PREDEFINED_ML_LOG)
PREDEFINED_OF_NORM = normalize_counts(
    [max(1, int(4096 * 0.5 ** (abs(code - 10) / 6.0))) for code in range(len(OF_TABLE))],
    PREDEFINED_OF_LOG,
)

# --------------------------------------------------------------------------
# Level table: -5..22, mirroring the strategy ladder of the real library.

MIN_LEVEL = -5
MAX_LEVEL = 22


def _build_level_params() -> Dict[int, MatchFinderParams]:
    params: Dict[int, MatchFinderParams] = {}
    for level in range(MIN_LEVEL, 0):
        params[level] = MatchFinderParams(
            window_log=17,
            hash_log=12,
            min_match=4,
            strategy="fast",
            acceleration=1 + 2 * (-level),
        )
    # Depths are scaled down from the C library's (Python match finding is
    # the wall-clock bottleneck); the ladder preserves the strategy
    # progression and strict effort ordering, and the performance model
    # works from operation counters, not wall-clock (DESIGN.md 1.2).
    ladder = {
        1: ("fast", 17, 15, 0, 0, 0),
        2: ("fast", 18, 16, 0, 0, 0),
        3: ("greedy", 18, 16, 4, 0, 16),
        4: ("greedy", 18, 16, 8, 0, 24),
        5: ("lazy", 18, 17, 8, 1, 32),
        6: ("lazy", 19, 17, 16, 1, 48),
        7: ("lazy2", 19, 17, 16, 2, 64),
        8: ("lazy2", 19, 17, 24, 2, 96),
        9: ("lazy2", 20, 17, 32, 2, 128),
        10: ("lazy2", 20, 18, 48, 2, 192),
        11: ("lazy2", 21, 18, 64, 2, 256),
        12: ("lazy2", 21, 18, 64, 2, 512),
        13: ("optimal", 21, 18, 16, 0, 0),
        14: ("optimal", 21, 18, 24, 0, 0),
        15: ("optimal", 21, 18, 32, 0, 0),
        16: ("optimal", 22, 18, 32, 0, 0),
        17: ("optimal", 22, 18, 48, 0, 0),
        18: ("optimal", 22, 19, 48, 0, 0),
        19: ("optimal", 22, 19, 64, 0, 0),
        20: ("optimal", 22, 19, 64, 0, 0),
        21: ("optimal", 22, 19, 96, 0, 0),
        22: ("optimal", 22, 19, 96, 0, 0),
    }
    for level, (strategy, wlog, hlog, depth, lazy, target) in ladder.items():
        params[level] = MatchFinderParams(
            window_log=wlog,
            hash_log=hlog,
            search_depth=max(1, depth),
            min_match=4 if level < 16 else MIN_MATCH,
            target_length=target if target else 1 << 20,
            lazy_steps=lazy,
            strategy=strategy,
        )
    return params


LEVEL_PARAMS = _build_level_params()
# Level 0 means "use the default level", as in the real library.
LEVEL_PARAMS[0] = LEVEL_PARAMS[3]


def shrink_for_input(params: MatchFinderParams, input_size: int) -> MatchFinderParams:
    """Shrink hash/window tables for small inputs.

    The paper observes (Section IV-E) that "for smaller inputs, Zstd shrinks
    its hash tables ... because there is little benefit to using a 1MB hash
    table to process 1KB of input", producing the non-monotonic small-block
    speed profile of Fig. 13. The same policy is applied here.
    """
    if input_size <= 0:
        return params
    needed_log = max(6, input_size.bit_length())
    from dataclasses import replace

    return replace(
        params,
        hash_log=min(params.hash_log, needed_log),
        window_log=min(params.window_log, max(10, needed_log)),
    )
