"""LZ4 block format encoder/decoder.

A block is a series of sequences; each sequence is::

    token (1 byte: literal length in the high nibble, match length - 4 in
           the low nibble, 15 meaning "extended with 255-run bytes")
    [literal length extension bytes]
    literals
    offset (2 bytes, little-endian, 1..65535)
    [match length extension bytes]

The final sequence carries literals only: the decoder detects end-of-block by
input exhaustion after copying them, exactly like the reference format.
"""

from __future__ import annotations

from typing import List

from repro.codecs.base import CorruptDataError, StageCounters
from repro.codecs.lz77 import Token, copy_match

MIN_MATCH = 4
MAX_OFFSET = 65535
_TOKEN_MAX = 15


def _append_length(out: bytearray, value: int) -> None:
    """Emit the 255-run extension of a nibble-overflow length."""
    while value >= 255:
        out.append(255)
        value -= 255
    out.append(value)


def encode_block(
    data: bytes, start: int, tokens: List[Token], counters: StageCounters
) -> bytes:
    """Serialize a parse of ``data[start:]`` into LZ4 block bytes."""
    out = bytearray()
    position = start
    for index, token in enumerate(tokens):
        lit_len = token.literal_length
        match_len = token.match_length
        is_last = index == len(tokens) - 1
        if match_len == 0 and not is_last:
            raise ValueError("literal-only token before end of block")
        if match_len:
            if match_len < MIN_MATCH:
                raise ValueError(f"match length {match_len} below minimum")
            if not 1 <= token.offset <= MAX_OFFSET:
                raise ValueError(f"offset {token.offset} outside LZ4 range")
        lit_nibble = min(lit_len, _TOKEN_MAX)
        match_code = match_len - MIN_MATCH if match_len else 0
        match_nibble = min(match_code, _TOKEN_MAX)
        out.append((lit_nibble << 4) | (match_nibble if match_len else 0))
        if lit_nibble == _TOKEN_MAX:
            _append_length(out, lit_len - _TOKEN_MAX)
        out.extend(data[position : position + lit_len])
        position += lit_len
        counters.entropy_symbols += 1  # one token byte per sequence
        if match_len:
            out.extend(token.offset.to_bytes(2, "little"))
            if match_nibble == _TOKEN_MAX:
                _append_length(out, match_code - _TOKEN_MAX)
            position += match_len
    counters.entropy_bits += len(out) * 8
    return bytes(out)


def decode_block(
    payload: bytes, counters: StageCounters, history: bytes = b""
) -> bytes:
    """Decode one LZ4 block; ``history`` seeds the back-reference window."""
    out = bytearray(history)
    base = len(history)
    pos = 0
    n = len(payload)
    while pos < n:
        token = payload[pos]
        pos += 1
        lit_len = token >> 4
        if lit_len == _TOKEN_MAX:
            while True:
                if pos >= n:
                    raise CorruptDataError("truncated literal length")
                extra = payload[pos]
                pos += 1
                lit_len += extra
                if extra != 255:
                    break
        if pos + lit_len > n:
            raise CorruptDataError("literal run exceeds block")
        out.extend(payload[pos : pos + lit_len])
        counters.literal_bytes_copied += lit_len
        pos += lit_len
        if pos == n:
            break  # final, literals-only sequence
        if pos + 2 > n:
            raise CorruptDataError("truncated match offset")
        offset = int.from_bytes(payload[pos : pos + 2], "little")
        pos += 2
        if offset == 0:
            raise CorruptDataError("zero match offset")
        match_len = (token & 0x0F) + MIN_MATCH
        if (token & 0x0F) == _TOKEN_MAX:
            while True:
                if pos >= n:
                    raise CorruptDataError("truncated match length")
                extra = payload[pos]
                pos += 1
                match_len += extra
                if extra != 255:
                    break
        try:
            copy_match(out, offset, match_len)
        except ValueError as exc:
            raise CorruptDataError(str(exc)) from None
        counters.match_bytes_copied += match_len
        counters.sequences_decoded += 1
    return bytes(out[base:])
