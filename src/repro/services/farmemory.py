"""Far memory: proactive compression of cold pages.

The paper's introduction lists reducing "the memory total cost of ownership
(TCO) by proactively compressing cold memory pages" among the fleet's
compression uses, citing zswap-style software-defined far memory and TMO.
This substrate models that path: a pool of 4 KB pages with access-recency
tracking; pages cold for longer than a threshold are compressed into a
compact pool, and touching a compressed page incurs a decompression fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.codecs import Compressor, get_codec
from repro.codecs.base import StageCounters
from repro.perfmodel import DEFAULT_MACHINE, MachineModel

PAGE_SIZE = 4096


@dataclass
class FarMemoryStats:
    """Accounting for one pool."""

    pages_written: int = 0
    pages_compressed: int = 0
    pages_faulted: int = 0
    incompressible_pages: int = 0
    compress_counters: StageCounters = field(default_factory=StageCounters)
    decompress_counters: StageCounters = field(default_factory=StageCounters)
    fault_seconds_total: float = 0.0

    @property
    def mean_fault_seconds(self) -> float:
        if not self.pages_faulted:
            return 0.0
        return self.fault_seconds_total / self.pages_faulted


@dataclass
class _Page:
    data: Optional[bytes]  # resident plaintext, or None when compressed
    compressed: Optional[bytes]
    last_access_tick: int


class FarMemoryPool:
    """A page pool with a cold-age compression policy.

    Time is a logical tick advanced by :meth:`tick`; a reclaim pass
    compresses every page untouched for ``cold_age_ticks``. Pages that do
    not compress (high-entropy contents) stay resident, as zswap's
    same-filled/incompressible handling does.
    """

    def __init__(
        self,
        codec: Optional[Compressor] = None,
        level: int = 1,
        cold_age_ticks: int = 4,
        min_saving: float = 0.10,
        machine: MachineModel = DEFAULT_MACHINE,
    ) -> None:
        self.codec = codec if codec is not None else get_codec("zstd")
        self.level = level
        self.cold_age_ticks = cold_age_ticks
        self.min_saving = min_saving
        self.machine = machine
        self._pages: Dict[int, _Page] = {}
        self._tick = 0
        self.stats = FarMemoryStats()

    # -- time ------------------------------------------------------------------

    def tick(self) -> None:
        """Advance logical time and run one reclaim pass."""
        self._tick += 1
        self._reclaim()

    @property
    def now(self) -> int:
        return self._tick

    # -- page operations ----------------------------------------------------------

    def write(self, page_number: int, data: bytes) -> None:
        """Install or overwrite one page (pads/truncates to PAGE_SIZE)."""
        page_data = bytes(data[:PAGE_SIZE]).ljust(PAGE_SIZE, b"\x00")
        self._pages[page_number] = _Page(
            data=page_data, compressed=None, last_access_tick=self._tick
        )
        self.stats.pages_written += 1

    def read(self, page_number: int) -> bytes:
        """Touch one page; faults it back in if it was compressed."""
        page = self._pages[page_number]
        page.last_access_tick = self._tick
        if page.data is not None:
            return page.data
        result = self.codec.decompress(page.compressed)
        self.stats.decompress_counters.merge(result.counters)
        fault_seconds = self.machine.decompress_seconds(
            self.codec.name, result.counters
        )
        self.stats.pages_faulted += 1
        self.stats.fault_seconds_total += fault_seconds
        page.data = result.data
        page.compressed = None
        return page.data

    def _reclaim(self) -> None:
        for page in self._pages.values():
            if page.data is None:
                continue
            if self._tick - page.last_access_tick < self.cold_age_ticks:
                continue
            result = self.codec.compress(page.data, self.level)
            self.stats.compress_counters.merge(result.counters)
            if len(result.data) > PAGE_SIZE * (1 - self.min_saving):
                self.stats.incompressible_pages += 1
                # leave resident; re-checking every pass would waste cycles,
                # so push the page's clock forward instead
                page.last_access_tick = self._tick
                continue
            page.compressed = result.data
            page.data = None
            self.stats.pages_compressed += 1

    # -- accounting ----------------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        """Plaintext bytes currently occupying DRAM."""
        return sum(PAGE_SIZE for p in self._pages.values() if p.data is not None)

    @property
    def compressed_bytes(self) -> int:
        """Bytes in the compressed pool."""
        return sum(
            len(p.compressed) for p in self._pages.values() if p.compressed is not None
        )

    @property
    def memory_saving(self) -> float:
        """Fraction of the pool's footprint eliminated by compression."""
        total_pages = len(self._pages)
        if not total_pages:
            return 0.0
        uncompressed = total_pages * PAGE_SIZE
        actual = self.resident_bytes + self.compressed_bytes
        return 1.0 - actual / uncompressed

    def __len__(self) -> int:
        return len(self._pages)
