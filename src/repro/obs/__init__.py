"""``repro.obs`` — the fleet telemetry subsystem.

The always-on profiling layer the paper's characterization rests on
(Section III-A), reproduced as a process-wide metrics registry plus trace
spans, with instrumentation threaded through the codec layer and every
service substrate:

- :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / log-bucketed
  ``Histogram`` families in a mergeable :class:`MetricsRegistry`.
- :mod:`repro.obs.spans` — nested wall-time spans forming flame-style
  per-request attributions.
- :mod:`repro.obs.instrument` — the hook functions hot paths call.
- :mod:`repro.obs.export` — Prometheus text, JSON-lines, and table views.
- :mod:`repro.obs.timeseries` — clock-driven rolling windows of
  mergeable registry snapshots (the time axis).
- :mod:`repro.obs.slo` — declarative SLOs with multi-window
  multi-burn-rate alerting over those windows.
- ``repro obs`` (CLI) — run a workload and emit a snapshot; ``repro obs
  watch`` replays a recorded timeline.

Telemetry is **off by default** and zero-cost when disabled: instrumented
call sites check one module-level flag (:data:`repro.obs.state.OBS_STATE`)
and skip everything else. Typical use::

    from repro import obs

    obs.enable()
    ...  # run any workload: kvstore reads, RPC sends, cache gets
    print(obs.to_prometheus(obs.get_registry()))
"""

from repro.obs.export import (
    json_line,
    registry_snapshot,
    round_floats,
    to_jsonl,
    to_prometheus,
    to_table,
)
from repro.obs.slo import (
    DEFAULT_RULES,
    OK,
    PAGE,
    WARN,
    AlertStateMachine,
    AlertTransition,
    BoundSLO,
    BurnRule,
    EventRateSLO,
    SLO,
    SLOEvaluator,
    metric_total,
)
from repro.obs.timeseries import (
    TimeSeriesRecorder,
    WallClock,
    WindowSnapshot,
    merge_windows,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.spans import (
    SpanRecord,
    current_span,
    flame_counts,
    recent_roots,
    reset_spans,
    span,
)
from repro.obs.state import OBS_STATE, disable, enable, is_enabled


def reset() -> None:
    """Clear all collected telemetry (registry and spans); flag unchanged."""
    get_registry().clear()
    reset_spans()


__all__ = [
    "AlertStateMachine",
    "AlertTransition",
    "BoundSLO",
    "BurnRule",
    "Counter",
    "DEFAULT_RULES",
    "EventRateSLO",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OBS_STATE",
    "OK",
    "PAGE",
    "SLO",
    "SLOEvaluator",
    "SpanRecord",
    "TimeSeriesRecorder",
    "WARN",
    "WallClock",
    "WindowSnapshot",
    "current_span",
    "disable",
    "enable",
    "flame_counts",
    "get_registry",
    "is_enabled",
    "json_line",
    "merge_windows",
    "metric_total",
    "recent_roots",
    "registry_snapshot",
    "reset",
    "reset_spans",
    "round_floats",
    "span",
    "to_jsonl",
    "to_prometheus",
    "to_table",
]
