"""KVSTORE1: an LSM-tree key-value store in the RocksDB mold.

Writes land in a memtable; full memtables flush to Sorted Sequence Table
(SST) files split into fixed-size blocks, each compressed independently;
levelled compaction merges SSTs and re-compresses. A point read decompresses
exactly one block, which is why the paper's KVSTORE1 tunes block size
against a read-latency SLO (Section IV-E, Fig. 13).
"""

from repro.services.kvstore.memtable import MemTable
from repro.services.kvstore.bloom import BloomFilter
from repro.services.kvstore.blockcache import BlockCache, BlockCacheStats
from repro.services.kvstore.sst import SSTable, SSTableStats
from repro.services.kvstore.storage import SimStorage, StorageBackend, StorageStats
from repro.services.kvstore.wal import WalReplayResult, WriteAheadLog
from repro.services.kvstore.manifest import Manifest, ManifestState
from repro.services.kvstore.db import KVStore, KVStoreStats, RecoveryReport
from repro.services.kvstore.crashsim import (
    CRASH_SITES,
    CrashSweepResult,
    RecoveryInvariantError,
    run_crash_sweep,
)

__all__ = [
    "MemTable",
    "BloomFilter",
    "BlockCache",
    "BlockCacheStats",
    "SSTable",
    "SSTableStats",
    "SimStorage",
    "StorageBackend",
    "StorageStats",
    "WalReplayResult",
    "WriteAheadLog",
    "Manifest",
    "ManifestState",
    "KVStore",
    "KVStoreStats",
    "RecoveryReport",
    "CRASH_SITES",
    "CrashSweepResult",
    "RecoveryInvariantError",
    "run_crash_sweep",
]
