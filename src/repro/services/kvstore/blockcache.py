"""LRU cache of decompressed SST blocks.

RocksDB's block cache holds uncompressed blocks so repeated reads of hot
blocks skip decompression entirely -- the compute/memory trade the paper's
KVSTORE1 team balances against block size.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.obs.instrument import record_block_cache
from repro.obs.state import OBS_STATE

CacheKey = Tuple[int, int]  # (table id, block index)


@dataclass
class BlockCacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BlockCache:
    """Byte-capacity-bounded LRU over decompressed blocks."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[CacheKey, bytes]" = OrderedDict()
        self._used = 0
        self.stats = BlockCacheStats()

    def get(self, key: CacheKey) -> Optional[bytes]:
        block = self._entries.get(key)
        if block is None:
            self.stats.misses += 1
            if OBS_STATE.enabled:
                record_block_cache(hit=False)
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        if OBS_STATE.enabled:
            record_block_cache(hit=True)
        return block

    def put(self, key: CacheKey, block: bytes) -> None:
        if len(block) > self.capacity_bytes:
            return  # larger than the whole cache; never resident
        if key in self._entries:
            self._used -= len(self._entries.pop(key))
        self._entries[key] = block
        self._used += len(block)
        while self._used > self.capacity_bytes:
            __, evicted = self._entries.popitem(last=False)
            self._used -= len(evicted)
            self.stats.evictions += 1

    def invalidate(self, key: CacheKey) -> None:
        """Drop one entry (e.g. its backing block was rewritten)."""
        block = self._entries.pop(key, None)
        if block is not None:
            self._used -= len(block)

    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)
