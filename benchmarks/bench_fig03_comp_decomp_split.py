"""Fig. 3: Zstd compression/decompression split by category and fleet-wide.

Paper shape: decompression dominates most categories (reads outnumber
writes), with write-heavy categories like Data Warehouse tilted the other
way.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.fleet import SamplingProfiler, characterize
from repro.fleet.callstack import classify_stack


@pytest.fixture(scope="module")
def samples():
    return SamplingProfiler(samples_per_day=300_000, seed=31).run(days=30)


def test_fig03_split(benchmark, samples, figure_output):
    result = characterize(samples)
    rows = []
    for category, (comp, decomp) in sorted(result.category_split.items()):
        if category == "Infra":
            continue
        rows.append([category, f"{comp * 100:.1f}%", f"{decomp * 100:.1f}%"])
    # fleet-wide split
    comp_total = decomp_total = 0
    for sample in samples:
        classified = classify_stack(sample.frames)
        if classified and classified[0] == "zstd":
            if classified[1] == "compress":
                comp_total += sample.weight
            else:
                decomp_total += sample.weight
    fleet_comp = comp_total / (comp_total + decomp_total)
    rows.append(["(fleet)", f"{fleet_comp * 100:.1f}%", f"{(1 - fleet_comp) * 100:.1f}%"])
    figure_output(
        "fig03_comp_decomp_split",
        format_table(
            ["category", "compress", "decompress"],
            rows,
            title="Fig. 3: Zstd compression/decompression cycle split",
        ),
    )
    decompress_heavy = sum(
        1
        for c, (comp, decomp) in result.category_split.items()
        if decomp > comp and c != "Infra"
    )
    assert decompress_heavy >= 3

    benchmark(lambda: characterize(samples))
