"""Bloom filter and block cache tests for the LSM store."""

import pytest

from repro.corpus import generate_kv_records
from repro.services import KVStore
from repro.services.kvstore import BlockCache, BloomFilter, SSTable


class TestBloomFilter:
    def test_added_keys_are_found(self):
        bloom = BloomFilter(capacity=100)
        keys = [b"key-%d" % i for i in range(100)]
        for key in keys:
            bloom.add(key)
        assert all(bloom.might_contain(key) for key in keys)

    def test_absent_keys_mostly_rejected(self):
        bloom = BloomFilter(capacity=500, bits_per_key=10)
        for i in range(500):
            bloom.add(b"present-%d" % i)
        false_positives = sum(
            bloom.might_contain(b"absent-%d" % i) for i in range(2000)
        )
        # 10 bits/key -> ~1% theoretical false-positive rate; allow 5%.
        assert false_positives < 100

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(capacity=0)
        with pytest.raises(ValueError):
            BloomFilter(capacity=10, bits_per_key=0)

    def test_size_scales_with_capacity(self):
        small = BloomFilter(capacity=100, bits_per_key=10)
        large = BloomFilter(capacity=10000, bits_per_key=10)
        assert large.size_bytes > small.size_bytes


class TestBlockCache:
    def test_get_miss_then_hit(self):
        cache = BlockCache(1024)
        assert cache.get((1, 0)) is None
        cache.put((1, 0), b"block data")
        assert cache.get((1, 0)) == b"block data"
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction_order(self):
        cache = BlockCache(100)
        cache.put((1, 0), b"a" * 40)
        cache.put((1, 1), b"b" * 40)
        cache.get((1, 0))  # touch: (1,1) is now LRU
        cache.put((1, 2), b"c" * 40)  # evicts (1,1)
        assert cache.get((1, 1)) is None
        assert cache.get((1, 0)) is not None

    def test_oversized_block_not_cached(self):
        cache = BlockCache(64)
        cache.put((1, 0), b"x" * 100)
        assert len(cache) == 0

    def test_capacity_respected(self):
        cache = BlockCache(200)
        for i in range(10):
            cache.put((1, i), b"y" * 50)
        assert cache.used_bytes <= 200
        assert cache.stats.evictions > 0

    def test_replace_same_key(self):
        cache = BlockCache(1024)
        cache.put((1, 0), b"old")
        cache.put((1, 0), b"newer data")
        assert cache.get((1, 0)) == b"newer data"
        assert cache.used_bytes == len(b"newer data")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BlockCache(0)


class TestSSTableWithExtensions:
    @pytest.fixture(scope="class")
    def entries(self):
        return generate_kv_records(600, seed=31)

    def test_bloom_skips_absent_keys_without_decode(self, entries):
        table = SSTable.build(entries, level=1, block_size=4096)
        before = table.stats.blocks_read
        found, __, decode_seconds = table.get(b"svc7/shard999/zzz/999")
        assert not found
        assert decode_seconds == 0.0
        assert table.stats.blocks_read == before
        assert table.stats.bloom_skips >= 1

    def test_bloom_disabled(self, entries):
        table = SSTable.build(entries, level=1, bloom_bits_per_key=0)
        table.get(b"absent-key-xyz")
        assert table.stats.bloom_skips == 0

    def test_block_cache_serves_repeat_reads(self, entries):
        cache = BlockCache(1 << 20)
        table = SSTable.build(entries, level=1, block_size=4096, block_cache=cache)
        key = entries[300][0]
        __, __, first_decode = table.get(key)
        __, __, second_decode = table.get(key)
        assert first_decode > 0.0
        assert second_decode == 0.0
        assert table.stats.cache_hits == 1

    def test_reads_correct_through_cache(self, entries):
        cache = BlockCache(1 << 18)
        table = SSTable.build(entries, level=1, block_size=2048, block_cache=cache)
        for key, value in entries[::13]:
            found, got, __ = table.get(key)
            assert found and got == value
        # second pass exercises both cached and evicted paths
        for key, value in entries[::13]:
            found, got, __ = table.get(key)
            assert found and got == value


class TestKVStoreWithExtensions:
    def test_store_with_cache_and_bloom(self):
        store = KVStore(
            block_cache_bytes=1 << 20,
            memtable_bytes=1 << 14,
            block_size=4096,
        )
        records = generate_kv_records(800, seed=32)
        for key, value in records:
            store.put(key, value)
        store.flush()
        # repeated reads hit the cache
        for __ in range(2):
            for key, value in records[::19]:
                assert store.get(key) == value
        assert store.block_cache_hits > 0
        # absent keys are answered by blooms
        assert store.get(b"zz/absent") is None
        assert store.bloom_skips > 0

    def test_cache_reduces_mean_read_latency(self):
        def run(cache_bytes):
            store = KVStore(
                block_cache_bytes=cache_bytes,
                memtable_bytes=1 << 14,
                block_size=8192,
            )
            records = generate_kv_records(600, seed=33)
            for key, value in records:
                store.put(key, value)
            store.flush()
            for __ in range(3):
                for key, __v in records[::11]:
                    store.get(key)
            return store.stats.mean_read_decode_seconds

        with_cache = run(1 << 22)
        without_cache = run(None)
        assert with_cache < without_cache

    def test_bloom_disabled_store(self):
        store = KVStore(bloom_bits_per_key=0, memtable_bytes=1 << 13)
        records = generate_kv_records(200, seed=34)
        for key, value in records:
            store.put(key, value)
        store.flush()
        assert store.get(b"definitely/absent") is None
        assert store.bloom_skips == 0
