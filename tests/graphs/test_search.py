"""GraphSearch / train_graph: deterministic, seeded, and well-behaved."""

import random

import pytest

from repro.graphs.model import spec_fingerprint, validate_spec
from repro.graphs.samples import category_sample, category_samples
from repro.graphs.search import (
    CANDIDATE_PREFIX,
    GraphSearch,
    SEED_SPECS,
    candidate_name,
    train_graph,
)


def _train(seed: int):
    samples = category_samples("record", count=1, size=16384, seed=3)
    return train_graph(
        "record", samples, generations=2, population=3, seed=seed
    )


def test_train_is_deterministic_per_seed():
    first = _train(seed=0)
    second = _train(seed=0)
    assert first.name == second.name
    assert spec_fingerprint(first.spec) == spec_fingerprint(second.spec)
    assert first.ranked_graph.metrics.ratio == second.ranked_graph.metrics.ratio


def test_train_result_shape():
    result = _train(seed=0)
    validate_spec(result.spec)
    assert result.name.startswith(CANDIDATE_PREFIX + "-")
    assert result.category == "record"
    assert result.ranked_flat.config.algorithm in ("zstd", "zlib", "lz4")
    assert result.describe()


def test_candidate_names_are_content_addressed():
    spec = SEED_SPECS["record"][0]
    assert candidate_name(spec) == candidate_name(dict(spec))
    other = SEED_SPECS["record"][1]
    assert candidate_name(spec) != candidate_name(other)
    assert candidate_name(spec).startswith(CANDIDATE_PREFIX + "-")


def test_mutations_always_yield_valid_specs():
    """Whatever the mutator emits must pass the same validation gate."""
    strategy = GraphSearch(SEED_SPECS["record"], seed=0)
    rng = random.Random(7)
    for parent in SEED_SPECS["record"] + SEED_SPECS["float"] + SEED_SPECS["text"]:
        for _ in range(50):
            mutated = strategy._mutate(rng, parent)
            if mutated is not None:
                validate_spec(mutated)


def test_unknown_category_rejected():
    with pytest.raises(ValueError, match="unknown category"):
        train_graph("video", [b"x"])


def test_category_sample_is_deterministic():
    assert category_sample("record", size=4096, seed=5) == category_sample(
        "record", size=4096, seed=5
    )
    assert category_sample("record", size=4096, seed=5) != category_sample(
        "record", size=4096, seed=6
    )


@pytest.mark.parametrize("category", ["record", "text", "float"])
def test_category_samples_cover_requested_count(category):
    samples = category_samples(category, count=2, size=8192, seed=1)
    assert len(samples) == 2
    assert all(isinstance(s, bytes) and s for s in samples)
