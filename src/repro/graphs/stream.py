"""The self-describing multi-frame stream container for graph codecs.

Layout (all integers are LEB128 uvarints from :mod:`repro.codecs.varint`):

.. code-block:: text

    magic "RGZ1"            4 bytes
    header_raw_len          uvarint   (canonical spec size, bomb-capped)
    header_len              uvarint   (deflated size as stored)
    header                  DEFLATE(canonical graph spec)
    frame_count             uvarint
    frame*                  one per terminal node, DFS pre-order:
        raw_len             uvarint   (pre-compression stream size)
        payload_len         uvarint
        crc32               4 bytes LE, over the payload
        payload             leaf codec output (or raw bytes for ``store``)

The spec header is deflated because it is pure JSON boilerplate —
leaving it raw would tax every payload ~2-4% regardless of content.

The header makes every stream *self-describing*: decompression needs no
out-of-band graph registry, only the codec table for the leaf names the
header mentions. The per-frame CRC detects payload corruption before the
leaf codec runs; header corruption surfaces as a
:class:`~repro.codecs.base.CorruptDataError` via spec validation.
"""

from __future__ import annotations

import zlib
from typing import List, Tuple

from repro.codecs.base import CorruptDataError
from repro.codecs.varint import read_uvarint, write_uvarint
from repro.graphs.model import (
    GraphSpecError,
    Spec,
    canonical_bytes,
    parse_spec,
)

MAGIC = b"RGZ1"

#: cap on the header a hostile stream may make us parse
MAX_HEADER_BYTES = 64 * 1024


def encode_stream(spec: Spec, frames: List[Tuple[int, bytes]]) -> bytes:
    """Assemble the container from a spec and ``(raw_len, payload)`` frames."""
    out = bytearray(MAGIC)
    header = canonical_bytes(spec)
    deflated = zlib.compress(header, 9)
    write_uvarint(out, len(header))
    write_uvarint(out, len(deflated))
    out += deflated
    write_uvarint(out, len(frames))
    for raw_len, payload in frames:
        write_uvarint(out, raw_len)
        write_uvarint(out, len(payload))
        out += (zlib.crc32(payload) & 0xFFFFFFFF).to_bytes(4, "little")
        out += payload
    return bytes(out)


def decode_stream(data: bytes) -> Tuple[Spec, List[Tuple[int, bytes]]]:
    """Parse one container back into ``(spec, [(raw_len, payload), ...])``.

    Every structural violation — bad magic, oversized or invalid header,
    frame counts or lengths that overrun the buffer, checksum mismatch,
    trailing bytes — raises :class:`CorruptDataError`.
    """
    spec, frames, pos = decode_stream_at(data, 0)
    if pos != len(data):
        raise CorruptDataError(
            f"graph stream has {len(data) - pos} trailing bytes"
        )
    return spec, frames


def decode_stream_at(
    data: bytes, start: int
) -> Tuple[Spec, List[Tuple[int, bytes]], int]:
    """Parse the container at ``start``; returns ``(spec, frames, end)``.

    The repo-wide convention is that every codec's decoder accepts
    concatenated frames (that is what makes chunked parallel output a
    standard stream) — this is the incremental parser the graph codec
    loops to honor it.
    """
    if data[start : start + 4] != MAGIC:
        raise CorruptDataError(
            f"bad graph stream magic {data[start:start + 4]!r}, "
            f"expected {MAGIC!r}"
        )
    raw_len, pos = read_uvarint(data, start + 4)
    if raw_len > MAX_HEADER_BYTES:
        raise CorruptDataError(
            f"graph header claims {raw_len} bytes, cap is {MAX_HEADER_BYTES}"
        )
    header_len, pos = read_uvarint(data, pos)
    if pos + header_len > len(data):
        raise CorruptDataError("graph header overruns the stream")
    # decompress with an explicit output cap: raw_len is attacker data,
    # so the inflater must never produce more than the checked claim
    inflater = zlib.decompressobj()
    try:
        header = inflater.decompress(data[pos : pos + header_len], raw_len + 1)
    except zlib.error as exc:
        raise CorruptDataError(f"graph header fails to inflate: {exc}") from exc
    if len(header) != raw_len or not inflater.eof or inflater.unused_data:
        raise CorruptDataError(
            f"graph header inflates to {len(header)} bytes, claimed {raw_len}"
        )
    try:
        spec = parse_spec(header)
    except GraphSpecError as exc:
        raise CorruptDataError(f"corrupt graph header: {exc}") from exc
    pos += header_len
    frame_count, pos = read_uvarint(data, pos)
    if frame_count > len(data):  # each frame takes >= 6 bytes
        raise CorruptDataError(
            f"graph stream claims {frame_count} frames in {len(data)} bytes"
        )
    frames: List[Tuple[int, bytes]] = []
    for index in range(frame_count):
        raw_len, pos = read_uvarint(data, pos)
        payload_len, pos = read_uvarint(data, pos)
        if pos + 4 + payload_len > len(data):
            raise CorruptDataError(
                f"graph frame {index} overruns the stream "
                f"({payload_len} payload bytes at offset {pos})"
            )
        stored_crc = int.from_bytes(data[pos : pos + 4], "little")
        pos += 4
        payload = data[pos : pos + payload_len]
        pos += payload_len
        actual_crc = zlib.crc32(payload) & 0xFFFFFFFF
        if actual_crc != stored_crc:
            raise CorruptDataError(
                f"graph frame {index} checksum mismatch: "
                f"stored {stored_crc:#010x}, computed {actual_crc:#010x}"
            )
        frames.append((raw_len, payload))
    return spec, frames, pos
