"""Parallel engine: chunk-size vs ratio trade-off and pool equivalence.

The paper's small-block analysis (Section IV-E) says per-call setup makes
small blocks disproportionately expensive and cuts ratio by shrinking the
match window; chunking re-introduces exactly that trade-off at the chunk
boundary. This figure sweeps chunk size on a fixed corpus: ratio falls as
chunks shrink while available parallelism (chunk count) rises. The
``--jobs N`` output is asserted byte-identical to serial before anything
is reported.
"""

from __future__ import annotations

import trajectory

from repro.analysis import format_table
from repro.codecs import get_codec
from repro.corpus import silesia_like_corpus
from repro.parallel import compress_chunked

_CHUNK_SIZES = [4 << 10, 16 << 10, 64 << 10, 128 << 10]
_CODECS = ["zstd", "lz4", "gzip"]


def test_parallel_chunk_tradeoff(benchmark, figure_output):
    data = b"".join(silesia_like_corpus(1 << 14, seed=2023).values())
    rows = []
    for codec_name in _CODECS:
        codec = get_codec(codec_name)
        serial = codec.compress(data, 1)
        rows.append([codec_name, "whole", 1, f"{serial.ratio:.3f}"])
        for chunk_size in _CHUNK_SIZES:
            chunked = compress_chunked(codec, data, 1, chunk_size=chunk_size, jobs=1)
            pooled = compress_chunked(codec, data, 1, chunk_size=chunk_size, jobs=2)
            assert chunked.data == pooled.data, (codec_name, chunk_size)
            assert codec.decompress(chunked.data).data == data
            if codec_name == "zstd" and chunk_size in (16 << 10, 64 << 10):
                trajectory.record(
                    f"parallel.zstd1.ratio_{chunk_size >> 10}k",
                    chunked.ratio,
                    "x",
                )
            rows.append(
                [
                    codec_name,
                    f"{chunk_size >> 10}KiB",
                    chunked.chunk_count,
                    f"{chunked.ratio:.3f}",
                ]
            )
    figure_output(
        "parallel_chunk_tradeoff",
        format_table(
            ["codec", "chunk", "frames", "ratio"],
            rows,
            title="Chunked engine: ratio vs chunk size (level 1, Silesia-like mix)",
        ),
    )

    benchmark(
        lambda: compress_chunked("lz4", data, 1, chunk_size=16 << 10, jobs=1)
    )
