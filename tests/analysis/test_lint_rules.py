"""repro.lint: per-rule fixtures, suppressions, the ratchet, and the gate.

Each rule gets a pair of fixtures -- one that MUST trip and one that
must NOT -- run through :func:`lint_source` so the tests exercise the
same parse/dispatch/suppression path as ``repro lint``. The meta-test at
the bottom runs the real rule set over the real tree and pins the
shipped contract: zero new errors against the committed (empty)
baseline.
"""

import json
import os
import textwrap

import pytest

from repro.cli import main
from repro.lint import (
    Baseline,
    fingerprint,
    get_rules,
    lint_paths,
    lint_source,
    load_baseline,
    save_baseline,
    split_by_baseline,
    stale_entries,
)
from repro.lint.engine import F001, discover_files
from repro.lint.suppress import S001, S002, parse_suppressions

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def findings(source, path="pkg/fixture.py", rules=None):
    """Lint a dedented fixture; return its findings list."""
    report = lint_source(textwrap.dedent(source), path=path, rules=rules)
    return report.findings


def rule_ids(source, path="pkg/fixture.py", rules=None):
    return sorted({f.rule for f in findings(source, path, rules)})


class TestD001WallClock:
    def test_time_time_trips(self):
        assert "D001" in rule_ids("import time\nstart = time.time()\n")

    def test_perf_counter_trips(self):
        assert "D001" in rule_ids("import time\nstart = time.perf_counter()\n")

    def test_from_import_alias_trips(self):
        src = "from time import monotonic as now\nstamp = now()\n"
        assert "D001" in rule_ids(src)

    def test_injected_clock_is_clean(self):
        src = """
        def step(clock):
            return clock.now() + 1
        """
        assert "D001" not in rule_ids(src)

    def test_clock_module_is_exempt(self):
        src = "import time\nreturn_value = time.monotonic()\n"
        assert "D001" not in rule_ids(src, path="src/repro/resilience/clock.py")


class TestD002UnseededRandomness:
    def test_builtin_hash_trips(self):
        assert "D002" in rule_ids("token = hash('profile-a')\n")

    def test_module_level_random_trips(self):
        assert "D002" in rule_ids("import random\nx = random.random()\n")

    def test_unseeded_random_instance_trips(self):
        assert "D002" in rule_ids("import random\nrng = random.Random()\n")

    def test_seeded_random_instance_is_clean(self):
        assert "D002" not in rule_ids("import random\nrng = random.Random(7)\n")

    def test_unseeded_default_rng_trips(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert "D002" in rule_ids(src)

    def test_seeded_default_rng_is_clean(self):
        src = "import numpy as np\nrng = np.random.default_rng(1234)\n"
        assert "D002" not in rule_ids(src)

    def test_os_urandom_trips(self):
        assert "D002" in rule_ids("import os\nsalt = os.urandom(8)\n")

    def test_uuid4_trips(self):
        assert "D002" in rule_ids("import uuid\nrun_id = uuid.uuid4()\n")


class TestD003UnorderedIteration:
    def test_bare_listdir_loop_trips(self):
        src = """
        import os
        for name in os.listdir("corpus"):
            print(name)
        """
        assert "D003" in rule_ids(src)

    def test_sorted_listdir_is_clean(self):
        src = """
        import os
        for name in sorted(os.listdir("corpus")):
            print(name)
        """
        assert "D003" not in rule_ids(src)

    def test_bare_glob_trips(self):
        src = "import glob\npaths = [p for p in glob.glob('*.bin')]\n"
        assert "D003" in rule_ids(src)

    def test_set_iteration_trips(self):
        src = """
        def emit(items):
            for item in set(items):
                yield item
        """
        assert "D003" in rule_ids(src)

    def test_order_insensitive_reduction_is_clean(self):
        src = """
        import os
        count = len(os.listdir("corpus"))
        """
        assert "D003" not in rule_ids(src)


class TestD004UnsortedJson:
    def test_dumps_without_sort_keys_trips(self):
        assert "D004" in rule_ids("import json\nout = json.dumps({'b': 1})\n")

    def test_dumps_sort_keys_false_trips(self):
        src = "import json\nout = json.dumps({'b': 1}, sort_keys=False)\n"
        assert "D004" in rule_ids(src)

    def test_dumps_sort_keys_true_is_clean(self):
        src = "import json\nout = json.dumps({'b': 1}, sort_keys=True)\n"
        assert "D004" not in rule_ids(src)

    def test_dynamic_sort_keys_is_skipped(self):
        src = "import json\n\ndef emit(obj, flag):\n    return json.dumps(obj, sort_keys=flag)\n"
        assert "D004" not in rule_ids(src)


class TestE001DecodeBoundary:
    CODEC_PATH = "src/repro/codecs/fixture.py"

    def test_swallowed_low_level_error_trips(self):
        src = """
        def decode_block(buf):
            try:
                return buf[4], buf[8]
            except IndexError:
                return None, None
        """
        assert "E001" in rule_ids(src, path=self.CODEC_PATH)

    def test_reraise_as_corrupt_is_clean(self):
        src = """
        class CorruptDataError(Exception):
            pass

        def decode_block(buf):
            try:
                return buf[4], buf[8]
            except IndexError as exc:
                raise CorruptDataError("truncated block") from exc
        """
        assert "E001" not in rule_ids(src, path=self.CODEC_PATH)

    def test_bare_reraise_trips(self):
        src = """
        def decompress_stream(buf):
            try:
                return int(buf[:4])
            except ValueError:
                raise
        """
        assert "E001" in rule_ids(src, path=self.CODEC_PATH)

    def test_encoder_side_function_is_exempt(self):
        src = """
        def _choose_stream_mode(sample):
            try:
                return int(sample)
            except ValueError:
                return 0
        """
        assert "E001" not in rule_ids(src, path=self.CODEC_PATH)

    def test_non_codec_path_is_exempt(self):
        src = """
        def decode_row(buf):
            try:
                return buf[4]
            except IndexError:
                return None
        """
        assert "E001" not in rule_ids(src, path="src/repro/corpus/fixture.py")

    def test_graphs_package_is_in_scope(self):
        src = """
        def decode_stream(buf):
            try:
                return buf[4], buf[8]
            except IndexError:
                return None, None
        """
        assert "E001" in rule_ids(src, path="src/repro/graphs/fixture.py")

    def test_graphs_reraise_as_corrupt_is_clean(self):
        src = """
        class CorruptDataError(Exception):
            pass

        def decode_stream(buf):
            try:
                return buf[4], buf[8]
            except IndexError as exc:
                raise CorruptDataError("truncated frame") from exc
        """
        assert "E001" not in rule_ids(src, path="src/repro/graphs/fixture.py")


class TestO001InstrumentationGuard:
    def test_unguarded_hook_trips(self):
        src = """
        from repro.obs.instrument import record_codec_call

        def compress(data):
            record_codec_call("zstd", "compress", len(data))
            return data
        """
        assert "O001" in rule_ids(src)

    def test_enabled_guard_is_clean(self):
        src = """
        from repro.obs.instrument import record_codec_call
        from repro.obs.state import OBS_STATE

        def compress(data):
            if OBS_STATE.enabled:
                record_codec_call("zstd", "compress", len(data))
            return data
        """
        assert "O001" not in rule_ids(src)

    def test_recorder_guard_is_clean(self):
        src = """
        from repro.serving.slos import record_window_verdict

        def close_window(self, verdict):
            if self.recorder is not None:
                record_window_verdict(self.recorder, verdict)
        """
        assert "O001" not in rule_ids(src)

    def test_hoisted_flag_guard_is_clean(self):
        src = """
        from repro.obs.instrument import record_codec_call
        from repro.obs.state import OBS_STATE

        def run(chunks):
            obs_on = OBS_STATE.enabled
            for chunk in chunks:
                if obs_on:
                    record_codec_call("zstd", "compress", len(chunk))
        """
        assert "O001" not in rule_ids(src)

    def test_test_paths_are_exempt(self):
        src = """
        from repro.obs.instrument import record_codec_call

        def test_counts():
            record_codec_call("zstd", "compress", 10)
        """
        assert "O001" not in rule_ids(src, path="tests/obs/test_fixture.py")


class TestSuppressions:
    def test_inline_suppression_cancels_finding(self):
        src = (
            "import time\n"
            "start = time.time()  # repro: lint-ok[D001] -- wall telemetry only\n"
        )
        report = lint_source(src, path="pkg/fixture.py")
        assert "D001" not in {f.rule for f in report.findings}
        assert "D001" in {f.rule for f in report.suppressed}

    def test_standalone_comment_covers_next_code_line(self):
        src = (
            "import time\n"
            "# repro: lint-ok[D001] -- wall telemetry only; the justification\n"
            "# may continue over several comment lines\n"
            "start = time.time()\n"
        )
        report = lint_source(src, path="pkg/fixture.py")
        assert "D001" not in {f.rule for f in report.findings}

    def test_missing_justification_is_s001_and_does_not_suppress(self):
        src = "import time\nstart = time.time()  # repro: lint-ok[D001]\n"
        ids = {f.rule for f in lint_source(src, path="pkg/fixture.py").findings}
        assert S001 in ids
        assert "D001" in ids  # the malformed marker suppressed nothing

    def test_bad_rule_id_is_s001(self):
        src = "x = 1  # repro: lint-ok[d1] -- lower-case id\n"
        __, marker_findings = parse_suppressions(src, "pkg/fixture.py")
        assert [f.rule for f in marker_findings] == [S001]

    def test_stale_suppression_warns_on_full_run_only(self):
        src = "x = 1  # repro: lint-ok[D001] -- nothing here trips D001\n"
        full = lint_source(src, path="pkg/fixture.py")
        assert S002 in {f.rule for f in full.findings}
        filtered = lint_source(src, path="pkg/fixture.py", rules=get_rules(["D004"]))
        assert S002 not in {f.rule for f in filtered.findings}

    def test_stale_suppression_is_warning_not_error(self):
        src = "x = 1  # repro: lint-ok[D001] -- stale on purpose\n"
        report = lint_source(src, path="pkg/fixture.py")
        assert S002 not in {f.rule for f in report.errors()}
        assert S002 in {f.rule for f in report.warnings()}


class TestEngine:
    def test_unparseable_file_is_f001(self):
        report = lint_source("def broken(:\n", path="pkg/fixture.py")
        assert [f.rule for f in report.findings] == [F001]

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError):
            get_rules(["Z999"])

    def test_findings_sorted_by_location(self):
        src = (
            "import json\n"
            "import time\n"
            "a = time.time()\n"
            "b = json.dumps({})\n"
        )
        report = lint_source(src, path="pkg/fixture.py")
        keys = [f.sort_key() for f in report.findings]
        assert keys == sorted(keys)

    def test_discover_files_sorted_and_deduped(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "c.py").write_text("x = 1\n")
        (tmp_path / "skip.txt").write_text("not python\n")
        found = discover_files([str(tmp_path), str(tmp_path / "a.py")])
        assert [os.path.basename(p) for p in found] == ["a.py", "b.py", "c.py"]

    def test_two_runs_identical(self, tmp_path):
        (tmp_path / "mod.py").write_text("import time\nstart = time.time()\n")
        first = lint_paths([str(tmp_path)])
        second = lint_paths([str(tmp_path)])
        assert [f.to_dict() for f in first.findings] == [
            f.to_dict() for f in second.findings
        ]


class TestBaselineRatchet:
    def test_fingerprint_ignores_line_numbers(self):
        before = findings("import time\nstart = time.time()\n")
        after = findings("import time\n\n\n# padding above\nstart = time.time()\n")
        d001_before = [f for f in before if f.rule == "D001"]
        d001_after = [f for f in after if f.rule == "D001"]
        assert d001_before[0].fingerprint == d001_after[0].fingerprint
        assert d001_before[0].line != d001_after[0].line

    def test_duplicate_lines_get_distinct_fingerprints(self):
        src = "import time\na = time.time()\nb = 1\na = time.time()\n"
        d001 = [f for f in findings(src) if f.rule == "D001"]
        assert len(d001) == 2
        assert d001[0].fingerprint != d001[1].fingerprint

    def test_grandfathered_vs_new(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        old = findings("import time\nstart = time.time()\n")
        save_baseline(old, str(baseline_path))
        baseline = load_baseline(str(baseline_path))
        current = findings(
            "import time\nstart = time.time()\nimport json\nout = json.dumps({})\n"
        )
        new, grandfathered = split_by_baseline(current, baseline)
        assert {f.rule for f in grandfathered} == {"D001"}
        assert {f.rule for f in new} == {"D004"}

    def test_stale_entries_detected(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        save_baseline(findings("import time\nstart = time.time()\n"), str(baseline_path))
        baseline = load_baseline(str(baseline_path))
        assert stale_entries([], baseline) == baseline.entries

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "absent.json")).entries == []

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 99, "findings": []}, sort_keys=True))
        with pytest.raises(ValueError):
            load_baseline(str(bad))
        bad.write_text(json.dumps([1, 2, 3], sort_keys=True))
        with pytest.raises(ValueError):
            load_baseline(str(bad))

    def test_shipped_baseline_is_empty(self):
        baseline = load_baseline(os.path.join(REPO_ROOT, "lint_baseline.json"))
        assert baseline.entries == []

    def test_fingerprint_is_stable_across_processes(self):
        # blake2b of the payload, never builtin hash(): pin one value so a
        # hashing change (which would orphan every committed baseline) is
        # a deliberate schema bump, not an accident
        assert fingerprint("D001", "a.py", "t = time.time()", 0) == fingerprint(
            "D001", "a.py", "  t = time.time()  ", 0
        )


class TestLintCli:
    DIRTY = (
        "import random\n"
        "import time\n\n"
        "start = time.time()\n"
        "rng = random.Random(hash('cell'))\n"
    )

    def test_dirty_fixture_fails_gate(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(self.DIRTY)
        code = main(
            ["lint", str(target), "--fail-on", "new",
             "--baseline", str(tmp_path / "empty.json")]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "FAIL" in captured.err
        assert "D001" in captured.out and "D002" in captured.out

    def test_clean_fixture_passes_gate(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("import json\nout = json.dumps({}, sort_keys=True)\n")
        code = main(
            ["lint", str(target), "--baseline", str(tmp_path / "empty.json")]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_write_baseline_then_gate_passes(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(self.DIRTY)
        baseline = tmp_path / "baseline.json"
        assert main(
            ["lint", str(target), "--baseline", str(baseline), "--write-baseline"]
        ) == 1  # first run still fails: the findings were new when written
        capsys.readouterr()
        assert main(["lint", str(target), "--baseline", str(baseline)]) == 0
        assert main(
            ["lint", str(target), "--baseline", str(baseline), "--fail-on", "any"]
        ) == 1  # but --fail-on any ignores the grandfather list

    def test_jsonl_output_deterministic(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(self.DIRTY)
        args = ["lint", str(target), "--format", "jsonl",
                "--baseline", str(tmp_path / "empty.json")]
        main(args)
        first = capsys.readouterr().out
        main(args)
        second = capsys.readouterr().out
        assert first == second
        entries = [json.loads(line) for line in first.splitlines()]
        assert all(entry["new"] for entry in entries)
        assert entries == sorted(
            entries, key=lambda e: (e["path"], e["line"], e["col"], e["rule"])
        )

    def test_rule_filter(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(self.DIRTY)
        main(["lint", str(target), "--rule", "D002",
              "--baseline", str(tmp_path / "empty.json")])
        out = capsys.readouterr().out
        assert "D002" in out and "D001" not in out

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path), "--rule", "Z999"]) == 2

    def test_list_rules_catalog(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("D001", "D002", "D003", "D004", "E001", "O001"):
            assert rule_id in out


class TestShippedTreeIsClean:
    """The meta-test: the real rules over the real tree, empty baseline."""

    def test_src_and_tests_have_zero_new_errors(self):
        report = lint_paths(
            [os.path.join(REPO_ROOT, "src"), os.path.join(REPO_ROOT, "tests")]
        )
        baseline = load_baseline(os.path.join(REPO_ROOT, "lint_baseline.json"))
        new, __ = split_by_baseline(report.errors(), baseline)
        assert new == [], "\n".join(
            f"{f.location()} {f.rule} {f.message}" for f in new
        )

    def test_no_stale_suppressions_in_tree(self):
        report = lint_paths(
            [os.path.join(REPO_ROOT, "src"), os.path.join(REPO_ROOT, "tests")]
        )
        stale = [f for f in report.findings if f.rule == S002]
        assert stale == [], "\n".join(f.location() for f in stale)
