"""The durable KVStore: reopen round-trips, WAL cutoff, orphan GC."""

from repro.services.kvstore import KVStore, SimStorage


def _open(storage, **kwargs):
    kwargs.setdefault("memtable_bytes", 1 << 11)
    kwargs.setdefault("level0_table_limit", 2)
    return KVStore.open(storage, **kwargs)


class TestReopenRoundTrip:
    def test_unflushed_writes_survive_reopen(self):
        storage = SimStorage(seed=1)
        store = _open(storage)
        store.put(b"alpha", b"one")
        store.put(b"beta", b"two")
        store.delete(b"alpha")
        reopened = _open(storage)
        assert reopened.get(b"alpha") is None
        assert reopened.get(b"beta") == b"two"
        report = reopened.last_recovery
        assert report is not None
        assert report.wal_records_replayed == 3
        assert report.sst_files == 0

    def test_flushed_writes_survive_via_ssts(self):
        storage = SimStorage(seed=1)
        store = _open(storage)
        for i in range(40):
            store.put(f"key:{i:04d}".encode(), b"payload " * 8)
        store.flush()
        reopened = _open(storage)
        for i in range(40):
            assert reopened.get(f"key:{i:04d}".encode()) == b"payload " * 8
        report = reopened.last_recovery
        assert report.sst_files >= 1
        # the flush pruned the WAL: nothing left to replay
        assert report.wal_records_replayed == 0
        assert report.modeled_seconds > 0

    def test_mixed_sst_and_wal_recovery(self):
        storage = SimStorage(seed=1)
        store = _open(storage)
        for i in range(40):
            store.put(f"old:{i:04d}".encode(), b"flushed " * 8)
        store.flush()
        store.put(b"tail:1", b"wal only")
        store.put(b"old:0000", b"overwritten after flush")
        reopened = _open(storage)
        assert reopened.get(b"tail:1") == b"wal only"
        # WAL replay must apply ON TOP of the SSTs (newest wins)
        assert reopened.get(b"old:0000") == b"overwritten after flush"
        assert reopened.last_recovery.wal_records_replayed == 2

    def test_write_batch_is_one_wal_record(self):
        storage = SimStorage(seed=1)
        store = _open(storage)
        store.write_batch([(b"a", b"1"), (b"b", b"2"), (b"c", None)])
        assert store.stats.wal_appends == 1
        reopened = _open(storage)
        assert reopened.last_recovery.wal_records_replayed == 1
        assert reopened.last_recovery.wal_entries_replayed == 3
        assert reopened.get(b"b") == b"2"
        assert reopened.get(b"c") is None

    def test_reopen_of_reopen_is_stable(self):
        storage = SimStorage(seed=1)
        store = _open(storage)
        for i in range(60):
            store.put(f"k:{i:04d}".encode(), b"body " * 10)
        expected = {
            key: value for key, value in store.scan_range(b"", b"\xff")
        }
        for __ in range(3):
            store = _open(storage)
            got = {key: value for key, value in store.scan_range(b"", b"\xff")}
            assert got == expected


class TestWalCutoff:
    def test_cutoff_excludes_flushed_batches(self):
        storage = SimStorage(seed=1)
        store = _open(storage)
        for i in range(40):
            store.put(f"key:{i:04d}".encode(), b"payload " * 8)
        store.flush()
        assert store._state.wal_cutoff > 0
        store.put(b"after", b"flush")
        reopened = _open(storage)
        # only the post-flush batch replays; pre-flush seqs are covered
        # by the manifest's cutoff even if segments lingered
        assert reopened.last_recovery.wal_records_replayed == 1
        assert reopened.get(b"after") == b"flush"

    def test_seq_resumes_past_recovered_writes(self):
        storage = SimStorage(seed=1)
        store = _open(storage)
        store.put(b"a", b"1")
        store.put(b"b", b"2")
        reopened = _open(storage)
        reopened.put(b"c", b"3")
        final = _open(storage)
        assert final.get(b"a") == b"1"
        assert final.get(b"c") == b"3"
        assert final.last_recovery.wal_records_replayed == 3


class TestOrphanGc:
    def test_orphan_sst_removed_on_recovery(self):
        storage = SimStorage(seed=1)
        store = _open(storage)
        for i in range(40):
            store.put(f"key:{i:04d}".encode(), b"payload " * 8)
        store.flush()
        storage.write_file("sst-099999.sst", b"crashed flush leftover")
        reopened = _open(storage)
        assert reopened.last_recovery.orphans_removed >= 1
        assert not storage.exists("sst-099999.sst")
        assert reopened.get(b"key:0000") == b"payload " * 8


class TestNonDurableUnchanged:
    def test_memory_store_has_no_wal(self):
        store = KVStore(memtable_bytes=1 << 11)
        assert not store.durable
        assert store.wal is None
        store.put(b"a", b"1")
        assert store.stats.wal_appends == 0
        assert store.last_recovery is None
