"""The LSM database: memtable, levels, flush, compaction, durability.

Two modes share one engine:

- **Ephemeral** (default, ``storage=None``): the original in-memory LSM —
  writes land in the memtable, flush/compaction build in-memory SSTs.
- **Durable** (``storage=`` a :class:`~repro.services.kvstore.storage.
  StorageBackend`): every write is group-appended to the checksummed WAL
  and acked only after sync; flush and compaction install SST files
  atomically and commit level changes through the versioned manifest's
  pointer swap. ``KVStore.open(storage)`` (or the constructor) recovers:
  load the manifest, load its SSTs, garbage-collect crash orphans, replay
  the WAL tail into the memtable.

The recovery invariant the crash harness sweeps
(:mod:`repro.services.kvstore.crashsim`): every acked write survives, no
unacked write resurrects, and no partially-compacted level is ever
visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.codecs import Compressor, get_codec
from repro.codecs.base import StageCounters
from repro.obs.instrument import record_kvstore_recovery
from repro.obs.metrics import Histogram
from repro.obs.spans import span
from repro.obs.state import OBS_STATE
from repro.perfmodel import DEFAULT_MACHINE, MachineModel
from repro.services.kvstore.blockcache import BlockCache
from repro.services.kvstore.manifest import Manifest, ManifestState
from repro.services.kvstore.memtable import MemTable
from repro.services.kvstore.sst import SSTable
from repro.services.kvstore.storage import StorageBackend
from repro.services.kvstore.wal import WriteAheadLog

#: crash sites crossed by the durable write path (see also
#: :data:`repro.services.kvstore.wal.APPEND_SITE` and the manifest's
#: SWAP/CLEANUP sites)
FLUSH_SST_SITE = "kvstore.flush.sst"
FLUSH_CLEANUP_SITE = "kvstore.flush.cleanup"
COMPACT_SST_SITE = "kvstore.compact.sst"
COMPACT_CLEANUP_SITE = "kvstore.compact.cleanup"

#: modeled fixed cost of one recovery open (process restart, file listing)
_RECOVERY_BASE_SECONDS = 50e-6
#: modeled sequential re-read bandwidth for SST/WAL bytes (1.25 GB/s, the
#: same refetch bandwidth the chaos scorecard charges for re-reads)
_RECOVERY_READ_BYTES_PER_SECOND = 1.25e9


@dataclass
class RecoveryReport:
    """What one crash-recovery open found and rebuilt."""

    sst_files: int = 0
    sst_bytes: int = 0
    wal_records_scanned: int = 0
    wal_records_replayed: int = 0
    wal_entries_replayed: int = 0
    wal_bytes_replayed: int = 0
    torn_tail_truncations: int = 0
    orphans_removed: int = 0
    #: modeled wall seconds: base + sequential re-read + bloom-rebuild decode
    modeled_seconds: float = 0.0


@dataclass
class KVStoreStats:
    """Aggregate compression and read-path accounting for one store."""

    flushes: int = 0
    compactions: int = 0
    reads: int = 0
    blocks_decompressed: int = 0
    #: log-bucketed per-read decode latency — bounded memory regardless of
    #: read volume (zero-latency reads land in the zeros bucket so the
    #: mean still averages over *all* reads)
    read_decode_seconds: Histogram = field(
        default_factory=lambda: Histogram(
            "kvstore_read_decode_seconds", help="per-read block decode latency"
        )
    )
    last_read_decode_seconds: float = 0.0
    compress_counters: StageCounters = field(default_factory=StageCounters)
    decompress_counters: StageCounters = field(default_factory=StageCounters)
    raw_bytes_written: int = 0
    stored_bytes_written: int = 0
    wal_appends: int = 0
    wal_bytes_appended: int = 0

    @property
    def storage_ratio(self) -> float:
        """Overall compression ratio of everything flushed/compacted."""
        if not self.stored_bytes_written:
            return 1.0
        return self.raw_bytes_written / self.stored_bytes_written

    def observe_read(self, seconds: float) -> None:
        self.read_decode_seconds.observe(seconds)
        self.last_read_decode_seconds = seconds

    @property
    def mean_read_decode_seconds(self) -> float:
        return self.read_decode_seconds.mean()


class KVStore:
    """A levelled-compaction LSM store with compressed SST blocks.

    ``compression_level`` and ``block_size`` are the knobs KVSTORE1 tunes
    (Section IV-E): bigger blocks compress better but cost more per point
    read, since the whole block must be decompressed.

    Level sizing: level 0 compacts past ``level0_table_limit`` tables;
    every deeper level holds one merged run and compacts downward once
    its raw size exceeds ``memtable_bytes * level0_table_limit *
    level_size_multiplier**(level-1)`` — the standard geometric budget,
    so data settles at the first level big enough to hold it.
    """

    def __init__(
        self,
        codec: Optional[Compressor] = None,
        compression_level: int = 1,
        block_size: int = 16384,
        memtable_bytes: int = 1 << 18,
        level0_table_limit: int = 4,
        level_size_multiplier: int = 4,
        machine: MachineModel = DEFAULT_MACHINE,
        block_cache_bytes: Optional[int] = None,
        bloom_bits_per_key: int = 10,
        storage: Optional[StorageBackend] = None,
        wal_segment_bytes: int = 1 << 16,
    ) -> None:
        self.codec = codec if codec is not None else get_codec("zstd")
        self.compression_level = compression_level
        self.block_size = block_size
        self.memtable_bytes = memtable_bytes
        self.level0_table_limit = level0_table_limit
        self.level_size_multiplier = level_size_multiplier
        self.machine = machine
        self.block_cache = (
            BlockCache(block_cache_bytes) if block_cache_bytes else None
        )
        self.bloom_bits_per_key = bloom_bits_per_key
        self.memtable = MemTable(memtable_bytes)
        #: levels[0] is newest-first; deeper levels hold one merged SST each
        self.levels: List[List[SSTable]] = [[]]
        self.stats = KVStoreStats()
        self.storage = storage
        self.wal: Optional[WriteAheadLog] = None
        self.manifest: Optional[Manifest] = None
        self.last_recovery: Optional[RecoveryReport] = None
        self._state = ManifestState()
        self._next_seq = 1
        if storage is not None:
            self.wal = WriteAheadLog(storage, segment_bytes=wal_segment_bytes)
            self.manifest = Manifest(storage)
            if OBS_STATE.enabled:
                with span("kvstore.recover"):
                    self._recover()
            else:
                self._recover()

    @classmethod
    def open(cls, storage: StorageBackend, **kwargs) -> "KVStore":
        """Open (or recover) a durable store on ``storage``."""
        return cls(storage=storage, **kwargs)

    @property
    def durable(self) -> bool:
        return self.storage is not None

    # -- write path -----------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self._write([(bytes(key), bytes(value))])

    def delete(self, key: bytes) -> None:
        self._write([(bytes(key), None)])

    def write_batch(
        self, items: Iterable[Tuple[bytes, Optional[bytes]]]
    ) -> None:
        """Apply a group of puts/deletes with one WAL record + sync."""
        self._write(
            [
                (bytes(key), None if value is None else bytes(value))
                for key, value in items
            ]
        )

    def _write(self, items: List[Tuple[bytes, Optional[bytes]]]) -> None:
        if not items:
            return
        if self.wal is not None:
            seq = self._next_seq
            appended = self.wal.append(seq, items)
            # the sync inside append() is the ack; only now is the batch ours
            self._next_seq = seq + 1
            self.stats.wal_appends += 1
            self.stats.wal_bytes_appended += appended
        for key, value in items:
            self.memtable.put(key, value)
        if self.memtable.is_full():
            self.flush()

    def flush(self) -> None:
        """Write the memtable out as a level-0 SST (durably if backed)."""
        if not len(self.memtable):
            return
        if OBS_STATE.enabled:
            with span("kvstore.flush", entries=len(self.memtable)):
                self._flush()
        else:
            self._flush()

    def _flush(self) -> None:
        table = SSTable.build(
            self.memtable.sorted_entries(),
            codec=self.codec,
            level=self.compression_level,
            block_size=self.block_size,
            machine=self.machine,
            bloom_bits_per_key=self.bloom_bits_per_key,
            block_cache=self.block_cache,
        )
        if self.storage is not None:
            name = f"sst-{self._state.next_file_id:06d}.sst"
            self.storage.write_file(name, table.to_bytes())
            table.file_name = name
            self.storage.crash_point(FLUSH_SST_SITE)
            next_state = self._state.copy()
            next_state.next_file_id += 1
            next_state.wal_cutoff = self._next_seq - 1
            next_state.add(0, name, front=True)
            self._state = self.manifest.commit(next_state)
            self.storage.crash_point(FLUSH_CLEANUP_SITE)
            # every appended batch is now covered by wal_cutoff
            self.wal.prune()
        self._absorb_build_stats(table)
        self.levels[0].insert(0, table)
        self.memtable = MemTable(self.memtable_bytes)
        self.stats.flushes += 1
        self._maybe_compact()

    def _absorb_build_stats(self, table: SSTable) -> None:
        self.stats.compress_counters.merge(table.stats.compress_counters)
        self.stats.raw_bytes_written += table.stats.raw_bytes
        self.stats.stored_bytes_written += table.stats.stored_bytes

    # -- compaction -------------------------------------------------------------

    def level_budget_bytes(self, level: int) -> int:
        """Raw-byte budget for ``level`` >= 1 (geometric in the multiplier)."""
        return (
            self.memtable_bytes
            * self.level0_table_limit
            * self.level_size_multiplier ** (level - 1)
        )

    @staticmethod
    def _table_raw_bytes(table: SSTable) -> int:
        # built tables carry raw_bytes; recovered tables carry the
        # bloom-rebuild scan's decompressed output; stored is the floor
        return (
            table.stats.raw_bytes
            or table.stats.decompress_counters.bytes_out
            or table.stats.stored_bytes
        )

    def _level_over_budget(self, level: int) -> bool:
        tables = self.levels[level]
        if not tables:
            return False
        if level == 0:
            return len(tables) > self.level0_table_limit
        raw = sum(self._table_raw_bytes(table) for table in tables)
        return raw > self.level_budget_bytes(level)

    def _maybe_compact(self) -> None:
        level = 0
        while level < len(self.levels):
            if self._level_over_budget(level):
                if OBS_STATE.enabled:
                    with span("kvstore.compact", level=level):
                        self._compact_level(level)
                else:
                    self._compact_level(level)
            level += 1

    def _compact_level(self, level: int) -> None:
        """Merge every SST in ``level`` (plus the next level) downward."""
        sources = list(self.levels[level])
        if level + 1 < len(self.levels):
            sources.extend(self.levels[level + 1])
        else:
            self.levels.append([])
        merged = self._merge(sources, drop_tombstones=level + 2 >= len(self.levels))
        for table in sources:
            self.stats.decompress_counters.merge(table.stats.decompress_counters)
        new_tables: List[SSTable] = []
        if merged:
            table = SSTable.build(
                merged,
                codec=self.codec,
                level=self.compression_level,
                block_size=self.block_size,
                machine=self.machine,
                bloom_bits_per_key=self.bloom_bits_per_key,
                block_cache=self.block_cache,
            )
            self._absorb_build_stats(table)
            new_tables = [table]
        if self.storage is not None:
            next_state = self._state.copy()
            source_names = [tbl.file_name for tbl in sources]
            new_names: List[str] = []
            if new_tables:
                name = f"sst-{next_state.next_file_id:06d}.sst"
                next_state.next_file_id += 1
                self.storage.write_file(name, new_tables[0].to_bytes())
                new_tables[0].file_name = name
                new_names = [name]
                self.storage.crash_point(COMPACT_SST_SITE)
            while len(next_state.levels) <= level + 1:
                next_state.levels.append([])
            next_state.levels[level] = []
            next_state.levels[level + 1] = new_names
            self._state = self.manifest.commit(next_state)
            self.storage.crash_point(COMPACT_CLEANUP_SITE)
            for stale in source_names:
                if stale is not None:
                    self.storage.delete(stale)
        self.levels[level + 1] = new_tables
        self.levels[level] = []
        self.stats.compactions += 1

    @staticmethod
    def _merge(
        tables: List[SSTable], drop_tombstones: bool
    ) -> List[Tuple[bytes, Optional[bytes]]]:
        """Newest-wins merge of sorted runs, removing overlapping items."""
        winners: Dict[bytes, Optional[bytes]] = {}
        # tables are ordered newest first; first writer wins.
        for table in tables:
            for key, value in table.scan():
                if key not in winners:
                    winners[key] = value
        entries = sorted(winners.items())
        if drop_tombstones:
            entries = [(k, v) for k, v in entries if v is not None]
        return entries

    # -- recovery ---------------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild from storage: manifest -> SSTs -> GC orphans -> WAL tail."""
        report = RecoveryReport()
        state = self.manifest.load()
        self._state = state
        self.levels = [[] for __ in range(max(1, len(state.levels)))]
        decode_seconds = 0.0
        for level, names in enumerate(state.levels):
            for name in names:
                payload = self.storage.read(name)
                table = SSTable.from_bytes(
                    payload,
                    machine=self.machine,
                    block_cache=self.block_cache,
                    rebuild_bloom=self.bloom_bits_per_key > 0,
                    bloom_bits_per_key=self.bloom_bits_per_key,
                )
                table.file_name = name
                # the bloom rebuild scanned every block: its decode output
                # is the table's raw size, and its modeled decode time is
                # part of the recovery bill
                table.stats.raw_bytes = table.stats.decompress_counters.bytes_out
                table.stats.stored_bytes = len(payload)
                decode_seconds += self.machine.decompress_seconds(
                    table.codec_name, table.stats.decompress_counters
                )
                self.levels[level].append(table)
                report.sst_files += 1
                report.sst_bytes += len(payload)
        report.orphans_removed = len(self.manifest.collect_garbage(state))
        replay = self.wal.replay()
        report.wal_records_scanned = replay.records
        report.torn_tail_truncations = replay.torn_tails
        for seq, entries in replay.batches:
            if seq <= state.wal_cutoff:
                continue
            for key, value in entries:
                self.memtable.put(key, value)
            report.wal_records_replayed += 1
            report.wal_entries_replayed += len(entries)
        report.wal_bytes_replayed = replay.bytes_replayed
        self._next_seq = max(state.wal_cutoff, replay.max_seq) + 1
        report.modeled_seconds = (
            _RECOVERY_BASE_SECONDS
            + (report.sst_bytes + report.wal_bytes_replayed)
            / _RECOVERY_READ_BYTES_PER_SECOND
            + decode_seconds
        )
        self.last_recovery = report
        if OBS_STATE.enabled:
            record_kvstore_recovery(report.modeled_seconds)
        if self.memtable.is_full():
            self.flush()

    # -- read path ---------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        """Point read; records per-read block decode latency."""
        key = bytes(key)
        self.stats.reads += 1
        found, value = self.memtable.get(key)
        if found:
            self.stats.observe_read(0.0)
            return value
        for level_tables in self.levels:
            for table in level_tables:
                before = table.stats.blocks_read
                found, value, decode_seconds = table.get(key)
                if table.stats.blocks_read > before:
                    self.stats.blocks_decompressed += (
                        table.stats.blocks_read - before
                    )
                if found:
                    self.stats.observe_read(decode_seconds)
                    return value
        self.stats.observe_read(0.0)
        return None

    def scan_range(self, start: bytes, end: bytes):
        """Yield (key, value) with start <= key < end, newest value wins.

        Merges the memtable and every SST; tombstoned keys are omitted.
        """
        start, end = bytes(start), bytes(end)
        winners: Dict[bytes, Optional[bytes]] = {}
        for key, value in self.memtable.sorted_entries():
            if start <= key < end:
                winners[key] = value
        for level_tables in self.levels:
            for table in level_tables:
                if not table.block_count:
                    continue
                for key, value in table.scan_range(start, end):
                    if key not in winners:
                        winners[key] = value
        for key in sorted(winners):
            value = winners[key]
            if value is not None:
                yield key, value

    def total_decompress_counters(self) -> StageCounters:
        """All decompression work so far: retired tables plus live ones."""
        total = self.stats.decompress_counters.copy()
        for level_tables in self.levels:
            for table in level_tables:
                total.merge(table.stats.decompress_counters)
        return total

    @property
    def sst_count(self) -> int:
        return sum(len(tables) for tables in self.levels)

    @property
    def bloom_skips(self) -> int:
        """Point reads answered 'absent' by bloom filters, fleet-wide."""
        return sum(
            table.stats.bloom_skips
            for level_tables in self.levels
            for table in level_tables
        )

    @property
    def block_cache_hits(self) -> int:
        return sum(
            table.stats.cache_hits
            for level_tables in self.levels
            for table in level_tables
        )

    @property
    def quarantined_blocks(self) -> int:
        """Blocks removed from service after failing verified-decompress.

        The read path treats a quarantined block as "key absent in this
        table" and falls through to older levels, so LSM redundancy is the
        recovery mechanism for storage corruption.
        """
        return sum(
            table.quarantined_count
            for level_tables in self.levels
            for table in level_tables
        )
