"""Parallel chunked-compression engine and sweep fan-out.

Production deployments hide compression latency by splitting payloads and
compressing shards concurrently (pigz chunking, zstd frame splitting);
this package reproduces that architecture on top of the from-scratch
codecs: a chunked engine whose output is a standard multi-frame stream any
serial decoder accepts (:mod:`repro.parallel.engine`), pluggable
serial/pool executors (:mod:`repro.parallel.executors`), and a sweep
runner that fans independent measurement cells across the pool
(:mod:`repro.parallel.sweep`).
"""

from repro.parallel.chunker import (
    DEFAULT_CHUNK_SIZE,
    MIN_CHUNK_SIZE,
    chunk_count,
    plan_chunks,
)
from repro.parallel.engine import (
    ChunkReport,
    ChunkedCompressResult,
    compress_chunked,
    decompress_chunked,
)
from repro.parallel.executors import (
    ProcessPoolExecutor,
    SerialExecutor,
    make_executor,
    resolve_jobs,
)
from repro.parallel.sweep import ParallelSweepRunner, run_cells

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "MIN_CHUNK_SIZE",
    "chunk_count",
    "plan_chunks",
    "ChunkReport",
    "ChunkedCompressResult",
    "compress_chunked",
    "decompress_chunked",
    "ProcessPoolExecutor",
    "SerialExecutor",
    "make_executor",
    "resolve_jobs",
    "ParallelSweepRunner",
    "run_cells",
]
