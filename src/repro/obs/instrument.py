"""Hook functions called from instrumented hot paths.

Each hook translates one event (a codec call, a block decode, an RPC
message) into registry updates keyed the way the paper's fleet profiler
keys its aggregation: (algorithm, direction, level, stage). Callers are
responsible for the enabled check — the hot-path contract is::

    if OBS_STATE.enabled:
        record_codec_call(...)

so a disabled process pays exactly one attribute read and branch per call.
Every hook accepts an optional ``registry`` for sharded/offline use and
defaults to the process-global one.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry, get_registry

#: metric family names (importable so tests and exporters avoid typos)
CODEC_CALLS = "repro_codec_calls_total"
CODEC_BYTES = "repro_codec_bytes_total"
CODEC_STAGE_OPS = "repro_codec_stage_ops_total"
CODEC_SECONDS = "repro_codec_call_seconds"
CODEC_BLOCK_BYTES = "repro_codec_block_bytes"
BLOCK_DECODE_SECONDS = "repro_kvstore_block_decode_seconds"
BLOCK_CACHE = "repro_kvstore_block_cache_total"
CACHE_REQUESTS = "repro_cache_requests_total"
CACHE_BYTES = "repro_cache_bytes_total"
RPC_MESSAGES = "repro_rpc_messages_total"
RPC_BYTES = "repro_rpc_bytes_total"
RPC_SECONDS = "repro_rpc_message_seconds"
RPC_RETRIES = "repro_rpc_retries_total"
RPC_FAILED = "repro_rpc_failed_messages_total"
FLEET_SAMPLES = "repro_fleet_cycle_samples_total"
PARALLEL_CHUNKS = "repro_parallel_chunks_total"
PARALLEL_CHUNK_SECONDS = "repro_parallel_chunk_seconds"
FAULTS_INJECTED = "repro_faults_injected_total"
BREAKER_TRANSITIONS = "repro_resilience_breaker_transitions_total"
QUARANTINES = "repro_resilience_quarantines_total"
RECOVERY_SECONDS = "repro_resilience_recovery_seconds"
SERVING_REQUESTS = "repro_serving_requests_total"
SERVING_QUEUE_DEPTH = "repro_serving_queue_depth"
SERVING_WAIT_SECONDS = "repro_serving_wait_seconds"
SERVING_SERVICE_SECONDS = "repro_serving_service_seconds"
SERVING_DEGRADED = "repro_serving_degraded_total"
SERVING_SHED = "repro_serving_shed_total"
WAL_APPENDS = "repro_kvstore_wal_appends_total"
WAL_BYTES = "repro_kvstore_wal_bytes_total"
WAL_REPLAYED = "repro_kvstore_wal_replayed_records_total"
TORN_TAILS = "repro_kvstore_torn_tail_truncations_total"
KVSTORE_RECOVERY_SECONDS = "repro_kvstore_recovery_seconds"


def _level_label(level: Optional[int]) -> str:
    # decompression is level-oblivious ("one decompression path" — §II)
    return "na" if level is None else str(level)


def record_codec_call(
    algorithm: str,
    direction: str,
    level: Optional[int],
    counters,
    seconds: float,
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """One compress/decompress call: stage-split counters + duration.

    ``counters`` is a :class:`repro.codecs.base.StageCounters`; its
    per-stage operation counts are folded into the match-finding/entropy
    split of Fig. 7 (compression) or the sequence/entropy decode split
    (decompression).
    """
    reg = registry if registry is not None else get_registry()
    lvl = _level_label(level)
    reg.counter(CODEC_CALLS, help="codec API calls").inc(
        1, algorithm=algorithm, direction=direction, level=lvl
    )
    bytes_total = reg.counter(CODEC_BYTES, help="bytes through codec APIs")
    if counters.bytes_in:
        bytes_total.inc(
            counters.bytes_in,
            algorithm=algorithm, direction=direction, level=lvl, kind="input",
        )
    if counters.bytes_out:
        bytes_total.inc(
            counters.bytes_out,
            algorithm=algorithm, direction=direction, level=lvl, kind="output",
        )
    if direction == "compress":
        stages = {
            "match_finding": (
                counters.positions_scanned
                + counters.hash_probes
                + counters.match_bytes_compared
            ),
            "entropy": counters.entropy_symbols + counters.table_builds,
            "setup": counters.setup_entries,
        }
    else:
        stages = {
            "sequence_decode": (
                counters.sequences_decoded
                + counters.literal_bytes_copied
                + counters.match_bytes_copied
            ),
            "entropy": counters.entropy_symbols_decoded,
        }
    stage_ops = reg.counter(
        CODEC_STAGE_OPS, help="pipeline-stage operations (Fig. 7 split)"
    )
    for stage, ops in stages.items():
        if ops:
            stage_ops.inc(
                ops,
                algorithm=algorithm, direction=direction, level=lvl, stage=stage,
            )
    reg.histogram(
        CODEC_SECONDS, help="wall seconds per codec call"
    ).observe(seconds, algorithm=algorithm, direction=direction)
    reg.histogram(
        CODEC_BLOCK_BYTES, help="input bytes per codec call (Fig. 5 shape)"
    ).observe(float(counters.bytes_in), algorithm=algorithm, direction=direction)


def record_block_decode(
    algorithm: str, seconds: float, registry: Optional[MetricsRegistry] = None
) -> None:
    """One SST block decompressed on the read path (Fig. 13's latency)."""
    reg = registry if registry is not None else get_registry()
    reg.histogram(
        BLOCK_DECODE_SECONDS, help="per-block decode latency, read path"
    ).observe(seconds, algorithm=algorithm)


def record_block_cache(
    hit: bool, registry: Optional[MetricsRegistry] = None
) -> None:
    """One block-cache probe."""
    reg = registry if registry is not None else get_registry()
    reg.counter(BLOCK_CACHE, help="block cache probes").inc(
        1, result="hit" if hit else "miss"
    )


def record_cache_request(
    op: str,
    result: str,
    bytes_count: int = 0,
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """One cache-service operation (server set/get, client get)."""
    reg = registry if registry is not None else get_registry()
    reg.counter(CACHE_REQUESTS, help="cache service operations").inc(
        1, op=op, result=result
    )
    if bytes_count:
        reg.counter(CACHE_BYTES, help="cache service bytes moved").inc(
            bytes_count, op=op
        )


def record_rpc_message(
    algorithm: str,
    raw_bytes: int,
    wire_bytes: int,
    compress_seconds: float,
    transfer_seconds: float,
    decompress_seconds: float,
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """One RPC send: byte accounting plus per-stage latency histograms."""
    reg = registry if registry is not None else get_registry()
    reg.counter(RPC_MESSAGES, help="RPC messages sent").inc(
        1, algorithm=algorithm
    )
    rpc_bytes = reg.counter(RPC_BYTES, help="RPC payload bytes")
    rpc_bytes.inc(raw_bytes, algorithm=algorithm, kind="raw")
    rpc_bytes.inc(wire_bytes, algorithm=algorithm, kind="wire")
    seconds = reg.histogram(
        RPC_SECONDS, help="per-message seconds by pipeline stage"
    )
    seconds.observe(compress_seconds, algorithm=algorithm, stage="compress")
    seconds.observe(transfer_seconds, algorithm=algorithm, stage="transfer")
    seconds.observe(decompress_seconds, algorithm=algorithm, stage="decompress")


def record_rpc_retry(
    reason: str, registry: Optional[MetricsRegistry] = None
) -> None:
    """One RPC attempt retried (reason: drop, timeout, corrupt)."""
    reg = registry if registry is not None else get_registry()
    reg.counter(RPC_RETRIES, help="RPC attempts retried").inc(1, reason=reason)


def record_rpc_failure(
    reason: str, registry: Optional[MetricsRegistry] = None
) -> None:
    """One RPC message abandoned after exhausting its retry budget."""
    reg = registry if registry is not None else get_registry()
    reg.counter(RPC_FAILED, help="RPC messages failed after retries").inc(
        1, reason=reason
    )


def record_fault_injected(
    site: str, kind: str, registry: Optional[MetricsRegistry] = None
) -> None:
    """One fault fired by the injection layer at ``site``."""
    reg = registry if registry is not None else get_registry()
    reg.counter(FAULTS_INJECTED, help="injected faults fired").inc(
        1, site=site, kind=kind
    )


def record_breaker_transition(
    breaker: str, to_state: str, registry: Optional[MetricsRegistry] = None
) -> None:
    """One circuit-breaker state transition."""
    reg = registry if registry is not None else get_registry()
    reg.counter(
        BREAKER_TRANSITIONS, help="circuit breaker state transitions"
    ).inc(1, breaker=breaker, to_state=to_state)


def record_quarantine(
    source: str, registry: Optional[MetricsRegistry] = None
) -> None:
    """One data unit quarantined after failing verified-decompress."""
    reg = registry if registry is not None else get_registry()
    reg.counter(QUARANTINES, help="data units quarantined").inc(1, source=source)


def record_recovery(
    source: str, seconds: float, registry: Optional[MetricsRegistry] = None
) -> None:
    """One successful recovery and its modeled latency."""
    reg = registry if registry is not None else get_registry()
    reg.histogram(
        RECOVERY_SECONDS, help="modeled seconds to recover from a fault"
    ).observe(seconds, source=source)


def record_parallel_chunk(
    algorithm: str,
    direction: str,
    seconds: float,
    bytes_in: int,
    executor: str,
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """One chunk processed by the parallel engine (worker or in-process).

    Chunk-level telemetry is recorded by the *parent* after the pool
    returns -- worker processes write into forked registry copies that die
    with them, so the engine ships (duration, sizes) back alongside each
    frame and stitches them here.
    """
    reg = registry if registry is not None else get_registry()
    reg.counter(PARALLEL_CHUNKS, help="chunks through the parallel engine").inc(
        1, algorithm=algorithm, direction=direction, executor=executor
    )
    reg.histogram(
        PARALLEL_CHUNK_SECONDS, help="wall seconds per parallel-engine chunk"
    ).observe(seconds, algorithm=algorithm, direction=direction)
    reg.histogram(
        CODEC_BLOCK_BYTES, help="input bytes per codec call (Fig. 5 shape)"
    ).observe(float(bytes_in), algorithm=algorithm, direction=direction)


def record_fleet_sample(
    service: str,
    algorithm: Optional[str],
    direction: Optional[str],
    level: Optional[int],
    stage: Optional[str],
    weight: int,
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """One aggregated profiler leaf: ``weight`` cycle samples attributed to
    (service, algorithm, direction, level, stage) — the Section III-A key."""
    reg = registry if registry is not None else get_registry()
    reg.counter(
        FLEET_SAMPLES, help="fleet cycle samples by profiler leaf"
    ).inc(
        weight,
        service=service,
        algorithm=algorithm or "none",
        direction=direction or "none",
        level=_level_label(level),
        stage=stage or "none",
    )


def record_wal_append(
    records: int, bytes_count: int, registry: Optional[MetricsRegistry] = None
) -> None:
    """One WAL group append: record count and framed bytes synced."""
    reg = registry if registry is not None else get_registry()
    reg.counter(WAL_APPENDS, help="WAL group appends").inc(1)
    reg.counter(WAL_BYTES, help="WAL bytes by direction").inc(
        bytes_count, direction="append"
    )
    reg.counter(
        WAL_REPLAYED, help="WAL records written/replayed"
    ).inc(records, direction="append")


def record_wal_replay(
    records: int, bytes_count: int, registry: Optional[MetricsRegistry] = None
) -> None:
    """WAL records re-applied to the memtable during recovery."""
    reg = registry if registry is not None else get_registry()
    reg.counter(WAL_BYTES, help="WAL bytes by direction").inc(
        bytes_count, direction="replay"
    )
    reg.counter(
        WAL_REPLAYED, help="WAL records written/replayed"
    ).inc(records, direction="replay")


def record_torn_tail(
    segment: str, registry: Optional[MetricsRegistry] = None
) -> None:
    """One torn WAL tail truncated at the first bad checksum."""
    reg = registry if registry is not None else get_registry()
    reg.counter(
        TORN_TAILS, help="torn WAL tails truncated on replay"
    ).inc(1, segment=segment)


def record_kvstore_recovery(
    seconds: float, registry: Optional[MetricsRegistry] = None
) -> None:
    """One crash-recovery open and its modeled latency."""
    reg = registry if registry is not None else get_registry()
    reg.histogram(
        KVSTORE_RECOVERY_SECONDS, help="modeled seconds per kvstore recovery"
    ).observe(seconds)


def record_serving_verdict(
    tenant: str, verdict: str, registry: Optional[MetricsRegistry] = None
) -> None:
    """One gateway front-door ruling (admit/throttle/shed/expired)."""
    reg = registry if registry is not None else get_registry()
    reg.counter(
        SERVING_REQUESTS, help="serving requests by admission verdict"
    ).inc(1, tenant=tenant, verdict=verdict)
    if verdict in ("shed", "throttle"):
        reg.counter(SERVING_SHED, help="requests refused by the gateway").inc(
            1, tenant=tenant, reason=verdict
        )


def record_serving_queue_depth(
    depth: int, registry: Optional[MetricsRegistry] = None
) -> None:
    """Point-in-time gateway queue depth."""
    reg = registry if registry is not None else get_registry()
    reg.gauge(SERVING_QUEUE_DEPTH, help="queued serving requests").set(depth)


def record_serving_served(
    tenant: str,
    rung: str,
    wait_seconds: float,
    service_seconds: float,
    degraded: bool,
    raw_fallback: bool,
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """One request served: queue wait, modeled service, degradation."""
    reg = registry if registry is not None else get_registry()
    reg.counter(
        SERVING_REQUESTS, help="serving requests by admission verdict"
    ).inc(1, tenant=tenant, verdict="served")
    reg.histogram(
        SERVING_WAIT_SECONDS, help="queue wait before dispatch"
    ).observe(wait_seconds, tenant=tenant)
    reg.histogram(
        SERVING_SERVICE_SECONDS, help="modeled service seconds by rung"
    ).observe(service_seconds, rung=rung)
    if degraded:
        reg.counter(
            SERVING_DEGRADED, help="requests served at a degraded rung"
        ).inc(1, rung=rung)
    if raw_fallback:
        reg.counter(
            SERVING_REQUESTS, help="serving requests by admission verdict"
        ).inc(1, tenant=tenant, verdict="raw_fallback")
