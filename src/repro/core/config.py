"""Compression configuration tuples.

The paper defines a configuration x as "a tuple composed of a compression
algorithm, a compression level, and a block size, such as (Zstd, 3, 64KB)".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.codecs import available_codecs, get_codec


@dataclass(frozen=True, order=True)
class CompressionConfig:
    """One candidate compression option: (algorithm, level, block_size).

    ``block_size`` of ``None`` means "compress each sample whole" (no
    chunking), which is how stream/request use cases like ADS1 operate;
    storage use cases like KVSTORE1 sweep explicit block sizes.
    """

    algorithm: str
    level: int
    block_size: Optional[int] = None

    def __post_init__(self) -> None:
        # Registered codecs get level validation here; accelerator
        # pseudo-algorithms (CompSim) are resolved later by the engine.
        if self.algorithm in available_codecs():
            codec = get_codec(self.algorithm)
            if not codec.min_level <= self.level <= codec.max_level:
                raise ValueError(
                    f"{self.algorithm} level {self.level} outside "
                    f"{codec.min_level}..{codec.max_level}"
                )
        if self.block_size is not None and self.block_size <= 0:
            raise ValueError("block_size must be positive")

    def label(self) -> str:
        """Human-readable form, e.g. ``zstd-3@64KB``."""
        if self.block_size is None:
            return f"{self.algorithm}-{self.level}"
        if self.block_size % 1024 == 0:
            return f"{self.algorithm}-{self.level}@{self.block_size // 1024}KB"
        return f"{self.algorithm}-{self.level}@{self.block_size}B"


def config_grid(
    algorithms: Iterable[str],
    levels: Optional[Sequence[int]] = None,
    block_sizes: Sequence[Optional[int]] = (None,),
) -> List[CompressionConfig]:
    """Cartesian candidate grid, skipping invalid algorithm/level pairs."""
    grid: List[CompressionConfig] = []
    for algorithm in algorithms:
        codec = get_codec(algorithm)
        algo_levels = levels if levels is not None else codec.levels()
        for level in algo_levels:
            if not codec.min_level <= level <= codec.max_level:
                continue
            for block_size in block_sizes:
                grid.append(CompressionConfig(algorithm, level, block_size))
    return grid
