"""Ablation: dictionary size sweep for cache items (DESIGN.md section 5).

How much trained shared history does small-item compression actually need?
Expected: steep gains up to a few KB, diminishing returns beyond.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_series
from repro.codecs import get_codec, train_dictionary
from repro.corpus import CACHE1_TYPES, generate_cache_items

_DICT_SIZES = [512, 1024, 2048, 4096, 8192, 16384]


@pytest.fixture(scope="module")
def sweep():
    zstd = get_codec("zstd")
    items = generate_cache_items(CACHE1_TYPES, 400, seed=190)
    payloads = [p for __, p in items if len(p) < 2048]
    train, test = payloads[: len(payloads) // 2], payloads[len(payloads) // 2 :][:80]
    raw = sum(len(p) for p in test)
    out = {0: raw / sum(len(zstd.compress(p, 3).data) for p in test)}
    for size in _DICT_SIZES:
        dictionary = train_dictionary(train, max_size=size)
        compressed = sum(
            len(zstd.compress(p, 3, dictionary=dictionary.content).data)
            for p in test
        )
        out[size] = raw / compressed
    return out


def test_ablation_dictsize(benchmark, sweep, figure_output):
    figure_output(
        "ablation_dictsize",
        format_series(
            "small-item ratio vs dictionary size",
            [(f"{size}B", ratio) for size, ratio in sorted(sweep.items())],
            value_format="{:.2f}x",
        ),
    )
    # Any dictionary beats none; going from tiny to mid-size helps a lot;
    # the top end shows diminishing returns.
    assert sweep[2048] > 1.5 * sweep[0]
    assert sweep[4096] > 1.05 * sweep[512]
    gain_low = sweep[4096] - sweep[512]
    gain_high = sweep[16384] - sweep[4096]
    assert gain_high < gain_low

    payloads = [p for __, p in generate_cache_items(CACHE1_TYPES, 60, seed=191)]
    benchmark(lambda: train_dictionary(payloads, max_size=4096))
