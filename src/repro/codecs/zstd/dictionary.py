"""Dictionary training and dictionary-based compression helpers.

The paper (Section II-B, IV-C) describes LZ dictionaries as shared history
"constructed ahead of time from sample data", capturing inter-message
repetitions of small typed items, and communicated out-of-band the way
Managed Compression does. This module implements a COVER-style trainer: it
scores fixed-size segments of the training samples by how many k-mer
occurrences they cover across the corpus and concatenates the best
non-overlapping segments up to the dictionary capacity, most valuable
content last (closest to the window).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.codecs.checksum import xxh32

_KMER = 8
_SEGMENT = 64


@dataclass(frozen=True)
class CompressionDictionary:
    """Trained shared history plus its identifier.

    Pass ``content`` as the ``dictionary=`` argument of codec calls; the
    ``dict_id`` travels in frames so decoders can detect mismatches.
    """

    content: bytes

    @property
    def dict_id(self) -> int:
        return xxh32(self.content)

    def __len__(self) -> int:
        return len(self.content)


def _document_frequencies(samples: Sequence[bytes]) -> Dict[bytes, int]:
    """How many samples each k-mer appears in (distinct per sample)."""
    frequencies: Dict[bytes, int] = {}
    for sample in samples:
        seen = set()
        for pos in range(0, max(0, len(sample) - _KMER + 1)):
            seen.add(sample[pos : pos + _KMER])
        for key in seen:
            frequencies[key] = frequencies.get(key, 0) + 1
    return frequencies


def _distinct_kmers(sample: bytes) -> set:
    return {
        sample[pos : pos + _KMER]
        for pos in range(0, max(0, len(sample) - _KMER + 1))
    }


def train_dictionary(
    samples: Iterable[bytes],
    max_size: int = 16384,
    max_sample_bytes: int = 4096,
) -> CompressionDictionary:
    """Build a dictionary of up to ``max_size`` bytes from ``samples``.

    Greedy maximum-coverage over whole samples (COVER's objective at sample
    granularity): repeatedly pick the sample whose not-yet-covered k-mers
    have the highest total document frequency, until the dictionary is
    full. Whole samples preserve message structure -- field skeletons,
    key orders, enum values -- which is what inter-message LZ matches
    actually hit. Long samples are truncated to ``max_sample_bytes``.
    """
    # No sample may exceed the dictionary itself, or nothing would fit.
    sample_cap = min(max_sample_bytes, max_size)
    sample_list = [bytes(s)[:sample_cap] for s in samples if s]
    if not sample_list:
        return CompressionDictionary(b"")
    frequencies = _document_frequencies(sample_list)

    candidates = [
        (index, sample, _distinct_kmers(sample))
        for index, sample in enumerate(sample_list)
        if len(sample) >= _KMER
    ]
    covered: set = set()
    chosen: List[bytes] = []
    used = 0
    chosen_contents = set()
    while candidates and used < max_size - _KMER:
        best = None
        best_score = 0.0
        for entry in candidates:
            __, sample, kmers = entry
            if used + len(sample) > max_size:
                continue
            gain = sum(
                frequencies[key] for key in kmers if key not in covered
            )
            # Normalize by size so a short sample covering the common core
            # beats a long one padded with unique filler.
            score = gain / (len(sample) + _SEGMENT)
            if score > best_score:
                best_score = score
                best = entry
        if best is None or best_score <= 0:
            break
        index, sample, kmers = best
        candidates.remove(best)
        if sample in chosen_contents:
            continue
        chosen_contents.add(sample)
        chosen.append(sample)
        covered.update(kmers)
        used += len(sample)
    # Most valuable content goes last (closest to the compressed data).
    chosen.reverse()
    return CompressionDictionary(b"".join(chosen))
