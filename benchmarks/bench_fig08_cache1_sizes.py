"""Fig. 8: CACHE1 item size distribution.

Paper shape: strongly skewed toward items under 1KB with a long tail of
larger items.
"""

from __future__ import annotations

from repro.analysis import format_series, log2_histogram, summarize_sizes
from repro.corpus import CACHE1_TYPES, generate_cache_items


def test_fig08_cache1_sizes(benchmark, figure_output):
    items = generate_cache_items(CACHE1_TYPES, 2000, seed=80)
    sizes = [len(payload) for __, payload in items]
    histogram = log2_histogram(sizes)
    summary = summarize_sizes(sizes)
    text = format_series(
        "CACHE1 item size histogram",
        [(bucket, fraction * 100) for bucket, fraction in histogram],
        value_format="{:.1f}%",
    )
    text += (
        f"\np50={summary['p50']:.0f}B p99={summary['p99']:.0f}B "
        f"below 1KB: {summary['below_1kb'] * 100:.1f}%"
    )
    figure_output("fig08_cache1_sizes", text)

    assert summary["below_1kb"] > 0.5
    assert summary["p99"] > 4 * summary["p50"]

    benchmark(lambda: summarize_sizes(sizes))
