"""The crash-injection sweep: every seeded crash point must recover.

The recovery invariant, checked per cell by
:func:`repro.services.kvstore.crashsim.verify_recovery`:

* every **acked** write (sync returned) reads back its latest value;
* the **in-flight** write (crashed mid-path) never resurrects at the
  WAL-append site and is all-or-nothing elsewhere;
* a full scan equals the expected live set — no ghosts, no losses,
  no partial level state (deeper levels hold at most one run).
"""

import pytest

from repro.services.kvstore.crashsim import (
    CRASH_SITES,
    run_crash_cell,
    run_crash_sweep,
)
from repro.services.kvstore.wal import APPEND_SITE


class TestSweep:
    def test_every_cell_crashes_and_recovers(self):
        result = run_crash_sweep(seed=0, hits=3)
        assert len(result.cells) == len(CRASH_SITES) * 3
        # the workload is sized so every (site, hit) cell actually fires
        assert result.crashes == len(result.cells)
        assert result.sites_hit == sorted(CRASH_SITES)
        for cell in result.cells:
            assert cell.recovery is not None, (cell.site, cell.hit)
            # the very first append-site hit crashes before anything is
            # acked; every other cell has durable history behind it
            if (cell.site, cell.hit) != (APPEND_SITE, 1):
                assert cell.acked_writes > 0, (cell.site, cell.hit)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_sweep_holds_across_seeds(self, seed):
        result = run_crash_sweep(seed=seed, hits=2)
        assert result.crashes == len(result.cells)

    def test_sweep_is_deterministic(self):
        def fingerprint(result):
            return [
                (
                    cell.site,
                    cell.hit,
                    cell.acked_writes,
                    cell.recovery.wal_records_replayed,
                    cell.recovery.sst_files,
                    cell.recovery.modeled_seconds,
                )
                for cell in result.cells
            ]

        assert fingerprint(run_crash_sweep(seed=5, hits=2)) == fingerprint(
            run_crash_sweep(seed=5, hits=2)
        )

    def test_seed_changes_the_sweep(self):
        # a different seed means a different workload (value sizes, key
        # mix) and different tear positions, so the recovered byte
        # counts cannot all coincide
        a = run_crash_sweep(seed=5, hits=1)
        b = run_crash_sweep(seed=6, hits=1)
        bytes_a = [c.recovery.wal_bytes_replayed for c in a.cells]
        bytes_b = [c.recovery.wal_bytes_replayed for c in b.cells]
        assert bytes_a != bytes_b


class TestSingleCells:
    @pytest.mark.parametrize("site", CRASH_SITES)
    def test_first_hit_of_each_site(self, site):
        cell = run_crash_cell(seed=11, site=site, hit=1)
        assert cell.crashed, f"{site} never reached at hit 1"
        assert cell.recovery is not None

    def test_append_site_replays_only_acked(self):
        cell = run_crash_cell(seed=11, site=APPEND_SITE, hit=5)
        assert cell.crashed
        # the crashed batch was never acked, so replayed records must be
        # strictly below the number of appends attempted (acked + 1)
        assert cell.recovery.wal_records_replayed <= cell.acked_writes

    def test_deep_hits_cover_compaction_era(self):
        # by hit 3 the compact sites fire after real compactions: the
        # store has flushed multiple memtables by then
        cell = run_crash_cell(
            seed=0, site="kvstore.compact.sst", hit=3, ops=400
        )
        assert cell.crashed
        assert cell.recovery.sst_files >= 1
