"""Fault-injecting wrappers for codecs, channels, and stored blocks.

:class:`FaultyCodec` wraps any :class:`~repro.codecs.base.Compressor` and
makes its calls fail, slow down, or receive corrupted payloads according
to the injector's plan. :class:`FaultyChannel` attaches an injector to an
existing RPC :class:`~repro.services.rpc.Channel` (the channel consults
``self.injector`` inside its transmit path, so injected faults land
*inside* the retry loop, one decision per attempt). ``scrub_sstable``
models storage-media decay by corrupting an SST's resident blocks in
place -- a *permanent* fault, unlike the per-call transient ones.
"""

from __future__ import annotations

from typing import List, Optional

from repro.codecs.base import CodecError, CompressResult, Compressor, DecompressResult
from repro.faults.plan import FaultInjector
from repro.resilience.clock import SimClock


class InjectedCodecError(CodecError):
    """A simulated codec failure (crash, OOM, version skew) from a plan."""


class FaultyCodec(Compressor):
    """Wraps a codec; faults fire per call, payload bytes stay untouched
    at rest (a corrupted decompress corrupts only that call's view)."""

    def __init__(
        self,
        inner: Compressor,
        injector: FaultInjector,
        site: Optional[str] = None,
        clock: Optional[SimClock] = None,
    ) -> None:
        self.inner = inner
        self.injector = injector
        self.site = site if site is not None else f"codec.{inner.name}"
        #: advanced by ``slow`` faults so breaker cooldowns see the stall
        self.clock = clock
        self.name = inner.name
        self.min_level = inner.min_level
        self.max_level = inner.max_level
        self.default_level = inner.default_level
        self.injected_failures = 0
        self.injected_slow_seconds = 0.0
        self.corrupted_calls = 0

    def supports_dictionaries(self) -> bool:
        return self.inner.supports_dictionaries()

    def _apply(self, effects) -> None:
        if effects.slow_seconds:
            self.injected_slow_seconds += effects.slow_seconds
            if self.clock is not None:
                self.clock.advance(effects.slow_seconds)
        if effects.fail:
            self.injected_failures += 1
            raise InjectedCodecError(
                f"injected {self.name} failure at {self.site}"
            )

    def compress(
        self,
        data: bytes,
        level: Optional[int] = None,
        dictionary: Optional[bytes] = None,
    ) -> CompressResult:
        effects = self.injector.on_codec_call(self.site + ".compress")
        self._apply(effects)
        return self.inner.compress(data, level, dictionary=dictionary)

    def decompress(
        self,
        payload: bytes,
        dictionary: Optional[bytes] = None,
        max_output_bytes: Optional[int] = None,
    ) -> DecompressResult:
        effects = self.injector.on_codec_call(
            self.site + ".decompress", payload
        )
        self._apply(effects)
        if effects.payload is not payload and effects.payload != payload:
            self.corrupted_calls += 1
        return self.inner.decompress(
            effects.payload,
            dictionary=dictionary,
            max_output_bytes=max_output_bytes,
        )


class FaultyChannel:
    """Attaches an injector to an existing Channel; delegates everything.

    The channel's own transmit path applies the injector's wire effects
    (drop, latency spike, payload corruption) per attempt, so its retry
    and timeout machinery is exercised exactly as a lossy network would.
    """

    def __init__(
        self,
        channel,
        injector: FaultInjector,
        site: str = "rpc.wire",
    ) -> None:
        self.channel = channel
        channel.injector = injector
        channel.fault_site = site

    def send(self, payload: bytes):
        return self.channel.send(payload)

    def __getattr__(self, name: str):
        return getattr(self.channel, name)


def scrub_sstable(
    table,
    injector: FaultInjector,
    site: str = "kvstore.storage",
) -> List[int]:
    """Permanently corrupt an SST's stored blocks per the plan.

    Returns the indices of the blocks that were damaged. Models media
    decay: unlike :class:`FaultyCodec`, re-reading the block re-reads the
    damage, so only redundancy (an older level) or a rewrite recovers it.
    """
    damaged: List[int] = []
    for block_index in range(table.block_count):
        block = table.block_bytes(block_index)
        corrupted, kinds = injector.corrupt_payload(site, block)
        if kinds:
            table.replace_block(block_index, corrupted)
            damaged.append(block_index)
    return damaged


def scrub_cache(
    server,
    injector: FaultInjector,
    site: str = "cache.payload",
) -> List[bytes]:
    """Permanently corrupt a cache server's resident entries per the plan.

    Returns the damaged keys. The entry's compressed flag is preserved, so
    the next client get runs verified-decompress over the damaged bytes
    and takes the quarantine-and-miss recovery path.
    """
    damaged: List[bytes] = []
    for key in server.stored_keys():
        __, __, payload = server.stored_entry(key)
        corrupted, kinds = injector.corrupt_payload(site, payload)
        if kinds:
            server.replace_stored(key, corrupted)
            damaged.append(key)
    return damaged
