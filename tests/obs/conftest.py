"""Telemetry test isolation: every test starts from a clean, enabled state."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture
def fresh_obs():
    """Enable telemetry on a cleared global registry; restore on exit."""
    obs.reset()
    obs.enable()
    yield obs.get_registry()
    obs.disable()
    obs.reset()
