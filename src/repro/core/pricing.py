"""Cloud price book standing in for the paper's AWS references [1]-[3].

The paper estimates compute costs from Amazon EC2/EIA and storage/network
costs from Amazon S3. Only the *relative* magnitudes matter to CompOpt's
alpha coefficients; these figures are 2023-era public on-demand prices.
"""

from __future__ import annotations

from dataclasses import dataclass

_SECONDS_PER_HOUR = 3600.0
_GIB = 1 << 30


@dataclass(frozen=True)
class PriceBook:
    """Dollar rates used to derive the cost model's alpha coefficients."""

    #: $/hour for one on-demand compute instance
    ec2_instance_hourly: float = 0.34
    #: vCPUs per that instance
    ec2_instance_vcpus: int = 8
    #: $/hour for an elastic-inference-style accelerator attachment
    eia_accelerator_hourly: float = 0.12
    #: $/GiB-month of warm object storage
    s3_gib_month: float = 0.023
    #: $/GiB-month of flash-backed block storage (for SSD-bound services)
    flash_gib_month: float = 0.08
    #: $/GiB of cross-datacenter transfer
    network_gib: float = 0.02

    @property
    def compute_core_second(self) -> float:
        """$ per core-second of general-purpose compute."""
        return self.ec2_instance_hourly / self.ec2_instance_vcpus / _SECONDS_PER_HOUR

    @property
    def accelerator_second(self) -> float:
        """$ per accelerator-second."""
        return self.eia_accelerator_hourly / _SECONDS_PER_HOUR

    @property
    def storage_byte_day(self) -> float:
        """$ per byte-day of warm storage."""
        return self.s3_gib_month / _GIB / 30.0

    @property
    def flash_byte_day(self) -> float:
        """$ per byte-day of flash storage."""
        return self.flash_gib_month / _GIB / 30.0

    @property
    def network_byte(self) -> float:
        """$ per byte transferred between datacenters."""
        return self.network_gib / _GIB


DEFAULT_PRICES = PriceBook()
