"""Greedy single-slot hash-table match finder (the LZ4 / zstd-fast strategy)."""

from __future__ import annotations

from typing import List, Optional

from repro.codecs.base import StageCounters
from repro.codecs.lz77 import Token, match_length
from repro.codecs.matchfinders.base import (
    MatchFinder,
    MatchFinderParams,
    hash_positions,
)


class SingleHashMatchFinder(MatchFinder):
    """One candidate per hash bucket, greedy acceptance.

    With ``acceleration > 1`` the scan skips ahead progressively after
    consecutive misses, exactly the mechanism behind LZ4's acceleration
    factor and Zstandard's negative compression levels: less work per input
    byte at the cost of missed matches.
    """

    def parse(
        self,
        data: bytes,
        start: int,
        params: MatchFinderParams,
        counters: Optional[StageCounters] = None,
    ) -> List[Token]:
        counters = counters if counters is not None else StageCounters()
        n = len(data)
        min_match = params.min_match
        hash_bytes = min(4, min_match)
        hashes = hash_positions(data, params.hash_log, hash_bytes)
        table = [-1] * (1 << params.hash_log)
        counters.setup_entries += len(table)
        max_offset = params.effective_max_offset()
        max_match = params.max_match

        last_hashable = len(hashes)  # positions with a full hash window
        # Index dictionary/history bytes so matches can reach them.
        for pos in range(min(start, last_hashable)):
            table[hashes[pos]] = pos

        tokens: List[Token] = []
        anchor = start
        i = start
        misses = 0
        while i + min_match <= n and i < last_hashable:
            h = hashes[i]
            candidate = table[h]
            table[h] = i
            counters.positions_scanned += 1
            counters.hash_probes += 1
            found = -1
            if candidate >= 0 and i - candidate <= max_offset:
                counters.match_candidates += 1
                limit = min(n - i, max_match)
                length = match_length(data, candidate, i, limit)
                counters.match_bytes_compared += length + 1
                if length >= min_match:
                    found = length
            if found > 0:
                literal_run = i - anchor
                tokens.append(Token(literal_run, found, i - candidate))
                counters.sequences_emitted += 1
                counters.literals_emitted += literal_run
                i += found
                anchor = i
                misses = 0
            else:
                # LZ4-style acceleration: step grows with consecutive misses,
                # scaled by the acceleration factor (skip strength 6).
                misses += 1
                i += 1 + ((misses * params.acceleration) >> 6)
        return self._finish(tokens, anchor, n)
