"""repro: a reproduction of "Characterization of Data Compression in
Datacenters" (ISPASS 2023).

The package is organized bottom-up:

- :mod:`repro.codecs` -- from-scratch LZ4-, Zstandard-, and DEFLATE-style
  codecs built on shared match finders and entropy coders, with per-stage
  instrumentation counters.
- :mod:`repro.perfmodel` -- a calibrated machine model turning counters into
  modeled datacenter-core throughput, plus the accelerator (gamma) model.
- :mod:`repro.corpus` -- synthetic data generators standing in for closed
  production data (Silesia-like files, ads embeddings, cache items, ...).
- :mod:`repro.services` -- the service substrates of Table I: an LSM
  key-value store, an object cache with per-type dictionaries, an ORC-like
  data warehouse with the DW1-4 workflows, and an ads inference tier.
- :mod:`repro.fleet` -- the synthetic fleet registry, sampling profiler,
  and the aggregation pipeline behind the fleet-level figures.
- :mod:`repro.core` -- **CompOpt**, the paper's contribution: CompEngine,
  the cost model (equations 1-4), requirements, search strategies, and
  CompSim accelerator evaluation.
- :mod:`repro.analysis` -- distribution summaries and report rendering.

Quickstart::

    from repro import CompEngine, CompOpt, CostModel, CostParameters
    from repro.core.config import config_grid

    engine = CompEngine(samples=[b"..." * 1000])
    model = CostModel(CostParameters.from_price_book(beta=1e-6))
    best = CompOpt(engine, model).optimize(config_grid(["zstd", "lz4"])).best
"""

from repro.codecs import (
    CompressionDictionary,
    Compressor,
    LZ4Compressor,
    ZlibCompressor,
    ZstdCompressor,
    available_codecs,
    get_codec,
    train_dictionary,
)
from repro.core import (
    CompEngine,
    CompOpt,
    CompressionConfig,
    CompressionMetrics,
    CompSim,
    CostModel,
    CostParameters,
    MaxBlockDecodeLatency,
    MinCompressionSpeed,
)
from repro.perfmodel import DEFAULT_MACHINE, HardwareAccelerator, MachineModel

__version__ = "1.0.0"

__all__ = [
    "Compressor",
    "LZ4Compressor",
    "ZstdCompressor",
    "ZlibCompressor",
    "CompressionDictionary",
    "train_dictionary",
    "available_codecs",
    "get_codec",
    "CompEngine",
    "CompOpt",
    "CompressionConfig",
    "CompressionMetrics",
    "CompSim",
    "CostModel",
    "CostParameters",
    "MinCompressionSpeed",
    "MaxBlockDecodeLatency",
    "MachineModel",
    "HardwareAccelerator",
    "DEFAULT_MACHINE",
    "__version__",
]
