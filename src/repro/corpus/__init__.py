"""Synthetic data generators standing in for closed production data.

Every generator is deterministic given its seed and reproduces the
*statistical* properties the paper identifies as driving compression
behaviour: redundancy structure for the Silesia-like corpus, sparse/dense
embedding mixes for ads requests, strongly-skewed small typed items for
caches, and low-cardinality columnar data for the warehouse (DESIGN.md
section 1.3).
"""

from repro.corpus.distributions import SeededSampler
from repro.corpus.textgen import generate_text
from repro.corpus.records import generate_records
from repro.corpus.xmlgen import generate_xml
from repro.corpus.binary import generate_binary
from repro.corpus.logs import generate_logs
from repro.corpus.telemetry import generate_telemetry
from repro.corpus.silesia import SILESIA_FILES, silesia_like_corpus
from repro.corpus.embeddings import ADS_MODELS, AdsModelSpec, generate_ads_request
from repro.corpus.cache_items import (
    CACHE1_TYPES,
    CACHE2_TYPES,
    ItemTypeSpec,
    generate_cache_items,
)
from repro.corpus.kvdata import generate_kv_records
from repro.corpus.orcdata import ColumnSpec, generate_table

__all__ = [
    "SeededSampler",
    "generate_text",
    "generate_records",
    "generate_xml",
    "generate_binary",
    "generate_logs",
    "generate_telemetry",
    "SILESIA_FILES",
    "silesia_like_corpus",
    "ADS_MODELS",
    "AdsModelSpec",
    "generate_ads_request",
    "CACHE1_TYPES",
    "CACHE2_TYPES",
    "ItemTypeSpec",
    "generate_cache_items",
    "generate_kv_records",
    "ColumnSpec",
    "generate_table",
]
