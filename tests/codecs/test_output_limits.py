"""Decompression output-limit (bomb guard) tests."""

import pytest

from repro.codecs import get_codec
from repro.codecs.base import OutputLimitExceeded


@pytest.fixture(params=["zstd", "lz4", "zlib", "gzip"])
def codec(request):
    return get_codec(request.param)


class TestOutputLimits:
    def test_limit_above_size_passes(self, codec):
        data = b"payload " * 200
        blob = codec.compress(data, codec.default_level).data
        result = codec.decompress(blob, max_output_bytes=len(data))
        assert result.data == data

    def test_limit_below_size_raises(self, codec):
        data = b"payload " * 200
        blob = codec.compress(data, codec.default_level).data
        with pytest.raises(OutputLimitExceeded):
            codec.decompress(blob, max_output_bytes=len(data) // 2)

    def test_bomb_rejected_early(self, codec):
        """A 4 MB RLE bomb must be rejected by a 64 KB budget."""
        bomb_plain = b"\x00" * (4 << 20)
        blob = codec.compress(bomb_plain, codec.default_level).data
        assert len(blob) < 64 << 10  # it really is a bomb
        with pytest.raises(OutputLimitExceeded):
            codec.decompress(blob, max_output_bytes=64 << 10)

    def test_no_limit_by_default(self, codec):
        data = b"\x00" * (1 << 20)
        blob = codec.compress(data, codec.default_level).data
        assert codec.decompress(blob).data == data

    def test_negative_limit_rejected(self, codec):
        blob = codec.compress(b"x", codec.default_level).data
        with pytest.raises(ValueError):
            codec.decompress(blob, max_output_bytes=-1)

    def test_zero_limit(self, codec):
        blob = codec.compress(b"", codec.default_level).data
        assert codec.decompress(blob, max_output_bytes=0).data == b""

    def test_limit_does_not_stick_between_calls(self, codec):
        data = b"payload " * 500
        blob = codec.compress(data, codec.default_level).data
        with pytest.raises(OutputLimitExceeded):
            codec.decompress(blob, max_output_bytes=10)
        # next call without a limit must succeed
        assert codec.decompress(blob).data == data
