"""Targeted tests for the Zstd-style codec's internal coding decisions."""

import pytest

from repro.codecs.base import CorruptDataError, StageCounters
from repro.codecs.entropy.fse import normalize_counts
from repro.codecs.zstd import blocks as zblocks
from repro.codecs.zstd import params as zparams
from repro.codecs.zstd.blocks import (
    _STREAM_CUSTOM,
    _STREAM_PREDEFINED,
    _STREAM_RLE,
    _choose_stream_mode,
    _read_custom_table,
    _write_custom_table,
)


class TestStreamModeChoice:
    def test_constant_stream_is_rle(self):
        mode, norm, __ = _choose_stream_mode(
            [5] * 100, zparams.PREDEFINED_LL_NORM, zparams.PREDEFINED_LL_LOG,
            len(zparams.LL_TABLE),
        )
        assert mode == _STREAM_RLE
        assert norm is None

    def test_small_stream_prefers_predefined(self):
        # A handful of sequences can't amortize a custom table header.
        codes = [0, 1, 2, 0, 1]
        mode, __, __ = _choose_stream_mode(
            codes, zparams.PREDEFINED_LL_NORM, zparams.PREDEFINED_LL_LOG,
            len(zparams.LL_TABLE),
        )
        assert mode == _STREAM_PREDEFINED

    def test_large_skewed_stream_prefers_custom(self):
        # Many sequences concentrated on codes the predefined table treats
        # as rare: a custom table pays for its header.
        codes = ([30, 31] * 500) + [2] * 40
        mode, norm, table_log = _choose_stream_mode(
            codes, zparams.PREDEFINED_LL_NORM, zparams.PREDEFINED_LL_LOG,
            len(zparams.LL_TABLE),
        )
        assert mode == _STREAM_CUSTOM
        assert sum(norm) == 1 << table_log

    def test_custom_table_header_roundtrip(self):
        norm = normalize_counts([10, 0, 30, 5], table_log=6)
        out = bytearray()
        _write_custom_table(out, norm, 6)
        decoded, table_log, pos = _read_custom_table(bytes(out), 0, alphabet=4)
        assert decoded == norm
        assert table_log == 6
        assert pos == len(out)

    def test_custom_table_rejects_bad_sum(self):
        out = bytearray()
        _write_custom_table(out, normalize_counts([1, 1], 5), 5)
        corrupted = bytearray(out)
        corrupted[2] ^= 0x01  # perturb a packed count
        with pytest.raises(CorruptDataError):
            _read_custom_table(bytes(corrupted), 0, alphabet=2)

    def test_custom_table_rejects_oversized_log(self):
        with pytest.raises(CorruptDataError):
            _read_custom_table(bytes([13, 0]), 0, alphabet=2)


class TestBlockDecodeValidation:
    def _valid_block(self):
        from repro.codecs.lz77 import Token

        data = b"abcdabcdabcd"
        return zblocks.encode_block(
            data, 0, [Token(4, 8, 4)], StageCounters()
        ), data

    def test_valid_block_decodes(self):
        payload, data = self._valid_block()
        assert zblocks.decode_block(payload, StageCounters()) == data

    def test_unknown_literals_mode_rejected(self):
        payload, __ = self._valid_block()
        corrupted = bytes([9]) + payload[1:]
        with pytest.raises(CorruptDataError):
            zblocks.decode_block(corrupted, StageCounters())

    def test_oversized_literals_claim_rejected(self):
        out = bytearray([0])  # raw literals mode
        from repro.codecs.varint import write_uvarint

        write_uvarint(out, zparams.MAX_BLOCK_SIZE + 1)
        with pytest.raises(CorruptDataError):
            zblocks.decode_block(bytes(out), StageCounters())

    def test_sequence_count_limit(self):
        out = bytearray([0])  # raw literals, size 0
        from repro.codecs.varint import write_uvarint

        write_uvarint(out, 0)
        write_uvarint(out, zparams.MAX_BLOCK_SIZE + 1)  # absurd seq count
        with pytest.raises(CorruptDataError):
            zblocks.decode_block(bytes(out), StageCounters())


class TestNormalizeExcessRecovery:
    def test_overshoot_is_reclaimed_from_richest(self):
        # Many tiny counts forced up to 1 overshoot the table; the richest
        # symbol gives the excess back.
        counts = [1000] + [1] * 31
        norm = normalize_counts(counts, table_log=5)
        assert sum(norm) == 32
        assert all(n >= 1 for n in norm)
        assert norm[0] == max(norm)
