"""TimeSeriesRecorder: window mechanics and the lossless-merge property.

The load-bearing claim (ISSUE 6, satellite 3): folding N window
snapshots back into one registry yields *exactly* the histogram a
one-shot recording of the same samples would have produced — bucket
counts, count/sum, min/max, and therefore every percentile. The
property test drives it over adversarial values pinned on (and a
half-ulp around) the log-bucket edges, the same fixtures the percentile
monotonicity tests use.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    TimeSeriesRecorder,
    WallClock,
    WindowSnapshot,
    merge_windows,
)


class TestWindowMechanics:
    def test_advance_closes_elapsed_windows(self):
        rec = TimeSeriesRecorder(width_seconds=1.0)
        rec.registry().counter("ops").inc(3)
        assert rec.advance(0.5) == []  # still inside window 0
        closed = rec.advance(1.0)
        assert [w.index for w in closed] == [0]
        assert (closed[0].start, closed[0].end) == (0.0, 1.0)
        assert closed[0].registry.get("ops") is not None
        # the in-progress window is fresh
        assert len(rec.registry()) == 0
        assert rec.current_index == 1

    def test_skipped_windows_close_empty_no_gaps(self):
        rec = TimeSeriesRecorder(width_seconds=1.0)
        rec.registry().counter("ops").inc()
        closed = rec.advance(3.5)
        assert [w.index for w in closed] == [0, 1, 2]
        assert [(w.start, w.end) for w in closed] == [
            (0.0, 1.0), (1.0, 2.0), (2.0, 3.0),
        ]
        # the skipped windows are present but empty
        assert len(closed[1].registry) == 0
        assert len(closed[2].registry) == 0

    def test_stale_now_is_noop(self):
        rec = TimeSeriesRecorder(width_seconds=1.0)
        rec.advance(2.0)
        assert rec.advance(1.0) == []
        assert rec.current_index == 2

    def test_flush_closes_nonempty_only(self):
        rec = TimeSeriesRecorder(width_seconds=1.0)
        assert rec.flush() is None  # untouched window: nothing to emit
        rec.registry().counter("ops").inc()
        snap = rec.flush()
        assert isinstance(snap, WindowSnapshot)
        assert (snap.start, snap.end) == (0.0, 1.0)  # nominal bounds kept
        assert rec.current_start == 1.0

    def test_ring_eviction_is_counted(self):
        rec = TimeSeriesRecorder(width_seconds=1.0, capacity=2)
        rec.advance(3.0)
        assert len(rec) == 2
        assert rec.evicted == 1
        assert [w.index for w in rec.windows()] == [1, 2]

    def test_windows_last_and_merged(self):
        rec = TimeSeriesRecorder(width_seconds=1.0)
        for i in range(4):
            rec.registry().counter("ops").inc(i + 1)
            rec.advance(float(i + 1))
        assert [w.index for w in rec.windows(last=2)] == [2, 3]
        total = rec.merged().get("ops")
        assert sum(v for _, v in total.samples()) == 1 + 2 + 3 + 4
        recent = rec.merged(last=2).get("ops")
        assert sum(v for _, v in recent.samples()) == 3 + 4

    def test_tick_uses_bound_clock(self):
        beat = {"now": 0.0}
        rec = TimeSeriesRecorder(width_seconds=1.0, clock=lambda: beat["now"])
        beat["now"] = 2.0
        assert [w.index for w in rec.tick()] == [0, 1]
        # object clocks (SimClock/WallClock face) work too
        rec2 = TimeSeriesRecorder(width_seconds=1e9, clock=WallClock())
        assert rec2.tick() == []

    def test_clockless_tick_rejected(self):
        rec = TimeSeriesRecorder(width_seconds=1.0)
        with pytest.raises(ValueError):
            rec.tick()

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(width_seconds=0.0)
        with pytest.raises(ValueError):
            TimeSeriesRecorder(width_seconds=1.0, capacity=0)
        with pytest.raises(ValueError):
            TimeSeriesRecorder(width_seconds=1.0).windows(last=-1)


def _adversarial_values() -> list:
    """Values pinned on and a half-ulp around the 4-per-octave log-bucket
    edges (the monotonicity fixtures), plus zeros and a wide-range tail."""
    base = math.log(2.0) / 4
    values = []
    for k in range(-40, 41):
        edge = math.exp(k * base)
        values.extend(
            (edge, math.nextafter(edge, 0.0), math.nextafter(edge, math.inf))
        )
    values.extend([0.0] * 10)
    values.extend([1e-9, 1e-3, 1.0, 1.0, 1e6])
    return values


class TestMergeEqualsOneShot:
    """Satellite 3: N window snapshots fold into the one-shot histogram."""

    @pytest.mark.parametrize("seed", [0, 7, 2023])
    @pytest.mark.parametrize("n_windows", [2, 5, 16])
    def test_histogram_merge_lossless(self, seed, n_windows):
        values = _adversarial_values()
        rng = random.Random(seed)
        rng.shuffle(values)

        one_shot = MetricsRegistry()
        for v in values:
            one_shot.histogram("lat").observe(v)

        rec = TimeSeriesRecorder(width_seconds=1.0)
        for i, v in enumerate(values):
            # scatter the stream across n_windows windows, uneven splits
            rec.advance(float(rng.randrange(n_windows)))
            rec.registry().histogram("lat").observe(v)
        rec.advance(float(n_windows))
        assert rec.flush() is None  # everything landed in closed windows

        merged = merge_windows(rec.windows()).get("lat")
        ref = one_shot.get("lat")
        assert merged.count() == ref.count() == len(values)
        assert merged.min() == ref.min()
        assert merged.max() == ref.max()
        assert merged.sum() == pytest.approx(ref.sum())
        assert merged.cumulative_buckets() == ref.cumulative_buckets()
        for p in range(0, 101):
            assert merged.percentile(p) == ref.percentile(p), p

    def test_labeled_series_and_counters_survive(self):
        rng = random.Random(42)
        one_shot = MetricsRegistry()
        rec = TimeSeriesRecorder(width_seconds=0.25)
        at = 0.0
        for _ in range(300):
            codec = rng.choice(["zstd", "lz4"])
            v = rng.lognormvariate(-7, 2)
            for reg in (one_shot, rec.registry()):
                reg.histogram("lat").observe(v, codec=codec)
                reg.counter("calls").inc(1, codec=codec)
            at += rng.random() * 0.2
            rec.advance(at)
        rec.flush()

        merged = merge_windows(rec.windows())
        for codec in ("zstd", "lz4"):
            got, ref = merged.get("lat"), one_shot.get("lat")
            assert got.count(codec=codec) == ref.count(codec=codec)
            for p in (50, 90, 99):
                assert got.percentile(p, codec=codec) == ref.percentile(
                    p, codec=codec
                )
        got_calls = dict(merged.get("calls").samples())
        ref_calls = dict(one_shot.get("calls").samples())
        assert got_calls == ref_calls

    def test_merge_windows_is_associative(self):
        rec = TimeSeriesRecorder(width_seconds=1.0)
        rng = random.Random(9)
        for i in range(6):
            for _ in range(20):
                rec.registry().histogram("h").observe(rng.lognormvariate(0, 1))
            rec.advance(float(i + 1))
        ws = rec.windows()
        left = merge_windows([ws[0], ws[1]])
        for w in ws[2:]:
            left.merge(w.registry)
        right = merge_windows(ws)
        assert left.get("h").cumulative_buckets() == right.get(
            "h"
        ).cumulative_buckets()
