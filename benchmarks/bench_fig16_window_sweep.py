"""Fig. 16 / Sensitivity study 3: normalized cost vs match-window size for a
hardware accelerator (CompSim, gamma = 10) on ADS1-like and KVSTORE1-like
data.

Paper shape: cost falls as the window grows, then plateaus -- around 2^21
for ADS1 (large requests with long-range structure) and around 2^16 for
KVSTORE1 (short-range structure), telling the HW designer how much window
SRAM each workload actually needs.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import (
    CompEngine,
    CompSim,
    CompressionConfig,
    CostModel,
    CostParameters,
)
from repro.core.pricing import DEFAULT_PRICES
from repro.corpus import generate_ads_request, generate_kv_records

_WINDOW_LOGS = [10, 12, 14, 16, 18, 20, 22]


def _ads_sample() -> bytes:
    # A large request stream: repeated model structure at long range.
    return b"".join(generate_ads_request("A", seed=160 + i) for i in range(4))


def _kv_sample() -> bytes:
    records = generate_kv_records(2500, seed=161)
    return b"".join(k + b"\x00" + v for k, v in records)


@pytest.fixture(scope="module")
def sweeps():
    out = {}
    accel_params = CostParameters(
        alpha_compute=DEFAULT_PRICES.accelerator_second,
        alpha_storage=DEFAULT_PRICES.flash_byte_day,
        alpha_network=DEFAULT_PRICES.network_byte,
        beta=1e-7,
        retention_days=30.0,
    )
    model = CostModel(accel_params)
    for workload, sample in (("ADS1", _ads_sample()), ("KVSTORE1", _kv_sample())):
        engine = CompEngine([sample])
        sim = CompSim(engine)
        costs = {}
        for window_log in _WINDOW_LOGS:
            name = f"{workload}-w{window_log}"
            sim.add_accelerator(name, window_log=window_log, gamma=10.0)
            metrics = engine.measure(CompressionConfig(name, 1))
            costs[window_log] = model.total(metrics)
        worst = max(costs.values())
        out[workload] = {w: c / worst for w, c in costs.items()}
    return out


def _plateau_window(normalized: dict, tolerance: float = 0.01) -> int:
    """Smallest window whose cost is within ``tolerance`` of the final one."""
    final = normalized[max(normalized)]
    for window_log in sorted(normalized):
        if normalized[window_log] <= final * (1 + tolerance):
            return window_log
    return max(normalized)


def test_fig16_window_sweep(benchmark, sweeps, figure_output):
    rows = []
    for workload, normalized in sweeps.items():
        for window_log, cost in sorted(normalized.items()):
            rows.append([workload, f"2^{window_log}", f"{cost:.3f}"])
    ads_plateau = _plateau_window(sweeps["ADS1"])
    kv_plateau = _plateau_window(sweeps["KVSTORE1"])
    summary = (
        f"cost plateau: ADS1 at 2^{ads_plateau} (paper: ~2^21), "
        f"KVSTORE1 at 2^{kv_plateau} (paper: ~2^16)"
    )
    figure_output(
        "fig16_window_sweep",
        format_table(
            ["workload", "window", "norm cost"],
            rows,
            title="Fig. 16: normalized cost vs match window (CompSim, gamma=10)",
        )
        + "\n" + summary,
    )

    # The headline: different workloads want different windows, with the
    # ads workload's plateau at a substantially larger window.
    assert ads_plateau > kv_plateau
    # Costs are non-increasing (within noise) as the window grows.
    for workload, normalized in sweeps.items():
        ordered = [normalized[w] for w in sorted(normalized)]
        assert ordered[0] >= ordered[-1]

    sample = _kv_sample()[:65536]
    engine = CompEngine([sample])
    sim = CompSim(engine)
    sim.add_accelerator("bench-w16", window_log=16, gamma=10.0)
    benchmark(lambda: engine.measure(CompressionConfig("bench-w16", 1)))
