"""repro.graphs — OpenZL-style graph compression.

A compressor modeled as an explicit DAG of invertible transform nodes:
structure-aware splitters (``tokenize``, ``floatsplit``), value
transforms (``transpose``, ``delta``, ``zigzag``, ``varint``), and
terminal entropy/LZ leaves that reuse the flat :mod:`repro.codecs`
backends. Graphs serialize to a self-describing multi-frame stream and
execute behind the ordinary codec registry as ``graph:<name>``.

See ``docs/graphs.md`` for the format and the training workflow.
"""

from repro.graphs.codec import GraphCompressor, decode_graph_header
from repro.graphs.model import (
    GraphSpecError,
    canonical_bytes,
    format_spec,
    parse_spec,
    spec_fingerprint,
    spec_label,
    validate_spec,
)
from repro.graphs.registry import (
    available_graphs,
    get_graph,
    register_graph,
    resolve_graph_codec,
    unregister_graph,
)
from repro.graphs.trained import TRAINED_GRAPHS

__all__ = [
    "GraphCompressor",
    "GraphSpecError",
    "TRAINED_GRAPHS",
    "available_graphs",
    "canonical_bytes",
    "decode_graph_header",
    "format_spec",
    "get_graph",
    "parse_spec",
    "register_graph",
    "resolve_graph_codec",
    "spec_fingerprint",
    "spec_label",
    "unregister_graph",
    "validate_spec",
]
