"""``repro lint``: run the sanitizer over a tree and gate on the ratchet.

Exit codes: 0 clean (or all findings grandfathered under ``--fail-on
new``), 1 gate failed, 2 usage error (unknown rule, bad baseline).

Stdout carries *only* the deterministic report (table or JSONL, sorted
by location) so CI can diff two runs byte-for-byte, the same convention
the serve-sim and cluster-sim gates use; the human summary and the gate
verdict go to stderr.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    save_baseline,
    split_by_baseline,
    stale_entries,
)
from repro.lint.engine import LintReport, lint_paths
from repro.lint.rules import all_rules, get_rules
from repro.obs.export import json_line


def _format_table(report: LintReport, new_fingerprints) -> str:
    from repro.analysis import format_table

    if not report.findings:
        return f"repro lint: clean ({report.files_checked} files)\n"
    rows = []
    for item in report.findings:
        rows.append(
            [
                item.rule,
                item.severity,
                "new" if item.fingerprint in new_fingerprints else "old",
                item.location(),
                item.message,
            ]
        )
    return format_table(
        ["rule", "severity", "ratchet", "location", "message"],
        rows,
        title=f"repro lint: {len(report.findings)} findings "
        f"({report.files_checked} files)",
    )


def _format_jsonl(report: LintReport, new_fingerprints) -> str:
    lines = []
    for item in report.findings:
        entry = item.to_dict()
        entry["new"] = item.fingerprint in new_fingerprints
        lines.append(json_line(entry))
    return "\n".join(lines) + ("\n" if lines else "")


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.id}  [{rule.severity}]  {rule.title}")
        lines.append(f"      {rule.rationale}")
    return "\n".join(lines) + "\n"


def run_lint_command(args: argparse.Namespace) -> int:
    if args.list_rules:
        sys.stdout.write(_list_rules())
        return 0
    try:
        rules = get_rules(args.rule) if args.rule else None
    except ValueError as error:
        print(f"lint: {error}", file=sys.stderr)
        return 2
    report = lint_paths(args.paths, rules=rules)
    try:
        baseline = load_baseline(args.baseline)
    except (ValueError, OSError) as error:
        print(f"lint: {error}", file=sys.stderr)
        return 2

    errors = report.errors()
    new, grandfathered = split_by_baseline(errors, baseline)
    new_fingerprints = {item.fingerprint for item in new}

    if args.write_baseline:
        save_baseline(errors, args.baseline)
        print(
            f"lint: wrote {len(errors)} baseline entries to {args.baseline}",
            file=sys.stderr,
        )

    text = (
        _format_jsonl(report, new_fingerprints)
        if args.format == "jsonl"
        else _format_table(report, new_fingerprints)
    )
    if args.output and args.output != "-":
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"lint: wrote {args.format} report to {args.output}", file=sys.stderr)
    elif text:
        sys.stdout.write(text if text.endswith("\n") else text + "\n")

    stale = stale_entries(errors, baseline)
    summary = (
        f"lint: {report.files_checked} files, "
        f"{len(errors)} errors ({len(new)} new, {len(grandfathered)} "
        f"grandfathered), {len(report.warnings())} warnings, "
        f"{len(report.suppressed)} suppressed"
    )
    if stale:
        summary += f", {len(stale)} stale baseline entries (--write-baseline prunes)"
    print(summary, file=sys.stderr)

    if args.fail_on == "any" and errors:
        print(f"lint: FAIL ({len(errors)} errors, --fail-on any)", file=sys.stderr)
        return 1
    if args.fail_on == "new" and new:
        print(
            f"lint: FAIL ({len(new)} new errors not in {args.baseline})",
            file=sys.stderr,
        )
        return 1
    return 0


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro lint`` argument set (shared with tests)."""
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format", default="table", choices=["table", "jsonl"],
        help="jsonl is the machine-diffable CI artifact form",
    )
    parser.add_argument(
        "--rule", action="append", default=None, metavar="ID",
        help="run only this rule (repeatable); disables stale-suppression "
        "warnings",
    )
    parser.add_argument(
        "--fail-on", default="new", choices=["new", "any"],
        help="'new' gates on the baseline ratchet; 'any' ignores the baseline",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help="grandfathered-findings file (missing = empty baseline)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from current findings (prunes stale entries)",
    )
    parser.add_argument(
        "--output", default=None,
        help="write the report to a file instead of stdout",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint", description="AST-based determinism/contract sanitizer"
    )
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
