"""Calibrated machine model: operation counters -> cycles -> throughput.

Pure-Python codecs are orders of magnitude slower than the C libraries the
paper profiles, so wall-clock timing of this reproduction would distort every
speed-dependent figure. Instead, each codec reports how much work each
pipeline stage performed (:class:`repro.codecs.StageCounters`) and this
module converts the counts into cycles on a nominal datacenter core using
per-codec cost coefficients calibrated against widely published lzbench-style
throughput numbers (DESIGN.md section 1.2).

Wall-clock measurement remains available via ``timing="wallclock"`` in
:class:`repro.core.engine.CompEngine` for honesty checks.
"""

from repro.perfmodel.machine import (
    CostCoefficients,
    MachineModel,
    StageBreakdown,
    DEFAULT_MACHINE,
)
from repro.perfmodel.accelerator import HardwareAccelerator

__all__ = [
    "CostCoefficients",
    "MachineModel",
    "StageBreakdown",
    "DEFAULT_MACHINE",
    "HardwareAccelerator",
]
