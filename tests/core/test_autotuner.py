"""Auto-tuner tests: drift detection and re-tuning."""

import pytest

from repro.core import CostModel, CostParameters
from repro.core.autotuner import AutoTuner, byte_histogram, histogram_distance
from repro.core.config import config_grid
from repro.corpus import generate_ads_request, generate_records


@pytest.fixture()
def tuner():
    model = CostModel(CostParameters.from_price_book(beta=1e-6))
    grid = config_grid(["zstd", "lz4"], levels=[1, 3, 6])
    return AutoTuner(model, grid, drift_threshold=0.08, window=4)


class TestHistograms:
    def test_histogram_normalized(self):
        hist = byte_histogram([b"aabb", b"cc"])
        assert sum(hist) == pytest.approx(1.0)
        assert hist[ord("a")] == pytest.approx(2 / 6)

    def test_empty_histogram(self):
        assert sum(byte_histogram([])) == 0.0

    def test_distance_bounds(self):
        a = byte_histogram([b"aaaa"])
        b = byte_histogram([b"bbbb"])
        assert histogram_distance(a, a) == 0.0
        assert histogram_distance(a, b) == pytest.approx(1.0)


class TestAutoTuner:
    def test_first_observation_tunes(self, tuner):
        event = tuner.observe([generate_records(4096, seed=1)])
        assert event is not None
        assert event.reason == "initial tuning"
        assert tuner.current_config is not None

    def test_same_distribution_does_not_retune(self, tuner):
        tuner.observe([generate_records(4096, seed=1)])
        event = tuner.observe([generate_records(4096, seed=2)])
        assert event is None
        assert len(tuner.history) == 1

    def test_drift_triggers_retune(self, tuner):
        tuner.observe([generate_records(4096, seed=1)] * 4)
        # Switch the workload to binary embeddings: large drift.
        event = tuner.observe(
            [generate_ads_request("B", seed=s)[:4096] for s in range(4)]
        )
        assert event is not None
        assert event.drift >= tuner.drift_threshold
        assert len(tuner.history) == 2

    def test_retune_changes_config_for_changed_data(self, tuner):
        tuner.observe([generate_records(4096, seed=1)] * 4)
        first = tuner.current_config
        tuner.observe([generate_ads_request("B", seed=s)[:4096] for s in range(4)])
        second = tuner.current_config
        # The structured-data optimum and the binary-data optimum differ
        # (at minimum in level; the drift test in examples shows the same).
        assert first is not None and second is not None

    def test_empty_grid_rejected(self):
        model = CostModel(CostParameters.from_price_book())
        with pytest.raises(ValueError):
            AutoTuner(model, [])

    def test_observe_ignores_empty_samples(self, tuner):
        assert tuner.observe([b"", b""]) is None

    def test_requirements_respected(self):
        from repro.core import MinCompressionSpeed

        model = CostModel(CostParameters.from_price_book(beta=1e-6))
        grid = config_grid(["zstd", "zlib"], levels=[1, 6])
        tuner = AutoTuner(model, grid, requirements=[MinCompressionSpeed(250e6)])
        tuner.observe([generate_records(4096, seed=3)] * 3)
        assert tuner.current.config.algorithm == "zstd"
        assert tuner.current.metrics.compression_speed >= 250e6


class TestTuningEvents:
    def test_initial_event_records_full_drift(self, tuner):
        event = tuner.observe([generate_records(2048, seed=9)])
        assert event.reason == "initial tuning"
        assert event.drift == 1.0
        assert tuner.history == [event]
        assert event.chosen is tuner.current

    def test_drift_event_contents(self, tuner):
        tuner.observe([generate_records(4096, seed=1)] * 4)
        drifted = [generate_ads_request("B", seed=s)[:4096] for s in range(4)]
        event = tuner.observe(drifted)
        assert event is tuner.history[-1]
        assert event.reason == f"drift {event.drift:.3f} >= {tuner.drift_threshold}"
        assert tuner.drift_threshold <= event.drift <= 1.0
        assert event.chosen is tuner.current
        assert event.chosen.config in tuner.candidates

    def test_retune_refreshes_tuned_histogram(self, tuner):
        tuner.observe([generate_records(4096, seed=1)] * 4)
        drifted = [generate_ads_request("B", seed=s)[:4096] for s in range(4)]
        assert tuner.observe(drifted) is not None
        # the drifted distribution is now the tuned baseline: feeding the
        # same samples again must not retune
        assert tuner.observe(drifted) is None
        assert len(tuner.history) == 2

    def test_infeasible_requirements_fall_back_to_best_any(self):
        from repro.core import MinCompressionSpeed

        model = CostModel(CostParameters.from_price_book(beta=1e-6))
        grid = config_grid(["zstd"], levels=[1, 3])
        tuner = AutoTuner(
            model, grid, requirements=[MinCompressionSpeed(1e18)]
        )
        event = tuner.observe([generate_records(4096, seed=4)] * 3)
        assert event is not None and event.chosen is not None
        assert not event.chosen.feasible
