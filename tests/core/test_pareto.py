"""Pareto frontier tests."""

import pytest

from repro.core import (
    CompEngine,
    CompOpt,
    CostModel,
    CostParameters,
    MinCompressionSpeed,
)
from repro.core.config import config_grid
from repro.corpus import generate_records


@pytest.fixture(scope="module")
def result():
    engine = CompEngine([generate_records(16384, seed=50)])
    model = CostModel(CostParameters.from_price_book(beta=1e-6))
    opt = CompOpt(engine, model, [MinCompressionSpeed(150e6)])
    return opt.optimize(config_grid(["zstd", "lz4", "zlib"], levels=[1, 3, 6, 9]))


class TestParetoFrontier:
    def test_frontier_nonempty_and_sorted(self, result):
        frontier = result.pareto_frontier()
        assert frontier
        speeds = [r.metrics.compression_speed for r in frontier]
        assert speeds == sorted(speeds)

    def test_no_frontier_point_dominated(self, result):
        frontier = result.pareto_frontier()
        for point in frontier:
            for other in result.ranked:
                dominates = (
                    other.metrics.compression_speed > point.metrics.compression_speed
                    and other.metrics.ratio > point.metrics.ratio
                )
                assert not dominates

    def test_every_candidate_dominated_by_or_on_frontier(self, result):
        frontier = result.pareto_frontier()
        for candidate in result.ranked:
            covered = candidate in frontier or any(
                f.metrics.compression_speed >= candidate.metrics.compression_speed
                and f.metrics.ratio >= candidate.metrics.ratio
                for f in frontier
            )
            assert covered

    def test_frontier_trades_speed_for_ratio(self, result):
        frontier = result.pareto_frontier()
        if len(frontier) >= 2:
            # ascending speed order implies descending ratio order
            ratios = [r.metrics.ratio for r in frontier]
            assert ratios == sorted(ratios, reverse=True)

    def test_feasible_only_filter(self, result):
        frontier = result.pareto_frontier(feasible_only=True)
        assert all(r.feasible for r in frontier)

    def test_custom_axes(self, result):
        frontier = result.pareto_frontier(
            x_metric="decompression_speed", y_metric="ratio"
        )
        assert frontier
